//! Quickstart: deploy a small COSMOS system, register a stream, submit a
//! query, publish data and read the results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cosmos::{Cosmos, CosmosConfig};
use cosmos_query::{AttrStats, StreamStats};
use cosmos_types::{AttrType, NodeId, Schema, Timestamp, Tuple, Value};

fn main() -> cosmos_types::Result<()> {
    // An 8-node overlay (power-law topology, MST dissemination tree),
    // a quarter of the nodes equipped with stream processing engines.
    let mut sys = Cosmos::new(CosmosConfig {
        nodes: 8,
        seed: 7,
        ..CosmosConfig::default()
    })?;
    println!("deployed {} nodes; processors: {:?}", 8, sys.processors());

    // A source advertises its stream at node 2: schema plus statistics
    // (rates and value distributions feed the query layer's benefit
    // estimator).
    sys.register_stream(
        "Temps",
        Schema::of(&[
            ("station", AttrType::Int),
            ("celsius", AttrType::Float),
            ("timestamp", AttrType::Int),
        ]),
        StreamStats::with_rate(2.0)
            .attr("station", AttrStats::categorical(4.0))
            .attr("celsius", AttrStats::numeric(-20.0, 45.0, 650.0)),
        NodeId(2),
    )?;

    // Two users at different nodes ask overlapping questions. The query
    // layer merges them into one representative query; its shared result
    // stream is split back per user inside the network.
    let hot = sys.submit_query(
        "SELECT station, celsius FROM Temps [Now] WHERE celsius > 30.0",
        NodeId(5),
    )?;
    let warm = sys.submit_query(
        "SELECT station, celsius FROM Temps [Now] WHERE celsius > 20.0",
        NodeId(6),
    )?;
    let processor = sys.processor_of(hot).expect("assigned");
    println!("queries assigned to processor {processor}");
    let gm = sys.group_manager(processor).expect("has queries");
    println!(
        "groups: {} for {} queries (grouping ratio {:.2})",
        gm.group_count(),
        gm.query_count(),
        gm.grouping_ratio()
    );

    // Publish a day of readings.
    for i in 0..20i64 {
        let celsius = -5.0 + 2.0 * i as f64; // ramps from -5 to 33
        sys.publish(&Tuple::new(
            "Temps",
            Timestamp(i * 500),
            vec![
                Value::Int(i % 4),
                Value::Float(celsius),
                Value::Int(i * 500),
            ],
        ))?;
    }

    println!("\nhot  (> 30°C): {} results", sys.results(hot).len());
    for t in sys.results(hot) {
        println!("  {t}");
    }
    println!("warm (> 20°C): {} results", sys.results(warm).len());
    println!(
        "\nnetwork: {} bytes over {} published tuples (delay-weighted cost {:.3})",
        sys.total_bytes(),
        sys.tuples_published(),
        sys.weighted_cost()
    );
    Ok(())
}
