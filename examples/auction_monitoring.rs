//! The paper's running example (Section 4, Table 1, Figure 3): auction
//! monitoring with result-stream sharing.
//!
//! Two users issue the overlapping queries q1 ("auctions closed within
//! three hours of opening") and q2 ("items and buyers of auctions closed
//! within five hours"). COSMOS reformulates them into the representative
//! q3, ships q3's result stream once over the shared trunk, and splits
//! it back with the re-tightening profiles p1/p2 — whose filters are the
//! paper's `−3h ≤ O.timestamp − C.timestamp ≤ 0` window constraints.
//!
//! ```sh
//! cargo run --example auction_monitoring
//! ```

use cosmos::{Cosmos, CosmosConfig};
use cosmos_cql::parse_query;
use cosmos_overlay::Graph;
use cosmos_query::{merge, retighten_profile};
use cosmos_spe::AnalyzedQuery;
use cosmos_types::{NodeId, StreamName};
use cosmos_workload::auction::{
    auction_catalog, closed_auction_schema, open_auction_schema, AuctionGenerator, Q1, Q2, Q3,
};

fn main() -> cosmos_types::Result<()> {
    println!("Table 1 queries:\n  q1: {Q1}\n  q2: {Q2}\n");

    // ── The query layer's view ─────────────────────────────────────────
    let cat = auction_catalog(60.0);
    let analyze = |t: &str| AnalyzedQuery::analyze(&parse_query(t).unwrap(), cat.schema_fn());
    let (q1, q2) = (analyze(Q1)?, analyze(Q2)?);
    let rep = merge(&q1, &q2)?;
    println!(
        "representative query (≡ paper's q3):\n  {}",
        cosmos_query::to_query(&rep)?
    );
    assert!(cosmos_query::contained(&q1, &analyze(Q3)?));

    let s3 = StreamName::from("s3");
    let p1 = retighten_profile(&q1, &rep, &s3)?;
    let p2 = retighten_profile(&q2, &rep, &s3)?;
    println!("\nre-tightening profiles (paper's p1/p2):");
    println!("  p1 = {p1}");
    println!("  p2 = {p2}");

    // ── The deployed system (Figure 3 topology) ────────────────────────
    // n1(0) runs the SPE; n2(1) relays; users sit at n3(2) and n4(3).
    let mut g = Graph::new(4);
    g.set_position(NodeId(0), 0.0, 0.5);
    g.set_position(NodeId(1), 0.4, 0.5);
    g.set_position(NodeId(2), 0.8, 0.2);
    g.set_position(NodeId(3), 0.8, 0.8);
    g.add_edge_by_distance(NodeId(0), NodeId(1)).unwrap();
    g.add_edge_by_distance(NodeId(1), NodeId(2)).unwrap();
    g.add_edge_by_distance(NodeId(1), NodeId(3)).unwrap();
    let mut sys = Cosmos::with_graph(
        CosmosConfig {
            nodes: 4,
            processor_fraction: 0.25,
            ..CosmosConfig::default()
        },
        g,
    )?;
    let open = StreamName::from("OpenAuction");
    let closed = StreamName::from("ClosedAuction");
    sys.register_stream(
        "OpenAuction",
        open_auction_schema(),
        cat.stats(&open).unwrap().clone(),
        NodeId(0),
    )?;
    sys.register_stream(
        "ClosedAuction",
        closed_auction_schema(),
        cat.stats(&closed).unwrap().clone(),
        NodeId(0),
    )?;

    let u1 = sys.submit_query(Q1, NodeId(2))?;
    let u2 = sys.submit_query(Q2, NodeId(3))?;
    let events = AuctionGenerator::new(42, 60_000, 6 * 3_600_000).generate(200);
    println!("\npublishing {} auction events …", events.len());
    sys.run(events)?;

    println!(
        "q1 (3h window) delivered {} result tuples to n3",
        sys.results(u1).len()
    );
    println!(
        "q2 (5h window) delivered {} result tuples to n4",
        sys.results(u2).len()
    );
    println!(
        "\nshared trunk n1-n2 carried {} bytes; total network traffic {} bytes",
        sys.link_bytes(NodeId(0), NodeId(1)),
        sys.total_bytes()
    );
    let gm = sys.group_manager(NodeId(0)).unwrap();
    println!(
        "processor n1 runs {} representative quer{} for {} user queries",
        gm.group_count(),
        if gm.group_count() == 1 { "y" } else { "ies" },
        gm.query_count()
    );
    assert_eq!(gm.group_count(), 1, "q1 and q2 must share one group");
    Ok(())
}
