//! The paper's evaluation workload as a running system: SensorScope-like
//! environmental streams, many overlapping monitoring queries, tuple-
//! accurate routing with merging on, and a comparison against the
//! non-shared baseline.
//!
//! ```sh
//! cargo run --release --example sensor_network
//! ```

use cosmos::{Cosmos, CosmosConfig};
use cosmos_types::{NodeId, StreamName};
use cosmos_workload::sensor::{merged_inputs, sensor_catalog, stream_name, SensorGenerator};
use cosmos_workload::{Popularity, QueryGenConfig, QueryGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 40;
const STREAMS: usize = 8; // deployments actually publishing in this demo
const QUERIES: usize = 60;
const DURATION_MS: i64 = 300_000; // five minutes of data

fn build(merging: bool) -> cosmos_types::Result<(Cosmos, Vec<cosmos_types::QueryId>)> {
    let mut sys = Cosmos::new(CosmosConfig {
        nodes: NODES,
        seed: 3,
        processor_fraction: 0.1,
        merging_enabled: merging,
        ..CosmosConfig::default()
    })?;
    let cat = sensor_catalog();
    let mut rng = StdRng::seed_from_u64(99);
    for i in 0..STREAMS {
        let name = stream_name(i);
        let key = StreamName::from(name.as_str());
        let origin = NodeId(rng.gen_range(0..NODES as u32));
        sys.register_stream(
            name.as_str(),
            cat.schema(&key).unwrap().clone(),
            cat.stats(&key).unwrap().clone(),
            origin,
        )?;
    }
    // Random zipf-skewed queries, each from a random user node. Queries
    // are restricted to the publishing deployments by resampling.
    let mut gen = QueryGenerator::new(
        QueryGenConfig {
            popularity: Popularity::Zipf(1.0),
            join_fraction: 0.0, // this demo publishes a subset of streams
            agg_fraction: 0.15,
            ..QueryGenConfig::default()
        },
        5,
    );
    let mut qids = Vec::new();
    while qids.len() < QUERIES {
        let text = gen.next_query();
        // keep only queries whose streams are published in this demo
        if !(0..STREAMS).any(|i| text.contains(&stream_name(i))) {
            continue;
        }
        if (STREAMS..cosmos_workload::SENSOR_STREAMS).any(|i| text.contains(&stream_name(i))) {
            continue;
        }
        let user = NodeId(rng.gen_range(0..NODES as u32));
        qids.push(sys.submit_query(&text, user)?);
    }
    Ok((sys, qids))
}

fn main() -> cosmos_types::Result<()> {
    let (mut shared, qids) = build(true)?;
    let (mut baseline, base_qids) = build(false)?;

    let mut gens: Vec<SensorGenerator> = (0..STREAMS)
        .map(|i| SensorGenerator::new(i, 2024))
        .collect();
    let inputs = merged_inputs(&mut gens, DURATION_MS);
    println!(
        "publishing {} tuples from {STREAMS} deployments over {NODES} nodes, {QUERIES} queries …",
        inputs.len()
    );
    shared.run(inputs.iter().cloned())?;
    baseline.run(inputs.iter().cloned())?;

    // Identical results either way.
    let mut delivered = 0usize;
    for (a, b) in qids.iter().zip(&base_qids) {
        assert_eq!(
            shared.results(*a).len(),
            baseline.results(*b).len(),
            "merging must not change results"
        );
        delivered += shared.results(*a).len();
    }

    let groups: usize = shared
        .processors()
        .iter()
        .filter_map(|p| shared.group_manager(*p))
        .map(|m| m.group_count())
        .sum();
    println!("\n{delivered} result tuples delivered to {QUERIES} queries");
    println!(
        "query merging: {QUERIES} queries → {groups} representative queries \
         (grouping ratio {:.2})",
        shared.grouping_ratio()
    );
    println!(
        "network bytes:  shared = {:>10}   non-shared = {:>10}   saved = {:.1}%",
        shared.total_bytes(),
        baseline.total_bytes(),
        100.0 * (1.0 - shared.total_bytes() as f64 / baseline.total_bytes() as f64)
    );
    println!(
        "weighted cost:  shared = {:>10.2} non-shared = {:>10.2} saved = {:.1}%",
        shared.weighted_cost(),
        baseline.weighted_cost(),
        100.0 * (1.0 - shared.weighted_cost() / baseline.weighted_cost())
    );
    assert!(shared.total_bytes() < baseline.total_bytes());
    Ok(())
}
