//! The overlay network optimizer (Section 3.2) and data-layer fault
//! tolerance in action.
//!
//! Builds a power-law overlay, constructs the MST dissemination tree,
//! lets the adaptive reorganizer improve it under skewed consumer
//! demand, then fails a tree link in a running COSMOS deployment and
//! shows delivery resuming after the repair.
//!
//! ```sh
//! cargo run --example overlay_adaptation
//! ```

use cosmos::{Cosmos, CosmosConfig};
use cosmos_overlay::{
    generate, minimum_spanning_tree, Graph, OptimizerConfig, TopologyKind, TreeOptimizer,
};
use cosmos_query::{AttrStats, StreamStats};
use cosmos_types::{AttrType, NodeId, Schema, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> cosmos_types::Result<()> {
    // ── Part 1: adaptive tree reorganization ───────────────────────────
    let mut rng = StdRng::seed_from_u64(21);
    let g = generate(TopologyKind::BarabasiAlbert { m: 2 }, 200, &mut rng)?;
    let mut tree = minimum_spanning_tree(&g, NodeId(0))?;
    println!(
        "power-law overlay: {} nodes, {} links; MST dissemination tree rooted at n0",
        g.node_count(),
        g.edge_count()
    );
    // a handful of heavy consumers, everyone else idle
    let demand: Vec<f64> = (0..200)
        .map(|i| {
            if i % 13 == 0 {
                rng.gen_range(4.0..8.0)
            } else {
                0.05
            }
        })
        .collect();
    let optimizer = TreeOptimizer::new(OptimizerConfig {
        max_degree: 6,
        w_delay: 1.0,
        w_load: 0.25,
        rounds: 3,
    });
    let report = optimizer.optimize(&g, &mut tree, &demand);
    println!(
        "optimizer: cost {:.2} → {:.2} in {} local moves ({:.1}% better)",
        report.cost_before,
        report.cost_after,
        report.moves,
        100.0 * report.improvement()
    );

    // ── Part 2: link failure and repair in a live deployment ──────────
    let mut overlay = Graph::new(6);
    for i in 0..6 {
        overlay.set_position(NodeId(i), 0.18 * i as f64, 0.5);
    }
    for i in 1..6u32 {
        overlay
            .add_edge_by_distance(NodeId(i - 1), NodeId(i))
            .unwrap();
    }
    let mut sys = Cosmos::with_graph(
        CosmosConfig {
            nodes: 6,
            processor_fraction: 0.17,
            ..CosmosConfig::default()
        },
        overlay,
    )?;
    sys.register_stream(
        "Ticks",
        Schema::of(&[("v", AttrType::Int), ("timestamp", AttrType::Int)]),
        StreamStats::with_rate(1.0).attr("v", AttrStats::categorical(100.0)),
        NodeId(0),
    )?;
    let q = sys.submit_query("SELECT v FROM Ticks [Now]", NodeId(5))?;
    let tick = |ts: i64| Tuple::new("Ticks", Timestamp(ts), vec![Value::Int(ts), Value::Int(ts)]);
    sys.run((0..5).map(&tick))?;
    println!(
        "\nlive system: {} results delivered over the 6-node line",
        sys.results(q).len()
    );
    println!("failing dissemination-tree link n3 - n4 …");
    sys.fail_tree_link(NodeId(3), NodeId(4))?;
    println!(
        "repaired: n4 re-attached under {}",
        sys.tree().parent(NodeId(4)).unwrap()
    );
    sys.run((5..10).map(tick))?;
    println!("delivery resumed: {} results total", sys.results(q).len());
    assert_eq!(sys.results(q).len(), 10);
    Ok(())
}
