//! The whole-system correctness invariant: for every query submitted to
//! a COSMOS deployment, the tuples delivered to its user through the
//! content-based network — source-side filtering, early projection,
//! query merging, representative execution, and result-stream splitting
//! included — are exactly the tuples a local, brute-force evaluation of
//! that query over the same inputs produces.
//!
//! The comparison itself lives in `cosmos_testkit` (shared with the
//! `cosmos-sim` scenario harness); these tests keep a corpus of pinned
//! deployments around it. For randomized end-to-end coverage beyond the
//! proptest below, see `crates/testkit` and the CI `sim-sweep` job.

use cosmos::{Cosmos, CosmosConfig};
use cosmos_cbn::RegistryMode;
use cosmos_query::{AttrStats, StatsCatalog, StreamStats};
use cosmos_testkit::assert_results_match_oracle;
use cosmos_types::{AttrType, NodeId, QueryId, Schema, StreamName, Timestamp, Tuple, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn catalog() -> StatsCatalog {
    let mut cat = StatsCatalog::new();
    cat.register(
        "L",
        Schema::of(&[
            ("k", AttrType::Int),
            ("x", AttrType::Int),
            ("timestamp", AttrType::Int),
        ]),
        StreamStats::with_rate(2.0)
            .attr("k", AttrStats::categorical(4.0))
            .attr("x", AttrStats::numeric(0.0, 40.0, 40.0)),
    );
    cat.register(
        "R",
        Schema::of(&[
            ("k", AttrType::Int),
            ("y", AttrType::Int),
            ("timestamp", AttrType::Int),
        ]),
        StreamStats::with_rate(2.0)
            .attr("k", AttrStats::categorical(4.0))
            .attr("y", AttrStats::numeric(0.0, 40.0, 40.0)),
    );
    cat
}

/// Deploy a system with both streams advertised.
fn deploy(nodes: usize, seed: u64, merging: bool, registry: RegistryMode) -> Cosmos {
    let mut sys = Cosmos::new(CosmosConfig {
        nodes,
        seed,
        processor_fraction: 0.2,
        merging_enabled: merging,
        registry_mode: registry,
        ..CosmosConfig::default()
    })
    .unwrap();
    let cat = catalog();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
    for s in ["L", "R"] {
        let key = StreamName::from(s);
        sys.register_stream(
            s,
            cat.schema(&key).unwrap().clone(),
            cat.stats(&key).unwrap().clone(),
            NodeId(rng.gen_range(0..nodes as u32)),
        )
        .unwrap();
    }
    sys
}

/// Check a deployed system against local oracle evaluation.
fn check_deployment(sys: &mut Cosmos, queries: &[(QueryId, String)], inputs: &[Tuple]) {
    sys.run(inputs.iter().cloned()).unwrap();
    assert_results_match_oracle(sys, queries, inputs);
}

fn l(ts: i64, k: i64, x: i64) -> Tuple {
    Tuple::new(
        "L",
        Timestamp(ts),
        vec![Value::Int(k), Value::Int(x), Value::Int(ts)],
    )
}

fn r(ts: i64, k: i64, y: i64) -> Tuple {
    Tuple::new(
        "R",
        Timestamp(ts),
        vec![Value::Int(k), Value::Int(y), Value::Int(ts)],
    )
}

fn demo_inputs(n: i64) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(7);
    let mut out = Vec::new();
    for i in 0..n {
        let ts = i * 700;
        if rng.gen_bool(0.5) {
            out.push(l(ts, rng.gen_range(0..4), rng.gen_range(0..40)));
        } else {
            out.push(r(ts, rng.gen_range(0..4), rng.gen_range(0..40)));
        }
    }
    out
}

const QUERY_SET: &[&str] = &[
    "SELECT k, x FROM L [Now] WHERE x > 10",
    "SELECT k, x FROM L [Now] WHERE x > 25",
    "SELECT k, x FROM L [Now] WHERE x BETWEEN 5 AND 30",
    "SELECT k FROM R [Now] WHERE y <= 20",
    "SELECT A.k, A.x, B.y FROM L [Range 5 Second] A, R [Range 5 Second] B WHERE A.k = B.k",
    "SELECT A.k, A.x, B.y FROM L [Range 10 Second] A, R [Range 5 Second] B WHERE A.k = B.k",
    "SELECT k, COUNT(*), SUM(x) FROM L [Range 8 Second] GROUP BY k",
    "SELECT k, COUNT(*) FROM L [Range 8 Second] WHERE k BETWEEN 1 AND 2 GROUP BY k",
];

#[test]
fn merged_deployment_matches_local_evaluation() {
    let mut sys = deploy(24, 11, true, RegistryMode::Flooding);
    let mut rng = StdRng::seed_from_u64(5);
    let queries: Vec<(QueryId, String)> = QUERY_SET
        .iter()
        .map(|text| {
            let user = NodeId(rng.gen_range(0..24u32));
            (sys.submit_query(text, user).unwrap(), text.to_string())
        })
        .collect();
    check_deployment(&mut sys, &queries, &demo_inputs(120));
}

#[test]
fn baseline_deployment_matches_local_evaluation() {
    let mut sys = deploy(24, 11, false, RegistryMode::Flooding);
    let mut rng = StdRng::seed_from_u64(5);
    let queries: Vec<(QueryId, String)> = QUERY_SET
        .iter()
        .map(|text| {
            let user = NodeId(rng.gen_range(0..24u32));
            (sys.submit_query(text, user).unwrap(), text.to_string())
        })
        .collect();
    check_deployment(&mut sys, &queries, &demo_inputs(120));
}

#[test]
fn dht_registry_mode_works_end_to_end() {
    let mut sys = deploy(24, 19, true, RegistryMode::Dht { replicas: 3 });
    let q = sys
        .submit_query("SELECT k, x FROM L [Now] WHERE x > 20", NodeId(13))
        .unwrap();
    sys.run((0..30).map(|i| l(i * 500, i % 4, i % 40))).unwrap();
    let expected = (0..30).filter(|i| (i % 40) > 20).count();
    assert_eq!(sys.results(q).len(), expected);
    assert!(sys.registry().control_messages() > 0);
}

#[test]
fn duplicate_queries_from_many_users_share_everything() {
    let mut sys = deploy(30, 23, true, RegistryMode::Flooding);
    let text = "SELECT k, x FROM L [Now] WHERE x >= 0";
    let qids: Vec<QueryId> = (0..10)
        .map(|i| sys.submit_query(text, NodeId(3 * i as u32)).unwrap())
        .collect();
    sys.run((0..40).map(|i| l(i * 500, i % 4, i % 40))).unwrap();
    for q in &qids {
        assert_eq!(sys.results(*q).len(), 40);
    }
    // all ten users share one representative
    let total_groups: usize = sys
        .processors()
        .iter()
        .filter_map(|p| sys.group_manager(*p))
        .map(|m| m.group_count())
        .sum();
    assert_eq!(total_groups, 1);
}

#[test]
fn per_source_tree_deployment_matches_local_evaluation() {
    let mut sys = Cosmos::new(CosmosConfig {
        nodes: 24,
        seed: 31,
        processor_fraction: 0.2,
        per_source_trees: true,
        ..CosmosConfig::default()
    })
    .unwrap();
    let cat = catalog();
    for (s, origin) in [("L", NodeId(5)), ("R", NodeId(17))] {
        let key = StreamName::from(s);
        sys.register_stream(
            s,
            cat.schema(&key).unwrap().clone(),
            cat.stats(&key).unwrap().clone(),
            origin,
        )
        .unwrap();
    }
    let mut rng = StdRng::seed_from_u64(9);
    let queries: Vec<(QueryId, String)> = QUERY_SET
        .iter()
        .map(|text| {
            let user = NodeId(rng.gen_range(0..24u32));
            (sys.submit_query(text, user).unwrap(), text.to_string())
        })
        .collect();
    check_deployment(&mut sys, &queries, &demo_inputs(100));
}

#[test]
fn reoptimized_deployment_matches_local_evaluation() {
    let mut sys = deploy(20, 41, true, RegistryMode::Flooding);
    let mut rng = StdRng::seed_from_u64(3);
    // adversarial order: narrow selections first, wide one last
    let order = [2usize, 1, 0, 3, 4, 6, 7];
    let queries: Vec<(QueryId, String)> = order
        .iter()
        .map(|&i| {
            let text = QUERY_SET[i];
            let user = NodeId(rng.gen_range(0..20u32));
            (sys.submit_query(text, user).unwrap(), text.to_string())
        })
        .collect();
    sys.reoptimize_groups().unwrap();
    check_deployment(&mut sys, &queries, &demo_inputs(100));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random subsets of the query corpus on random topologies: the
    /// distributed deployment always matches local evaluation.
    #[test]
    fn random_deployments_match_local_evaluation(
        seed in 0u64..5000,
        picks in proptest::collection::vec(0usize..8, 1..6),
        n_inputs in 40i64..120,
    ) {
        let mut sys = deploy(16, seed, true, RegistryMode::Flooding);
        let mut rng = StdRng::seed_from_u64(seed);
        let queries: Vec<(QueryId, String)> = picks
            .iter()
            .map(|&i| {
                let text = QUERY_SET[i];
                let user = NodeId(rng.gen_range(0..16u32));
                (sys.submit_query(text, user).unwrap(), text.to_string())
            })
            .collect();
        check_deployment(&mut sys, &queries, &demo_inputs(n_inputs));
    }
}
