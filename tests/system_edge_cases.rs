//! System-level edge cases: query distribution policy, accounting
//! consistency, registry modes under load, and determinism of whole
//! deployments.

use cosmos::{Cosmos, CosmosConfig, NodeRole};
use cosmos_cbn::RegistryMode;
use cosmos_query::{AttrStats, StreamStats};
use cosmos_types::{AttrType, NodeId, Schema, Timestamp, Tuple, Value};

fn schema() -> Schema {
    Schema::of(&[
        ("k", AttrType::Int),
        ("x", AttrType::Float),
        ("timestamp", AttrType::Int),
    ])
}

fn stats() -> StreamStats {
    StreamStats::with_rate(1.0)
        .attr("k", AttrStats::categorical(16.0))
        .attr("x", AttrStats::numeric(0.0, 100.0, 200.0))
}

fn tup(ts: i64, k: i64, x: f64) -> Tuple {
    Tuple::new(
        "S",
        Timestamp(ts),
        vec![Value::Int(k), Value::Float(x), Value::Int(ts)],
    )
}

fn deploy(cfg: CosmosConfig) -> Cosmos {
    let mut sys = Cosmos::new(cfg).unwrap();
    sys.register_stream("S", schema(), stats(), NodeId(1))
        .unwrap();
    sys
}

#[test]
fn affinity_one_concentrates_affinity_many_balances() {
    // With one candidate processor per stream set, all queries over S
    // land together; with many candidates, load spreads.
    let run = |affinity: usize| -> Vec<usize> {
        let mut sys = deploy(CosmosConfig {
            nodes: 40,
            seed: 9,
            processor_fraction: 0.2,
            affinity_candidates: affinity,
            merging_enabled: false, // isolate the distribution policy
            ..CosmosConfig::default()
        });
        let mut counts = vec![0usize; 40];
        for i in 0..32 {
            let q = sys
                .submit_query("SELECT k FROM S [Now]", NodeId(i % 40))
                .unwrap();
            counts[sys.processor_of(q).unwrap().index()] += 1;
        }
        counts
    };
    let concentrated = run(1);
    assert_eq!(concentrated.iter().filter(|&&c| c > 0).count(), 1);
    let spread = run(8);
    let busy = spread.iter().filter(|&&c| c > 0).count();
    assert!(
        busy >= 4,
        "affinity 8 should use several processors, used {busy}"
    );
    // least-loaded choice keeps the spread flat
    let max = spread.iter().max().unwrap();
    let min_busy = spread.iter().filter(|&&c| c > 0).min().unwrap();
    assert!(max - min_busy <= 1, "unbalanced spread: {spread:?}");
}

#[test]
fn processor_roles_match_fraction() {
    let sys = deploy(CosmosConfig {
        nodes: 40,
        seed: 1,
        processor_fraction: 0.25,
        ..CosmosConfig::default()
    });
    let processors = (0..40u32)
        .filter(|&i| sys.role(NodeId(i)) == NodeRole::Processor)
        .count();
    assert_eq!(processors, 10);
    assert_eq!(sys.processors().len(), 10);
}

#[test]
fn weighted_cost_and_bytes_move_together() {
    let mut sys = deploy(CosmosConfig {
        nodes: 12,
        seed: 3,
        ..CosmosConfig::default()
    });
    sys.submit_query("SELECT k, x FROM S [Now]", NodeId(7))
        .unwrap();
    let mut last_bytes = 0;
    let mut last_cost = 0.0;
    for i in 0..10 {
        sys.publish(&tup(i * 1000, i, i as f64)).unwrap();
        assert!(sys.total_bytes() >= last_bytes);
        assert!(sys.weighted_cost() >= last_cost);
        last_bytes = sys.total_bytes();
        last_cost = sys.weighted_cost();
    }
    assert!(last_bytes > 0);
}

#[test]
fn whole_deployments_are_deterministic() {
    let run = || {
        let mut sys = deploy(CosmosConfig {
            nodes: 24,
            seed: 77,
            ..CosmosConfig::default()
        });
        let q = sys
            .submit_query("SELECT k, x FROM S [Now] WHERE x > 25.0", NodeId(13))
            .unwrap();
        sys.run((0..40).map(|i| tup(i * 250, i % 16, (i % 100) as f64)))
            .unwrap();
        (
            sys.results(q).to_vec(),
            sys.total_bytes(),
            sys.weighted_cost().to_bits(),
            sys.processor_of(q),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn dht_registry_with_many_result_streams() {
    let mut sys = Cosmos::new(CosmosConfig {
        nodes: 30,
        seed: 4,
        registry_mode: RegistryMode::Dht { replicas: 3 },
        merging_enabled: false, // one result stream per query
        ..CosmosConfig::default()
    })
    .unwrap();
    sys.register_stream("S", schema(), stats(), NodeId(1))
        .unwrap();
    let qids: Vec<_> = (0..12)
        .map(|i| {
            sys.submit_query("SELECT k FROM S [Now]", NodeId(i * 2))
                .unwrap()
        })
        .collect();
    sys.run((0..10).map(|i| tup(i * 1000, i, 1.0))).unwrap();
    for q in qids {
        assert_eq!(sys.results(q).len(), 10);
    }
    // registrations: 1 source + 12 result streams, 3 replicas each,
    // plus lookups — all accounted
    assert!(sys.registry().control_messages() >= 13 * 3);
}

#[test]
fn unsubscribe_collapses_group_to_remaining_member() {
    let mut sys = deploy(CosmosConfig {
        nodes: 16,
        seed: 6,
        affinity_candidates: 1, // both queries land on the same processor
        ..CosmosConfig::default()
    });
    let wide = sys
        .submit_query("SELECT k, x FROM S [Now] WHERE x >= 0.0", NodeId(3))
        .unwrap();
    let narrow = sys
        .submit_query("SELECT k, x FROM S [Now] WHERE x > 50.0", NodeId(9))
        .unwrap();
    let p = sys.processor_of(narrow).unwrap();
    {
        let mgr = sys.group_manager(p).unwrap();
        assert_eq!(mgr.group_count(), 1, "the two selections must merge");
        let g = mgr.groups().next().unwrap();
        assert_eq!(g.members.len(), 2);
        let narrow_q = &g.members.iter().find(|(m, _)| *m == narrow).unwrap().1;
        assert_ne!(
            &g.representative, narrow_q,
            "the representative must be wider than the narrow member"
        );
    }

    // Withdrawing the wide member shrinks the group to a singleton whose
    // representative collapses back to the member query itself...
    sys.unsubscribe(wide).unwrap();
    {
        let mgr = sys.group_manager(p).unwrap();
        assert_eq!(mgr.group_count(), 1);
        let g = mgr.groups().next().unwrap();
        assert_eq!(g.members.len(), 1);
        assert_eq!(g.members[0].0, narrow);
        assert_eq!(
            g.representative, g.members[0].1,
            "singleton representative must equal its member"
        );
    }
    // ...and self-tuning finds nothing left to improve.
    assert_eq!(sys.reoptimize_groups().unwrap(), 0);

    // The collapsed representative filters at the source again: only
    // x > 50 survives, delivered solely to the remaining query.
    sys.run((0..20).map(|i| tup(i * 1000, i, (i * 10) as f64)))
        .unwrap();
    let expected = (0..20).filter(|i| i * 10 > 50).count();
    assert_eq!(sys.results(narrow).len(), expected);
    assert_eq!(sys.results(wide).len(), 0, "withdrawn before any input");
}

#[test]
fn advertisement_and_subscription_are_decoupled() {
    let mut sys = deploy(CosmosConfig {
        nodes: 16,
        seed: 8,
        ..CosmosConfig::default()
    });

    // An advertised stream with no subscribers absorbs publishes: they
    // route nowhere and deliver nothing, but they are not errors.
    for i in 0..5 {
        sys.publish(&tup(i * 1000, i, 60.0)).unwrap();
    }

    // An unadvertised stream bounces both publishes and queries.
    let t = Tuple::new(
        "T",
        Timestamp(0),
        vec![Value::Int(0), Value::Float(1.0), Value::Int(0)],
    );
    assert!(sys.publish(&t).is_err(), "publish before advertisement");
    assert!(
        sys.submit_query("SELECT k FROM T [Now]", NodeId(2))
            .is_err(),
        "subscribe before advertisement"
    );

    // Advertising T after queries over S already exist opens it up.
    let on_s = sys
        .submit_query("SELECT k, x FROM S [Now] WHERE x > 50.0", NodeId(4))
        .unwrap();
    sys.register_stream("T", schema(), stats(), NodeId(7))
        .unwrap();
    let on_t = sys
        .submit_query("SELECT k FROM T [Now]", NodeId(11))
        .unwrap();

    for i in 5..10 {
        sys.publish(&tup(i * 1000, i, 60.0)).unwrap();
        sys.publish(&Tuple::new(
            "T",
            Timestamp(i * 1000),
            vec![Value::Int(i), Value::Float(1.0), Value::Int(i * 1000)],
        ))
        .unwrap();
    }
    // Subscriptions only see tuples published after they existed: the
    // five pre-subscription tuples on S are gone for good.
    assert_eq!(sys.results(on_s).len(), 5);
    assert_eq!(sys.results(on_t).len(), 5);
}

#[test]
fn queries_against_missing_attributes_fail_cleanly() {
    let mut sys = deploy(CosmosConfig {
        nodes: 8,
        seed: 2,
        ..CosmosConfig::default()
    });
    // the lint pass catches the bad attribute before analysis
    let err = sys
        .submit_query("SELECT nonexistent FROM S [Now]", NodeId(3))
        .unwrap_err();
    assert_eq!(err.kind(), "lint");
    assert!(err.message().contains("C0202"), "{}", err.message());
    // failed submissions leave no residue: a valid query still works
    let q = sys
        .submit_query("SELECT k FROM S [Now]", NodeId(3))
        .unwrap();
    sys.publish(&tup(0, 1, 1.0)).unwrap();
    assert_eq!(sys.results(q).len(), 1);
}
