//! Empirical soundness of the paper's containment theorems.
//!
//! Theorem 1 and Theorem 2 are *sufficient* conditions for continuous-
//! query containment (Definition 1). These tests sample random query
//! pairs and random stream instances and verify that whenever our
//! checker says `q1 ⊑ q2`, the executed results agree: every result row
//! of `q1` appears (projected) among `q2`'s result rows at the same
//! application time instance.

use cosmos_cql::parse_query;
use cosmos_query::{contained, correspondence};
use cosmos_spe::analyze::{AnalyzedQuery, OutputColumn, QAttr};
use cosmos_spe::oracle;
use cosmos_types::{AttrType, Schema, Timestamp, Tuple, Value};
use proptest::prelude::*;

fn catalog(name: &str) -> Option<Schema> {
    match name {
        "L" => Some(Schema::of(&[
            ("k", AttrType::Int),
            ("x", AttrType::Int),
            ("timestamp", AttrType::Int),
        ])),
        "R" => Some(Schema::of(&[
            ("k", AttrType::Int),
            ("y", AttrType::Int),
            ("timestamp", AttrType::Int),
        ])),
        _ => None,
    }
}

fn analyzed(text: &str) -> AnalyzedQuery {
    AnalyzedQuery::analyze(&parse_query(text).unwrap(), catalog).unwrap()
}

/// Row of a result tuple keyed by q2-namespace column names.
fn keyed_rows(
    q: &AnalyzedQuery,
    out: &[Tuple],
    rename_into: Option<(&AnalyzedQuery, &[usize])>,
) -> Vec<(Timestamp, Vec<(String, Value)>)> {
    let names: Vec<String> = q
        .output
        .iter()
        .map(|c| {
            let rn = |qa: &QAttr| -> QAttr {
                match rename_into {
                    Some((target, map)) => {
                        let i = q.stream_index(&qa.binding).unwrap();
                        QAttr::new(&target.streams[map[i]].binding, &qa.name)
                    }
                    None => qa.clone(),
                }
            };
            match c {
                OutputColumn::Attr(a) => rn(a).qualified(),
                OutputColumn::Agg { func, arg } => format!(
                    "{func}({})",
                    arg.as_ref()
                        .map(|a| rn(a).qualified())
                        .unwrap_or_else(|| "*".into())
                ),
            }
        })
        .collect();
    let mut rows: Vec<_> = out
        .iter()
        .map(|t| {
            let mut row: Vec<(String, Value)> = names
                .iter()
                .cloned()
                .zip(t.values().iter().cloned())
                .collect();
            row.sort();
            row.dedup_by(|a, b| a.0 == b.0);
            (t.timestamp, row)
        })
        .collect();
    rows.sort();
    rows
}

/// If the checker claims containment, execution must agree.
fn assert_containment_sound(q1: &AnalyzedQuery, q2: &AnalyzedQuery, inputs: &[Tuple]) {
    if !contained(q1, q2) {
        return;
    }
    let map = correspondence(q1, q2).expect("contained implies correspondence");
    let out1 = oracle::evaluate(q1, "o1", inputs);
    let out2 = oracle::evaluate(q2, "o2", inputs);
    let rows1 = keyed_rows(q1, &out1, Some((q2, &map)));
    let rows2 = keyed_rows(q2, &out2, None);
    // Every q1 row must appear in q2's rows once q2's row is projected
    // onto q1's columns (same timestamp).
    let mut remaining = rows2.clone();
    for (ts, row) in &rows1 {
        let pos = remaining.iter().position(|(ts2, row2)| {
            ts2 == ts
                && row
                    .iter()
                    .all(|(name, v)| row2.iter().any(|(n2, v2)| n2 == name && v2 == v))
        });
        let Some(pos) = pos else {
            panic!(
                "containment violated: q1 row {row:?}@{ts} missing from q2 output\n\
                 q1: {q1:#?}\nq2: {q2:#?}"
            );
        };
        remaining.swap_remove(pos);
    }
}

fn arb_single() -> impl Strategy<Value = String> {
    (
        prop_oneof![
            Just("[Now]"),
            Just("[Range 4 Second]"),
            Just("[Range 9 Second]"),
            Just("[Unbounded]")
        ],
        proptest::option::of((0i64..30, 5i64..30)),
        proptest::sample::subsequence(vec!["k", "x"], 1..=2),
    )
        .prop_map(|(w, range, cols)| {
            let where_ = match range {
                Some((lo, width)) => format!(" WHERE x BETWEEN {lo} AND {}", lo + width),
                None => String::new(),
            };
            format!("SELECT {} FROM L {w}{where_}", cols.join(", "))
        })
}

fn arb_join() -> impl Strategy<Value = String> {
    (
        prop_oneof![
            Just("[Now]"),
            Just("[Range 5 Second]"),
            Just("[Range 12 Second]")
        ],
        prop_oneof![
            Just("[Now]"),
            Just("[Range 5 Second]"),
            Just("[Range 12 Second]")
        ],
        proptest::option::of(0i64..25),
    )
        .prop_map(|(w1, w2, xmin)| {
            let extra = match xmin {
                Some(m) => format!(" AND A.x >= {m}"),
                None => String::new(),
            };
            format!("SELECT A.k, A.x, B.y FROM L {w1} A, R {w2} B WHERE A.k = B.k{extra}")
        })
}

fn arb_agg() -> impl Strategy<Value = String> {
    (
        prop_oneof![Just("[Range 6 Second]"), Just("[Range 14 Second]")],
        proptest::option::of((0i64..3, 0i64..2)),
        proptest::sample::subsequence(vec!["COUNT(*)", "SUM(x)", "MAX(x)"], 1..=3),
    )
        .prop_map(|(w, krange, aggs)| {
            let where_ = match krange {
                Some((lo, width)) => format!(" WHERE k BETWEEN {lo} AND {}", lo + width),
                None => String::new(),
            };
            format!(
                "SELECT k, {} FROM L {w}{where_} GROUP BY k",
                aggs.join(", ")
            )
        })
}

fn arb_inputs() -> impl Strategy<Value = Vec<Tuple>> {
    proptest::collection::vec((0i64..20, any::<bool>(), 0i64..4, 0i64..35), 10..50).prop_map(
        |mut raw| {
            raw.sort_by_key(|(ts, _, _, _)| *ts);
            raw.into_iter()
                .map(|(ts, is_l, k, v)| {
                    let (stream, _) = if is_l { ("L", "x") } else { ("R", "y") };
                    Tuple::new(
                        stream,
                        Timestamp(ts * 1000),
                        vec![Value::Int(k), Value::Int(v), Value::Int(ts * 1000)],
                    )
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1 on single-stream select-project queries.
    #[test]
    fn theorem1_single_stream(a in arb_single(), b in arb_single(), inputs in arb_inputs()) {
        assert_containment_sound(&analyzed(&a), &analyzed(&b), &inputs);
        assert_containment_sound(&analyzed(&b), &analyzed(&a), &inputs);
    }

    /// Theorem 1 on window joins (the window-containment condition).
    #[test]
    fn theorem1_joins(a in arb_join(), b in arb_join(), inputs in arb_inputs()) {
        assert_containment_sound(&analyzed(&a), &analyzed(&b), &inputs);
        assert_containment_sound(&analyzed(&b), &analyzed(&a), &inputs);
    }

    /// Theorem 2 on grouped aggregates (equal-window condition).
    #[test]
    fn theorem2_aggregates(a in arb_agg(), b in arb_agg(), inputs in arb_inputs()) {
        assert_containment_sound(&analyzed(&a), &analyzed(&b), &inputs);
        assert_containment_sound(&analyzed(&b), &analyzed(&a), &inputs);
    }

    /// Containment is reflexive and execution agrees.
    #[test]
    fn reflexivity(a in arb_single(), inputs in arb_inputs()) {
        let q = analyzed(&a);
        prop_assert!(contained(&q, &q));
        assert_containment_sound(&q, &q, &inputs);
    }
}

/// Deterministic regression cases: the lemma's boundary (`ts` exactly at
/// the window edge) and the Now-window equality case.
#[test]
fn window_boundary_cases() {
    let narrow =
        analyzed("SELECT A.k, A.x, B.y FROM L [Range 4 Second] A, R [Now] B WHERE A.k = B.k");
    let wide =
        analyzed("SELECT A.k, A.x, B.y FROM L [Range 9 Second] A, R [Now] B WHERE A.k = B.k");
    assert!(contained(&narrow, &wide));
    let inputs = vec![
        Tuple::new(
            "L",
            Timestamp(0),
            vec![Value::Int(1), Value::Int(5), Value::Int(0)],
        ),
        // exactly 4s later: inside the narrow window (inclusive)
        Tuple::new(
            "R",
            Timestamp(4_000),
            vec![Value::Int(1), Value::Int(7), Value::Int(4_000)],
        ),
        // 9s: only the wide window
        Tuple::new(
            "R",
            Timestamp(9_000),
            vec![Value::Int(1), Value::Int(8), Value::Int(9_000)],
        ),
        // 10s: neither
        Tuple::new(
            "R",
            Timestamp(10_000),
            vec![Value::Int(1), Value::Int(9), Value::Int(10_000)],
        ),
    ];
    let narrow_out = oracle::evaluate(&narrow, "n", &inputs);
    let wide_out = oracle::evaluate(&wide, "w", &inputs);
    assert_eq!(narrow_out.len(), 1);
    assert_eq!(wide_out.len(), 2);
    assert_containment_sound(&narrow, &wide, &inputs);
}
