//! Property tests for the overlay substrate: MST optimality witnesses,
//! tree-path consistency with graph search, and reattachment invariants.

use cosmos_overlay::{dijkstra, generate, minimum_spanning_tree, Graph, TopologyKind, Tree};
use cosmos_types::NodeId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_graph(seed: u64, n: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generate(TopologyKind::BarabasiAlbert { m: 2 }, n, &mut rng).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The MST satisfies the cut property on sampled tree edges: no
    /// non-tree edge crossing the cut induced by removing a tree edge is
    /// cheaper than that tree edge.
    #[test]
    fn mst_cut_property(seed in 0u64..500, n in 10usize..60) {
        let g = random_graph(seed, n);
        let tree = minimum_spanning_tree(&g, NodeId(0)).unwrap();
        for (p, c) in tree.edges() {
            let w = g.edge_weight(p, c).unwrap();
            // the subtree under `c` is one side of the cut
            let side: std::collections::BTreeSet<NodeId> =
                tree.subtree(c).into_iter().collect();
            for u in g.nodes() {
                for &(v, uw) in g.neighbors(u) {
                    if side.contains(&u) != side.contains(&v) {
                        prop_assert!(
                            uw >= w - 1e-12,
                            "edge {u}-{v} ({uw}) beats tree edge {p}-{c} ({w})"
                        );
                    }
                }
            }
        }
    }

    /// Tree paths visit each node once, start/end correctly, and every
    /// consecutive pair is a parent/child link.
    #[test]
    fn tree_paths_are_simple_and_valid(seed in 0u64..500, n in 5usize..80) {
        let g = random_graph(seed, n);
        let tree = minimum_spanning_tree(&g, NodeId(0)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        for _ in 0..10 {
            use rand::Rng;
            let a = NodeId(rng.gen_range(0..n as u32));
            let b = NodeId(rng.gen_range(0..n as u32));
            let path = tree.path(a, b);
            prop_assert_eq!(path.first(), Some(&a));
            prop_assert_eq!(path.last(), Some(&b));
            let unique: std::collections::BTreeSet<_> = path.iter().collect();
            prop_assert_eq!(unique.len(), path.len(), "path revisits a node");
            for w in path.windows(2) {
                let linked = tree.parent(w[0]) == Some(w[1]) || tree.parent(w[1]) == Some(w[0]);
                prop_assert!(linked, "non-adjacent hop {} -> {}", w[0], w[1]);
            }
        }
    }

    /// Dijkstra distances on the *tree* (as a graph) equal the tree-path
    /// weights — i.e. `Tree::path` really is the unique tree route.
    #[test]
    fn tree_path_weight_matches_dijkstra_on_tree(seed in 0u64..200, n in 5usize..50) {
        let g = random_graph(seed, n);
        let tree = minimum_spanning_tree(&g, NodeId(0)).unwrap();
        // rebuild the tree as a standalone graph
        let mut tg = Graph::new(n);
        for u in g.nodes() {
            let (x, y) = g.position(u);
            tg.set_position(u, x, y);
        }
        for (p, c) in tree.edges() {
            tg.add_edge(p, c, g.edge_weight(p, c).unwrap()).unwrap();
        }
        let sp = dijkstra(&tg, NodeId(0));
        for v in g.nodes() {
            let path = tree.path(NodeId(0), v);
            let w: f64 = path
                .windows(2)
                .map(|e| g.edge_weight(e[0], e[1]).unwrap())
                .sum();
            prop_assert!((w - sp.distance(v)).abs() < 1e-9);
        }
    }

    /// Reattaching a subtree preserves the node set, tree size and
    /// acyclicity (subtree enumeration from the root reaches everyone).
    #[test]
    fn reattach_preserves_tree_invariants(seed in 0u64..500, n in 6usize..40) {
        let g = random_graph(seed, n);
        let mut tree = minimum_spanning_tree(&g, NodeId(0)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 2);
        use rand::Rng;
        for _ in 0..8 {
            let u = NodeId(rng.gen_range(1..n as u32));
            let p = NodeId(rng.gen_range(0..n as u32));
            let _ = tree.reattach(u, p); // may legally fail (cycle)
            let reach = tree.subtree(tree.root());
            prop_assert_eq!(reach.len(), n, "tree lost nodes after reattach");
            prop_assert_eq!(tree.edges().count(), n - 1);
        }
    }
}

/// Deterministic check on the Figure-4-scale topology: 1000-node BA
/// graphs generate quickly, connect fully, and their MST reaches all.
#[test]
fn paper_scale_topology() {
    let g = random_graph(99, 1000);
    assert_eq!(g.node_count(), 1000);
    assert!(g.is_connected());
    let tree = minimum_spanning_tree(&g, NodeId(0)).unwrap();
    assert_eq!(tree.node_count(), 1000);
    assert_eq!(tree.edges().count(), 999);
    // power-law: maximum degree far above the mean of ~4
    let max_deg = g.nodes().map(|u| g.degree(u)).max().unwrap();
    assert!(max_deg > 30, "max degree {max_deg}");
}

/// `Tree::from_edges` accepts any permutation of the same edge list.
#[test]
fn edge_order_does_not_matter() {
    let edges = [
        (NodeId(0), NodeId(1)),
        (NodeId(1), NodeId(2)),
        (NodeId(0), NodeId(3)),
    ];
    let mut rev = edges;
    rev.reverse();
    let a = Tree::from_edges(4, NodeId(0), &edges).unwrap();
    let b = Tree::from_edges(4, NodeId(0), &rev).unwrap();
    for i in 0..4u32 {
        assert_eq!(a.parent(NodeId(i)), b.parent(NodeId(i)));
        assert_eq!(a.depth(NodeId(i)), b.depth(NodeId(i)));
    }
}
