//! Prim's minimum spanning tree, producing a dissemination [`Tree`].

use crate::graph::Graph;
use crate::tree::Tree;
use cosmos_types::{CosmosError, NodeId, Result};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Candidate {
    weight: f64,
    node: NodeId,
    parent: NodeId,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.weight == other.weight
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .weight
            .partial_cmp(&self.weight)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Build the minimum spanning tree of a connected graph, rooted at
/// `root` — "a minimum spanning tree is constructed as the dissemination
/// tree" (Section 5 of the paper).
pub fn minimum_spanning_tree(g: &Graph, root: NodeId) -> Result<Tree> {
    let n = g.node_count();
    if root.index() >= n {
        return Err(CosmosError::Overlay(format!("unknown root {root}")));
    }
    let mut in_tree = vec![false; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    in_tree[root.index()] = true;
    let mut joined = 1usize;
    for &(v, w) in g.neighbors(root) {
        heap.push(Candidate {
            weight: w,
            node: v,
            parent: root,
        });
    }
    while let Some(Candidate {
        node, parent: p, ..
    }) = heap.pop()
    {
        if in_tree[node.index()] {
            continue;
        }
        in_tree[node.index()] = true;
        parent[node.index()] = Some(p);
        joined += 1;
        for &(v, w) in g.neighbors(node) {
            if !in_tree[v.index()] {
                heap.push(Candidate {
                    weight: w,
                    node: v,
                    parent: node,
                });
            }
        }
    }
    if joined != n {
        return Err(CosmosError::Overlay(format!(
            "graph is disconnected: spanned {joined} of {n} nodes"
        )));
    }
    let edges: Vec<(NodeId, NodeId)> = parent
        .iter()
        .enumerate()
        .filter_map(|(i, p)| p.map(|p| (p, NodeId(i as u32))))
        .collect();
    Tree::from_edges(n, root, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_minimum_edges() {
        // triangle with one heavy edge: MST must avoid it
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 10.0).unwrap();
        let t = minimum_spanning_tree(&g, NodeId(0)).unwrap();
        assert_eq!(t.parent(NodeId(1)), Some(NodeId(0)));
        assert_eq!(t.parent(NodeId(2)), Some(NodeId(1)));
        assert_eq!(t.root(), NodeId(0));
    }

    #[test]
    fn total_weight_is_minimal_on_known_graph() {
        // classic 4-node example
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 4.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 6.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 3.0).unwrap();
        let t = minimum_spanning_tree(&g, NodeId(0)).unwrap();
        let total: f64 = t.edges().map(|(p, c)| g.edge_weight(p, c).unwrap()).sum();
        assert!((total - 6.0).abs() < 1e-12); // 1 + 2 + 3
    }

    #[test]
    fn rejects_disconnected_graph_and_bad_root() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let err = minimum_spanning_tree(&g, NodeId(0)).unwrap_err();
        assert_eq!(err.kind(), "overlay");
        assert!(minimum_spanning_tree(&g, NodeId(9)).is_err());
    }

    #[test]
    fn single_node_tree() {
        let g = Graph::new(1);
        let t = minimum_spanning_tree(&g, NodeId(0)).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.parent(NodeId(0)), None);
    }
}
