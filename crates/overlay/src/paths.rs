//! Shortest paths and reachability on overlay graphs.

use crate::graph::Graph;
use cosmos_types::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a single-source Dijkstra run.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<f64>,
    prev: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// Distance from the source to `v` (`f64::INFINITY` if unreachable).
    pub fn distance(&self, v: NodeId) -> f64 {
        self.dist[v.index()]
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The shortest path source → `v` as a node list (empty when
    /// unreachable; `[source]` when `v == source`).
    pub fn path_to(&self, v: NodeId) -> Vec<NodeId> {
        if self.dist[v.index()].is_infinite() {
            return Vec::new();
        }
        let mut out = vec![v];
        let mut cur = v;
        while let Some(p) = self.prev[cur.index()] {
            out.push(p);
            cur = p;
        }
        out.reverse();
        out
    }
}

/// Min-heap entry ordered by distance.
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; distances are never NaN.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Single-source shortest paths (Dijkstra) over the overlay graph.
pub fn dijkstra(g: &Graph, source: NodeId) -> ShortestPaths {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            let nd = d + w;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                prev[v.index()] = Some(u);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    ShortestPaths { source, dist, prev }
}

/// Nodes reachable from `source` (including it), in BFS order.
pub fn bfs_reachable(g: &Graph, source: NodeId) -> Vec<NodeId> {
    let n = g.node_count();
    if source.index() >= n {
        return Vec::new();
    }
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let mut out = Vec::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        out.push(u);
        for &(v, _) in g.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A weighted diamond: 0 −1→ 1 −1→ 3, 0 −5→ 2 −1→ 3.
    fn diamond() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 5.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        g
    }

    #[test]
    fn dijkstra_finds_cheapest_route() {
        let sp = dijkstra(&diamond(), NodeId(0));
        assert_eq!(sp.source(), NodeId(0));
        assert_eq!(sp.distance(NodeId(3)), 2.0);
        assert_eq!(sp.path_to(NodeId(3)), vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(sp.distance(NodeId(2)), 3.0); // via 1 and 3, not the direct 5.0 edge
        assert_eq!(
            sp.path_to(NodeId(2)),
            vec![NodeId(0), NodeId(1), NodeId(3), NodeId(2)]
        );
        assert_eq!(sp.path_to(NodeId(0)), vec![NodeId(0)]);
    }

    #[test]
    fn unreachable_nodes() {
        let mut g = diamond();
        // add an isolated node
        g = {
            let mut g2 = Graph::new(5);
            for u in g.nodes() {
                for &(v, w) in g.neighbors(u) {
                    if u < v {
                        g2.add_edge(u, v, w).unwrap();
                    }
                }
            }
            g2
        };
        let sp = dijkstra(&g, NodeId(0));
        assert!(sp.distance(NodeId(4)).is_infinite());
        assert!(sp.path_to(NodeId(4)).is_empty());
        assert_eq!(bfs_reachable(&g, NodeId(0)).len(), 4);
        assert_eq!(bfs_reachable(&g, NodeId(4)), vec![NodeId(4)]);
    }

    #[test]
    fn bfs_covers_component() {
        let g = diamond();
        let r = bfs_reachable(&g, NodeId(0));
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], NodeId(0));
    }
}
