//! Weighted undirected overlay graphs with planar node positions.

use cosmos_types::{CosmosError, NodeId, Result};
use std::collections::BTreeMap;

/// An undirected overlay graph.
///
/// Nodes are dense ids `0..n`. Each node has a position in the unit
/// square; link weights default to the Euclidean distance between the
/// endpoints, which is the BRITE convention for link delay.
///
/// Links carry up/down state: [`Graph::fail_link`] removes a link from
/// the adjacency lists (so neighbor iteration, shortest paths, and
/// spanning trees all exclude it automatically) while remembering its
/// weight, and [`Graph::heal_link`] restores it. Downed pairs are also
/// excluded from [`Graph::link_delay`], the single pricing function the
/// tree optimizer and the runtime byte accounting share.
#[derive(Debug, Clone)]
pub struct Graph {
    adj: Vec<Vec<(NodeId, f64)>>,
    pos: Vec<(f64, f64)>,
    edges: usize,
    /// Failed links by canonical `(min, max)` endpoint pair. The value
    /// is the weight the edge had when it failed (`None` when the pair
    /// had no underlying graph edge — a repair-created logical link).
    downed: BTreeMap<(NodeId, NodeId), Option<f64>>,
}

impl Graph {
    /// An edgeless graph of `n` nodes placed at the origin.
    pub fn new(n: usize) -> Graph {
        Graph {
            adj: vec![Vec::new(); n],
            pos: vec![(0.0, 0.0); n],
            edges: 0,
            downed: BTreeMap::new(),
        }
    }

    fn canon(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
        (u.min(v), u.max(v))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.adj.len() as u32).map(NodeId)
    }

    /// Set the planar position of a node.
    pub fn set_position(&mut self, u: NodeId, x: f64, y: f64) {
        self.pos[u.index()] = (x, y);
    }

    /// The planar position of a node.
    pub fn position(&self, u: NodeId) -> (f64, f64) {
        self.pos[u.index()]
    }

    /// Euclidean distance between two nodes' positions (the *potential*
    /// delay of an overlay link between them, whether or not one exists).
    pub fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        let (x1, y1) = self.pos[u.index()];
        let (x2, y2) = self.pos[v.index()];
        ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt()
    }

    /// Add an undirected edge with an explicit weight.
    ///
    /// Rejects self-loops and duplicate edges.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) -> Result<()> {
        if u == v {
            return Err(CosmosError::Overlay(format!("self loop at {u}")));
        }
        let (ui, vi) = (u.index(), v.index());
        if ui >= self.adj.len() || vi >= self.adj.len() {
            return Err(CosmosError::Overlay(format!(
                "edge {u}-{v} references unknown node (n={})",
                self.adj.len()
            )));
        }
        if self.adj[ui].iter().any(|(n, _)| *n == v) {
            return Err(CosmosError::Overlay(format!("duplicate edge {u}-{v}")));
        }
        self.adj[ui].push((v, w));
        self.adj[vi].push((u, w));
        self.edges += 1;
        Ok(())
    }

    /// Add an edge weighted by the endpoint distance.
    pub fn add_edge_by_distance(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        let w = self.distance(u, v).max(f64::EPSILON);
        self.add_edge(u, v, w)
    }

    /// Whether the edge `u - v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj
            .get(u.index())
            .is_some_and(|ns| ns.iter().any(|(n, _)| *n == v))
    }

    /// Weight of the edge `u - v`, if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.adj
            .get(u.index())?
            .iter()
            .find(|(n, _)| *n == v)
            .map(|(_, w)| *w)
    }

    /// Neighbors of `u` with edge weights.
    pub fn neighbors(&self, u: NodeId) -> &[(NodeId, f64)] {
        &self.adj[u.index()]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u.index()].len()
    }

    /// Degree histogram: `hist[d]` = number of nodes of degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let max = self.adj.iter().map(Vec::len).max().unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for ns in &self.adj {
            hist[ns.len()] += 1;
        }
        hist
    }

    /// Mark the link `u - v` as failed.
    ///
    /// A live graph edge is removed from the adjacency lists — so
    /// neighbor iteration, Dijkstra, Prim, and degree counts all exclude
    /// it with no further bookkeeping — and its weight is remembered for
    /// [`Graph::heal_link`]. A pair with no underlying edge (a
    /// repair-created logical link) is recorded as down too, so
    /// [`Graph::link_delay`] stops pricing it. Failing an already-downed
    /// link is an error.
    pub fn fail_link(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        if u == v {
            return Err(CosmosError::Overlay(format!(
                "cannot fail self loop at {u}"
            )));
        }
        if u.index() >= self.adj.len() || v.index() >= self.adj.len() {
            return Err(CosmosError::Overlay(format!(
                "link {u}-{v} references unknown node (n={})",
                self.adj.len()
            )));
        }
        let key = Self::canon(u, v);
        if self.downed.contains_key(&key) {
            return Err(CosmosError::Overlay(format!(
                "link {u}-{v} is already down"
            )));
        }
        let weight = self.edge_weight(u, v);
        if weight.is_some() {
            self.adj[u.index()].retain(|(n, _)| *n != v);
            self.adj[v.index()].retain(|(n, _)| *n != u);
            self.edges -= 1;
        }
        self.downed.insert(key, weight);
        Ok(())
    }

    /// Restore a link previously failed with [`Graph::fail_link`],
    /// re-adding the edge with its original weight (a no-op for downed
    /// pairs that never had a graph edge). Healing a link that is not
    /// down is an error.
    pub fn heal_link(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        match self.downed.remove(&Self::canon(u, v)) {
            None => Err(CosmosError::Overlay(format!("link {u}-{v} is not down"))),
            Some(None) => Ok(()),
            Some(Some(w)) => self.add_edge(u, v, w),
        }
    }

    /// Whether the link `u - v` is currently marked down.
    pub fn is_link_down(&self, u: NodeId, v: NodeId) -> bool {
        self.downed.contains_key(&Self::canon(u, v))
    }

    /// Currently downed links as canonical `(min, max)` pairs, in
    /// deterministic order.
    pub fn downed_links(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.downed.keys().copied()
    }

    /// The delay of the logical link `u - v` — the one number both cost
    /// estimation ([`TreeOptimizer::cost`](crate::TreeOptimizer)) and
    /// runtime byte accounting must read so measured and estimated
    /// weighted cost agree:
    ///
    /// - `Some(weight)` for a live graph edge;
    /// - `None` for a downed pair (the link is unusable at any price);
    /// - `Some(distance.max(ε))` otherwise — the potential delay of a
    ///   repair-created logical link with no physical edge.
    pub fn link_delay(&self, u: NodeId, v: NodeId) -> Option<f64> {
        if let Some(w) = self.edge_weight(u, v) {
            return Some(w);
        }
        if self.is_link_down(u, v) {
            return None;
        }
        Some(self.distance(u, v).max(f64::EPSILON))
    }

    /// Whether every node is reachable from node 0.
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        crate::paths::bfs_reachable(self, NodeId(0)).len() == self.adj.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query_edges() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.5).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2.5).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(2)), Some(2.5));
        assert_eq!(g.edge_weight(NodeId(0), NodeId(2)), None);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.nodes().count(), 3);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = Graph::new(2);
        assert!(g.add_edge(NodeId(0), NodeId(0), 1.0).is_err());
        assert!(g.add_edge(NodeId(0), NodeId(5), 1.0).is_err());
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        assert!(g.add_edge(NodeId(1), NodeId(0), 2.0).is_err());
    }

    #[test]
    fn distance_follows_positions() {
        let mut g = Graph::new(2);
        g.set_position(NodeId(0), 0.0, 0.0);
        g.set_position(NodeId(1), 3.0, 4.0);
        assert!((g.distance(NodeId(0), NodeId(1)) - 5.0).abs() < 1e-12);
        g.add_edge_by_distance(NodeId(0), NodeId(1)).unwrap();
        assert!((g.edge_weight(NodeId(0), NodeId(1)).unwrap() - 5.0).abs() < 1e-12);
        assert_eq!(g.position(NodeId(1)), (3.0, 4.0));
    }

    #[test]
    fn connectivity() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        assert!(!g.is_connected());
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        assert!(g.is_connected());
        assert!(Graph::new(0).is_connected());
        assert!(Graph::new(1).is_connected());
    }

    #[test]
    fn fail_and_heal_link_round_trip() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.5).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2.5).unwrap();
        g.fail_link(NodeId(1), NodeId(0)).unwrap();
        assert!(g.is_link_down(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), None);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId(1)), 1);
        assert!(!g.is_connected());
        assert_eq!(
            g.downed_links().collect::<Vec<_>>(),
            vec![(NodeId(0), NodeId(1))]
        );
        // double-fail and healing an up link are errors
        assert!(g.fail_link(NodeId(0), NodeId(1)).is_err());
        assert!(g.heal_link(NodeId(1), NodeId(2)).is_err());
        g.heal_link(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(1.5));
        assert_eq!(g.edge_count(), 2);
        assert!(!g.is_link_down(NodeId(0), NodeId(1)));
        assert!(g.is_connected());
    }

    #[test]
    fn fail_link_on_logical_pair_prices_as_unusable() {
        let mut g = Graph::new(3);
        g.set_position(NodeId(0), 0.0, 0.0);
        g.set_position(NodeId(2), 0.6, 0.8);
        // no 0-2 edge: link_delay falls back to the distance
        assert!((g.link_delay(NodeId(0), NodeId(2)).unwrap() - 1.0).abs() < 1e-12);
        g.fail_link(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(g.link_delay(NodeId(0), NodeId(2)), None);
        assert_eq!(g.edge_count(), 0);
        g.heal_link(NodeId(0), NodeId(2)).unwrap();
        // healing a logical pair restores the distance fallback, no edge
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
        assert!((g.link_delay(NodeId(0), NodeId(2)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn link_delay_prefers_edge_weight_over_distance() {
        let mut g = Graph::new(2);
        g.set_position(NodeId(0), 0.0, 0.0);
        g.set_position(NodeId(1), 0.3, 0.4);
        g.add_edge(NodeId(0), NodeId(1), 5.0).unwrap();
        // the explicit weight wins even though the distance is 0.5
        assert_eq!(g.link_delay(NodeId(0), NodeId(1)), Some(5.0));
        assert_eq!(g.link_delay(NodeId(1), NodeId(0)), Some(5.0));
    }

    #[test]
    fn fail_link_rejects_bad_pairs() {
        let mut g = Graph::new(2);
        assert!(g.fail_link(NodeId(0), NodeId(0)).is_err());
        assert!(g.fail_link(NodeId(0), NodeId(7)).is_err());
    }

    #[test]
    fn degree_histogram_counts() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(3), 1.0).unwrap();
        let h = g.degree_histogram();
        // node 0 has degree 3, nodes 1..3 have degree 1
        assert_eq!(h, vec![0, 3, 0, 1]);
    }
}
