//! Adaptive reorganization of dissemination trees.
//!
//! Section 3.2: "The overlay network optimizer periodically monitors the
//! status of the network and performs the reorganization of the overlay
//! network if necessary. … By using a configurable cost function defined
//! on these parameters, it estimates whether a local reorganization of
//! the overlay trees is beneficial [18, 19]."
//!
//! We implement the cost function as a weighted sum of
//!
//! * **delay cost** — each consumer node `u` with demand `d(u)` pays
//!   `d(u) ×` (tree-path delay from the root to `u`), and
//! * **load cost** — each node pays a quadratic penalty for tree degree
//!   beyond its capacity (`max_degree`), modelling server overload.
//!
//! and the local reorganization as hill-climbing **subtree
//! reattachment**: a node (with its whole subtree) may move from its
//! parent to its grandparent (promotion), to a sibling (demotion), or to
//! any node on its root path — the same move repertoire as the
//! coherency-preserving tree transformations of ref \[18\]. A move is
//! applied only when it strictly lowers the global cost; links are
//! priced by [`Graph::link_delay`] — a live edge by its weight, any
//! other overlay pair by the endpoint distance (overlay links are
//! logical, so any pair may become a tree edge), and a **downed** pair
//! at infinite cost, so hill-climbing never adopts a failed link and
//! actively moves away from one.

use crate::graph::Graph;
use crate::tree::Tree;
use cosmos_types::NodeId;

/// Tunable parameters of the optimizer's cost function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Tree degree a node sustains without penalty.
    pub max_degree: usize,
    /// Weight of the delay term.
    pub w_delay: f64,
    /// Weight of the load (degree-overflow) term.
    pub w_load: f64,
    /// Hill-climbing sweeps over all nodes.
    pub rounds: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            max_degree: 8,
            w_delay: 1.0,
            w_load: 0.5,
            rounds: 4,
        }
    }
}

/// Outcome of one optimization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizeReport {
    /// Cost before any move.
    pub cost_before: f64,
    /// Cost after the final move.
    pub cost_after: f64,
    /// Number of accepted reattachments.
    pub moves: usize,
}

impl OptimizeReport {
    /// Fractional improvement `1 − after/before` (0 when nothing moved).
    pub fn improvement(&self) -> f64 {
        if self.cost_before <= 0.0 {
            0.0
        } else {
            1.0 - self.cost_after / self.cost_before
        }
    }
}

/// The adaptive dissemination-tree optimizer.
#[derive(Debug, Clone, Default)]
pub struct TreeOptimizer {
    cfg: OptimizerConfig,
}

impl TreeOptimizer {
    /// An optimizer with the given configuration.
    pub fn new(cfg: OptimizerConfig) -> TreeOptimizer {
        TreeOptimizer { cfg }
    }

    /// Total cost of a tree under per-node consumer demand.
    ///
    /// `demand[u]` is the rate at which node `u` consumes data from the
    /// root (0 for pure forwarders). A tree using a downed link costs
    /// `f64::INFINITY` — it cannot carry traffic at any price.
    pub fn cost(&self, g: &Graph, tree: &Tree, demand: &[f64]) -> f64 {
        let n = tree.node_count();
        // Root-path delay per node, computed by preorder accumulation.
        let mut delay = vec![0.0f64; n];
        let mut stack = vec![tree.root()];
        while let Some(u) = stack.pop() {
            for &c in tree.children(u) {
                let Some(d) = g.link_delay(u, c) else {
                    return f64::INFINITY;
                };
                delay[c.index()] = delay[u.index()] + d;
                stack.push(c);
            }
        }
        let delay_cost: f64 = (0..n).map(|i| demand[i] * delay[i]).sum();
        let load_cost: f64 = (0..n)
            .map(|i| {
                let over = tree
                    .tree_degree(NodeId(i as u32))
                    .saturating_sub(self.cfg.max_degree);
                (over * over) as f64
            })
            .sum();
        self.cfg.w_delay * delay_cost + self.cfg.w_load * load_cost
    }

    /// Candidate new parents for `u`: grandparent, siblings, and all
    /// ancestors up to the root.
    fn candidates(tree: &Tree, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let Some(parent) = tree.parent(u) else {
            return out;
        };
        if let Some(gp) = tree.parent(parent) {
            out.push(gp);
            // remaining ancestors
            let mut a = gp;
            while let Some(next) = tree.parent(a) {
                out.push(next);
                a = next;
            }
        }
        for &s in tree.children(parent) {
            if s != u {
                out.push(s);
            }
        }
        out
    }

    /// Run hill-climbing reorganization, mutating `tree` in place.
    pub fn optimize(&self, g: &Graph, tree: &mut Tree, demand: &[f64]) -> OptimizeReport {
        assert_eq!(demand.len(), tree.node_count(), "demand per node required");
        let cost_before = self.cost(g, tree, demand);
        let mut current = cost_before;
        let mut moves = 0usize;
        for _ in 0..self.cfg.rounds {
            let mut improved = false;
            for i in 0..tree.node_count() {
                let u = NodeId(i as u32);
                if tree.parent(u).is_none() {
                    continue;
                }
                let old_parent = tree.parent(u).unwrap();
                let mut best: Option<(NodeId, f64)> = None;
                for cand in Self::candidates(tree, u) {
                    if tree.reattach(u, cand).is_err() {
                        continue;
                    }
                    let c = self.cost(g, tree, demand);
                    if c + 1e-12 < best.map_or(current, |(_, bc)| bc) {
                        best = Some((cand, c));
                    }
                    tree.reattach(u, old_parent).expect("revert move");
                }
                if let Some((cand, c)) = best {
                    tree.reattach(u, cand).expect("apply best move");
                    current = c;
                    moves += 1;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        OptimizeReport {
            cost_before,
            cost_after: current,
            moves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::minimum_spanning_tree;
    use crate::topology::{generate, TopologyKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A deliberately bad tree: a long chain although the root sits next
    /// to every consumer. The optimizer should flatten it.
    #[test]
    fn flattens_a_degenerate_chain() {
        let mut g = Graph::new(5);
        // root at the center, consumers on a circle around it: hopping
        // consumer-to-consumer is strictly worse than direct links
        g.set_position(NodeId(0), 0.5, 0.5);
        g.set_position(NodeId(1), 0.4, 0.5);
        g.set_position(NodeId(2), 0.6, 0.5);
        g.set_position(NodeId(3), 0.5, 0.4);
        g.set_position(NodeId(4), 0.5, 0.6);
        let mut tree = Tree::from_edges(
            5,
            NodeId(0),
            &[
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
                (NodeId(3), NodeId(4)),
            ],
        )
        .unwrap();
        let demand = vec![0.0, 1.0, 1.0, 1.0, 1.0];
        let opt = TreeOptimizer::new(OptimizerConfig {
            max_degree: 8,
            w_delay: 1.0,
            w_load: 0.0,
            rounds: 8,
        });
        let report = opt.optimize(&g, &mut tree, &demand);
        assert!(report.moves > 0);
        assert!(report.cost_after < report.cost_before);
        assert!(report.improvement() > 0.0);
        // depth should have shrunk
        let max_depth = (0..5).map(|i| tree.depth(NodeId(i))).max().unwrap();
        assert!(max_depth <= 2, "tree still deep: {max_depth}");
    }

    #[test]
    fn load_penalty_limits_fanout() {
        // star tree exceeding capacity: with a strong load weight the
        // optimizer must push children down to siblings.
        let mut g = Graph::new(6);
        for i in 0..6 {
            g.set_position(NodeId(i), 0.1 * i as f64, 0.0);
        }
        let mut tree = Tree::from_edges(
            6,
            NodeId(0),
            &[
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(0), NodeId(3)),
                (NodeId(0), NodeId(4)),
                (NodeId(0), NodeId(5)),
            ],
        )
        .unwrap();
        let demand = vec![0.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let opt = TreeOptimizer::new(OptimizerConfig {
            max_degree: 2,
            w_delay: 0.01,
            w_load: 10.0,
            rounds: 10,
        });
        let before_deg = tree.tree_degree(NodeId(0));
        let report = opt.optimize(&g, &mut tree, &demand);
        assert!(tree.tree_degree(NodeId(0)) < before_deg);
        assert!(report.cost_after < report.cost_before);
    }

    #[test]
    fn optimum_is_a_fixpoint() {
        // A tree the optimizer cannot improve stays untouched.
        let mut g = Graph::new(3);
        g.set_position(NodeId(0), 0.0, 0.0);
        g.set_position(NodeId(1), 1.0, 0.0);
        g.set_position(NodeId(2), 2.0, 0.0);
        let mut tree = Tree::from_edges(
            3,
            NodeId(0),
            &[(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))],
        )
        .unwrap();
        let demand = vec![0.0, 1.0, 1.0];
        let opt = TreeOptimizer::new(OptimizerConfig::default());
        let report = opt.optimize(&g, &mut tree, &demand);
        assert_eq!(report.moves, 0);
        assert_eq!(report.cost_before, report.cost_after);
        assert_eq!(report.improvement(), 0.0);
    }

    #[test]
    fn improves_mst_under_skewed_demand() {
        // On a random power-law overlay, MST minimizes total edge weight,
        // not demand-weighted root-path delay; the optimizer should win.
        let mut rng = StdRng::seed_from_u64(11);
        let g = generate(TopologyKind::BarabasiAlbert { m: 2 }, 120, &mut rng).unwrap();
        let mut tree = minimum_spanning_tree(&g, NodeId(0)).unwrap();
        let demand: Vec<f64> = (0..120)
            .map(|i| if i % 7 == 0 { 5.0 } else { 0.1 })
            .collect();
        let opt = TreeOptimizer::new(OptimizerConfig {
            max_degree: 6,
            w_delay: 1.0,
            w_load: 0.2,
            rounds: 3,
        });
        let report = opt.optimize(&g, &mut tree, &demand);
        assert!(
            report.cost_after <= report.cost_before,
            "optimizer must never worsen the tree"
        );
        assert!(report.improvement() > 0.05, "expected a real improvement");
    }

    #[test]
    fn routes_away_from_a_downed_link_and_never_readopts_it() {
        // Chain 0-1-2-3; failing 1-2 makes the chain tree infinitely
        // expensive, so optimization must reattach node 2's subtree over
        // a logical link — and must never move anything back onto 1-2.
        let mut g = Graph::new(4);
        for i in 0..4 {
            g.set_position(NodeId(i), 0.25 * i as f64, 0.0);
            if i > 0 {
                g.add_edge_by_distance(NodeId(i - 1), NodeId(i)).unwrap();
            }
        }
        let mut tree = Tree::from_edges(
            4,
            NodeId(0),
            &[
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
            ],
        )
        .unwrap();
        let demand = vec![0.0, 1.0, 1.0, 1.0];
        let opt = TreeOptimizer::default();
        g.fail_link(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(opt.cost(&g, &tree, &demand), f64::INFINITY);
        let report = opt.optimize(&g, &mut tree, &demand);
        assert!(report.moves > 0);
        assert!(report.cost_after.is_finite());
        for (p, c) in tree.edges() {
            assert!(
                !g.is_link_down(p, c),
                "downed link {p}-{c} used as tree edge"
            );
        }
    }

    #[test]
    #[should_panic(expected = "demand per node required")]
    fn demand_length_is_checked() {
        let g = Graph::new(2);
        let mut tree = Tree::from_edges(2, NodeId(0), &[(NodeId(0), NodeId(1))]).unwrap();
        TreeOptimizer::default().optimize(&g, &mut tree, &[1.0]);
    }
}
