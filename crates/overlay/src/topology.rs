//! Topology generators.
//!
//! The paper uses BRITE to generate "a power law network topology with
//! 1000 nodes" (Section 5). BRITE's power-law mode is Barabási–Albert
//! preferential attachment; we implement it directly, along with the
//! Waxman model (BRITE's other router-level mode) and small
//! deterministic topologies used by tests and the Figure 3 experiment.
//!
//! Nodes are placed uniformly at random in the unit square and every
//! link is weighted by the Euclidean distance between its endpoints,
//! which serves as the link delay.

use crate::graph::Graph;
use cosmos_types::{CosmosError, NodeId, Result};
use rand::Rng;

/// The topology model to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyKind {
    /// Barabási–Albert preferential attachment; each arriving node links
    /// to `m` existing nodes chosen with probability proportional to
    /// their degree. Produces a power-law degree distribution.
    BarabasiAlbert {
        /// Links added per arriving node (`m ≥ 1`).
        m: usize,
    },
    /// Waxman random graph: nodes `u, v` are linked with probability
    /// `alpha * exp(-d(u,v) / (beta * L))` where `L` is the diameter of
    /// the placement area. Components are afterwards stitched together
    /// with shortest available links so the result is connected.
    Waxman {
        /// Edge-probability scale (0, 1].
        alpha: f64,
        /// Distance decay (0, 1].
        beta: f64,
    },
    /// A `w × h` grid (n must equal `w * h`).
    Grid {
        /// Grid width.
        width: usize,
    },
    /// A simple path 0 − 1 − … − (n−1).
    Line,
    /// A star centered at node 0.
    Star,
}

/// Generate a connected topology of `n` nodes.
pub fn generate<R: Rng>(kind: TopologyKind, n: usize, rng: &mut R) -> Result<Graph> {
    if n == 0 {
        return Err(CosmosError::Overlay(
            "cannot generate an empty topology".into(),
        ));
    }
    let mut g = Graph::new(n);
    for i in 0..n {
        g.set_position(NodeId(i as u32), rng.gen::<f64>(), rng.gen::<f64>());
    }
    match kind {
        TopologyKind::BarabasiAlbert { m } => barabasi_albert(&mut g, m.max(1), rng)?,
        TopologyKind::Waxman { alpha, beta } => waxman(&mut g, alpha, beta, rng)?,
        TopologyKind::Grid { width } => grid(&mut g, width)?,
        TopologyKind::Line => line(&mut g)?,
        TopologyKind::Star => star(&mut g)?,
    }
    debug_assert!(g.is_connected());
    Ok(g)
}

fn barabasi_albert<R: Rng>(g: &mut Graph, m: usize, rng: &mut R) -> Result<()> {
    let n = g.node_count();
    let seed = (m + 1).min(n);
    // Seed clique so early attachments have targets.
    for i in 0..seed {
        for j in (i + 1)..seed {
            g.add_edge_by_distance(NodeId(i as u32), NodeId(j as u32))?;
        }
    }
    // Repeated-endpoint list: preferential attachment by sampling it.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * m * n);
    for i in 0..seed {
        let u = NodeId(i as u32);
        for _ in 0..g.degree(u) {
            endpoints.push(u);
        }
    }
    for i in seed..n {
        let u = NodeId(i as u32);
        let mut targets: Vec<NodeId> = Vec::with_capacity(m);
        let mut guard = 0;
        while targets.len() < m.min(i) && guard < 50 * m {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != u && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            g.add_edge_by_distance(u, t)?;
            endpoints.push(u);
            endpoints.push(t);
        }
    }
    Ok(())
}

fn waxman<R: Rng>(g: &mut Graph, alpha: f64, beta: f64, rng: &mut R) -> Result<()> {
    let n = g.node_count();
    let l = 2f64.sqrt(); // diameter of the unit square
    for i in 0..n {
        for j in (i + 1)..n {
            let (u, v) = (NodeId(i as u32), NodeId(j as u32));
            let d = g.distance(u, v);
            let p = alpha * (-d / (beta * l)).exp();
            if rng.gen::<f64>() < p {
                g.add_edge_by_distance(u, v)?;
            }
        }
    }
    stitch_components(g)?;
    Ok(())
}

/// Connect a possibly fragmented graph by linking each later component
/// to the first one with the shortest inter-component link.
fn stitch_components(g: &mut Graph) -> Result<()> {
    loop {
        let reached = crate::paths::bfs_reachable(g, NodeId(0));
        if reached.len() == g.node_count() {
            return Ok(());
        }
        let in_comp: Vec<bool> = {
            let mut v = vec![false; g.node_count()];
            for u in &reached {
                v[u.index()] = true;
            }
            v
        };
        let mut best: Option<(NodeId, NodeId, f64)> = None;
        for u in g.nodes() {
            if !in_comp[u.index()] {
                continue;
            }
            for v in g.nodes() {
                if in_comp[v.index()] {
                    continue;
                }
                let d = g.distance(u, v).max(f64::EPSILON);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((u, v, d));
                }
            }
        }
        let (u, v, _) = best.expect("disconnected graph has a crossing pair");
        g.add_edge_by_distance(u, v)?;
    }
}

fn grid(g: &mut Graph, width: usize) -> Result<()> {
    let n = g.node_count();
    if width == 0 || !n.is_multiple_of(width) {
        return Err(CosmosError::Overlay(format!(
            "grid width {width} does not divide node count {n}"
        )));
    }
    let height = n / width;
    for r in 0..height {
        for c in 0..width {
            let u = NodeId((r * width + c) as u32);
            g.set_position(u, c as f64 / width as f64, r as f64 / height as f64);
        }
    }
    for r in 0..height {
        for c in 0..width {
            let u = NodeId((r * width + c) as u32);
            if c + 1 < width {
                g.add_edge_by_distance(u, NodeId((r * width + c + 1) as u32))?;
            }
            if r + 1 < height {
                g.add_edge_by_distance(u, NodeId(((r + 1) * width + c) as u32))?;
            }
        }
    }
    Ok(())
}

fn line(g: &mut Graph) -> Result<()> {
    let n = g.node_count();
    for i in 0..n {
        g.set_position(NodeId(i as u32), i as f64 / n.max(1) as f64, 0.5);
    }
    for i in 1..n {
        g.add_edge_by_distance(NodeId((i - 1) as u32), NodeId(i as u32))?;
    }
    Ok(())
}

fn star(g: &mut Graph) -> Result<()> {
    let n = g.node_count();
    g.set_position(NodeId(0), 0.5, 0.5);
    for i in 1..n {
        let angle = 2.0 * std::f64::consts::PI * (i as f64) / ((n - 1) as f64);
        g.set_position(
            NodeId(i as u32),
            0.5 + 0.4 * angle.cos(),
            0.5 + 0.4 * angle.sin(),
        );
        g.add_edge_by_distance(NodeId(0), NodeId(i as u32))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ba_topology_is_connected_with_heavy_tail() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = generate(TopologyKind::BarabasiAlbert { m: 2 }, 500, &mut rng).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.node_count(), 500);
        // edges ≈ m * n
        assert!(
            g.edge_count() >= 900 && g.edge_count() <= 1100,
            "{}",
            g.edge_count()
        );
        // heavy tail: some node should have degree far above the mean (~4)
        let max_deg = g.nodes().map(|u| g.degree(u)).max().unwrap();
        assert!(
            max_deg >= 20,
            "max degree {max_deg} too small for power law"
        );
        // most nodes stay near the minimum degree
        let low = g.nodes().filter(|&u| g.degree(u) <= 4).count();
        assert!(low > 250, "only {low} low-degree nodes");
    }

    #[test]
    fn ba_is_deterministic_under_a_seed() {
        let g1 = generate(
            TopologyKind::BarabasiAlbert { m: 2 },
            100,
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        let g2 = generate(
            TopologyKind::BarabasiAlbert { m: 2 },
            100,
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        assert_eq!(g1.edge_count(), g2.edge_count());
        for u in g1.nodes() {
            assert_eq!(g1.degree(u), g2.degree(u));
        }
    }

    #[test]
    fn waxman_is_connected() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generate(
            TopologyKind::Waxman {
                alpha: 0.4,
                beta: 0.2,
            },
            120,
            &mut rng,
        )
        .unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn grid_line_star_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let grid = generate(TopologyKind::Grid { width: 4 }, 12, &mut rng).unwrap();
        assert!(grid.is_connected());
        // 3 horizontal edges × 3 rows + 4 vertical edges × 2 row gaps
        assert_eq!(grid.edge_count(), 9 + 8);
        let line = generate(TopologyKind::Line, 5, &mut rng).unwrap();
        assert_eq!(line.edge_count(), 4);
        assert_eq!(line.degree(NodeId(0)), 1);
        assert_eq!(line.degree(NodeId(2)), 2);
        let star = generate(TopologyKind::Star, 6, &mut rng).unwrap();
        assert_eq!(star.degree(NodeId(0)), 5);
        assert!(star.nodes().skip(1).all(|u| star.degree(u) == 1));
    }

    #[test]
    fn grid_rejects_bad_width() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(generate(TopologyKind::Grid { width: 5 }, 12, &mut rng).is_err());
        assert!(generate(TopologyKind::Grid { width: 0 }, 12, &mut rng).is_err());
    }

    #[test]
    fn empty_topology_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(generate(TopologyKind::Line, 0, &mut rng).is_err());
    }

    #[test]
    fn single_node_topologies() {
        let mut rng = StdRng::seed_from_u64(3);
        for kind in [
            TopologyKind::BarabasiAlbert { m: 2 },
            TopologyKind::Line,
            TopologyKind::Star,
        ] {
            let g = generate(kind, 1, &mut rng).unwrap();
            assert_eq!(g.node_count(), 1);
            assert_eq!(g.edge_count(), 0);
        }
    }
}
