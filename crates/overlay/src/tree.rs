//! Rooted dissemination trees.
//!
//! COSMOS organizes CBN nodes "into multiple overlay dissemination trees"
//! (Section 3.2). A [`Tree`] is one such tree: it answers the routing
//! questions the data layer needs — the unique tree path between two
//! nodes, and the union of links a multicast from one node to a set of
//! receivers traverses (which is exactly the set of links a shared result
//! stream occupies).

use cosmos_types::{CosmosError, FxHashSet, NodeId, Result};

/// A rooted spanning tree over nodes `0..n`.
#[derive(Debug, Clone)]
pub struct Tree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<u32>,
}

impl Tree {
    /// Build a tree from `(parent, child)` edges. Every node except the
    /// root must appear exactly once as a child, and the edges must form
    /// a single connected tree.
    pub fn from_edges(n: usize, root: NodeId, edges: &[(NodeId, NodeId)]) -> Result<Tree> {
        if root.index() >= n {
            return Err(CosmosError::Overlay(format!("unknown root {root}")));
        }
        if edges.len() != n.saturating_sub(1) {
            return Err(CosmosError::Overlay(format!(
                "a tree over {n} nodes needs {} edges, got {}",
                n.saturating_sub(1),
                edges.len()
            )));
        }
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(p, c) in edges {
            if p.index() >= n || c.index() >= n {
                return Err(CosmosError::Overlay(format!("edge {p}-{c} out of range")));
            }
            if c == root {
                return Err(CosmosError::Overlay(format!("root {root} has a parent")));
            }
            if parent[c.index()].is_some() {
                return Err(CosmosError::Overlay(format!("node {c} has two parents")));
            }
            parent[c.index()] = Some(p);
            children[p.index()].push(c);
        }
        // Depths via BFS from the root; also validates connectivity and
        // acyclicity (every node reached exactly once).
        let mut depth = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        depth[root.index()] = 0;
        queue.push_back(root);
        let mut seen = 1usize;
        while let Some(u) = queue.pop_front() {
            for &c in &children[u.index()] {
                if depth[c.index()] != u32::MAX {
                    return Err(CosmosError::Overlay(format!("cycle through {c}")));
                }
                depth[c.index()] = depth[u.index()] + 1;
                seen += 1;
                queue.push_back(c);
            }
        }
        if seen != n {
            return Err(CosmosError::Overlay(
                "edges do not connect all nodes to the root".into(),
            ));
        }
        Ok(Tree {
            root,
            parent,
            children,
            depth,
        })
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, u: NodeId) -> Option<NodeId> {
        self.parent[u.index()]
    }

    /// Children of a node.
    pub fn children(&self, u: NodeId) -> &[NodeId] {
        &self.children[u.index()]
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, u: NodeId) -> u32 {
        self.depth[u.index()]
    }

    /// Degree of a node inside the tree (children + parent link).
    pub fn tree_degree(&self, u: NodeId) -> usize {
        self.children[u.index()].len() + usize::from(self.parent[u.index()].is_some())
    }

    /// The full parent table, indexed by node (`None` for the root).
    /// Introspection for whole-network snapshots — see `cosmos-verify`,
    /// which re-validates well-formedness from this raw table rather
    /// than trusting the invariants [`Tree::from_edges`] enforced.
    pub fn parent_table(&self) -> &[Option<NodeId>] {
        &self.parent
    }

    /// Iterate over `(parent, child)` edges.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.parent
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (p, NodeId(i as u32))))
    }

    /// The unique tree path from `u` to `v`, inclusive of both endpoints.
    pub fn path(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        // Walk both endpoints up to their lowest common ancestor.
        let (mut a, mut b) = (u, v);
        let mut left = vec![a];
        let mut right = vec![b];
        while self.depth[a.index()] > self.depth[b.index()] {
            a = self.parent[a.index()].expect("non-root has parent");
            left.push(a);
        }
        while self.depth[b.index()] > self.depth[a.index()] {
            b = self.parent[b.index()].expect("non-root has parent");
            right.push(b);
        }
        while a != b {
            a = self.parent[a.index()].expect("non-root has parent");
            b = self.parent[b.index()].expect("non-root has parent");
            left.push(a);
            right.push(b);
        }
        // `left` ends at the LCA; `right` also ends at the LCA.
        right.pop();
        right.reverse();
        left.extend(right);
        left
    }

    /// The links of [`Tree::path`] as canonical `(min, max)` pairs.
    pub fn path_links(&self, u: NodeId, v: NodeId) -> Vec<(NodeId, NodeId)> {
        let p = self.path(u, v);
        p.windows(2)
            .map(|w| (w[0].min(w[1]), w[0].max(w[1])))
            .collect()
    }

    /// Number of links on the path `u → v`.
    pub fn path_len(&self, u: NodeId, v: NodeId) -> usize {
        self.path(u, v).len().saturating_sub(1)
    }

    /// The union of links used when `from` multicasts to `targets`
    /// through the tree — the links a *shared* stream occupies.
    pub fn multicast_links(&self, from: NodeId, targets: &[NodeId]) -> FxHashSet<(NodeId, NodeId)> {
        let mut links = FxHashSet::default();
        for &t in targets {
            for l in self.path_links(from, t) {
                links.insert(l);
            }
        }
        links
    }

    /// Nodes of the subtree rooted at `u` (preorder, including `u`).
    pub fn subtree(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![u];
        while let Some(x) = stack.pop() {
            out.push(x);
            stack.extend(self.children[x.index()].iter().copied());
        }
        out
    }

    /// Detach the subtree rooted at `u` and reattach it under
    /// `new_parent`. Fails if `u` is the root or `new_parent` lies inside
    /// `u`'s subtree (which would create a cycle).
    pub fn reattach(&mut self, u: NodeId, new_parent: NodeId) -> Result<()> {
        let Some(old_parent) = self.parent[u.index()] else {
            return Err(CosmosError::Overlay(format!("cannot move the root {u}")));
        };
        if new_parent == old_parent {
            return Ok(());
        }
        if self.subtree(u).contains(&new_parent) {
            return Err(CosmosError::Overlay(format!(
                "reattaching {u} under its own descendant {new_parent}"
            )));
        }
        self.children[old_parent.index()].retain(|&c| c != u);
        self.children[new_parent.index()].push(u);
        self.parent[u.index()] = Some(new_parent);
        // Recompute depths of the moved subtree.
        let base = self.depth[new_parent.index()] + 1;
        let mut stack = vec![(u, base)];
        while let Some((x, d)) = stack.pop() {
            self.depth[x.index()] = d;
            for &c in &self.children[x.index()] {
                stack.push((c, d + 1));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    ///        0
    ///       / \
    ///      1   2
    ///     / \   \
    ///    3   4   5
    fn sample() -> Tree {
        Tree::from_edges(
            6,
            NodeId(0),
            &[
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(1), NodeId(3)),
                (NodeId(1), NodeId(4)),
                (NodeId(2), NodeId(5)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn structure_queries() {
        let t = sample();
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.parent(NodeId(4)), Some(NodeId(1)));
        assert_eq!(t.parent(NodeId(0)), None);
        assert_eq!(t.children(NodeId(1)), &[NodeId(3), NodeId(4)]);
        assert_eq!(t.depth(NodeId(5)), 2);
        assert_eq!(t.tree_degree(NodeId(1)), 3);
        assert_eq!(t.tree_degree(NodeId(0)), 2);
        assert_eq!(t.edges().count(), 5);
    }

    #[test]
    fn paths_cross_the_lca() {
        let t = sample();
        assert_eq!(
            t.path(NodeId(3), NodeId(5)),
            vec![NodeId(3), NodeId(1), NodeId(0), NodeId(2), NodeId(5)]
        );
        assert_eq!(
            t.path(NodeId(3), NodeId(4)),
            vec![NodeId(3), NodeId(1), NodeId(4)]
        );
        assert_eq!(t.path(NodeId(1), NodeId(3)), vec![NodeId(1), NodeId(3)]);
        assert_eq!(t.path(NodeId(2), NodeId(2)), vec![NodeId(2)]);
        assert_eq!(t.path_len(NodeId(3), NodeId(5)), 4);
        assert_eq!(t.path_len(NodeId(2), NodeId(2)), 0);
    }

    #[test]
    fn path_links_are_canonical() {
        let t = sample();
        let links = t.path_links(NodeId(3), NodeId(4));
        assert_eq!(links, vec![(NodeId(1), NodeId(3)), (NodeId(1), NodeId(4))]);
    }

    #[test]
    fn multicast_links_share_common_prefix() {
        let t = sample();
        // from node 2 to {3, 4}: both paths share links (0,2) and (0,1)
        let links = t.multicast_links(NodeId(2), &[NodeId(3), NodeId(4)]);
        assert_eq!(links.len(), 4); // (0,2), (0,1), (1,3), (1,4)
                                    // separately they'd use 3 + 3 = 6 link crossings
        assert_eq!(
            t.path_len(NodeId(2), NodeId(3)) + t.path_len(NodeId(2), NodeId(4)),
            6
        );
    }

    #[test]
    fn subtree_enumeration() {
        let t = sample();
        let mut s = t.subtree(NodeId(1));
        s.sort_unstable();
        assert_eq!(s, vec![NodeId(1), NodeId(3), NodeId(4)]);
        assert_eq!(t.subtree(NodeId(5)), vec![NodeId(5)]);
    }

    #[test]
    fn reattach_moves_subtrees() {
        let mut t = sample();
        t.reattach(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(t.parent(NodeId(1)), Some(NodeId(2)));
        assert_eq!(t.depth(NodeId(3)), 3);
        assert!(t.children(NodeId(0)).iter().all(|&c| c != NodeId(1)));
        // no-op reattach to the same parent
        t.reattach(NodeId(5), NodeId(2)).unwrap();
        // cannot create a cycle
        assert!(t.reattach(NodeId(2), NodeId(3)).is_err());
        // cannot move the root
        assert!(t.reattach(NodeId(0), NodeId(1)).is_err());
    }

    #[test]
    fn from_edges_validation() {
        // wrong edge count
        assert!(Tree::from_edges(3, NodeId(0), &[(NodeId(0), NodeId(1))]).is_err());
        // two parents
        assert!(Tree::from_edges(
            3,
            NodeId(0),
            &[(NodeId(0), NodeId(2)), (NodeId(1), NodeId(2))]
        )
        .is_err());
        // root as child
        assert!(Tree::from_edges(2, NodeId(0), &[(NodeId(1), NodeId(0))]).is_err());
        // disconnected (self-referential pair)
        assert!(Tree::from_edges(
            4,
            NodeId(0),
            &[
                (NodeId(0), NodeId(1)),
                (NodeId(2), NodeId(3)),
                (NodeId(3), NodeId(2))
            ]
        )
        .is_err());
        // unknown root
        assert!(Tree::from_edges(2, NodeId(9), &[(NodeId(0), NodeId(1))]).is_err());
    }
}
