//! Parser robustness: no input, however malformed, may panic the
//! lexer/parser; errors must be reported as `CosmosError::Parse`.

use cosmos_cql::{parse_query, tokenize};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The lexer never panics on arbitrary input.
    #[test]
    fn tokenize_never_panics(s in ".{0,200}") {
        let _ = tokenize(&s);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parse_never_panics(s in ".{0,200}") {
        let _ = parse_query(&s);
    }

    /// The parser never panics on *almost*-valid input: a valid query
    /// with random mutations applied.
    #[test]
    fn parse_never_panics_on_mutations(
        cut_start in 0usize..80,
        cut_len in 0usize..20,
        insert in "[ a-zA-Z0-9_.,<>=!*()\\[\\]']{0,8}",
    ) {
        let base = "SELECT O.itemID, AVG(x) FROM OpenAuction [Range 3 Hour] O, C [Now] \
                    WHERE O.itemID = C.itemID AND x BETWEEN 1 AND 10 GROUP BY O.itemID";
        let mut s = base.to_string();
        let start = cut_start.min(s.len());
        let end = (start + cut_len).min(s.len());
        // keep UTF-8 boundaries intact (ASCII base string)
        s.replace_range(start..end, &insert);
        let _ = parse_query(&s);
    }

    /// Every error carries a parse/analyze category and a byte offset.
    #[test]
    fn errors_are_parse_errors(s in "[a-z]{1,12}") {
        if let Err(e) = parse_query(&s) {
            prop_assert_eq!(e.kind(), "parse");
            prop_assert!(e.message().contains("at byte"), "{}", e);
        }
    }
}

#[test]
fn deeply_nested_like_inputs_do_not_recurse() {
    // The grammar is iterative (AND-lists, comma-lists); long inputs
    // must not blow the stack.
    let mut q = String::from("SELECT a FROM S [Now] WHERE a = 1");
    for i in 0..20_000 {
        q.push_str(&format!(" AND a = {i}"));
    }
    let parsed = parse_query(&q).unwrap();
    assert_eq!(parsed.predicates.len(), 20_001);
}

#[test]
fn long_select_lists() {
    let cols: Vec<String> = (0..5_000).map(|i| format!("c{i}")).collect();
    let q = format!("SELECT {} FROM S [Now]", cols.join(", "));
    assert_eq!(parse_query(&q).unwrap().select.len(), 5_000);
}
