#![forbid(unsafe_code)]
//! A CQL subset: the continuous-query language used by COSMOS.
//!
//! The paper specifies user queries "in high level SQL-like language
//! statements such as CQL" (STREAM's continuous query language). This
//! crate implements the select-project-join-aggregate fragment with
//! time-based sliding windows that Section 4 of the paper reasons about:
//!
//! ```sql
//! SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp
//! FROM   OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C
//! WHERE  O.itemID = C.itemID AND O.start_price > 10
//! ```
//!
//! Supported surface:
//! * `SELECT` lists of attributes, `*`, `alias.*`, and aggregates
//!   (`COUNT`, `SUM`, `AVG`, `MIN`, `MAX`) with optional `GROUP BY`;
//! * `FROM` lists of streams with CQL window specifications
//!   `[Now]`, `[Unbounded]`, `[Range n unit]` and optional aliases;
//! * `WHERE` conjunctions of comparison predicates between attributes and
//!   constants (selections) or attributes and attributes (joins), plus
//!   `BETWEEN`.
//!
//! The parser is a hand-written recursive-descent parser over a
//! hand-written lexer; the AST pretty-printer round-trips through the
//! parser (property-tested), which the query layer relies on when it
//! ships reformulated *representative queries* to remote processors as
//! text.

mod ast;
mod lexer;
mod parser;
mod span;
mod token;

pub use ast::{
    AggFunc, AttrRef, CmpOp, Operand, Predicate, Query, SelectItem, StreamRef, WindowSpec,
};
pub use lexer::tokenize;
pub use parser::{parse_query, parse_query_spanned};
pub use span::{QuerySpans, Span, SpannedQuery};
pub use token::{is_keyword, Token, TokenKind};

/// Split a `.cql` source text into individual statements: statements
/// are separated by `;`, surrounding whitespace is trimmed, and empty
/// statements (including a trailing terminator) are dropped. Shared by
/// the `cosmos-lint` and `cosmos-bound` CLIs so "one file, many
/// statements" means the same thing everywhere.
pub fn split_statements(text: &str) -> impl Iterator<Item = &str> {
    text.split(';').map(str::trim).filter(|s| !s.is_empty())
}

#[cfg(test)]
mod roundtrip_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_ident() -> impl Strategy<Value = String> {
        "[a-zA-Z][a-zA-Z0-9_]{0,8}".prop_filter("not a keyword", |s| !token::is_keyword(s))
    }

    fn arb_attr() -> impl Strategy<Value = AttrRef> {
        (proptest::option::of(arb_ident()), arb_ident())
            .prop_map(|(qualifier, name)| AttrRef { qualifier, name })
    }

    fn arb_window() -> impl Strategy<Value = WindowSpec> {
        prop_oneof![
            Just(WindowSpec::Now),
            Just(WindowSpec::Unbounded),
            (1i64..10_000).prop_map(|s| WindowSpec::Range(cosmos_types::TimeDelta::from_secs(s))),
            (1i64..96).prop_map(|h| WindowSpec::Range(cosmos_types::TimeDelta::from_hours(h))),
        ]
    }

    fn arb_operand() -> impl Strategy<Value = Operand> {
        prop_oneof![
            arb_attr().prop_map(Operand::Attr),
            (-1000i64..1000).prop_map(|i| Operand::Const(cosmos_types::Value::Int(i))),
            (-100i64..100).prop_map(|i| Operand::Const(cosmos_types::Value::Float(i as f64 / 4.0))),
            "[a-z]{1,6}".prop_map(|s| Operand::Const(cosmos_types::Value::str(s))),
        ]
    }

    fn arb_predicate() -> impl Strategy<Value = Predicate> {
        let cmp = (
            arb_attr(),
            prop_oneof![
                Just(CmpOp::Eq),
                Just(CmpOp::Ne),
                Just(CmpOp::Lt),
                Just(CmpOp::Le),
                Just(CmpOp::Gt),
                Just(CmpOp::Ge)
            ],
            arb_operand(),
        )
            .prop_map(|(a, op, right)| Predicate::Cmp {
                left: Operand::Attr(a),
                op,
                right,
            });
        let between =
            (arb_attr(), -1000i64..0, 0i64..1000).prop_map(|(a, lo, hi)| Predicate::Between {
                attr: a,
                lo: cosmos_types::Value::Int(lo),
                hi: cosmos_types::Value::Int(hi),
            });
        prop_oneof![cmp, between]
    }

    fn arb_query() -> impl Strategy<Value = Query> {
        (
            any::<bool>(),
            proptest::collection::vec(arb_attr().prop_map(SelectItem::Attr), 1..4),
            proptest::collection::vec((arb_ident(), arb_window()), 1..3),
            proptest::collection::vec(arb_predicate(), 0..4),
        )
            .prop_map(|(distinct, select, from, predicates)| Query {
                distinct,
                select,
                from: from
                    .into_iter()
                    .enumerate()
                    .map(|(i, (stream, window))| StreamRef {
                        stream,
                        alias: Some(format!("a{i}")),
                        window,
                    })
                    .collect(),
                predicates,
                group_by: vec![],
            })
    }

    proptest! {
        /// Pretty-printing then re-parsing yields the same AST. The query
        /// layer ships representative queries as text, so this is a
        /// correctness-critical property, not a convenience.
        #[test]
        fn print_parse_roundtrip(q in arb_query()) {
            let text = q.to_string();
            let q2 = parse_query(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
            prop_assert_eq!(q, q2);
        }
    }
}

#[cfg(test)]
mod split_tests {
    #[test]
    fn split_statements_trims_and_drops_empties() {
        let text = "  SELECT a FROM S [Now] ;\n\nSELECT b FROM T [Now];;\n";
        let stmts: Vec<&str> = super::split_statements(text).collect();
        assert_eq!(
            stmts,
            vec!["SELECT a FROM S [Now]", "SELECT b FROM T [Now]"]
        );
        assert_eq!(super::split_statements("  \n ; ; ").count(), 0);
    }
}
