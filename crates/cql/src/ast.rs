//! Abstract syntax tree for the CQL subset, plus the pretty-printer.

use cosmos_types::{TimeDelta, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A reference to an attribute, optionally qualified by a stream alias
/// (`O.itemID`) or bare (`temperature`) when unambiguous.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrRef {
    /// Stream alias or stream name qualifying the attribute, if any.
    pub qualifier: Option<String>,
    /// The attribute name.
    pub name: String,
}

impl AttrRef {
    /// An unqualified reference.
    pub fn bare(name: impl Into<String>) -> Self {
        AttrRef {
            qualifier: None,
            name: name.into(),
        }
    }

    /// A qualified reference.
    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> Self {
        AttrRef {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// An aggregate function usable in a `SELECT` list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(attr)`.
    Count,
    /// `SUM(attr)`.
    Sum,
    /// `AVG(attr)`.
    Avg,
    /// `MIN(attr)`.
    Min,
    /// `MAX(attr)`.
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// One item of a `SELECT` list.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*` — every attribute of every input stream.
    Star,
    /// `alias.*` — every attribute of one input stream.
    QualifiedStar(String),
    /// A plain attribute reference.
    Attr(AttrRef),
    /// An aggregate over an attribute (`None` argument means `COUNT(*)`).
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// Its argument; `None` only for `COUNT(*)`.
        arg: Option<AttrRef>,
    },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Star => f.write_str("*"),
            SelectItem::QualifiedStar(q) => write!(f, "{q}.*"),
            SelectItem::Attr(a) => write!(f, "{a}"),
            SelectItem::Agg { func, arg: Some(a) } => write!(f, "{func}({a})"),
            SelectItem::Agg { func, arg: None } => write!(f, "{func}(*)"),
        }
    }
}

/// A CQL time-based sliding-window specification.
///
/// `w(T)` in the paper: `Now` is `T = 0`, `Unbounded` is `T = ∞`, and
/// `Range d` is `T = d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WindowSpec {
    /// `[Now]`: only tuples with the current timestamp.
    Now,
    /// `[Unbounded]`: the whole history of the stream.
    Unbounded,
    /// `[Range d]`: tuples that arrived within the last `d` time units.
    Range(TimeDelta),
}

impl WindowSpec {
    /// The window size `T` as a [`TimeDelta`] (`Now` → 0, `Unbounded` → ∞).
    pub fn size(self) -> TimeDelta {
        match self {
            WindowSpec::Now => TimeDelta::ZERO,
            WindowSpec::Unbounded => TimeDelta::INFINITE,
            WindowSpec::Range(d) => d,
        }
    }

    /// Window specification for a given size (inverse of [`size`](Self::size)).
    pub fn from_size(size: TimeDelta) -> Self {
        if size == TimeDelta::ZERO {
            WindowSpec::Now
        } else if size.is_infinite() {
            WindowSpec::Unbounded
        } else {
            WindowSpec::Range(size)
        }
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowSpec::Now => f.write_str("[Now]"),
            WindowSpec::Unbounded => f.write_str("[Unbounded]"),
            WindowSpec::Range(d) => {
                let ms = d.millis();
                if ms % 3_600_000 == 0 && ms != 0 {
                    write!(f, "[Range {} Hour]", ms / 3_600_000)
                } else if ms % 60_000 == 0 && ms != 0 {
                    write!(f, "[Range {} Minute]", ms / 60_000)
                } else if ms % 1_000 == 0 && ms != 0 {
                    write!(f, "[Range {} Second]", ms / 1_000)
                } else {
                    write!(f, "[Range {ms} Millisecond]")
                }
            }
        }
    }
}

/// One stream in a `FROM` clause, with its window and optional alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamRef {
    /// Name of the stream.
    pub stream: String,
    /// Alias used to qualify attribute references (defaults to the
    /// stream name when absent).
    pub alias: Option<String>,
    /// The window applied to the stream.
    pub window: WindowSpec,
}

impl StreamRef {
    /// The name that qualifies this stream's attributes in the query.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.stream)
    }
}

impl fmt::Display for StreamRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.stream, self.window)?;
        if let Some(a) = &self.alias {
            write!(f, " {a}")?;
        }
        Ok(())
    }
}

/// A comparison operand: attribute or constant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// An attribute reference.
    Attr(AttrRef),
    /// A literal constant.
    Const(Value),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Attr(a) => write!(f, "{a}"),
            Operand::Const(v) => write!(f, "{v}"),
        }
    }
}

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator with its sides swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Evaluate the operator on an ordering produced by a comparison.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// One atomic predicate of a `WHERE` conjunction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `left op right`.
    Cmp {
        /// Left operand.
        left: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        right: Operand,
    },
    /// `attr BETWEEN lo AND hi` (inclusive on both ends).
    Between {
        /// The tested attribute.
        attr: AttrRef,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp { left, op, right } => write!(f, "{left} {op} {right}"),
            Predicate::Between { attr, lo, hi } => {
                write!(f, "{attr} BETWEEN {lo} AND {hi}")
            }
        }
    }
}

/// A parsed continuous query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// `SELECT DISTINCT` flag.
    pub distinct: bool,
    /// The `SELECT` list (never empty).
    pub select: Vec<SelectItem>,
    /// The `FROM` clause (never empty).
    pub from: Vec<StreamRef>,
    /// The `WHERE` conjunction (possibly empty).
    pub predicates: Vec<Predicate>,
    /// The `GROUP BY` attributes (possibly empty).
    pub group_by: Vec<AttrRef>,
}

impl Query {
    /// Whether the query contains any aggregate select item.
    pub fn is_aggregate(&self) -> bool {
        self.select
            .iter()
            .any(|s| matches!(s, SelectItem::Agg { .. }))
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, s) in self.select.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{s}")?;
        }
        f.write_str(" FROM ")?;
        for (i, s) in self.from.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{s}")?;
        }
        if !self.predicates.is_empty() {
            f.write_str(" WHERE ")?;
            for (i, p) in self.predicates.iter().enumerate() {
                if i > 0 {
                    f.write_str(" AND ")?;
                }
                write!(f, "{p}")?;
            }
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_size_roundtrip() {
        for w in [
            WindowSpec::Now,
            WindowSpec::Unbounded,
            WindowSpec::Range(TimeDelta::from_hours(3)),
        ] {
            assert_eq!(WindowSpec::from_size(w.size()), w);
        }
        assert_eq!(WindowSpec::Now.size(), TimeDelta::ZERO);
        assert!(WindowSpec::Unbounded.size().is_infinite());
    }

    #[test]
    fn window_display_uses_natural_units() {
        assert_eq!(
            WindowSpec::Range(TimeDelta::from_hours(5)).to_string(),
            "[Range 5 Hour]"
        );
        assert_eq!(
            WindowSpec::Range(TimeDelta::from_secs(90)).to_string(),
            "[Range 90 Second]"
        );
        assert_eq!(
            WindowSpec::Range(TimeDelta::from_millis(250)).to_string(),
            "[Range 250 Millisecond]"
        );
        assert_eq!(WindowSpec::Now.to_string(), "[Now]");
    }

    #[test]
    fn cmp_op_flip_and_eval() {
        use std::cmp::Ordering::*;
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flipped(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Le.eval(Less));
        assert!(!CmpOp::Le.eval(Greater));
        assert!(CmpOp::Ne.eval(Less));
        assert!(!CmpOp::Ne.eval(Equal));
    }

    #[test]
    fn query_display_reads_like_cql() {
        let q = Query {
            distinct: false,
            select: vec![
                SelectItem::QualifiedStar("O".into()),
                SelectItem::Attr(AttrRef::qualified("C", "buyerID")),
            ],
            from: vec![
                StreamRef {
                    stream: "OpenAuction".into(),
                    alias: Some("O".into()),
                    window: WindowSpec::Range(TimeDelta::from_hours(3)),
                },
                StreamRef {
                    stream: "ClosedAuction".into(),
                    alias: Some("C".into()),
                    window: WindowSpec::Now,
                },
            ],
            predicates: vec![Predicate::Cmp {
                left: Operand::Attr(AttrRef::qualified("O", "itemID")),
                op: CmpOp::Eq,
                right: Operand::Attr(AttrRef::qualified("C", "itemID")),
            }],
            group_by: vec![],
        };
        assert_eq!(
            q.to_string(),
            "SELECT O.*, C.buyerID FROM OpenAuction [Range 3 Hour] O, \
             ClosedAuction [Now] C WHERE O.itemID = C.itemID"
        );
        assert!(!q.is_aggregate());
    }

    #[test]
    fn aggregate_display() {
        let q = Query {
            distinct: true,
            select: vec![
                SelectItem::Agg {
                    func: AggFunc::Count,
                    arg: None,
                },
                SelectItem::Agg {
                    func: AggFunc::Avg,
                    arg: Some(AttrRef::bare("temp")),
                },
            ],
            from: vec![StreamRef {
                stream: "S".into(),
                alias: None,
                window: WindowSpec::Unbounded,
            }],
            predicates: vec![],
            group_by: vec![AttrRef::bare("station")],
        };
        assert_eq!(
            q.to_string(),
            "SELECT DISTINCT COUNT(*), AVG(temp) FROM S [Unbounded] GROUP BY station"
        );
        assert!(q.is_aggregate());
    }

    #[test]
    fn stream_ref_binding() {
        let s = StreamRef {
            stream: "S".into(),
            alias: Some("a".into()),
            window: WindowSpec::Now,
        };
        assert_eq!(s.binding(), "a");
        let s2 = StreamRef {
            stream: "S".into(),
            alias: None,
            window: WindowSpec::Now,
        };
        assert_eq!(s2.binding(), "S");
    }
}
