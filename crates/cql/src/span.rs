//! Source spans for lint diagnostics.
//!
//! Spans live in a side table ([`QuerySpans`]) parallel to the AST rather
//! than inside AST nodes: the AST is also constructed programmatically
//! (query generators, merge machinery, tests) and compared structurally
//! (the print→parse round-trip property), so embedding byte offsets in it
//! would either poison equality or force every construction site to invent
//! fake positions. The parser records spans as it goes; consumers that do
//! not care keep using [`crate::parse_query`] and never see them.

use crate::ast::Query;

/// A half-open byte range `start..end` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Build a span from a byte range.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn join(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Slice the source text this span points into.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start.min(src.len())..self.end.min(src.len())]
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Side table of source spans for one parsed [`Query`].
///
/// The vectors are parallel to the corresponding AST vectors: entry `i`
/// of [`QuerySpans::predicates`] covers entry `i` of `Query::predicates`,
/// and so on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpans {
    /// The whole statement.
    pub query: Span,
    /// Each item in the SELECT list.
    pub select: Vec<Span>,
    /// Each stream reference in FROM (including its window and alias).
    pub from: Vec<Span>,
    /// Each window specification (`[...]`), parallel to `from`.
    pub windows: Vec<Span>,
    /// Each conjunct of the WHERE clause.
    pub predicates: Vec<Span>,
    /// Each GROUP BY attribute.
    pub group_by: Vec<Span>,
}

/// A parsed query together with its span side table.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedQuery {
    /// The abstract syntax tree.
    pub query: Query,
    /// Byte spans into the original source, parallel to `query`.
    pub spans: QuerySpans,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_covers_both_spans() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.join(b), Span::new(3, 12));
        assert_eq!(b.join(a), Span::new(3, 12));
    }

    #[test]
    fn text_slices_and_clamps() {
        let src = "SELECT x";
        assert_eq!(Span::new(7, 8).text(src), "x");
        assert_eq!(Span::new(7, 99).text(src), "x");
        assert_eq!(Span::new(5, 5).text(src), "");
        assert_eq!(Span::new(3, 7).to_string(), "3..7");
    }
}
