//! Hand-written lexer for the CQL subset.

use crate::token::{keyword, Token, TokenKind};
use cosmos_types::{CosmosError, Result, Value};

/// Lex a CQL statement into tokens (with a trailing [`TokenKind::Eof`]).
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::with_capacity(32);
        loop {
            self.skip_ws();
            let offset = self.pos;
            let Some(&b) = self.bytes.get(self.pos) else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    offset,
                    end: offset,
                });
                return Ok(out);
            };
            let kind = match b {
                b',' => self.one(TokenKind::Comma),
                b'.' => self.one(TokenKind::Dot),
                b'*' => self.one(TokenKind::Star),
                b'(' => self.one(TokenKind::LParen),
                b')' => self.one(TokenKind::RParen),
                b'[' => self.one(TokenKind::LBracket),
                b']' => self.one(TokenKind::RBracket),
                b'=' => self.one(TokenKind::Eq),
                b'!' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        TokenKind::Ne
                    } else {
                        return Err(self.err(offset, "expected '=' after '!'"));
                    }
                }
                b'<' => match self.bytes.get(self.pos + 1) {
                    Some(&b'=') => {
                        self.pos += 2;
                        TokenKind::Le
                    }
                    Some(&b'>') => {
                        self.pos += 2;
                        TokenKind::Ne
                    }
                    _ => self.one(TokenKind::Lt),
                },
                b'>' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        TokenKind::Ge
                    } else {
                        self.one(TokenKind::Gt)
                    }
                }
                b'\'' => self.string(offset)?,
                b'-' | b'0'..=b'9' => self.number(offset)?,
                b if b.is_ascii_alphabetic() || b == b'_' => self.ident(),
                other => {
                    return Err(
                        self.err(offset, &format!("unexpected character '{}'", other as char))
                    )
                }
            };
            out.push(Token {
                kind,
                offset,
                end: self.pos,
            });
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn one(&mut self, kind: TokenKind) -> TokenKind {
        self.pos += 1;
        kind
    }

    fn string(&mut self, offset: usize) -> Result<TokenKind> {
        self.pos += 1; // opening quote
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\'' {
                let s = &self.src[start..self.pos];
                self.pos += 1;
                return Ok(TokenKind::Literal(Value::str(s)));
            }
            self.pos += 1;
        }
        Err(self.err(offset, "unterminated string literal"))
    }

    fn number(&mut self, offset: usize) -> Result<TokenKind> {
        let start = self.pos;
        if self.bytes[self.pos] == b'-' {
            self.pos += 1;
            if !self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                return Err(self.err(offset, "expected digits after '-'"));
            }
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() {
                self.pos += 1;
            } else if b == b'.'
                && !is_float
                && self
                    .bytes
                    .get(self.pos + 1)
                    .is_some_and(|c| c.is_ascii_digit())
            {
                is_float = true;
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err(offset, "invalid float literal"))?;
            Ok(TokenKind::Literal(Value::Float(v)))
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.err(offset, "integer literal out of range"))?;
            Ok(TokenKind::Literal(Value::Int(v)))
        }
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()))
    }

    fn err(&self, offset: usize, msg: &str) -> CosmosError {
        CosmosError::Parse(format!("at byte {offset}: {msg}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_table1_query_fragment() {
        let ks = kinds("SELECT O.* FROM OpenAuction [Range 3 Hour] O");
        assert_eq!(
            ks,
            vec![
                TokenKind::Select,
                TokenKind::Ident("O".into()),
                TokenKind::Dot,
                TokenKind::Star,
                TokenKind::From,
                TokenKind::Ident("OpenAuction".into()),
                TokenKind::LBracket,
                TokenKind::Range,
                TokenKind::Literal(Value::Int(3)),
                TokenKind::Hour,
                TokenKind::RBracket,
                TokenKind::Ident("O".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators_and_comparisons() {
        assert_eq!(
            kinds("a >= 1 AND b <> 2 != <="),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ge,
                TokenKind::Literal(Value::Int(1)),
                TokenKind::And,
                TokenKind::Ident("b".into()),
                TokenKind::Ne,
                TokenKind::Literal(Value::Int(2)),
                TokenKind::Ne,
                TokenKind::Le,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(
            kinds("10 -3 2.5 -0.25"),
            vec![
                TokenKind::Literal(Value::Int(10)),
                TokenKind::Literal(Value::Int(-3)),
                TokenKind::Literal(Value::Float(2.5)),
                TokenKind::Literal(Value::Float(-0.25)),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn dot_after_integer_is_not_a_float_without_digits() {
        // "R.A" style refs where the qualifier ends in a digit boundary.
        assert_eq!(
            kinds("3.x"),
            vec![
                TokenKind::Literal(Value::Int(3)),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn string_literals_and_errors() {
        assert_eq!(
            kinds("'abc'"),
            vec![TokenKind::Literal(Value::str("abc")), TokenKind::Eof]
        );
        assert!(tokenize("'abc").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("§").is_err());
        assert!(tokenize("- 3").is_err());
    }

    #[test]
    fn offsets_point_at_token_starts() {
        let ts = tokenize("SELECT a").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 7);
    }

    #[test]
    fn token_ranges_cover_the_source_text() {
        let src = "SELECT a >= 'hi'";
        let ts = tokenize(src).unwrap();
        assert_eq!(&src[ts[0].offset..ts[0].end], "SELECT");
        assert_eq!(&src[ts[1].offset..ts[1].end], "a");
        assert_eq!(&src[ts[2].offset..ts[2].end], ">=");
        assert_eq!(&src[ts[3].offset..ts[3].end], "'hi'");
        // Eof is an empty range at the end of input.
        let eof = ts.last().unwrap();
        assert_eq!(eof.offset, src.len());
        assert_eq!(eof.end, src.len());
    }

    #[test]
    fn keywords_fold_case() {
        assert_eq!(
            kinds("select From WHERE"),
            vec![
                TokenKind::Select,
                TokenKind::From,
                TokenKind::Where,
                TokenKind::Eof
            ]
        );
    }
}
