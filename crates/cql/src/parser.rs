//! Recursive-descent parser for the CQL subset.

use crate::ast::*;
use crate::lexer::tokenize;
use crate::span::{QuerySpans, Span, SpannedQuery};
use crate::token::{Token, TokenKind};
use cosmos_types::{CosmosError, Result, TimeDelta, Value};

/// Parse a single CQL statement into a [`Query`].
pub fn parse_query(src: &str) -> Result<Query> {
    parse_query_spanned(src).map(|sq| sq.query)
}

/// Parse a single CQL statement, keeping byte spans for diagnostics.
pub fn parse_query_spanned(src: &str) -> Result<SpannedQuery> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        last_end: 0,
    };
    let sq = p.query()?;
    p.expect(&TokenKind::Eof)?;
    Ok(sq)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// End offset of the most recently consumed token; together with a
    /// saved start offset this brackets whatever a sub-parser consumed.
    last_end: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn cur_offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        self.last_end = self.tokens[self.pos].end;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn err(&self, msg: &str) -> CosmosError {
        CosmosError::Parse(format!("at byte {}: {msg}", self.tokens[self.pos].offset))
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(&format!("expected identifier, found {other}"))),
        }
    }

    fn query(&mut self) -> Result<SpannedQuery> {
        let q_start = self.cur_offset();
        self.expect(&TokenKind::Select)?;
        let distinct = self.eat(&TokenKind::Distinct);
        let mut select = Vec::new();
        let mut select_spans = Vec::new();
        loop {
            let start = self.cur_offset();
            select.push(self.select_item()?);
            select_spans.push(Span::new(start, self.last_end));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::From)?;
        let mut from = Vec::new();
        let mut from_spans = Vec::new();
        let mut window_spans = Vec::new();
        loop {
            let start = self.cur_offset();
            let (sref, wspan) = self.stream_ref()?;
            from.push(sref);
            from_spans.push(Span::new(start, self.last_end));
            window_spans.push(wspan);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let mut predicates = Vec::new();
        let mut predicate_spans = Vec::new();
        if self.eat(&TokenKind::Where) {
            loop {
                let start = self.cur_offset();
                predicates.push(self.predicate()?);
                predicate_spans.push(Span::new(start, self.last_end));
                if !self.eat(&TokenKind::And) {
                    break;
                }
            }
        }
        let mut group_by = Vec::new();
        let mut group_by_spans = Vec::new();
        if self.eat(&TokenKind::Group) {
            self.expect(&TokenKind::By)?;
            loop {
                let start = self.cur_offset();
                group_by.push(self.attr_ref()?);
                group_by_spans.push(Span::new(start, self.last_end));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        Ok(SpannedQuery {
            query: Query {
                distinct,
                select,
                from,
                predicates,
                group_by,
            },
            spans: QuerySpans {
                query: Span::new(q_start, self.last_end),
                select: select_spans,
                from: from_spans,
                windows: window_spans,
                predicates: predicate_spans,
                group_by: group_by_spans,
            },
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        // Aggregates.
        let agg = match self.peek() {
            TokenKind::Count => Some(AggFunc::Count),
            TokenKind::Sum => Some(AggFunc::Sum),
            TokenKind::Avg => Some(AggFunc::Avg),
            TokenKind::Min => Some(AggFunc::Min),
            TokenKind::Max => Some(AggFunc::Max),
            _ => None,
        };
        if let Some(func) = agg {
            self.bump();
            self.expect(&TokenKind::LParen)?;
            let arg = if self.eat(&TokenKind::Star) {
                if func != AggFunc::Count {
                    return Err(self.err("only COUNT may take '*' as an argument"));
                }
                None
            } else {
                Some(self.attr_ref()?)
            };
            self.expect(&TokenKind::RParen)?;
            return Ok(SelectItem::Agg { func, arg });
        }
        // `*`, `alias.*`, or attribute.
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Star);
        }
        let first = self.ident()?;
        if self.eat(&TokenKind::Dot) {
            if self.eat(&TokenKind::Star) {
                return Ok(SelectItem::QualifiedStar(first));
            }
            let name = self.ident()?;
            return Ok(SelectItem::Attr(AttrRef::qualified(first, name)));
        }
        Ok(SelectItem::Attr(AttrRef::bare(first)))
    }

    fn stream_ref(&mut self) -> Result<(StreamRef, Span)> {
        let stream = self.ident()?;
        let w_start = self.cur_offset();
        let window = self.window()?;
        let w_span = Span::new(w_start, self.last_end);
        // Optional alias: `AS alias` or a bare identifier.
        // `AS alias` and a bare identifier alias are equivalent forms.
        let alias = if self.eat(&TokenKind::As) || matches!(self.peek(), TokenKind::Ident(_)) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok((
            StreamRef {
                stream,
                alias,
                window,
            },
            w_span,
        ))
    }

    fn window(&mut self) -> Result<WindowSpec> {
        self.expect(&TokenKind::LBracket)?;
        let spec = match self.bump() {
            TokenKind::Now => WindowSpec::Now,
            TokenKind::Unbounded => WindowSpec::Unbounded,
            TokenKind::Range => {
                let n = match self.bump() {
                    TokenKind::Literal(Value::Int(n)) if n > 0 => n,
                    other => {
                        return Err(self.err(&format!(
                            "expected positive integer window length, found {other}"
                        )))
                    }
                };
                let delta = match self.bump() {
                    TokenKind::Millisecond => TimeDelta::from_millis(n),
                    TokenKind::Second => TimeDelta::from_secs(n),
                    TokenKind::Minute => TimeDelta::from_mins(n),
                    TokenKind::Hour => TimeDelta::from_hours(n),
                    TokenKind::Day => TimeDelta::from_days(n),
                    other => return Err(self.err(&format!("expected time unit, found {other}"))),
                };
                WindowSpec::Range(delta)
            }
            other => return Err(self.err(&format!("expected window specification, found {other}"))),
        };
        self.expect(&TokenKind::RBracket)?;
        Ok(spec)
    }

    fn attr_ref(&mut self) -> Result<AttrRef> {
        let first = self.ident()?;
        if self.eat(&TokenKind::Dot) {
            let name = self.ident()?;
            Ok(AttrRef::qualified(first, name))
        } else {
            Ok(AttrRef::bare(first))
        }
    }

    fn operand(&mut self) -> Result<Operand> {
        match self.peek() {
            TokenKind::Literal(_) => {
                let TokenKind::Literal(v) = self.bump() else {
                    unreachable!()
                };
                Ok(Operand::Const(v))
            }
            TokenKind::Ident(_) => Ok(Operand::Attr(self.attr_ref()?)),
            other => Err(self.err(&format!("expected attribute or literal, found {other}"))),
        }
    }

    fn literal(&mut self) -> Result<Value> {
        match self.bump() {
            TokenKind::Literal(v) => Ok(v),
            other => Err(self.err(&format!("expected literal, found {other}"))),
        }
    }

    fn predicate(&mut self) -> Result<Predicate> {
        // BETWEEN needs lookahead: attr BETWEEN lo AND hi.
        if matches!(self.peek(), TokenKind::Ident(_)) {
            let save = self.pos;
            let attr = self.attr_ref()?;
            if self.eat(&TokenKind::Between) {
                let lo = self.literal()?;
                self.expect(&TokenKind::And)?;
                let hi = self.literal()?;
                return Ok(Predicate::Between { attr, lo, hi });
            }
            self.pos = save;
        }
        let left = self.operand()?;
        let op = match self.bump() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => return Err(self.err(&format!("expected comparison operator, found {other}"))),
        };
        let right = self.operand()?;
        Ok(Predicate::Cmp { left, op, right })
    }

    /// Unused helper kept for symmetry with `peek`; exercised in tests.
    #[cfg(test)]
    fn lookahead_is_dot(&self) -> bool {
        matches!(self.peek2(), TokenKind::Dot)
    }
}

// `peek2` is only needed by the test helper today but is part of the
// parser's intended toolkit; silence dead-code when not testing.
#[cfg(not(test))]
#[allow(dead_code)]
impl Parser {
    fn _use_peek2(&self) -> &TokenKind {
        self.peek2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_types::TimeDelta;

    /// Table 1, q1: all auctions that closed within three hours of opening.
    const Q1: &str = "SELECT O.* \
        FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C \
        WHERE O.itemID = C.itemID";

    /// Table 1, q2 (the paper's `O.timetamp` typo corrected).
    const Q2: &str = "SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp \
        FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C \
        WHERE O.itemID = C.itemID";

    /// Table 1, q3: the representative query containing q1 and q2.
    const Q3: &str = "SELECT O.*, C.buyerID, C.timestamp \
        FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C \
        WHERE O.itemID = C.itemID";

    #[test]
    fn parses_table1_q1() {
        let q = parse_query(Q1).unwrap();
        assert_eq!(q.select, vec![SelectItem::QualifiedStar("O".into())]);
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[0].stream, "OpenAuction");
        assert_eq!(q.from[0].alias.as_deref(), Some("O"));
        assert_eq!(
            q.from[0].window,
            WindowSpec::Range(TimeDelta::from_hours(3))
        );
        assert_eq!(q.from[1].window, WindowSpec::Now);
        assert_eq!(q.predicates.len(), 1);
        assert!(matches!(
            &q.predicates[0],
            Predicate::Cmp {
                left: Operand::Attr(a),
                op: CmpOp::Eq,
                right: Operand::Attr(b)
            } if a.to_string() == "O.itemID" && b.to_string() == "C.itemID"
        ));
    }

    #[test]
    fn parses_table1_q2_and_q3() {
        let q2 = parse_query(Q2).unwrap();
        assert_eq!(q2.select.len(), 4);
        let q3 = parse_query(Q3).unwrap();
        assert_eq!(q3.select[0], SelectItem::QualifiedStar("O".into()));
        assert_eq!(
            q3.from[0].window,
            WindowSpec::Range(TimeDelta::from_hours(5))
        );
    }

    #[test]
    fn parses_intro_example_with_selection() {
        // The R/S example from Section 4 of the paper.
        let q = parse_query("SELECT R.A, S.C FROM R [Now], S [Now] WHERE R.B = S.B AND R.A > 10")
            .unwrap();
        assert_eq!(q.predicates.len(), 2);
        assert!(matches!(
            &q.predicates[1],
            Predicate::Cmp {
                left: Operand::Attr(a),
                op: CmpOp::Gt,
                right: Operand::Const(Value::Int(10))
            } if a.to_string() == "R.A"
        ));
    }

    #[test]
    fn parses_aggregates_and_group_by() {
        let q = parse_query(
            "SELECT station, AVG(temperature), COUNT(*) \
             FROM Sensors [Range 10 Minute] GROUP BY station",
        )
        .unwrap();
        assert!(q.is_aggregate());
        assert_eq!(q.group_by, vec![AttrRef::bare("station")]);
        assert_eq!(
            q.select[1],
            SelectItem::Agg {
                func: AggFunc::Avg,
                arg: Some(AttrRef::bare("temperature"))
            }
        );
        assert_eq!(
            q.select[2],
            SelectItem::Agg {
                func: AggFunc::Count,
                arg: None
            }
        );
    }

    #[test]
    fn parses_between_and_distinct() {
        let q = parse_query(
            "SELECT DISTINCT a FROM S [Range 5 Second] WHERE a BETWEEN 1 AND 10 AND b = 'x'",
        )
        .unwrap();
        assert!(q.distinct);
        assert_eq!(
            q.predicates[0],
            Predicate::Between {
                attr: AttrRef::bare("a"),
                lo: Value::Int(1),
                hi: Value::Int(10)
            }
        );
    }

    #[test]
    fn alias_with_as_keyword() {
        let q = parse_query("SELECT x FROM S [Now] AS t WHERE t.x > 0").unwrap();
        assert_eq!(q.from[0].alias.as_deref(), Some("t"));
    }

    #[test]
    fn const_on_left_side() {
        let q = parse_query("SELECT a FROM S [Now] WHERE 10 < a").unwrap();
        assert!(matches!(
            &q.predicates[0],
            Predicate::Cmp {
                left: Operand::Const(Value::Int(10)),
                op: CmpOp::Lt,
                ..
            }
        ));
    }

    #[test]
    fn window_units() {
        for (txt, ms) in [
            ("[Range 250 Millisecond]", 250),
            ("[Range 9 Second]", 9_000),
            ("[Range 2 Minute]", 120_000),
            ("[Range 1 Hour]", 3_600_000),
            ("[Range 1 Day]", 86_400_000),
            ("[Range 3 Hours]", 10_800_000),
        ] {
            let q = parse_query(&format!("SELECT a FROM S {txt}")).unwrap();
            assert_eq!(
                q.from[0].window,
                WindowSpec::Range(TimeDelta::from_millis(ms)),
                "window {txt}"
            );
        }
    }

    #[test]
    fn rejects_malformed_queries() {
        // missing FROM
        assert!(parse_query("SELECT a WHERE a > 1").is_err());
        // missing window
        assert!(parse_query("SELECT a FROM S").is_err());
        // bad window length
        assert!(parse_query("SELECT a FROM S [Range 0 Hour]").is_err());
        assert!(parse_query("SELECT a FROM S [Range x Hour]").is_err());
        // bad unit
        assert!(parse_query("SELECT a FROM S [Range 3 Parsec]").is_err());
        // non-COUNT star aggregate
        assert!(parse_query("SELECT SUM(*) FROM S [Now]").is_err());
        // trailing garbage
        assert!(parse_query("SELECT a FROM S [Now] extra garbage ,").is_err());
        // empty input
        assert!(parse_query("").is_err());
        // comparison missing operand
        assert!(parse_query("SELECT a FROM S [Now] WHERE a >").is_err());
        // GROUP without BY
        assert!(parse_query("SELECT a FROM S [Now] GROUP a").is_err());
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let err = parse_query("SELECT a FROM S [Range 3 Parsec]").unwrap_err();
        assert!(err.to_string().contains("at byte"), "{err}");
    }

    #[test]
    fn peek2_helper() {
        let tokens = tokenize("a.b").unwrap();
        let p = Parser {
            tokens,
            pos: 0,
            last_end: 0,
        };
        assert!(p.lookahead_is_dot());
    }

    #[test]
    fn spanned_parse_matches_plain_parse() {
        for src in [Q1, Q2, Q3] {
            let sq = parse_query_spanned(src).unwrap();
            assert_eq!(sq.query, parse_query(src).unwrap());
        }
    }

    #[test]
    fn spans_slice_back_to_the_source() {
        let src = "SELECT O.itemID, COUNT(*) FROM OpenAuction [Range 3 Hour] O \
                   WHERE O.price > 10 AND O.itemID = 7 GROUP BY O.itemID";
        let sq = parse_query_spanned(src).unwrap();
        let s = &sq.spans;
        assert_eq!(s.query.text(src), src);
        assert_eq!(s.select.len(), 2);
        assert_eq!(s.select[0].text(src), "O.itemID");
        assert_eq!(s.select[1].text(src), "COUNT(*)");
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.from[0].text(src), "OpenAuction [Range 3 Hour] O");
        assert_eq!(s.windows[0].text(src), "[Range 3 Hour]");
        assert_eq!(s.predicates.len(), 2);
        assert_eq!(s.predicates[0].text(src), "O.price > 10");
        assert_eq!(s.predicates[1].text(src), "O.itemID = 7");
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.group_by[0].text(src), "O.itemID");
    }

    #[test]
    fn between_predicate_span_covers_all_three_operands() {
        let src = "SELECT a FROM S [Now] WHERE a BETWEEN 1 AND 10 AND b = 2";
        let sq = parse_query_spanned(src).unwrap();
        assert_eq!(sq.spans.predicates[0].text(src), "a BETWEEN 1 AND 10");
        assert_eq!(sq.spans.predicates[1].text(src), "b = 2");
    }
}
