//! Tokens produced by the CQL lexer.

use cosmos_types::Value;
use std::fmt;

/// The kind (and payload) of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Keywords (case-insensitive in the source text).
    Select,
    Distinct,
    From,
    Where,
    And,
    Group,
    By,
    As,
    Between,
    Range,
    Now,
    Unbounded,
    // Aggregate function names.
    Count,
    Sum,
    Avg,
    Min,
    Max,
    // Time units inside window specifications.
    Millisecond,
    Second,
    Minute,
    Hour,
    Day,
    // Literals and identifiers.
    Ident(String),
    Literal(Value),
    // Punctuation and operators.
    Comma,
    Dot,
    Star,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// End of input sentinel.
    Eof,
}

/// A token with its byte range in the source, for error messages and
/// lint diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Byte offset of the first character in the source text.
    pub offset: usize,
    /// Byte offset one past the last character (`offset..end` is the
    /// token's source text).
    pub end: usize,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Select => write!(f, "SELECT"),
            TokenKind::Distinct => write!(f, "DISTINCT"),
            TokenKind::From => write!(f, "FROM"),
            TokenKind::Where => write!(f, "WHERE"),
            TokenKind::And => write!(f, "AND"),
            TokenKind::Group => write!(f, "GROUP"),
            TokenKind::By => write!(f, "BY"),
            TokenKind::As => write!(f, "AS"),
            TokenKind::Between => write!(f, "BETWEEN"),
            TokenKind::Range => write!(f, "Range"),
            TokenKind::Now => write!(f, "Now"),
            TokenKind::Unbounded => write!(f, "Unbounded"),
            TokenKind::Count => write!(f, "COUNT"),
            TokenKind::Sum => write!(f, "SUM"),
            TokenKind::Avg => write!(f, "AVG"),
            TokenKind::Min => write!(f, "MIN"),
            TokenKind::Max => write!(f, "MAX"),
            TokenKind::Millisecond => write!(f, "Millisecond"),
            TokenKind::Second => write!(f, "Second"),
            TokenKind::Minute => write!(f, "Minute"),
            TokenKind::Hour => write!(f, "Hour"),
            TokenKind::Day => write!(f, "Day"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Literal(v) => write!(f, "{v}"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Star => write!(f, "*"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Ne => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// Map an identifier to a keyword token, if it is one (case-insensitive).
pub(crate) fn keyword(ident: &str) -> Option<TokenKind> {
    // Keywords are few; a linear match on the uppercased text is fine.
    let up = ident.to_ascii_uppercase();
    let kind = match up.as_str() {
        "SELECT" => TokenKind::Select,
        "DISTINCT" => TokenKind::Distinct,
        "FROM" => TokenKind::From,
        "WHERE" => TokenKind::Where,
        "AND" => TokenKind::And,
        "GROUP" => TokenKind::Group,
        "BY" => TokenKind::By,
        "AS" => TokenKind::As,
        "BETWEEN" => TokenKind::Between,
        "RANGE" => TokenKind::Range,
        "NOW" => TokenKind::Now,
        "UNBOUNDED" => TokenKind::Unbounded,
        "COUNT" => TokenKind::Count,
        "SUM" => TokenKind::Sum,
        "AVG" => TokenKind::Avg,
        "MIN" => TokenKind::Min,
        "MAX" => TokenKind::Max,
        "MILLISECOND" | "MILLISECONDS" => TokenKind::Millisecond,
        "SECOND" | "SECONDS" => TokenKind::Second,
        "MINUTE" | "MINUTES" => TokenKind::Minute,
        "HOUR" | "HOURS" => TokenKind::Hour,
        "DAY" | "DAYS" => TokenKind::Day,
        "TRUE" => TokenKind::Literal(Value::Bool(true)),
        "FALSE" => TokenKind::Literal(Value::Bool(false)),
        "NULL" => TokenKind::Literal(Value::Null),
        _ => return None,
    };
    Some(kind)
}

/// Whether `ident` would lex as a keyword rather than an identifier.
pub fn is_keyword(ident: &str) -> bool {
    keyword(ident).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(keyword("select"), Some(TokenKind::Select));
        assert_eq!(keyword("SeLeCt"), Some(TokenKind::Select));
        assert_eq!(keyword("HOURS"), Some(TokenKind::Hour));
        assert_eq!(keyword("itemID"), None);
        assert!(is_keyword("between"));
        assert!(!is_keyword("OpenAuction"));
    }

    #[test]
    fn boolean_and_null_literals() {
        assert_eq!(keyword("true"), Some(TokenKind::Literal(Value::Bool(true))));
        assert_eq!(keyword("NULL"), Some(TokenKind::Literal(Value::Null)));
    }

    #[test]
    fn display_of_operators() {
        assert_eq!(TokenKind::Ge.to_string(), ">=");
        assert_eq!(TokenKind::Ne.to_string(), "!=");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "x");
    }
}
