//! Stream schemas.

use crate::{CosmosError, FxHashMap, Result, Value};
use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// Runtime type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrType {
    /// Boolean attribute.
    Bool,
    /// 64-bit integer attribute.
    Int,
    /// 64-bit float attribute.
    Float,
    /// UTF-8 string attribute.
    Str,
}

impl AttrType {
    /// Whether a value inhabits this type (`Null` inhabits every type).
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (AttrType::Bool, Value::Bool(_))
                | (AttrType::Int, Value::Int(_))
                | (AttrType::Float, Value::Float(_))
                | (AttrType::Float, Value::Int(_))
                | (AttrType::Str, Value::Str(_))
        )
    }

    /// Whether the type is numeric (comparable with numeric constants).
    pub fn is_numeric(self) -> bool {
        matches!(self, AttrType::Int | AttrType::Float)
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Bool => "BOOL",
            AttrType::Int => "INT",
            AttrType::Float => "FLOAT",
            AttrType::Str => "STRING",
        };
        f.write_str(s)
    }
}

/// A named, typed attribute of a stream schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    /// Attribute name. Source streams use bare names (`itemID`); derived
    /// result streams use qualified names (`O.itemID`).
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// Identity of an interned schema (see [`Schema::id`]).
///
/// Two schemas compare equal iff their ids are equal; ids are allocated
/// process-locally in intern order, so they must never be persisted or
/// compared across processes. Their purpose is to key per-schema caches
/// (the routers' projection-plan caches) with an `O(1)` `Copy` handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SchemaId(u32);

impl SchemaId {
    /// The raw id.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SchemaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema#{}", self.0)
    }
}

/// Shared immutable body of a schema: the fields plus a cached
/// `name → index` map (attribute lookups on the routing hot path must
/// not re-scan the field list per tuple) and the lazily interned id.
#[derive(Debug)]
struct SchemaInner {
    fields: Box<[Field]>,
    index: FxHashMap<String, u32>,
    id: OnceLock<SchemaId>,
}

/// An ordered list of attributes describing the tuples of one stream.
///
/// Schemas are immutable and cheap to clone (`Arc` inside). Field order
/// is the on-the-wire tuple order; lookups by name hit a prebuilt index
/// map. Every schema can be *interned* ([`Schema::id`]): structurally
/// equal schemas map to the same process-wide [`SchemaId`], which the
/// CBN layer uses to key its cached projection plans.
#[derive(Debug, Clone)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

/// The process-wide schema interner (content-addressed).
struct Interner {
    ids: FxHashMap<Schema, SchemaId>,
    schemas: Vec<Schema>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            ids: FxHashMap::default(),
            schemas: Vec::new(),
        })
    })
}

impl Schema {
    /// Build a schema from fields. Fails on duplicate attribute names.
    pub fn new(fields: Vec<Field>) -> Result<Schema> {
        let mut index = FxHashMap::default();
        for (i, f) in fields.iter().enumerate() {
            if index.insert(f.name.clone(), i as u32).is_some() {
                return Err(CosmosError::Schema(format!(
                    "duplicate attribute name '{}'",
                    f.name
                )));
            }
        }
        Ok(Schema {
            inner: Arc::new(SchemaInner {
                fields: fields.into(),
                index,
                id: OnceLock::new(),
            }),
        })
    }

    /// Build a schema from `(name, type)` pairs; panics on duplicates.
    /// Intended for statically known schemas in tests and workloads.
    pub fn of(pairs: &[(&str, AttrType)]) -> Schema {
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        )
        .expect("static schema must not contain duplicates")
    }

    /// The interned id of this schema. The first call registers the
    /// schema in the process-wide interner; structurally equal schemas
    /// (even separately constructed or deserialized) return the same id.
    /// The result is cached inside the schema, so repeated calls are a
    /// single atomic load.
    pub fn id(&self) -> SchemaId {
        *self.inner.id.get_or_init(|| {
            let mut int = interner().lock().expect("schema interner poisoned");
            if let Some(&id) = int.ids.get(self) {
                return id;
            }
            let id = SchemaId(u32::try_from(int.schemas.len()).expect("interner overflow"));
            int.ids.insert(self.clone(), id);
            int.schemas.push(self.clone());
            id
        })
    }

    /// Resolve an interned id back to its canonical schema.
    pub fn by_id(id: SchemaId) -> Option<Schema> {
        let int = interner().lock().expect("schema interner poisoned");
        int.schemas.get(id.0 as usize).cloned()
    }

    /// Number of distinct schemas interned so far in this process.
    pub fn interned_count() -> usize {
        interner()
            .lock()
            .expect("schema interner poisoned")
            .schemas
            .len()
    }

    /// The fields, in tuple order.
    pub fn fields(&self) -> &[Field] {
        &self.inner.fields
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.inner.fields.len()
    }

    /// Index of the attribute with the given name (`O(1)`).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.inner.index.get(name).map(|&i| i as usize)
    }

    /// The field with the given name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.index_of(name).map(|i| &self.inner.fields[i])
    }

    /// Whether the schema contains the attribute.
    pub fn contains(&self, name: &str) -> bool {
        self.inner.index.contains_key(name)
    }

    /// All attribute names, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.inner.fields.iter().map(|f| f.name.as_str())
    }

    /// Schema containing only the named attributes, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut out = Vec::with_capacity(names.len());
        for n in names {
            let f = self
                .field(n)
                .ok_or_else(|| CosmosError::Schema(format!("unknown attribute '{n}'")))?;
            out.push(f.clone());
        }
        Schema::new(out)
    }

    /// Concatenation of two schemas, with each attribute of `self`
    /// prefixed by `left_prefix.` and each of `other` by `right_prefix.`.
    ///
    /// This is how join result schemas are derived: qualified names keep
    /// same-named attributes from the two inputs distinct.
    pub fn join(&self, left_prefix: &str, other: &Schema, right_prefix: &str) -> Result<Schema> {
        let mut out = Vec::with_capacity(self.arity() + other.arity());
        for f in self.fields() {
            out.push(Field::new(format!("{left_prefix}.{}", f.name), f.ty));
        }
        for f in other.fields() {
            out.push(Field::new(format!("{right_prefix}.{}", f.name), f.ty));
        }
        Schema::new(out)
    }

    /// Average wire size, in bytes, of a tuple of this schema assuming
    /// scalar attributes (strings estimated at 12 bytes).
    pub fn estimated_tuple_bytes(&self) -> usize {
        self.fields()
            .iter()
            .map(|f| match f.ty {
                AttrType::Bool => 1,
                AttrType::Int | AttrType::Float => 8,
                AttrType::Str => 12,
            })
            .sum()
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Schema) -> bool {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return true;
        }
        // Two already-interned schemas compare by id (an O(1) check).
        if let (Some(a), Some(b)) = (self.inner.id.get(), other.inner.id.get()) {
            return a == b;
        }
        self.inner.fields == other.inner.fields
    }
}

impl Eq for Schema {}

impl Hash for Schema {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.fields.hash(state);
    }
}

impl Serialize for Schema {
    fn to_content(&self) -> Content {
        // Same wire shape as the former derived impl: {"fields": [...]}.
        Content::Map(vec![(
            Content::Str("fields".into()),
            self.fields().to_content(),
        )])
    }
}

impl Deserialize for Schema {
    fn from_content(c: &Content) -> std::result::Result<Schema, DeError> {
        let fields = Vec::<Field>::from_content(serde::map_get(c, "fields")?)?;
        Schema::new(fields).map_err(|e| DeError::custom(e.to_string()))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fld) in self.fields().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", fld.name, fld.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn auction_schema() -> Schema {
        Schema::of(&[
            ("itemID", AttrType::Int),
            ("sellerID", AttrType::Int),
            ("start_price", AttrType::Float),
            ("timestamp", AttrType::Int),
        ])
    }

    #[test]
    fn lookup_and_order() {
        let s = auction_schema();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.index_of("sellerID"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert!(s.contains("timestamp"));
        assert_eq!(s.names().collect::<Vec<_>>()[0], "itemID");
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Field::new("a", AttrType::Int),
            Field::new("a", AttrType::Float),
        ])
        .unwrap_err();
        assert_eq!(err.kind(), "schema");
    }

    #[test]
    fn projection_keeps_requested_order() {
        let s = auction_schema();
        let p = s.project(&["timestamp", "itemID"]).unwrap();
        assert_eq!(p.names().collect::<Vec<_>>(), vec!["timestamp", "itemID"]);
        assert!(s.project(&["missing"]).is_err());
    }

    #[test]
    fn join_qualifies_names() {
        let open = auction_schema();
        let closed = Schema::of(&[
            ("itemID", AttrType::Int),
            ("buyerID", AttrType::Int),
            ("timestamp", AttrType::Int),
        ]);
        let j = open.join("O", &closed, "C").unwrap();
        assert_eq!(j.arity(), 7);
        assert!(j.contains("O.itemID"));
        assert!(j.contains("C.itemID"));
        assert!(j.contains("C.buyerID"));
    }

    #[test]
    fn admits_follows_coercion() {
        assert!(AttrType::Float.admits(&Value::Int(3)));
        assert!(!AttrType::Int.admits(&Value::Float(3.0)));
        assert!(AttrType::Str.admits(&Value::Null));
        assert!(AttrType::Int.is_numeric());
        assert!(!AttrType::Str.is_numeric());
    }

    #[test]
    fn estimated_bytes() {
        let s = Schema::of(&[
            ("a", AttrType::Int),
            ("b", AttrType::Str),
            ("c", AttrType::Bool),
        ]);
        assert_eq!(s.estimated_tuple_bytes(), 8 + 12 + 1);
    }

    #[test]
    fn display() {
        let s = Schema::of(&[("a", AttrType::Int)]);
        assert_eq!(s.to_string(), "(a INT)");
    }

    #[test]
    fn interning_is_structural() {
        // Two independently built but equal schemas share one id; a
        // clone trivially does; a different schema gets a different id.
        let a = auction_schema();
        let b = auction_schema();
        let c = a.clone();
        assert_eq!(a.id(), b.id());
        assert_eq!(a.id(), c.id());
        let other = Schema::of(&[("zzz_unique_attr", AttrType::Bool)]);
        assert_ne!(a.id(), other.id());
        // resolution returns an equal schema
        assert_eq!(Schema::by_id(a.id()).unwrap(), a);
        assert!(Schema::interned_count() >= 2);
    }

    #[test]
    fn equality_and_hash_are_structural() {
        use std::collections::hash_map::DefaultHasher;
        let a = auction_schema();
        let b = auction_schema();
        assert_eq!(a, b);
        let h = |s: &Schema| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(h(&a), h(&b));
        // interning one side must not break equality with the other
        let _ = a.id();
        assert_eq!(a, b);
        assert_eq!(b, a);
    }

    #[test]
    fn serde_roundtrip_reinterns() {
        let a = auction_schema();
        let json = serde_json::to_string(&a).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.id(), a.id());
        // duplicate fields on the wire are rejected
        let bad = r#"{"fields":[{"name":"a","ty":"Int"},{"name":"a","ty":"Int"}]}"#;
        assert!(serde_json::from_str::<Schema>(bad).is_err());
    }
}
