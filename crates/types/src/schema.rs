//! Stream schemas.

use crate::{CosmosError, Result, Value};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Runtime type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrType {
    /// Boolean attribute.
    Bool,
    /// 64-bit integer attribute.
    Int,
    /// 64-bit float attribute.
    Float,
    /// UTF-8 string attribute.
    Str,
}

impl AttrType {
    /// Whether a value inhabits this type (`Null` inhabits every type).
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (AttrType::Bool, Value::Bool(_))
                | (AttrType::Int, Value::Int(_))
                | (AttrType::Float, Value::Float(_))
                | (AttrType::Float, Value::Int(_))
                | (AttrType::Str, Value::Str(_))
        )
    }

    /// Whether the type is numeric (comparable with numeric constants).
    pub fn is_numeric(self) -> bool {
        matches!(self, AttrType::Int | AttrType::Float)
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Bool => "BOOL",
            AttrType::Int => "INT",
            AttrType::Float => "FLOAT",
            AttrType::Str => "STRING",
        };
        f.write_str(s)
    }
}

/// A named, typed attribute of a stream schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    /// Attribute name. Source streams use bare names (`itemID`); derived
    /// result streams use qualified names (`O.itemID`).
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of attributes describing the tuples of one stream.
///
/// Schemas are immutable and cheap to clone (`Arc` inside). Field order is
/// the on-the-wire tuple order; lookups by name are linear, which is fine
/// at schema widths seen in stream systems (≤ a few dozen attributes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Arc<[Field]>,
}

impl Schema {
    /// Build a schema from fields. Fails on duplicate attribute names.
    pub fn new(fields: Vec<Field>) -> Result<Schema> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(CosmosError::Schema(format!(
                    "duplicate attribute name '{}'",
                    f.name
                )));
            }
        }
        Ok(Schema {
            fields: fields.into(),
        })
    }

    /// Build a schema from `(name, type)` pairs; panics on duplicates.
    /// Intended for statically known schemas in tests and workloads.
    pub fn of(pairs: &[(&str, AttrType)]) -> Schema {
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        )
        .expect("static schema must not contain duplicates")
    }

    /// The fields, in tuple order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Index of the attribute with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The field with the given name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Whether the schema contains the attribute.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// All attribute names, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|f| f.name.as_str())
    }

    /// Schema containing only the named attributes, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut out = Vec::with_capacity(names.len());
        for n in names {
            let f = self
                .field(n)
                .ok_or_else(|| CosmosError::Schema(format!("unknown attribute '{n}'")))?;
            out.push(f.clone());
        }
        Schema::new(out)
    }

    /// Concatenation of two schemas, with each attribute of `self`
    /// prefixed by `left_prefix.` and each of `other` by `right_prefix.`.
    ///
    /// This is how join result schemas are derived: qualified names keep
    /// same-named attributes from the two inputs distinct.
    pub fn join(&self, left_prefix: &str, other: &Schema, right_prefix: &str) -> Result<Schema> {
        let mut out = Vec::with_capacity(self.arity() + other.arity());
        for f in self.fields() {
            out.push(Field::new(format!("{left_prefix}.{}", f.name), f.ty));
        }
        for f in other.fields() {
            out.push(Field::new(format!("{right_prefix}.{}", f.name), f.ty));
        }
        Schema::new(out)
    }

    /// Average wire size, in bytes, of a tuple of this schema assuming
    /// scalar attributes (strings estimated at 12 bytes).
    pub fn estimated_tuple_bytes(&self) -> usize {
        self.fields
            .iter()
            .map(|f| match f.ty {
                AttrType::Bool => 1,
                AttrType::Int | AttrType::Float => 8,
                AttrType::Str => 12,
            })
            .sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", fld.name, fld.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn auction_schema() -> Schema {
        Schema::of(&[
            ("itemID", AttrType::Int),
            ("sellerID", AttrType::Int),
            ("start_price", AttrType::Float),
            ("timestamp", AttrType::Int),
        ])
    }

    #[test]
    fn lookup_and_order() {
        let s = auction_schema();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.index_of("sellerID"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert!(s.contains("timestamp"));
        assert_eq!(s.names().collect::<Vec<_>>()[0], "itemID");
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Field::new("a", AttrType::Int),
            Field::new("a", AttrType::Float),
        ])
        .unwrap_err();
        assert_eq!(err.kind(), "schema");
    }

    #[test]
    fn projection_keeps_requested_order() {
        let s = auction_schema();
        let p = s.project(&["timestamp", "itemID"]).unwrap();
        assert_eq!(p.names().collect::<Vec<_>>(), vec!["timestamp", "itemID"]);
        assert!(s.project(&["missing"]).is_err());
    }

    #[test]
    fn join_qualifies_names() {
        let open = auction_schema();
        let closed = Schema::of(&[
            ("itemID", AttrType::Int),
            ("buyerID", AttrType::Int),
            ("timestamp", AttrType::Int),
        ]);
        let j = open.join("O", &closed, "C").unwrap();
        assert_eq!(j.arity(), 7);
        assert!(j.contains("O.itemID"));
        assert!(j.contains("C.itemID"));
        assert!(j.contains("C.buyerID"));
    }

    #[test]
    fn admits_follows_coercion() {
        assert!(AttrType::Float.admits(&Value::Int(3)));
        assert!(!AttrType::Int.admits(&Value::Float(3.0)));
        assert!(AttrType::Str.admits(&Value::Null));
        assert!(AttrType::Int.is_numeric());
        assert!(!AttrType::Str.is_numeric());
    }

    #[test]
    fn estimated_bytes() {
        let s = Schema::of(&[
            ("a", AttrType::Int),
            ("b", AttrType::Str),
            ("c", AttrType::Bool),
        ]);
        assert_eq!(s.estimated_tuple_bytes(), 8 + 12 + 1);
    }

    #[test]
    fn display() {
        let s = Schema::of(&[("a", AttrType::Int)]);
        assert_eq!(s.to_string(), "(a INT)");
    }
}
