//! Punctuation datagrams: watermarks that flow through the network.
//!
//! Out-of-order streams need a signal that lets operators close windows
//! and prune state (Fernández-Moctezuma et al.; ROADMAP "out-of-order
//! streams and punctuation feedback"). COSMOS models that signal as a
//! first-class datagram: a [`Punctuation`] carries, for one stream, a
//! low-water promise — *no future datagram of this stream will carry a
//! timestamp at or below the watermark*. Punctuations route along the
//! same dissemination trees as data and are accounted on every link
//! they cross, exactly like tuples.

use crate::{StreamName, Timestamp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A watermark datagram for one stream.
///
/// The emitter promises that every datagram of `stream` it will ever
/// publish after this punctuation has `timestamp > watermark`. Receivers
/// may close windows up to the watermark and evict state below it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Punctuation {
    /// The stream the promise is about.
    pub stream: StreamName,
    /// The low-water promise: no future datagram at or below this time.
    pub watermark: Timestamp,
}

impl Punctuation {
    /// Build a punctuation.
    pub fn new(stream: impl Into<StreamName>, watermark: Timestamp) -> Punctuation {
        Punctuation {
            stream: stream.into(),
            watermark,
        }
    }

    /// Wire size in bytes: the same 2-byte stream id + 8-byte timestamp
    /// header a [`crate::Tuple`] carries, plus the 8-byte watermark.
    pub fn size_bytes(&self) -> usize {
        18
    }
}

impl fmt::Display for Punctuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wm({} ≤ {})", self.stream, self.watermark)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_size() {
        let p = Punctuation::new("S", Timestamp(42));
        assert_eq!(p.stream.as_str(), "S");
        assert_eq!(p.watermark, Timestamp(42));
        assert_eq!(p.size_bytes(), 18);
    }

    #[test]
    fn display_names_stream_and_watermark() {
        let p = Punctuation::new("sensors_00", Timestamp(1_000));
        assert_eq!(p.to_string(), "wm(sensors_00 ≤ t1000)");
    }

    #[test]
    fn serde_round_trip() {
        let p = Punctuation::new("S", Timestamp(-7));
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<Punctuation>(&json).unwrap(), p);
    }
}
