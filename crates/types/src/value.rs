//! Dynamically typed attribute values.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single attribute value inside a datagram.
///
/// Values carry their own runtime type. Comparisons between `Int` and
/// `Float` coerce the integer to a float, mirroring the numeric semantics
/// of the CQL subset; comparisons between incompatible types are reported
/// as `None` by [`Value::partial_cmp_coerce`] so predicate evaluation can
/// treat them as "does not satisfy".
///
/// `Value` implements a *total* order ([`Ord`]) so it can be used as a
/// grouping key; the total order places types in a fixed ranking
/// (`Null < Bool < numeric < Str`) and orders NaN floats last within the
/// numeric band.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Absent / unknown value.
    Null,
    /// Boolean value.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// Interned UTF-8 string; `Arc` keeps tuple cloning cheap.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// True when this value is `Null`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as an `f64` when it is numeric.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as an `i64` when it is an integer.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a string slice when it is a string.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool when it is a bool.
    #[inline]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compare two values with numeric coercion.
    ///
    /// Returns `None` when the types are incomparable (e.g. `Int` vs
    /// `Str`) or when either side is `Null` or a NaN float. This is the
    /// comparison used by predicate evaluation: an incomparable pair never
    /// satisfies any constraint.
    pub fn partial_cmp_coerce(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Equality with numeric coercion (`Int(3) == Float(3.0)`);
    /// `Null` is never equal to anything, including `Null`.
    pub fn eq_coerce(&self, other: &Value) -> bool {
        self.partial_cmp_coerce(other) == Some(Ordering::Equal)
    }

    /// Approximate wire size of this value in bytes.
    ///
    /// Used by the communication-cost accounting: a fixed 8 bytes for
    /// scalars, `1 + len` for strings (length byte plus payload), 1 byte
    /// for nulls/bools.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => 1 + s.len(),
        }
    }

    /// Rank of the type band used by the total order.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            (a, b) if a.type_rank() == 2 && b.type_rank() == 2 => {
                // Numeric band: order by value, NaN last, Int(3)==Float(3).
                let x = a.as_f64().expect("numeric");
                let y = b.as_f64().expect("numeric");
                match x.partial_cmp(&y) {
                    Some(ord) => ord,
                    None => match (x.is_nan(), y.is_nan()) {
                        (true, true) => Ordering::Equal,
                        (true, false) => Ordering::Greater,
                        (false, true) => Ordering::Less,
                        (false, false) => unreachable!("non-NaN incomparable floats"),
                    },
                }
            }
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats hash identically when numerically equal so
            // that the Hash/Eq contract holds under coercion.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                let canonical = if f.is_nan() { f64::NAN } else { *f };
                canonical.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_coercion_compares_int_and_float() {
        assert!(Value::Int(3).eq_coerce(&Value::Float(3.0)));
        assert_eq!(
            Value::Int(2).partial_cmp_coerce(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(10.0).partial_cmp_coerce(&Value::Int(4)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn null_is_incomparable() {
        assert_eq!(Value::Null.partial_cmp_coerce(&Value::Int(1)), None);
        assert!(!Value::Null.eq_coerce(&Value::Null));
    }

    #[test]
    fn cross_type_is_incomparable_under_coercion() {
        assert_eq!(Value::Int(1).partial_cmp_coerce(&Value::str("a")), None);
        assert_eq!(Value::Bool(true).partial_cmp_coerce(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_ranks_types() {
        let mut vs = vec![
            Value::str("a"),
            Value::Int(0),
            Value::Bool(false),
            Value::Null,
            Value::Float(-1.0),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Bool(false),
                Value::Float(-1.0),
                Value::Int(0),
                Value::str("a"),
            ]
        );
    }

    #[test]
    fn nan_sorts_last_in_numeric_band_and_equals_itself() {
        let mut vs = [Value::Float(f64::NAN), Value::Float(1.0), Value::Int(5)];
        vs.sort();
        assert_eq!(vs[0], Value::Float(1.0));
        assert_eq!(vs[1], Value::Int(5));
        assert!(matches!(vs[2], Value::Float(f) if f.is_nan()));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }

    #[test]
    fn hash_respects_numeric_eq() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
    }

    #[test]
    fn size_bytes_model() {
        assert_eq!(Value::Null.size_bytes(), 1);
        assert_eq!(Value::Bool(true).size_bytes(), 1);
        assert_eq!(Value::Int(7).size_bytes(), 8);
        assert_eq!(Value::Float(7.0).size_bytes(), 8);
        assert_eq!(Value::str("abc").size_bytes(), 4);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::str("x").to_string(), "'x'");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(2.5f64).as_f64(), Some(2.5));
        assert_eq!(Value::Int(9).as_i64(), Some(9));
    }
}
