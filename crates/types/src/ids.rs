//! Small identifier newtypes.
//!
//! All ids are plain integers wrapped in newtypes so they cannot be mixed
//! up across subsystems. They are `Copy`, ordered and hashable, and print
//! with a short prefix for readable logs (`n17`, `q3`, …).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $repr:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// Raw integer value of the id.
            #[inline]
            pub fn raw(self) -> $repr {
                self.0
            }

            /// Index form, for direct use with `Vec` storage.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(v: $repr) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifier of an overlay node (broker or processor).
    NodeId,
    "n",
    u32
);
id_type!(
    /// Identifier of a user query registered with the system.
    QueryId,
    "q",
    u64
);
id_type!(
    /// Identifier of a data-interest profile installed in the CBN.
    ProfileId,
    "p",
    u64
);
id_type!(
    /// Identifier of a subscriber (a local consumer attached to a node).
    SubscriberId,
    "sub",
    u64
);
id_type!(
    /// Identifier of a query group maintained by a processor.
    GroupId,
    "g",
    u64
);
id_type!(
    /// Identifier of an undirected overlay link.
    LinkId,
    "l",
    u32
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(NodeId(17).to_string(), "n17");
        assert_eq!(QueryId(3).to_string(), "q3");
        assert_eq!(ProfileId(0).to_string(), "p0");
        assert_eq!(SubscriberId(9).to_string(), "sub9");
        assert_eq!(GroupId(5).to_string(), "g5");
        assert_eq!(LinkId(2).to_string(), "l2");
    }

    #[test]
    fn ordering_and_raw_roundtrip() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId::from(7u32).raw(), 7);
        assert_eq!(QueryId(11).index(), 11);
    }
}
