#![forbid(unsafe_code)]
//! Core data model shared by every COSMOS crate.
//!
//! COSMOS (ICDE 2008) models stream data as *datagrams*: tuples of
//! attribute/value pairs tagged with a stream name and an application
//! timestamp. This crate defines those primitives:
//!
//! * [`Value`] — a dynamically typed attribute value with a total order
//!   suitable for predicate evaluation and grouping.
//! * [`Schema`] / [`Field`] / [`AttrType`] — stream schemas.
//! * [`Tuple`] — a timestamped datagram belonging to a named stream.
//! * [`Timestamp`] / [`TimeDelta`] — the discrete application time domain
//!   `T` of the paper (Section 4, Definition 1).
//! * Identifier newtypes ([`NodeId`], [`QueryId`], [`SubscriberId`], …).
//! * [`CosmosError`] — the shared error type.
//!
//! Everything here is deliberately free of I/O and of any dependency on the
//! networking or query layers so that all higher crates can share it.

mod control;
mod error;
mod ids;
mod num;
mod punctuation;
mod schema;
mod time;
mod tuple;
mod value;

pub use control::RateLimit;
pub use error::{CosmosError, Result};
pub use ids::{GroupId, LinkId, NodeId, ProfileId, QueryId, SubscriberId};
pub use num::NeumaierSum;
pub use punctuation::Punctuation;
pub use schema::{AttrType, Field, Schema, SchemaId};
pub use time::{TimeDelta, Timestamp};
pub use tuple::{StreamName, Tuple};
pub use value::Value;

/// Convenience alias for the fast hash map used on hot paths
/// (see the performance notes in DESIGN.md).
pub type FxHashMap<K, V> = rustc_hash::FxHashMap<K, V>;
/// Convenience alias for the fast hash set used on hot paths.
pub type FxHashSet<K> = rustc_hash::FxHashSet<K>;
