//! Compensated floating-point summation.
//!
//! The determinism contract requires f64 accumulations that feed
//! digests, metrics, or oracles to be insensitive to rounding drift: a
//! plain `f64 +=` loop accumulates low-order residue that depends on
//! evaluation history (window evictions subtract; merged plans change
//! association), so two semantically equal runs can disagree in the
//! last ulps. Kahan–Neumaier summation carries the lost low-order bits
//! in a compensation term, keeping every readout within an ulp or two
//! of the exact sum of the current contributions. The SPE's windowed
//! aggregates hit this first (the testkit sweep caught seeds whose AVG
//! drifted); `cosmos-detlint`'s D0501 now flags bare accumulations so
//! new sites reach for this type instead.

/// A Kahan–Neumaier compensated running sum.
///
/// Supports subtraction (pass a negative `x`), so sliding-window
/// retractions stay accurate too.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NeumaierSum {
    sum: f64,
    /// Accumulated low-order bits lost by `sum` updates; the exposed
    /// total is `sum + comp`.
    comp: f64,
}

impl NeumaierSum {
    /// An empty sum.
    pub fn new() -> NeumaierSum {
        NeumaierSum::default()
    }

    /// Compensated `sum += x` (Neumaier's variant, correct whichever of
    /// the addends is larger).
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated running total.
    pub fn total(&self) -> f64 {
        self.sum + self.comp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compensates_magnitude_disparity() {
        // Classic Neumaier showcase: 1 + 1e100 + 1 - 1e100 = 2 exactly
        // with compensation, 0.0 without.
        let mut s = NeumaierSum::new();
        for x in [1.0, 1e100, 1.0, -1e100] {
            s.add(x);
        }
        assert_eq!(s.total(), 2.0);
    }

    #[test]
    fn insert_then_retract_returns_to_zero_ulps() {
        let mut s = NeumaierSum::new();
        let xs = [0.1, 0.2, 0.3, 1e9, 0.7];
        for x in xs {
            s.add(x);
        }
        for x in xs {
            s.add(-x);
        }
        assert!(s.total().abs() < 1e-9, "residue = {}", s.total());
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NeumaierSum::default().total(), 0.0);
    }
}
