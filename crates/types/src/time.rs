//! The application time domain.
//!
//! The paper assumes "an application discrete time domain T where the
//! timestamps of the input stream data are drawn from" (Section 4). We use
//! milliseconds in an `i64`, which gives ±292 million years of range —
//! enough for any experiment while keeping arithmetic exact.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in the discrete application time domain, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub i64);

/// A signed span of application time, in milliseconds.
///
/// Window sizes are `TimeDelta`s; the paper's window predicate `w(T)`
/// takes a positive interval, with `T = ∞` ([`TimeDelta::INFINITE`])
/// recovering an unbounded window and `T = 0` ([`TimeDelta::ZERO`])
/// recovering the CQL `[Now]` window.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimeDelta(pub i64);

impl Timestamp {
    /// Time zero.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Milliseconds since time zero.
    #[inline]
    pub fn millis(self) -> i64 {
        self.0
    }

    /// Saturating difference `self - other`.
    #[inline]
    pub fn delta_since(self, other: Timestamp) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(other.0))
    }
}

impl TimeDelta {
    /// The empty span (the CQL `[Now]` window).
    pub const ZERO: TimeDelta = TimeDelta(0);
    /// Sentinel for an unbounded (`∞`) window.
    pub const INFINITE: TimeDelta = TimeDelta(i64::MAX);

    /// A span of whole milliseconds.
    pub const fn from_millis(ms: i64) -> TimeDelta {
        TimeDelta(ms)
    }
    /// A span of whole seconds.
    pub const fn from_secs(s: i64) -> TimeDelta {
        TimeDelta(s * 1_000)
    }
    /// A span of whole minutes.
    pub const fn from_mins(m: i64) -> TimeDelta {
        TimeDelta(m * 60_000)
    }
    /// A span of whole hours.
    pub const fn from_hours(h: i64) -> TimeDelta {
        TimeDelta(h * 3_600_000)
    }
    /// A span of whole days.
    pub const fn from_days(d: i64) -> TimeDelta {
        TimeDelta(d * 86_400_000)
    }

    /// Milliseconds in this span.
    #[inline]
    pub fn millis(self) -> i64 {
        self.0
    }

    /// True when this span is the `∞` sentinel.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self == TimeDelta::INFINITE
    }

    /// Fractional seconds in this span (`∞` maps to `f64::INFINITY`).
    pub fn as_secs_f64(self) -> f64 {
        if self.is_infinite() {
            f64::INFINITY
        } else {
            self.0 as f64 / 1_000.0
        }
    }

    /// The larger of two spans, treating `∞` as the top element.
    pub fn max_window(self, other: TimeDelta) -> TimeDelta {
        if self.is_infinite() || other.is_infinite() {
            TimeDelta::INFINITE
        } else {
            TimeDelta(self.0.max(other.0))
        }
    }
}

impl Add<TimeDelta> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<TimeDelta> for Timestamp {
    fn add_assign(&mut self, rhs: TimeDelta) {
        *self = *self + rhs;
    }
}

impl Sub<TimeDelta> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = TimeDelta;
    fn sub(self, rhs: Timestamp) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(rhs.0))
    }
}

impl Add<TimeDelta> for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        if self.is_infinite() || rhs.is_infinite() {
            TimeDelta::INFINITE
        } else {
            TimeDelta(self.0.saturating_add(rhs.0))
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            return write!(f, "inf");
        }
        let ms = self.0;
        if ms % 3_600_000 == 0 && ms != 0 {
            write!(f, "{}h", ms / 3_600_000)
        } else if ms % 60_000 == 0 && ms != 0 {
            write!(f, "{}m", ms / 60_000)
        } else if ms % 1_000 == 0 && ms != 0 {
            write!(f, "{}s", ms / 1_000)
        } else {
            write!(f, "{ms}ms")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(TimeDelta::from_secs(2).millis(), 2_000);
        assert_eq!(TimeDelta::from_mins(3).millis(), 180_000);
        assert_eq!(TimeDelta::from_hours(1).millis(), 3_600_000);
        assert_eq!(TimeDelta::from_days(1).millis(), 86_400_000);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp(1_000);
        assert_eq!(t + TimeDelta::from_secs(1), Timestamp(2_000));
        assert_eq!(t - TimeDelta::from_secs(1), Timestamp(0));
        assert_eq!(Timestamp(5_000) - Timestamp(2_000), TimeDelta(3_000));
        let mut u = Timestamp::ZERO;
        u += TimeDelta::from_millis(7);
        assert_eq!(u, Timestamp(7));
    }

    #[test]
    fn infinite_is_absorbing() {
        assert!(TimeDelta::INFINITE.is_infinite());
        assert_eq!(
            TimeDelta::INFINITE + TimeDelta::from_secs(1),
            TimeDelta::INFINITE
        );
        assert_eq!(
            TimeDelta::from_secs(1).max_window(TimeDelta::INFINITE),
            TimeDelta::INFINITE
        );
        assert_eq!(TimeDelta::INFINITE.as_secs_f64(), f64::INFINITY);
    }

    #[test]
    fn max_window_of_finite_spans() {
        assert_eq!(
            TimeDelta::from_hours(3).max_window(TimeDelta::from_hours(5)),
            TimeDelta::from_hours(5)
        );
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(TimeDelta::from_hours(3).to_string(), "3h");
        assert_eq!(TimeDelta::from_mins(5).to_string(), "5m");
        assert_eq!(TimeDelta::from_secs(7).to_string(), "7s");
        assert_eq!(TimeDelta::from_millis(13).to_string(), "13ms");
        assert_eq!(TimeDelta::ZERO.to_string(), "0ms");
        assert_eq!(TimeDelta::INFINITE.to_string(), "inf");
        assert_eq!(Timestamp(4).to_string(), "t4");
    }

    #[test]
    fn saturating_behaviour_at_extremes() {
        let far = Timestamp(i64::MAX - 1);
        assert_eq!(far + TimeDelta::from_hours(1), Timestamp(i64::MAX));
        assert_eq!(Timestamp(i64::MIN + 1) - TimeDelta(5), Timestamp(i64::MIN));
    }
}
