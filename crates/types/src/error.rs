//! Shared error type for the COSMOS workspace.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, CosmosError>;

/// Errors produced anywhere in the COSMOS stack.
///
/// A single error enum keeps cross-crate plumbing simple; each variant
/// carries a human-readable message with enough context to act on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CosmosError {
    /// A CQL statement failed to lex or parse.
    Parse(String),
    /// A parsed query failed semantic analysis (unknown stream/attribute,
    /// type mismatch, unsupported construct).
    Analyze(String),
    /// A schema lookup failed or two schemas were incompatible.
    Schema(String),
    /// A value had the wrong type for the requested operation.
    Type(String),
    /// The content-based network refused an operation (unknown stream,
    /// malformed profile, routing inconsistency).
    Network(String),
    /// The overlay layer refused an operation (unknown node, disconnected
    /// graph, invalid tree move).
    Overlay(String),
    /// The query layer refused an operation (queries not mergeable,
    /// unknown query/group id).
    Query(String),
    /// The stream processing engine refused an operation.
    Engine(String),
    /// Static analysis rejected a query or profile (an Error-level lint
    /// diagnostic; the message carries the diagnostic code).
    Lint(String),
    /// Simulation/system-level misuse (unknown node id, duplicate stream
    /// registration, …).
    System(String),
}

impl CosmosError {
    /// Short machine-friendly category name, useful in logs and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            CosmosError::Parse(_) => "parse",
            CosmosError::Analyze(_) => "analyze",
            CosmosError::Schema(_) => "schema",
            CosmosError::Type(_) => "type",
            CosmosError::Network(_) => "network",
            CosmosError::Overlay(_) => "overlay",
            CosmosError::Query(_) => "query",
            CosmosError::Engine(_) => "engine",
            CosmosError::Lint(_) => "lint",
            CosmosError::System(_) => "system",
        }
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            CosmosError::Parse(m)
            | CosmosError::Analyze(m)
            | CosmosError::Schema(m)
            | CosmosError::Type(m)
            | CosmosError::Network(m)
            | CosmosError::Overlay(m)
            | CosmosError::Query(m)
            | CosmosError::Engine(m)
            | CosmosError::Lint(m)
            | CosmosError::System(m) => m,
        }
    }
}

impl fmt::Display for CosmosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind(), self.message())
    }
}

impl std::error::Error for CosmosError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = CosmosError::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse error: unexpected token");
        assert_eq!(e.kind(), "parse");
        assert_eq!(e.message(), "unexpected token");
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            CosmosError::Parse(String::new()).kind(),
            CosmosError::Analyze(String::new()).kind(),
            CosmosError::Schema(String::new()).kind(),
            CosmosError::Type(String::new()).kind(),
            CosmosError::Network(String::new()).kind(),
            CosmosError::Overlay(String::new()).kind(),
            CosmosError::Query(String::new()).kind(),
            CosmosError::Engine(String::new()).kind(),
            CosmosError::Lint(String::new()).kind(),
            CosmosError::System(String::new()).kind(),
        ];
        let set: std::collections::BTreeSet<_> = kinds.iter().collect();
        assert_eq!(set.len(), kinds.len());
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&CosmosError::System("x".into()));
    }
}
