//! Control-plane datagrams: backpressure notices that flow upstream.
//!
//! Overloaded consumers need a way to tell producers to slow down, and
//! the signal should ride the same datagram plane as data — routed along
//! the dissemination tree, link-byte accounted, fully deterministic
//! (Fernández-Moctezuma et al.'s inter-operator feedback, mirrored for
//! rate control). A [`RateLimit`] is the throttle counterpart of a
//! [`crate::Punctuation`]: where a punctuation promises "nothing older
//! than the watermark", a rate-limit requests "no faster than this
//! budget" for one stream, back toward its origin.

use crate::{NodeId, StreamName};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An upstream rate-limit request for one stream.
///
/// Emitted by an overloaded node's controller and routed reverse along
/// the stream's dissemination tree toward the origin. Advisory at the
/// origin in this build: the driver records it so placement policies
/// (cost-model-driven shed placement per Benoit et al.) can act on it
/// later, but the origin does not yet pace its publishes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateLimit {
    /// The stream being throttled.
    pub stream: StreamName,
    /// The node whose intake budget was exceeded.
    pub from: NodeId,
    /// Requested ceiling, in bytes per rate-window, at the origin.
    pub budget_bytes: u64,
}

impl RateLimit {
    /// Build a rate-limit notice.
    pub fn new(stream: impl Into<StreamName>, from: NodeId, budget_bytes: u64) -> RateLimit {
        RateLimit {
            stream: stream.into(),
            from,
            budget_bytes,
        }
    }

    /// Wire size in bytes: the 2-byte stream id + 8-byte timestamp
    /// header every datagram carries, plus a 4-byte node id and the
    /// 8-byte byte budget.
    pub fn size_bytes(&self) -> usize {
        22
    }
}

impl fmt::Display for RateLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "throttle({} ≤ {}B/win from n{})",
            self.stream, self.budget_bytes, self.from.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_size() {
        let r = RateLimit::new("S", NodeId(3), 4_096);
        assert_eq!(r.stream.as_str(), "S");
        assert_eq!(r.from, NodeId(3));
        assert_eq!(r.budget_bytes, 4_096);
        assert_eq!(r.size_bytes(), 22);
    }

    #[test]
    fn display_names_stream_budget_and_origin() {
        let r = RateLimit::new("sensors_00", NodeId(7), 1_000);
        assert_eq!(r.to_string(), "throttle(sensors_00 ≤ 1000B/win from n7)");
    }

    #[test]
    fn serde_round_trip() {
        let r = RateLimit::new("S", NodeId(0), 9);
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<RateLimit>(&json).unwrap(), r);
    }
}
