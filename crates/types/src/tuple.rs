//! Datagrams: timestamped tuples tagged with a stream name.

use crate::{CosmosError, Result, Schema, Timestamp, Value};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// An interned stream name.
///
/// Stream names identify both source streams (`OpenAuction`) and derived
/// result streams (`result::q3`). The `Arc<str>` representation makes
/// cloning (which happens on every routing hop) a refcount bump.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StreamName(Arc<str>);

impl StreamName {
    /// Intern a stream name.
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        StreamName(name.into())
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for StreamName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for StreamName {
    fn from(s: &str) -> Self {
        StreamName::new(s)
    }
}

impl From<String> for StreamName {
    fn from(s: String) -> Self {
        StreamName::new(s)
    }
}

/// A datagram: one tuple of a named stream at an application timestamp.
///
/// The value vector is positionally aligned with the stream's [`Schema`].
/// Values are stored behind an `Arc` so that fan-out inside the
/// content-based network clones cheaply; projection produces a fresh
/// (shorter) vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tuple {
    /// The stream this datagram belongs to.
    pub stream: StreamName,
    /// Application timestamp drawn from the discrete time domain `T`.
    pub timestamp: Timestamp,
    values: Arc<[Value]>,
}

impl Tuple {
    /// Build a tuple.
    pub fn new(stream: impl Into<StreamName>, timestamp: Timestamp, values: Vec<Value>) -> Self {
        Tuple {
            stream: stream.into(),
            timestamp,
            values: values.into(),
        }
    }

    /// The attribute values, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at a positional index.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Value of the named attribute under the given schema.
    pub fn get_by_name<'a>(&'a self, schema: &Schema, name: &str) -> Option<&'a Value> {
        schema.index_of(name).and_then(|i| self.values.get(i))
    }

    /// Project the tuple onto the given positional indices (early
    /// projection inside the CBN, Section 3.1 of the paper).
    pub fn project_indices(&self, indices: &[usize]) -> Result<Tuple> {
        let mut out = Vec::with_capacity(indices.len());
        for &i in indices {
            let v = self.values.get(i).ok_or_else(|| {
                CosmosError::Type(format!(
                    "projection index {i} out of range for arity {}",
                    self.values.len()
                ))
            })?;
            out.push(v.clone());
        }
        Ok(Tuple {
            stream: self.stream.clone(),
            timestamp: self.timestamp,
            values: out.into(),
        })
    }

    /// Re-tag the tuple as belonging to a different stream (used when a
    /// processor publishes a representative-query result stream).
    pub fn retag(&self, stream: impl Into<StreamName>) -> Tuple {
        Tuple {
            stream: stream.into(),
            timestamp: self.timestamp,
            values: Arc::clone(&self.values),
        }
    }

    /// Wire size in bytes: stream-name header plus all values.
    pub fn size_bytes(&self) -> usize {
        // 2-byte stream id on the wire plus 8-byte timestamp.
        10 + self.values.iter().map(Value::size_bytes).sum::<usize>()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}[", self.stream, self.timestamp)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrType;

    fn tup() -> Tuple {
        Tuple::new(
            "S",
            Timestamp(42),
            vec![Value::Int(1), Value::str("x"), Value::Float(2.5)],
        )
    }

    #[test]
    fn accessors() {
        let t = tup();
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), Some(&Value::Int(1)));
        assert_eq!(t.get(3), None);
        let schema = Schema::of(&[
            ("a", AttrType::Int),
            ("b", AttrType::Str),
            ("c", AttrType::Float),
        ]);
        assert_eq!(t.get_by_name(&schema, "b"), Some(&Value::str("x")));
        assert_eq!(t.get_by_name(&schema, "nope"), None);
    }

    #[test]
    fn projection_selects_and_orders() {
        let t = tup();
        let p = t.project_indices(&[2, 0]).unwrap();
        assert_eq!(p.values(), &[Value::Float(2.5), Value::Int(1)]);
        assert_eq!(p.timestamp, t.timestamp);
        assert_eq!(p.stream, t.stream);
        assert!(t.project_indices(&[9]).is_err());
    }

    #[test]
    fn retag_changes_stream_only() {
        let t = tup();
        let r = t.retag("result::q1");
        assert_eq!(r.stream.as_str(), "result::q1");
        assert_eq!(r.values(), t.values());
        assert_eq!(r.timestamp, t.timestamp);
    }

    #[test]
    fn size_accounts_header_and_values() {
        let t = tup();
        // 10 header + 8 (int) + 2 ('x') + 8 (float)
        assert_eq!(t.size_bytes(), 28);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(tup().to_string(), "S@t42[1, 'x', 2.5]");
    }

    #[test]
    fn stream_name_interning() {
        let a = StreamName::from("abc");
        let b: StreamName = String::from("abc").into();
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "abc");
        assert_eq!(a.to_string(), "abc");
    }
}
