//! Serde round-trips for the wire-facing data model (profiles and
//! datagrams travel between nodes; in a networked deployment they would
//! be serialized exactly like this).

use cosmos_types::{AttrType, Field, NodeId, QueryId, Schema, Timestamp, Tuple, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // full-precision doubles: exact round-trips rely on serde_json's
        // `float_roundtrip` feature (enabled workspace-wide)
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z0-9 _-]{0,24}".prop_map(Value::str),
    ]
}

proptest! {
    /// Values survive JSON round-trips bit-for-bit (modulo the float
    /// range we generate, which excludes NaN).
    #[test]
    fn value_roundtrip(v in arb_value()) {
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(v, back);
    }

    /// Tuples round-trip, including stream name and timestamp.
    #[test]
    fn tuple_roundtrip(
        vs in proptest::collection::vec(arb_value(), 0..8),
        ts in any::<i64>(),
        name in "[a-zA-Z][a-zA-Z0-9_:]{0,16}",
    ) {
        let t = Tuple::new(name.as_str(), Timestamp(ts), vs);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tuple = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(t, back);
    }
}

#[test]
fn schema_roundtrip() {
    let s = Schema::new(vec![
        Field::new("a", AttrType::Int),
        Field::new("b", AttrType::Float),
        Field::new("c", AttrType::Str),
        Field::new("d", AttrType::Bool),
    ])
    .unwrap();
    let json = serde_json::to_string(&s).unwrap();
    let back: Schema = serde_json::from_str(&json).unwrap();
    assert_eq!(s, back);
}

#[test]
fn id_roundtrips() {
    for v in [0u32, 1, u32::MAX] {
        let json = serde_json::to_string(&NodeId(v)).unwrap();
        assert_eq!(serde_json::from_str::<NodeId>(&json).unwrap(), NodeId(v));
    }
    let q = QueryId(u64::MAX);
    let json = serde_json::to_string(&q).unwrap();
    assert_eq!(serde_json::from_str::<QueryId>(&json).unwrap(), q);
}
