//! The self-tuning loop, end to end: a deployment planned from wrong
//! registration-time estimates measures reality, detects the drift, and
//! re-optimizes itself — strictly reducing subsequent delivery cost
//! versus an identical deployment that never autotunes.

use cosmos::{AutotuneOptions, Cosmos, CosmosConfig};
use cosmos_overlay::Graph;
use cosmos_query::{AttrStats, StreamStats};
use cosmos_types::{AttrType, NodeId, QueryId, Schema, Timestamp, Tuple, Value};

/// A curved 3-node overlay: 0 at (0,0), 1 at (0.3,0.4), 2 at (0.6,0).
/// Physical edges 0-1 and 1-2 (0.5 each), so the MST chains 0→1→2 and
/// the root-to-2 path costs 1.0 — while the *logical* pair 0-2 costs
/// only its 0.6 distance. Promoting node 2 under the root is exactly
/// the move measured demand should buy.
fn curved_system(registered_rate: f64) -> (Cosmos, QueryId) {
    let mut g = Graph::new(3);
    g.set_position(NodeId(0), 0.0, 0.0);
    g.set_position(NodeId(1), 0.3, 0.4);
    g.set_position(NodeId(2), 0.6, 0.0);
    g.add_edge_by_distance(NodeId(0), NodeId(1)).unwrap();
    g.add_edge_by_distance(NodeId(1), NodeId(2)).unwrap();
    let mut sys = Cosmos::with_graph(
        CosmosConfig {
            nodes: 3,
            processor_fraction: 0.34,
            ..CosmosConfig::default()
        },
        g,
    )
    .unwrap();
    sys.register_stream(
        "S",
        Schema::of(&[("k", AttrType::Int), ("timestamp", AttrType::Int)]),
        StreamStats::with_rate(registered_rate).attr("k", AttrStats::categorical(10.0)),
        NodeId(0),
    )
    .unwrap();
    let q = sys
        .submit_query("SELECT k FROM S [Now]", NodeId(2))
        .unwrap();
    assert_eq!(sys.tree().parent(NodeId(2)), Some(NodeId(1)), "MST chain");
    (sys, q)
}

/// Publish tuple `i` at virtual time `i × 200 ms` — an actual rate of
/// 5 tuples/second.
fn publish_phase(sys: &mut Cosmos, range: std::ops::Range<i64>) {
    sys.run(range.map(|i| {
        Tuple::new(
            "S",
            Timestamp(i * 200),
            vec![Value::Int(i % 7), Value::Int(i * 200)],
        )
    }))
    .unwrap();
}

#[test]
fn autotune_detects_drift_and_strictly_reduces_cost() {
    // Registered at 0.1 tuples/s; reality runs at 5 tuples/s.
    let (mut tuned, q_tuned) = curved_system(0.1);
    let (mut control, q_control) = curved_system(0.1);

    publish_phase(&mut tuned, 0..150);
    publish_phase(&mut control, 0..150);
    assert_eq!(tuned.weighted_cost(), control.weighted_cost());
    assert_eq!(tuned.results(q_tuned).len(), 150);

    let report = tuned.autotune(&AutotuneOptions::default()).unwrap();
    assert!(report.triggered, "49x rate drift must trigger: {report:?}");
    assert!(report.stream_drift > 10.0, "{report:?}");
    assert!(report.adopted_streams >= 1, "{report:?}");
    let tree = report.tree.expect("tree pass ran");
    assert!(tree.moves >= 1, "measured demand should move node 2");
    assert_eq!(
        tuned.tree().parent(NodeId(2)),
        Some(NodeId(0)),
        "node 2 promoted under the root over the cheaper logical pair"
    );
    // The adopted catalog now carries the measured rate.
    let rate = tuned.catalog().stats(&"S".into()).unwrap().rate;
    assert!((rate - 5.0).abs() < 0.5, "adopted rate {rate}");

    // Phase 2: same traffic into both deployments.
    let before_tuned = tuned.weighted_cost();
    let before_control = control.weighted_cost();
    publish_phase(&mut tuned, 150..300);
    publish_phase(&mut control, 150..300);
    let delta_tuned = tuned.weighted_cost() - before_tuned;
    let delta_control = control.weighted_cost() - before_control;
    assert_eq!(
        tuned.results(q_tuned).len(),
        control.results(q_control).len(),
        "autotune must not change delivery"
    );
    assert!(
        delta_tuned < delta_control,
        "autotuned phase-2 cost {delta_tuned} must beat control {delta_control}"
    );
    // The promotion replaced the 0.5+0.5 path with the 0.6 logical hop.
    let ratio = delta_tuned / delta_control;
    assert!((ratio - 0.6).abs() < 0.05, "cost ratio {ratio}");
}

#[test]
fn autotune_is_a_no_op_without_drift() {
    // Registered rate matches reality: nothing should move.
    let (mut sys, q) = curved_system(5.0);
    publish_phase(&mut sys, 0..150);
    let cost = sys.weighted_cost();
    let report = sys.autotune(&AutotuneOptions::default()).unwrap();
    assert!(!report.triggered, "{report:?}");
    assert!(report.tree.is_none());
    assert_eq!(sys.tree().parent(NodeId(2)), Some(NodeId(1)), "unchanged");
    assert_eq!(sys.weighted_cost(), cost);
    assert_eq!(sys.results(q).len(), 150);
}

#[test]
fn metrics_snapshot_agrees_with_driver_accounting() {
    let (mut sys, q) = curved_system(0.1);
    publish_phase(&mut sys, 0..50);
    let snap = sys.metrics();
    assert_eq!(snap.link_bytes_total(), sys.total_bytes());
    assert_eq!(snap.delivered_tuples(q), sys.results(q).len() as u64);
    // The source stream was observed with sampled attribute stats.
    let s = snap
        .streams
        .iter()
        .find(|m| m.stream == "S")
        .expect("observed");
    assert_eq!(s.tuples, 50);
    assert!(s.tuple_rate > 3.0, "rate {}", s.tuple_rate);
    assert!(s.attrs.iter().any(|a| a.name == "k"));
    // Snapshots are versioned JSON documents that round-trip.
    let json = snap.to_json().unwrap();
    let back = cosmos::MetricsSnapshot::from_json(&json).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn disabled_metrics_record_nothing_and_block_autotune() {
    let (mut sys, q) = curved_system(0.1);
    sys.set_metrics_enabled(false);
    publish_phase(&mut sys, 0..50);
    assert_eq!(sys.results(q).len(), 50, "delivery unaffected");
    let snap = sys.metrics();
    assert_eq!(snap.link_bytes_total(), 0);
    assert!(snap.streams.is_empty());
    // Without observations there is no drift to act on.
    let report = sys.autotune(&AutotuneOptions::default()).unwrap();
    assert!(!report.triggered);
}
