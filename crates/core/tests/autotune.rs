//! The self-tuning loop, end to end: a deployment planned from wrong
//! registration-time estimates measures reality, detects the drift, and
//! re-optimizes itself — strictly reducing subsequent delivery cost
//! versus an identical deployment that never autotunes.

use cosmos::{AutotuneOptions, AutotunePolicy, Cosmos, CosmosConfig, MetricsConfig};
use cosmos_overlay::{Graph, OptimizerConfig};
use cosmos_query::{AttrStats, StreamStats};
use cosmos_types::{AttrType, NodeId, QueryId, Schema, TimeDelta, Timestamp, Tuple, Value};

/// A curved 3-node overlay: 0 at (0,0), 1 at (0.3,0.4), 2 at (0.6,0).
/// Physical edges 0-1 and 1-2 (0.5 each), so the MST chains 0→1→2 and
/// the root-to-2 path costs 1.0 — while the *logical* pair 0-2 costs
/// only its 0.6 distance. Promoting node 2 under the root is exactly
/// the move measured demand should buy.
fn curved_system(registered_rate: f64) -> (Cosmos, QueryId) {
    let mut g = Graph::new(3);
    g.set_position(NodeId(0), 0.0, 0.0);
    g.set_position(NodeId(1), 0.3, 0.4);
    g.set_position(NodeId(2), 0.6, 0.0);
    g.add_edge_by_distance(NodeId(0), NodeId(1)).unwrap();
    g.add_edge_by_distance(NodeId(1), NodeId(2)).unwrap();
    let mut sys = Cosmos::with_graph(
        CosmosConfig {
            nodes: 3,
            processor_fraction: 0.34,
            ..CosmosConfig::default()
        },
        g,
    )
    .unwrap();
    sys.register_stream(
        "S",
        Schema::of(&[("k", AttrType::Int), ("timestamp", AttrType::Int)]),
        StreamStats::with_rate(registered_rate).attr("k", AttrStats::categorical(10.0)),
        NodeId(0),
    )
    .unwrap();
    let q = sys
        .submit_query("SELECT k FROM S [Now]", NodeId(2))
        .unwrap();
    assert_eq!(sys.tree().parent(NodeId(2)), Some(NodeId(1)), "MST chain");
    (sys, q)
}

/// Publish tuple `i` at virtual time `i × 200 ms` — an actual rate of
/// 5 tuples/second.
fn publish_phase(sys: &mut Cosmos, range: std::ops::Range<i64>) {
    sys.run(range.map(|i| {
        Tuple::new(
            "S",
            Timestamp(i * 200),
            vec![Value::Int(i % 7), Value::Int(i * 200)],
        )
    }))
    .unwrap();
}

#[test]
fn autotune_detects_drift_and_strictly_reduces_cost() {
    // Registered at 0.1 tuples/s; reality runs at 5 tuples/s.
    let (mut tuned, q_tuned) = curved_system(0.1);
    let (mut control, q_control) = curved_system(0.1);

    publish_phase(&mut tuned, 0..150);
    publish_phase(&mut control, 0..150);
    assert_eq!(tuned.weighted_cost(), control.weighted_cost());
    assert_eq!(tuned.results(q_tuned).len(), 150);

    let report = tuned.autotune(&AutotuneOptions::default()).unwrap();
    assert!(
        report.triggered(),
        "49x rate drift must trigger: {report:?}"
    );
    let pass = report.pass().expect("metrics are live");
    assert!(pass.stream_drift > 10.0, "{report:?}");
    assert!(pass.adopted_streams >= 1, "{report:?}");
    assert!(!pass.tree_rolled_back, "direct calls run without a band");
    let tree = pass.tree.expect("tree pass ran");
    assert!(tree.moves >= 1, "measured demand should move node 2");
    assert_eq!(
        tuned.tree().parent(NodeId(2)),
        Some(NodeId(0)),
        "node 2 promoted under the root over the cheaper logical pair"
    );
    // The adopted catalog now carries the measured rate.
    let rate = tuned.catalog().stats(&"S".into()).unwrap().rate;
    assert!((rate - 5.0).abs() < 0.5, "adopted rate {rate}");

    // Phase 2: same traffic into both deployments.
    let before_tuned = tuned.weighted_cost();
    let before_control = control.weighted_cost();
    publish_phase(&mut tuned, 150..300);
    publish_phase(&mut control, 150..300);
    let delta_tuned = tuned.weighted_cost() - before_tuned;
    let delta_control = control.weighted_cost() - before_control;
    assert_eq!(
        tuned.results(q_tuned).len(),
        control.results(q_control).len(),
        "autotune must not change delivery"
    );
    assert!(
        delta_tuned < delta_control,
        "autotuned phase-2 cost {delta_tuned} must beat control {delta_control}"
    );
    // The promotion replaced the 0.5+0.5 path with the 0.6 logical hop.
    let ratio = delta_tuned / delta_control;
    assert!((ratio - 0.6).abs() < 0.05, "cost ratio {ratio}");
}

#[test]
fn autotune_is_a_no_op_without_drift() {
    // Registered rate matches reality: nothing should move.
    let (mut sys, q) = curved_system(5.0);
    publish_phase(&mut sys, 0..150);
    let cost = sys.weighted_cost();
    let report = sys.autotune(&AutotuneOptions::default()).unwrap();
    assert!(!report.triggered(), "{report:?}");
    assert!(report.pass().expect("metrics are live").tree.is_none());
    assert_eq!(sys.tree().parent(NodeId(2)), Some(NodeId(1)), "unchanged");
    assert_eq!(sys.weighted_cost(), cost);
    assert_eq!(sys.results(q).len(), 150);
}

#[test]
fn metrics_snapshot_agrees_with_driver_accounting() {
    let (mut sys, q) = curved_system(0.1);
    publish_phase(&mut sys, 0..50);
    let snap = sys.metrics();
    assert_eq!(snap.link_bytes_total(), sys.total_bytes());
    assert_eq!(snap.delivered_tuples(q), sys.results(q).len() as u64);
    // The source stream was observed with sampled attribute stats.
    let s = snap
        .streams
        .iter()
        .find(|m| m.stream == "S")
        .expect("observed");
    assert_eq!(s.tuples, 50);
    assert!(s.tuple_rate > 3.0, "rate {}", s.tuple_rate);
    assert!(s.attrs.iter().any(|a| a.name == "k"));
    // Snapshots are versioned JSON documents that round-trip.
    let json = snap.to_json().unwrap();
    let back = cosmos::MetricsSnapshot::from_json(&json).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn disabled_metrics_record_nothing_and_block_autotune() {
    let (mut sys, q) = curved_system(0.1);
    sys.set_metrics_enabled(false);
    publish_phase(&mut sys, 0..50);
    assert_eq!(sys.results(q).len(), 50, "delivery unaffected");
    let snap = sys.metrics();
    assert_eq!(snap.link_bytes_total(), 0);
    assert!(snap.streams.is_empty());
    // Without observations there is nothing to act on: the pass
    // reports so explicitly instead of computing drift against zeros.
    let report = sys.autotune(&AutotuneOptions::default()).unwrap();
    assert_eq!(report, cosmos::AutotuneReport::MetricsDisabled);
    assert!(!report.triggered());
}

#[test]
fn scheduled_periodic_pass_promotes_without_manual_calls() {
    let (mut sys, q) = curved_system(0.1);
    sys.set_autotune(Some(AutotunePolicy {
        period_virtual: TimeDelta::from_secs(10),
        trigger_after_k_windows: 0,
        hysteresis: 0.0,
        options: AutotuneOptions::default(),
    }));
    // 150 tuples at 200 ms reach t = 30 s: the 10 s period fires along
    // the way, the 49x rate drift triggers, and node 2 is promoted —
    // no explicit autotune() call anywhere.
    publish_phase(&mut sys, 0..150);
    assert!(sys.autotune_runs() >= 1, "runs {}", sys.autotune_runs());
    assert_eq!(sys.tree().parent(NodeId(2)), Some(NodeId(0)), "promoted");
    // The last scheduled pass ran *after* the first one adopted the
    // measured stats, so it saw no drift — but it did measure.
    assert!(sys.last_autotune().expect("a pass ran").pass().is_some());
    assert_eq!(sys.autotune_rollbacks(), 0, "strict improvement adopted");
    assert_eq!(sys.results(q).len(), 150, "scheduling never drops data");
}

#[test]
fn drift_trigger_waits_for_k_consecutive_windows() {
    let (mut sys, _q) = curved_system(0.1);
    // 2 s rate windows so window boundaries actually pass; periodic
    // trigger off — only K consecutive over-drift windows may fire.
    sys.set_metrics_config(MetricsConfig {
        window: TimeDelta::from_secs(2),
        ..MetricsConfig::default()
    });
    sys.set_autotune(Some(AutotunePolicy {
        period_virtual: TimeDelta::ZERO,
        trigger_after_k_windows: 3,
        hysteresis: 0.0,
        options: AutotuneOptions::default(),
    }));
    publish_phase(&mut sys, 0..150);
    // Drift exceeded the threshold on (at least) the first three window
    // entries, so exactly one pass fired; after it adopted the measured
    // rate the drift collapsed and the counter never refilled.
    assert_eq!(sys.autotune_runs(), 1, "one drift-triggered pass");
    assert_eq!(sys.tree().parent(NodeId(2)), Some(NodeId(0)), "promoted");
}

#[test]
fn disarmed_scheduler_never_runs() {
    let (mut sys, _q) = curved_system(0.1);
    sys.set_autotune(Some(AutotunePolicy {
        period_virtual: TimeDelta::ZERO,
        trigger_after_k_windows: 0,
        hysteresis: 0.0,
        options: AutotuneOptions::default(),
    }));
    publish_phase(&mut sys, 0..60);
    assert_eq!(sys.autotune_runs(), 0, "both triggers disabled");
    sys.set_autotune(None);
    publish_phase(&mut sys, 60..120);
    assert_eq!(sys.autotune_policy(), None);
    assert_eq!(sys.tree().parent(NodeId(2)), Some(NodeId(1)), "untouched");
}

/// A bistable 4-node deployment for the hysteresis argument.
///
/// Geometry: 0 at the origin (root, the only processor), 1 at
/// (0.3, 0.4), 2 at (0.6, 0), 3 at (−0.5, 0); physical edges 0-1, 1-2,
/// 0-3, each of delay 0.5, so the MST is `{0→1→2, 0→3}` (plan A). The
/// *logical* pair 0-2 costs 0.6, so promoting 2 under the root (plan B)
/// saves 0.4 of root-path delay per demanded byte at node 2 — but with
/// `max_degree: 2` it overflows the root's degree and pays the load
/// penalty `W`. A beats B iff `0.4·demand(2) < W`: demand oscillating
/// across `W / 0.4` makes the two plans leapfrog each other.
///
/// Nodes 1 and 3 consume steady high-rate streams (`U` and `T`) in
/// every phase, so the optimizer can never dodge the root-degree
/// penalty by re-parenting either of them (any such move costs
/// `demand × ≥0.4` of delay, an order of magnitude more than `W`) —
/// node 2's parent is the only economically mobile edge.
fn bistable_system(w_load: f64) -> (Cosmos, AutotuneOptions) {
    let mut g = Graph::new(4);
    g.set_position(NodeId(0), 0.0, 0.0);
    g.set_position(NodeId(1), 0.3, 0.4);
    g.set_position(NodeId(2), 0.6, 0.0);
    g.set_position(NodeId(3), -0.5, 0.0);
    g.add_edge_by_distance(NodeId(0), NodeId(1)).unwrap();
    g.add_edge_by_distance(NodeId(1), NodeId(2)).unwrap();
    g.add_edge_by_distance(NodeId(0), NodeId(3)).unwrap();
    let mut sys = Cosmos::with_graph(
        CosmosConfig {
            nodes: 4,
            processor_fraction: 0.25,
            ..CosmosConfig::default()
        },
        g,
    )
    .unwrap();
    // An 8 s window: phase changes show up in the measured rates (and
    // the measured demand) within one phase.
    sys.set_metrics_config(MetricsConfig {
        window: TimeDelta::from_secs(8),
        ..MetricsConfig::default()
    });
    let schema = Schema::of(&[("k", AttrType::Int), ("timestamp", AttrType::Int)]);
    sys.register_stream(
        "S",
        schema.clone(),
        StreamStats::with_rate(0.1).attr("k", AttrStats::categorical(10.0)),
        NodeId(0),
    )
    .unwrap();
    sys.register_stream(
        "T",
        schema.clone(),
        StreamStats::with_rate(0.1).attr("k", AttrStats::categorical(10.0)),
        NodeId(0),
    )
    .unwrap();
    sys.register_stream(
        "U",
        schema,
        StreamStats::with_rate(0.1).attr("k", AttrStats::categorical(10.0)),
        NodeId(0),
    )
    .unwrap();
    sys.submit_query("SELECT k FROM U [Now]", NodeId(1))
        .unwrap();
    sys.submit_query("SELECT k FROM S [Now] WHERE k >= 100", NodeId(2))
        .unwrap();
    sys.submit_query("SELECT k FROM T [Now]", NodeId(3))
        .unwrap();
    assert_eq!(sys.tree().parent(NodeId(2)), Some(NodeId(1)), "plan A");
    let options = AutotuneOptions {
        optimizer: OptimizerConfig {
            max_degree: 2,
            w_delay: 1.0,
            w_load,
            rounds: 4,
        },
        ..AutotuneOptions::default()
    };
    (sys, options)
}

/// Drive three phases of oscillating demand at node 2 and sample its
/// tree parent after every publish. Burst phases (0–20 s, 40–60 s) run
/// `S` at 10/s with `k = 200` (all of it lands on node 2); the quiet
/// phase (20–40 s) runs `S` at 1.25/s with only every fourth tuple
/// `k = 200`. `T` and `U` hold their steady rates toward nodes 3 and 1
/// throughout. Returns the deduplicated trajectory of node 2's parent.
fn drive_oscillation(sys: &mut Cosmos) -> Vec<u32> {
    let mut trajectory: Vec<u32> = vec![sys.tree().parent(NodeId(2)).unwrap().raw()];
    for tick in 0i64..600 {
        let ts = tick * 100;
        let quiet = (20_000..40_000).contains(&ts);
        let publish_s = if quiet { tick % 8 == 0 } else { true };
        if publish_s {
            let k = if quiet && (tick / 8) % 4 != 0 { 5 } else { 200 };
            sys.publish(&Tuple::new(
                "S",
                Timestamp(ts),
                vec![Value::Int(k), Value::Int(ts)],
            ))
            .unwrap();
        }
        for (steady, off) in [("T", 1i64), ("U", 2)] {
            sys.publish(&Tuple::new(
                steady,
                Timestamp(ts + off),
                vec![Value::Int(1), Value::Int(ts + off)],
            ))
            .unwrap();
        }
        let parent = sys.tree().parent(NodeId(2)).unwrap().raw();
        if trajectory.last() != Some(&parent) {
            trajectory.push(parent);
        }
    }
    trajectory
}

#[test]
fn hysteresis_damps_plan_oscillation() {
    // Calibrate W against the burst-phase demand actually measured at
    // node 2, on a probe deployment identical to the real one.
    let (mut probe, _) = bistable_system(1.0);
    for i in 0..200 {
        probe
            .publish(&Tuple::new(
                "S",
                Timestamp(i * 100),
                vec![Value::Int(200), Value::Int(i * 100)],
            ))
            .unwrap();
    }
    let burst_demand = probe.metrics_hub().consumed_byte_rate(NodeId(2));
    assert!(burst_demand > 0.0, "probe saw deliveries at node 2");
    // A→B saves 0.4·demand(2) of delay and pays W: with W at 25% of
    // the burst-phase saving, B wins every burst and loses every quiet
    // phase (quiet demand is ~1/32 of burst), i.e. the system is
    // genuinely bistable — but the A→B improvement ratio is well under
    // 50%, so a 0.5 hysteresis band refuses the flip.
    let w_load = 0.1 * burst_demand;

    // Undamped control: the same schedule with a zero band flips the
    // tree with the demand, A→B→A→B.
    let (mut undamped, options) = bistable_system(w_load);
    undamped.set_autotune(Some(AutotunePolicy {
        period_virtual: TimeDelta::from_secs(10),
        trigger_after_k_windows: 0,
        hysteresis: 0.0,
        options,
    }));
    let trajectory = drive_oscillation(&mut undamped);
    assert_eq!(
        trajectory,
        vec![1, 0, 1, 0],
        "zero band must oscillate with the phases"
    );
    assert_eq!(undamped.autotune_rollbacks(), 0);

    // Damped: a 0.5 band rolls every flip attempt back — the adoption
    // trajectory is monotone (constant), with the attempts on record.
    let (mut damped, options) = bistable_system(w_load);
    damped.set_autotune(Some(AutotunePolicy {
        period_virtual: TimeDelta::from_secs(10),
        trigger_after_k_windows: 0,
        hysteresis: 0.5,
        options,
    }));
    let trajectory = drive_oscillation(&mut damped);
    assert_eq!(trajectory, vec![1], "no flip ever lands under the band");
    assert!(
        damped.autotune_rollbacks() >= 2,
        "both bursts attempted the promotion and were rolled back (got {})",
        damped.autotune_rollbacks()
    );
}
