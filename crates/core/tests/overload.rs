//! Adaptive overload control, end to end: a consumer budgeted far
//! below its inbound rate keeps its delivery buffer bounded, every
//! dropped byte is ledger-accounted (offered = delivered + shed +
//! staged, byte-exact), coalescing delivers everything eventually, and
//! throttling notifies the origin along accounted tree links. All of
//! it replays bit-for-bit.

use cosmos::{Budget, Cosmos, CosmosConfig, MetricsConfig, OverloadConfig, OverloadPolicy};
use cosmos_overlay::Graph;
use cosmos_query::{AttrStats, StreamStats};
use cosmos_types::{AttrType, NodeId, QueryId, Schema, TimeDelta, Timestamp, Tuple, Value};

/// The 3-node chain 0 — 1 — 2: stream `S` at node 0, one consumer
/// query at node 2, an 8 s metrics window.
fn chain_system() -> (Cosmos, QueryId) {
    let mut g = Graph::new(3);
    g.set_position(NodeId(0), 0.0, 0.0);
    g.set_position(NodeId(1), 0.3, 0.4);
    g.set_position(NodeId(2), 0.6, 0.0);
    g.add_edge_by_distance(NodeId(0), NodeId(1)).unwrap();
    g.add_edge_by_distance(NodeId(1), NodeId(2)).unwrap();
    let mut sys = Cosmos::with_graph(
        CosmosConfig {
            nodes: 3,
            processor_fraction: 0.34,
            ..CosmosConfig::default()
        },
        g,
    )
    .unwrap();
    sys.set_metrics_config(MetricsConfig {
        window: TimeDelta::from_secs(8),
        ..MetricsConfig::default()
    });
    sys.register_stream(
        "S",
        Schema::of(&[("k", AttrType::Int), ("timestamp", AttrType::Int)]),
        StreamStats::with_rate(10.0).attr("k", AttrStats::categorical(10.0)),
        NodeId(0),
    )
    .unwrap();
    let q = sys
        .submit_query("SELECT k FROM S [Now]", NodeId(2))
        .unwrap();
    (sys, q)
}

/// 200 tuples at 10/s of virtual time (t = 0..20 s).
fn feed(sys: &mut Cosmos) {
    for i in 0..200i64 {
        sys.publish(&Tuple::new(
            "S",
            Timestamp(i * 100),
            vec![Value::Int(i % 7), Value::Int(i * 100)],
        ))
        .unwrap();
    }
}

/// The consumer's inbound bytes per 8 s metrics window, measured on an
/// unbudgeted probe run (the window is saturated well before the feed
/// ends).
fn inbound_window_bytes() -> u64 {
    let (mut probe, _) = chain_system();
    feed(&mut probe);
    let (_tuples, bytes) = probe.metrics_hub().consumed_in_window(NodeId(2));
    assert!(bytes > 0, "probe must observe deliveries");
    bytes
}

#[test]
fn budgeted_consumer_sheds_boundedly_with_exact_conservation() {
    let budget = inbound_window_bytes() / 4; // 25% of the inbound rate
    let (mut sys, q) = chain_system();
    sys.set_overload(Some(OverloadConfig::uniform_bytes(budget)));
    feed(&mut sys);
    sys.close_streams();

    let ctl = sys.overload().expect("armed");
    let ledger = ctl.ledger(q);
    assert!(ledger.conserved(), "identity broken: {ledger:?}");
    assert!(ledger.shed_tuples > 0, "a 4x overload must shed");
    assert!(ledger.delivered_tuples > 0, "under-budget windows deliver");
    assert_eq!(ledger.staged_tuples, 0, "Shed policy never stages");
    assert_eq!(ledger.offered_tuples, 200, "every tuple was offered");
    assert_eq!(
        ledger.delivered_tuples as usize,
        sys.results(q).len(),
        "ledger agrees with the delivery buffer"
    );
    // The bounded-buffer guarantee: no admitted delivery ever left the
    // consumer's in-window intake above its budget.
    let hw = ctl.high_water(NodeId(2));
    assert!(hw > 0 && hw <= budget, "high water {hw} vs budget {budget}");
    // Shed mass is visible in the metrics snapshot, never silent.
    let snap = sys.metrics();
    assert_eq!(snap.shed_tuples, ledger.shed_tuples);
    assert_eq!(snap.shed_bytes, ledger.shed_bytes);
}

#[test]
fn coalesce_holds_overflow_and_delivers_everything_in_order() {
    let budget = inbound_window_bytes() / 4;
    let (mut sys, q) = chain_system();
    sys.set_overload(Some(OverloadConfig {
        budget: Budget::Bytes(budget),
        policy: OverloadPolicy::Coalesce,
        ..OverloadConfig::default()
    }));
    feed(&mut sys);
    let mid = sys.overload().expect("armed").ledger(q);
    assert!(mid.conserved(), "identity holds mid-run: {mid:?}");
    assert!(mid.staged_tuples > 0, "overflow is pending, not dropped");
    assert_eq!(mid.shed_tuples, 0, "Coalesce never sheds");

    // Closure drains the pending batch: everything reaches the user.
    sys.close_streams();
    let ledger = sys.overload().expect("armed").ledger(q);
    assert!(ledger.conserved());
    assert_eq!(ledger.staged_tuples, 0);
    assert_eq!(ledger.delivered_tuples, 200);
    assert_eq!(sys.results(q).len(), 200);
    let ts: Vec<i64> = sys.results(q).iter().map(|t| t.timestamp.0).collect();
    let mut sorted = ts.clone();
    sorted.sort_unstable();
    assert_eq!(ts, sorted, "coalesced delivery preserves arrival order");
}

#[test]
fn throttle_notifies_the_origin_along_accounted_links() {
    let budget = inbound_window_bytes() / 4;
    let (mut sys, q) = chain_system();
    sys.set_overload(Some(OverloadConfig {
        budget: Budget::Bytes(budget),
        policy: OverloadPolicy::Throttle,
        ..OverloadConfig::default()
    }));
    feed(&mut sys);
    sys.close_streams();

    let ctl = sys.overload().expect("armed");
    assert!(ctl.ledger(q).conserved());
    assert!(ctl.ledger(q).shed_tuples > 0, "Throttle sheds like Shed");
    let received = ctl.received();
    assert!(!received.is_empty(), "the origin heard about the overload");
    assert!(received.iter().all(|l| l.from == NodeId(2)));
    assert!(received.iter().all(|l| l.budget_bytes == budget));
    // At most one notice per (node, stream) per rate window: 20 s of
    // feed crosses three 8 s windows.
    assert!(received.len() <= 3, "{} notices", received.len());
    let snap = sys.metrics();
    assert_eq!(snap.throttles, received.len() as u64);
    assert!(snap.throttle_bytes > 0, "notices crossed accounted links");
    // Rate-limit link traffic is accounted exactly like data: the
    // metrics ledger and the driver's byte ledger must still agree.
    assert_eq!(snap.link_bytes_total(), sys.total_bytes());
}

#[test]
fn shed_decisions_replay_bit_for_bit() {
    let budget = inbound_window_bytes() / 4;
    let run = || {
        let (mut sys, q) = chain_system();
        sys.set_overload(Some(OverloadConfig::uniform_bytes(budget)));
        feed(&mut sys);
        sys.close_streams();
        let ledger = sys.overload().unwrap().ledger(q);
        let results: Vec<Tuple> = sys.results(q).to_vec();
        (ledger, results, sys.metrics().to_json().unwrap())
    };
    let (ledger_a, results_a, json_a) = run();
    let (ledger_b, results_b, json_b) = run();
    assert_eq!(ledger_a, ledger_b, "identical ledgers");
    assert_eq!(results_a, results_b, "identical deliveries");
    assert_eq!(json_a, json_b, "byte-identical metrics documents");
}

#[test]
fn above_peak_budget_never_interferes() {
    let (mut plain, q_plain) = chain_system();
    feed(&mut plain);
    plain.close_streams();

    let (mut budgeted, q) = chain_system();
    // Twice the observed peak: the controller must be a pure witness.
    budgeted.set_overload(Some(OverloadConfig::uniform_bytes(
        inbound_window_bytes() * 2,
    )));
    feed(&mut budgeted);
    budgeted.close_streams();

    assert_eq!(budgeted.results(q), plain.results(q_plain));
    let ledger = budgeted.overload().unwrap().ledger(q);
    assert!(ledger.conserved());
    assert_eq!(ledger.shed_tuples, 0);
    assert_eq!(ledger.staged_tuples, 0);
    assert_eq!(ledger.delivered_tuples, 200);
    // The metrics documents agree except for the (zero-valued, hence
    // omitted) overload counters: byte-identical serialization.
    assert_eq!(
        budgeted.metrics().to_json().unwrap(),
        plain.metrics().to_json().unwrap()
    );
    assert_eq!(budgeted.total_bytes(), plain.total_bytes());
}

#[test]
fn per_query_policy_overrides_apply() {
    let budget = inbound_window_bytes() / 4;
    let (mut sys, q) = chain_system();
    let mut cfg = OverloadConfig::uniform_bytes(budget);
    cfg.query_policies.insert(q, OverloadPolicy::Coalesce);
    sys.set_overload(Some(cfg));
    feed(&mut sys);
    sys.close_streams();
    let ledger = sys.overload().unwrap().ledger(q);
    assert!(ledger.conserved());
    assert_eq!(ledger.shed_tuples, 0, "override says coalesce");
    assert_eq!(ledger.delivered_tuples, 200, "closure drained the rest");
}

#[test]
fn disarming_drains_pending_batches() {
    let budget = inbound_window_bytes() / 4;
    let (mut sys, q) = chain_system();
    sys.set_overload(Some(OverloadConfig {
        budget: Budget::Bytes(budget),
        policy: OverloadPolicy::Coalesce,
        ..OverloadConfig::default()
    }));
    feed(&mut sys);
    assert!(sys.results(q).len() < 200, "overflow pending");
    sys.set_overload(None);
    assert_eq!(sys.results(q).len(), 200, "disarm released the backlog");
    assert!(sys.overload().is_none());
}
