//! A serializable, self-contained picture of a deployed [`crate::Cosmos`]:
//! every dissemination tree, every router's reverse-path interests and
//! local subscriptions, every advertisement, and every query group with
//! its representative and re-tightened member profiles.
//!
//! The snapshot is the introspection boundary between the live system
//! and `cosmos-verify`, which proves the V1–V5 network invariants over
//! it *statically* — so everything here is plain data with public
//! fields, serde round-trippable, and carries queries as CQL text
//! (`AnalyzedQuery` has no serde form; the verifier re-analyzes the text
//! against the snapshot's own advertised schemas).

use cosmos_cbn::Profile;
use cosmos_types::{CosmosError, NodeId, QueryId, Result, Schema, StreamName, SubscriberId};
use serde::{Deserialize, Serialize};

/// Snapshot format version, bumped on breaking shape changes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One dissemination tree, as raw `(parent, child)` edges. Deliberately
/// *not* a [`cosmos_overlay::Tree`]: the verifier re-checks acyclicity,
/// connectivity, and rootedness from the edge list instead of trusting
/// the invariants `Tree::from_edges` enforced at construction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeTopology {
    /// Root node (for per-source trees: the advertising origin).
    pub root: NodeId,
    /// Number of overlay nodes the tree must span.
    pub node_count: usize,
    /// Directed `(parent, child)` edges.
    pub edges: Vec<(NodeId, NodeId)>,
}

/// One advertised stream: sources and result streams alike.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Advertisement {
    pub stream: StreamName,
    /// Node the stream enters the network at (tree root in multi-tree
    /// mode; for result streams, the producing processor).
    pub origin: NodeId,
    pub schema: Schema,
}

/// What a local subscription is for.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubscriberKind {
    /// An SPE input feeding the representative executor of a result
    /// stream at its processor.
    SpeInput { result_stream: StreamName },
    /// A user's result-retrieval subscription for a query.
    User { query: QueryId },
}

/// One local subscriber registered at a router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalSubscriber {
    pub id: SubscriberId,
    pub kind: SubscriberKind,
    /// The installed data-interest profile `⟨S, P, F⟩`.
    pub profile: Profile,
}

/// One router's complete routing state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterState {
    pub node: NodeId,
    /// Reverse-path interests: `(downstream neighbor, merged profile)`.
    pub neighbor_interests: Vec<(NodeId, Profile)>,
    pub local_subscribers: Vec<LocalSubscriber>,
}

/// One member of a query group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemberSnapshot {
    pub query: QueryId,
    /// The member query, unparsed back to CQL.
    pub cql: String,
    /// Node where the user subscribed.
    pub user: NodeId,
    /// The user's result subscription id (its installed profile is the
    /// member's re-tightened split profile — find it in
    /// [`RouterState::local_subscribers`] at `user`).
    pub user_sub: SubscriberId,
    /// The re-tightened split profile the query manager derived for this
    /// member (what *should* be installed at `user`).
    pub split_profile: Profile,
}

/// One query group: a representative executor serving its members'
/// shared result stream. Baseline (non-merging) deployments appear as
/// singleton groups whose representative *is* the member.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSnapshot {
    /// Processor hosting the representative executor.
    pub processor: NodeId,
    pub result_stream: StreamName,
    /// The representative query, unparsed back to CQL.
    pub representative_cql: String,
    pub members: Vec<MemberSnapshot>,
}

/// One query's overload-conservation ledger, as captured from the
/// armed [`crate::overload::OverloadController`]. The verifier checks
/// the identity `offered = delivered + shed + staged` (tuples and
/// bytes) and that a query with ledger traffic still has its user
/// subscription installed — shedding must never black-hole a retained
/// query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverloadLedgerSnapshot {
    pub query: QueryId,
    pub offered_tuples: u64,
    pub offered_bytes: u64,
    pub delivered_tuples: u64,
    pub delivered_bytes: u64,
    pub shed_tuples: u64,
    pub shed_bytes: u64,
    pub staged_tuples: u64,
    pub staged_bytes: u64,
}

/// The whole-network snapshot `cosmos-verify` analyzes.
///
/// `Serialize`/`Deserialize` are written by hand (the vendored derive
/// supports no field attributes): `closed_streams` and `overload` are
/// omitted from JSON when empty and default to empty when absent, so
/// in-order/unbudgeted snapshots keep their exact earlier byte shape
/// and old documents parse.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSnapshot {
    pub version: u32,
    /// Whether query merging (Section 4) was enabled.
    pub merging_enabled: bool,
    /// Number of overlay nodes.
    pub nodes: usize,
    /// The shared dissemination tree (MST).
    pub shared_tree: TreeTopology,
    /// Per-origin shortest-path trees (multi-tree mode); an origin
    /// absent here disseminates along [`NetworkSnapshot::shared_tree`].
    pub source_trees: Vec<TreeTopology>,
    pub advertisements: Vec<Advertisement>,
    /// Every router, indexed by node id.
    pub routers: Vec<RouterState>,
    pub groups: Vec<GroupSnapshot>,
    /// Source streams closed by their final watermark (disorder mode);
    /// their interest entries have been pruned from every router, so
    /// path invariants are not checkable for them. Sorted; empty for
    /// in-order deployments.
    pub closed_streams: Vec<StreamName>,
    /// Per-query overload ledgers (query order); empty when no
    /// overload controller is armed.
    pub overload: Vec<OverloadLedgerSnapshot>,
}

impl Serialize for NetworkSnapshot {
    fn to_content(&self) -> serde::Content {
        let mut entries = vec![
            ("version", self.version.to_content()),
            ("merging_enabled", self.merging_enabled.to_content()),
            ("nodes", self.nodes.to_content()),
            ("shared_tree", self.shared_tree.to_content()),
            ("source_trees", self.source_trees.to_content()),
            ("advertisements", self.advertisements.to_content()),
            ("routers", self.routers.to_content()),
            ("groups", self.groups.to_content()),
        ];
        if !self.closed_streams.is_empty() {
            entries.push(("closed_streams", self.closed_streams.to_content()));
        }
        if !self.overload.is_empty() {
            entries.push(("overload", self.overload.to_content()));
        }
        serde::Content::Map(
            entries
                .into_iter()
                .map(|(k, v)| (serde::Content::Str(k.to_string()), v))
                .collect(),
        )
    }
}

impl Deserialize for NetworkSnapshot {
    fn from_content(c: &serde::Content) -> std::result::Result<Self, serde::DeError> {
        Ok(NetworkSnapshot {
            version: Deserialize::from_content(serde::map_get(c, "version")?)?,
            merging_enabled: Deserialize::from_content(serde::map_get(c, "merging_enabled")?)?,
            nodes: Deserialize::from_content(serde::map_get(c, "nodes")?)?,
            shared_tree: Deserialize::from_content(serde::map_get(c, "shared_tree")?)?,
            source_trees: Deserialize::from_content(serde::map_get(c, "source_trees")?)?,
            advertisements: Deserialize::from_content(serde::map_get(c, "advertisements")?)?,
            routers: Deserialize::from_content(serde::map_get(c, "routers")?)?,
            groups: Deserialize::from_content(serde::map_get(c, "groups")?)?,
            closed_streams: match serde::map_get(c, "closed_streams") {
                Ok(v) => Deserialize::from_content(v)?,
                Err(_) => Vec::new(),
            },
            overload: match serde::map_get(c, "overload") {
                Ok(v) => Deserialize::from_content(v)?,
                Err(_) => Vec::new(),
            },
        })
    }
}

impl NetworkSnapshot {
    /// The dissemination tree a stream rooted at `origin` uses.
    pub fn tree_for(&self, origin: NodeId) -> &TreeTopology {
        self.source_trees
            .iter()
            .find(|t| t.root == origin)
            .unwrap_or(&self.shared_tree)
    }

    /// The advertisement for a stream, if any.
    pub fn advertisement(&self, stream: &StreamName) -> Option<&Advertisement> {
        self.advertisements.iter().find(|a| &a.stream == stream)
    }

    /// Serialize to JSON (the `cosmos-verify` CLI input format).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| CosmosError::System(format!("snapshot serialize: {e}")))
    }

    /// Parse a snapshot back from JSON, rejecting unknown versions.
    pub fn from_json(text: &str) -> Result<NetworkSnapshot> {
        let snap: NetworkSnapshot = serde_json::from_str(text)
            .map_err(|e| CosmosError::System(format!("snapshot parse: {e}")))?;
        if snap.version != SNAPSHOT_VERSION {
            return Err(CosmosError::System(format!(
                "snapshot version {} unsupported (expected {SNAPSHOT_VERSION})",
                snap.version
            )));
        }
        Ok(snap)
    }
}
