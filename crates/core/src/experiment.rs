//! The Figure 4 experiment harness (Section 5 of the paper).
//!
//! Setup, exactly as the paper describes it: a power-law overlay of
//! `nodes` nodes (BRITE → Barabási–Albert here), a minimum spanning tree
//! as the dissemination tree, the 63 SensorScope-like streams placed on
//! random nodes, and randomly generated queries whose stream choice
//! follows a uniform or zipfian distribution. Queries are inserted
//! incrementally into the per-processor [`GroupManager`]s, and at each
//! checkpoint two metrics are reported:
//!
//! * **benefit ratio** — "the percentage of communication cost that is
//!   reduced by the query merging algorithms in comparing to that
//!   without merging": `1 − cost(merged) / cost(unmerged)`, where cost
//!   is the delay-weighted result-delivery rate over the dissemination
//!   tree. Without merging every query's result stream travels its own
//!   tree path at rate `C(q)`; with merging each group ships one shared
//!   stream over the union of its members' paths, a link carrying
//!   `min(C(rep), Σ C(members downstream of the link))` — shared on the
//!   trunk, split back near the users.
//! * **grouping ratio** — "the ratio of the number of query groups to
//!   the total number of queries".
//!
//! This harness computes costs analytically from the estimator's rates
//! instead of routing datagrams (the paper's CBN "is simulated" too);
//! the tuple-accurate path is exercised end-to-end by the Figure 3
//! experiment and the system tests.

use cosmos_overlay::{generate, minimum_spanning_tree, Graph, TopologyKind, Tree};
use cosmos_query::{estimate::cost_bps, GroupManager, StatsCatalog};
use cosmos_spe::AnalyzedQuery;
use cosmos_types::{FxHashMap, NodeId, QueryId, Result};
use cosmos_workload::{sensor_catalog, Popularity, QueryGenConfig, QueryGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one Figure 4 run.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Overlay size (the paper uses 1000).
    pub nodes: usize,
    /// Query-count checkpoints (the paper reports 2000..10000 step 2000).
    pub checkpoints: Vec<usize>,
    /// Stream-popularity distribution of the generated queries.
    pub popularity: Popularity,
    /// Repetitions to average over (the paper uses 20).
    pub reps: usize,
    /// Master seed.
    pub seed: u64,
    /// Fraction of nodes that are processors.
    pub processor_fraction: f64,
    /// Query-distribution affinity (candidate processors per stream set).
    pub affinity_candidates: usize,
    /// Workload shape knobs (join/aggregate fractions, predicates, …).
    pub workload: QueryGenConfig,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            nodes: 1000,
            checkpoints: vec![2000, 4000, 6000, 8000, 10000],
            popularity: Popularity::Uniform,
            reps: 20,
            seed: 42,
            processor_fraction: 0.05,
            affinity_candidates: 1,
            workload: QueryGenConfig::default(),
        }
    }
}

/// One measured point of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Point {
    /// Number of queries inserted so far.
    pub queries: usize,
    /// `1 − merged/unmerged` topology-weighted delivery cost.
    pub benefit_ratio: f64,
    /// `1 − ΣC(rep)/ΣC(q)`: the topology-independent rate reduction
    /// (the benefit measure as the paper defines `C(q)` — pure result
    /// stream rates, before multicast path accounting).
    pub rate_benefit_ratio: f64,
    /// `#groups / #queries`.
    pub grouping_ratio: f64,
}

/// Delay (sum of link weights) of the tree path `a → b`.
fn path_delay(graph: &Graph, tree: &Tree, a: NodeId, b: NodeId) -> f64 {
    tree.path_links(a, b)
        .iter()
        .map(|&(u, v)| {
            graph
                .edge_weight(u, v)
                .unwrap_or_else(|| graph.distance(u, v).max(f64::EPSILON))
        })
        .sum()
}

/// State of one repetition of the experiment.
struct Rep {
    graph: Graph,
    tree: Tree,
    processors: Vec<NodeId>,
    catalog: StatsCatalog,
    managers: FxHashMap<NodeId, GroupManager>,
    /// Per query: `(user node, processor, C(q))`.
    queries: Vec<(NodeId, NodeId, f64)>,
    loads: FxHashMap<NodeId, usize>,
    affinity: usize,
}

impl Rep {
    fn new(cfg: &Fig4Config, rep_seed: u64) -> Result<Rep> {
        let mut rng = StdRng::seed_from_u64(rep_seed);
        let graph = generate(TopologyKind::BarabasiAlbert { m: 2 }, cfg.nodes, &mut rng)?;
        let tree = minimum_spanning_tree(&graph, NodeId(0))?;
        let want =
            ((cfg.nodes as f64 * cfg.processor_fraction).round() as usize).clamp(1, cfg.nodes);
        let stride = (cfg.nodes / want).max(1);
        let processors: Vec<NodeId> = (0..cfg.nodes)
            .step_by(stride)
            .take(want)
            .map(|i| NodeId(i as u32))
            .collect();
        Ok(Rep {
            graph,
            tree,
            processors,
            catalog: sensor_catalog(),
            managers: FxHashMap::default(),
            queries: Vec::new(),
            loads: FxHashMap::default(),
            affinity: cfg.affinity_candidates,
        })
    }

    fn pick_processor(&self, q: &AnalyzedQuery) -> NodeId {
        let mut streams: Vec<&str> = q.streams.iter().map(|b| b.stream.as_str()).collect();
        streams.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in streams.join(",").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let k = self.affinity.clamp(1, self.processors.len());
        let start = (h as usize) % self.processors.len();
        (0..k)
            .map(|i| self.processors[(start + i) % self.processors.len()])
            .min_by_key(|p| (self.loads.get(p).copied().unwrap_or(0), p.raw()))
            .expect("non-empty processor set")
    }

    fn insert(&mut self, text: &str, rng: &mut StdRng) -> Result<()> {
        let parsed = cosmos_cql::parse_query(text)?;
        let q = AnalyzedQuery::analyze(&parsed, self.catalog.schema_fn())?;
        let user = NodeId(rng.gen_range(0..self.graph.node_count() as u32));
        let processor = self.pick_processor(&q);
        *self.loads.entry(processor).or_insert(0) += 1;
        let qid = QueryId(self.queries.len() as u64);
        let cq = cost_bps(&q, &self.catalog);
        let manager = self
            .managers
            .entry(processor)
            .or_insert_with(|| GroupManager::new(format!("rep::{processor}")));
        manager.insert(qid, q, &self.catalog)?;
        self.queries.push((user, processor, cq));
        Ok(())
    }

    /// Unmerged delivery cost: every query's result stream travels its
    /// own tree path at rate `C(q)`.
    fn unmerged_cost(&self) -> f64 {
        self.queries
            .iter()
            .map(|&(user, proc, cq)| cq * path_delay(&self.graph, &self.tree, proc, user))
            .sum()
    }

    /// Merged delivery cost: per group, one shared stream over the union
    /// of member paths; per link, the flow is capped both by the
    /// representative's rate and by what the members downstream of the
    /// link actually consume.
    fn merged_cost(&self) -> f64 {
        let mut total = 0.0;
        for (&proc, manager) in &self.managers {
            for group in manager.groups() {
                let rep_rate = cost_bps(&group.representative, &self.catalog);
                let mut per_link: FxHashMap<(NodeId, NodeId), f64> = FxHashMap::default();
                for (qid, _) in &group.members {
                    let (user, _, cq) = self.queries[qid.index()];
                    for link in self.tree.path_links(proc, user) {
                        *per_link.entry(link).or_insert(0.0) += cq;
                    }
                }
                for ((u, v), member_sum) in per_link {
                    let delay = self
                        .graph
                        .edge_weight(u, v)
                        .unwrap_or_else(|| self.graph.distance(u, v).max(f64::EPSILON));
                    total += delay * rep_rate.min(member_sum);
                }
            }
        }
        total
    }

    fn grouping_ratio(&self) -> f64 {
        let groups: usize = self.managers.values().map(|m| m.group_count()).sum();
        if self.queries.is_empty() {
            1.0
        } else {
            groups as f64 / self.queries.len() as f64
        }
    }

    fn rate_benefit_ratio(&self) -> f64 {
        let members: f64 = self
            .managers
            .values()
            .map(|m| m.total_member_bps(&self.catalog))
            .sum();
        let reps: f64 = self
            .managers
            .values()
            .map(|m| m.total_rep_bps(&self.catalog))
            .sum();
        if members <= 0.0 {
            0.0
        } else {
            1.0 - reps / members
        }
    }
}

/// Run the Figure 4 experiment for one popularity family, returning one
/// point per checkpoint, averaged over `cfg.reps` repetitions.
pub fn run_fig4(cfg: &Fig4Config) -> Result<Vec<Fig4Point>> {
    let max_q = *cfg.checkpoints.iter().max().unwrap_or(&0);
    let mut sums: Vec<(f64, f64, f64)> = vec![(0.0, 0.0, 0.0); cfg.checkpoints.len()];
    for rep in 0..cfg.reps {
        let rep_seed = cfg
            .seed
            .wrapping_add(rep as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut state = Rep::new(cfg, rep_seed)?;
        let mut gen = QueryGenerator::new(
            QueryGenConfig {
                popularity: cfg.popularity,
                ..cfg.workload.clone()
            },
            rep_seed ^ 0xABCD,
        );
        let mut rng = StdRng::seed_from_u64(rep_seed ^ 0x1234);
        let mut next_cp = 0usize;
        for i in 1..=max_q {
            let text = gen.next_query();
            state.insert(&text, &mut rng)?;
            if next_cp < cfg.checkpoints.len() && i == cfg.checkpoints[next_cp] {
                let unmerged = state.unmerged_cost();
                let merged = state.merged_cost();
                let benefit = if unmerged > 0.0 {
                    1.0 - merged / unmerged
                } else {
                    0.0
                };
                sums[next_cp].0 += benefit;
                sums[next_cp].1 += state.grouping_ratio();
                sums[next_cp].2 += state.rate_benefit_ratio();
                next_cp += 1;
            }
        }
    }
    Ok(cfg
        .checkpoints
        .iter()
        .zip(sums)
        .map(|(&queries, (b, g, r))| Fig4Point {
            queries,
            benefit_ratio: b / cfg.reps as f64,
            grouping_ratio: g / cfg.reps as f64,
            rate_benefit_ratio: r / cfg.reps as f64,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down Figure 4 configuration for fast tests.
    fn small(pop: Popularity) -> Fig4Config {
        Fig4Config {
            nodes: 120,
            checkpoints: vec![100, 300],
            popularity: pop,
            reps: 2,
            seed: 7,
            processor_fraction: 0.05,
            affinity_candidates: 1,
            workload: QueryGenConfig::default(),
        }
    }

    #[test]
    fn benefit_grows_with_query_count() {
        let pts = run_fig4(&small(Popularity::Uniform)).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].queries, 100);
        assert!(pts[0].benefit_ratio >= 0.0 && pts[0].benefit_ratio <= 1.0);
        assert!(
            pts[1].benefit_ratio > pts[0].benefit_ratio,
            "benefit should grow with more queries: {pts:?}"
        );
        assert!(
            pts[1].grouping_ratio < pts[0].grouping_ratio,
            "grouping ratio should shrink with more queries: {pts:?}"
        );
    }

    #[test]
    fn skew_increases_benefit() {
        let uni = run_fig4(&small(Popularity::Uniform)).unwrap();
        let zipf = run_fig4(&small(Popularity::Zipf(2.0))).unwrap();
        assert!(
            zipf[1].benefit_ratio > uni[1].benefit_ratio,
            "zipf {zipf:?} should beat uniform {uni:?}"
        );
        assert!(zipf[1].grouping_ratio < uni[1].grouping_ratio);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_fig4(&small(Popularity::Zipf(1.0))).unwrap();
        let b = run_fig4(&small(Popularity::Zipf(1.0))).unwrap();
        assert_eq!(a, b);
    }
}
