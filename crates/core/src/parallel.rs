//! Shard-per-core parallel routing.
//!
//! A [`RoutingPool`] owns a fixed set of std worker threads
//! ([`Cosmos::set_parallelism`](crate::Cosmos::set_parallelism)). Each
//! publish batch is dispatched *whole* to one worker — the shard key is
//! the stream name, so every batch of a stream lands on the same worker
//! and that worker's plan stores are the only place the stream's
//! projection plans ever live. Parallelism comes from pipelining: while
//! the driver thread replays batch `k`'s routed output (link accounting,
//! SPE intake, delivery — the inherently serial effects), workers are
//! already routing batches `k+1..k+w` of other streams.
//!
//! There is **no lock on the tuple path**. Workers route against a
//! copy-on-write snapshot of the routers' interest state
//! ([`SharedRouter`]) using shard-owned plan stores and counters;
//! everything mutable is owned, and shard state re-enters the
//! deployment totals when the driver folds each [`RoutedBatch`]'s
//! counter deltas back in. The cautionary exemplar is sombra's page
//! cache (CONCURRENCY.md in `/root/related/maskdotdev__sombra/`): a
//! "lock-free" structure behind one global `RwLock` scaled *negatively*
//! at 32 threads. Here the global-lock temptation is removed
//! structurally — there is nothing shared to lock.
//!
//! # Determinism
//!
//! Workers precompute the *source-derived* half of the dissemination
//! BFS: every hop a source batch takes before it first enters an SPE
//! executor. The result ([`PreHop`]/[`PreForward`]) is a pure function
//! of (interest snapshot, batch) — no effects happen on the worker. The
//! driver then replays hops in exact serial FIFO order, interleaving
//! live routing of SPE result streams (which never re-enter a source
//! path — cascading-rep topologies bypass the pool entirely), so
//! delivery order, link-byte accounting, f64 cost accumulation order,
//! and every metrics observation are bit-for-bit identical to the
//! serial driver. Batches re-merge in dispatch (seq) order — the
//! deterministic (virtual-time, stream, seq) merge: inputs are
//! timestamp-ordered per stream, so seq order *is* the virtual-time
//! order the serial driver would process, with seq breaking cross-stream
//! ties exactly as serial interleaving does.
//!
//! # Model checking
//!
//! The concurrency skeleton of this file — CoW core publication,
//! generation bump, per-shard lazy invalidation, seq-ordered replay
//! merge, counter fold — is model-checked exhaustively by `cosmos-det
//! check` (`cosmos_det::model`), which enumerates every interleaving at
//! small bounds and proves no stale-core routing, replay linearization
//! to dispatch order, and counter conservation. Comments below anchor
//! the correspondence at each protocol step; keep them in sync when the
//! protocol changes, and mirror the change in the model.

use cosmos_cbn::{Destination, PlanStore, Router, RouterCounters, SharedRouter};
use cosmos_types::{NodeId, Schema, SubscriberId, Tuple};
use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One unit of worker work: route a whole source batch from its origin
/// through the interest snapshot.
struct Job {
    seq: u64,
    origin: NodeId,
    tuples: Vec<Tuple>,
    schema: Schema,
    snapshot: Arc<Vec<SharedRouter>>,
}

/// One forwarding effect recorded by a worker, replayed by the driver.
pub(crate) enum PreForward {
    /// The batch crossed an overlay link. The driver accounts
    /// `bytes`/`tuples_len` and then replays the child hop — the
    /// intermediate tuples themselves never cross the channel.
    Neighbor {
        to: NodeId,
        /// Index of the resulting hop in [`RoutedBatch::hops`].
        child: usize,
        tuples_len: usize,
        bytes: usize,
    },
    /// The batch reached a locally attached subscriber; the driver
    /// decides whether that is an SPE input (routing whatever results
    /// it produces live) or a user delivery.
    Local {
        sub: SubscriberId,
        tuples: Vec<Tuple>,
        schema: Schema,
    },
}

/// One node visit of the precomputed source BFS, with its forwarding
/// decisions in serial order.
pub(crate) struct PreHop {
    pub at: NodeId,
    pub forwards: Vec<PreForward>,
}

/// A worker's routed output for one batch.
pub(crate) struct RoutedBatch {
    /// Source-derived hops in BFS (serial FIFO) order; hop 0 is the
    /// origin visit. Empty when the batch matched nothing anywhere.
    pub hops: Vec<PreHop>,
    /// Per-node counter deltas this job produced, to be folded into the
    /// routers ([`Router::absorb_counters`]).
    pub counters: Vec<(NodeId, RouterCounters)>,
    /// Every non-empty plan store the worker holds after this job:
    /// `(node, interest generation the store was filled at, plans)`.
    /// The driver counts only entries whose generation is current —
    /// stale stores are the ones the serial driver would already have
    /// cleared.
    plans: Vec<(NodeId, u64, u64)>,
    worker: usize,
}

/// FNV-1a over the stream name: the shard key. Stable across runs and
/// platforms, so a stream's batches always land on the same worker for
/// a given pool width.
fn shard_of(stream: &str, workers: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in stream.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % workers as u64) as usize
}

/// Worker main loop: precompute the source-derived BFS of each job
/// against shard-owned plan stores, one store per overlay node.
fn worker_loop(worker: usize, jobs: Receiver<Job>, results: Sender<(u64, RoutedBatch)>) {
    let mut stores: Vec<PlanStore> = Vec::new();
    let mut gens: Vec<u64> = Vec::new();
    while let Ok(job) = jobs.recv() {
        let snapshot = &job.snapshot;
        if stores.len() < snapshot.len() {
            stores.resize_with(snapshot.len(), PlanStore::new);
            gens.resize(snapshot.len(), u64::MAX);
        }
        struct HopInput {
            from: Option<NodeId>,
            at: NodeId,
            tuples: Vec<Tuple>,
            schema: Schema,
        }
        let mut inputs: Vec<Option<HopInput>> = vec![Some(HopInput {
            from: None,
            at: job.origin,
            tuples: job.tuples,
            schema: job.schema,
        })];
        let mut hops: Vec<PreHop> = Vec::new();
        let mut counters: Vec<(NodeId, RouterCounters)> = Vec::new();
        let mut i = 0;
        // hops[i] is produced from inputs[i]; children are appended in
        // forward order, so index order is exactly the serial FIFO.
        while i < inputs.len() {
            let inp = inputs[i].take().expect("each hop input is routed once");
            let idx = inp.at.index();
            let shared = &snapshot[idx];
            // The per-node half of the invalidation contract: a store
            // filled at an older interest generation is cleared before
            // use, mirroring the serial router's eager clear (counters
            // only move while routing, so lazy clearing is unobservable).
            // Model: the `Route` action's store check; eliding the clear
            // is `cosmos-det check --inject-skip-invalidate`, caught by
            // the `stale-core` property.
            if gens[idx] != shared.generation() {
                stores[idx].clear();
                gens[idx] = shared.generation();
            }
            let cpos = match counters.iter().position(|(n, _)| *n == inp.at) {
                Some(p) => p,
                None => {
                    counters.push((inp.at, RouterCounters::default()));
                    counters.len() - 1
                }
            };
            let forwards = shared.route_batch_with(
                &mut stores[idx],
                &mut counters[cpos].1,
                &inp.tuples,
                &inp.schema,
                inp.from,
            );
            let mut pre = Vec::with_capacity(forwards.len());
            for f in forwards {
                match f.dest {
                    Destination::Neighbor(to) => {
                        let bytes = f.tuples.iter().map(Tuple::size_bytes).sum();
                        let tuples_len = f.tuples.len();
                        let child = inputs.len();
                        inputs.push(Some(HopInput {
                            from: Some(inp.at),
                            at: to,
                            tuples: f.tuples,
                            schema: f.schema,
                        }));
                        pre.push(PreForward::Neighbor {
                            to,
                            child,
                            tuples_len,
                            bytes,
                        });
                    }
                    Destination::Local(sub) => pre.push(PreForward::Local {
                        sub,
                        tuples: f.tuples,
                        schema: f.schema,
                    }),
                }
            }
            hops.push(PreHop {
                at: inp.at,
                forwards: pre,
            });
            i += 1;
        }
        let plans: Vec<(NodeId, u64, u64)> = stores
            .iter()
            .enumerate()
            .filter(|(_, s)| s.plan_count() > 0)
            .map(|(n, s)| (NodeId(n as u32), gens[n], s.plan_count() as u64))
            .collect();
        let routed = RoutedBatch {
            hops,
            counters,
            plans,
            worker,
        };
        // The driver may already be gone on teardown paths; that just
        // ends the loop at the next recv.
        if results.send((job.seq, routed)).is_err() {
            break;
        }
    }
}

/// A fixed pool of routing workers plus the driver-side bookkeeping:
/// the interest snapshot, the dispatch sequence, the per-seq reorder
/// buffer, and each worker's last-reported plan-store occupancy.
pub(crate) struct RoutingPool {
    senders: Vec<Sender<Job>>,
    joins: Vec<JoinHandle<()>>,
    results: Receiver<(u64, RoutedBatch)>,
    snapshot: Option<Arc<Vec<SharedRouter>>>,
    /// Σ of router interest generations the snapshot was built at.
    epoch: u64,
    next_seq: u64,
    in_flight: usize,
    /// Results received ahead of their replay turn, keyed by seq.
    pending: BTreeMap<u64, RoutedBatch>,
    /// Last plan-store summary reported by each worker.
    worker_plans: Vec<Vec<(NodeId, u64, u64)>>,
}

impl std::fmt::Debug for RoutingPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutingPool")
            .field("workers", &self.senders.len())
            .field("epoch", &self.epoch)
            .field("in_flight", &self.in_flight)
            .finish()
    }
}

impl RoutingPool {
    /// Spawn `workers` routing threads (`workers >= 1`).
    pub fn new(workers: usize) -> RoutingPool {
        let workers = workers.max(1);
        let (result_tx, results) = channel();
        let mut senders = Vec::with_capacity(workers);
        let mut joins = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel();
            let rtx = result_tx.clone();
            senders.push(tx);
            joins.push(
                std::thread::Builder::new()
                    .name(format!("cosmos-route-{w}"))
                    .spawn(move || worker_loop(w, rx, rtx))
                    .expect("spawn routing worker"),
            );
        }
        RoutingPool {
            senders,
            joins,
            results,
            snapshot: None,
            epoch: 0,
            next_seq: 0,
            in_flight: 0,
            pending: BTreeMap::new(),
            worker_plans: vec![Vec::new(); workers],
        }
    }

    /// Number of worker threads.
    pub fn parallelism(&self) -> usize {
        self.senders.len()
    }

    /// Refresh the copy-on-write interest snapshot if any router's
    /// interests changed since it was built. O(nodes) when nothing
    /// changed (a sum of generation counters); two refcount bumps per
    /// router when something did.
    ///
    /// Model: the refresh-on-generation-change guard of `Dispatch`; the
    /// `stale-core` property proves every job routes against the core
    /// current at its dispatch. `--inject-skip-bump` (a mutator that
    /// forgets to move the generation, so this epoch sum never changes)
    /// is the CI canary that property must catch.
    pub fn ensure_snapshot(&mut self, routers: &[Router]) {
        let epoch = routers
            .iter()
            .map(Router::interest_generation)
            .fold(0u64, u64::wrapping_add);
        let stale = match &self.snapshot {
            Some(s) => s.len() != routers.len() || epoch != self.epoch,
            None => true,
        };
        if stale {
            debug_assert_eq!(self.in_flight, 0, "snapshot refresh with jobs in flight");
            self.snapshot = Some(Arc::new(routers.iter().map(Router::shared).collect()));
            self.epoch = epoch;
        }
    }

    /// Dispatch one source batch to its stream's shard. Returns the seq
    /// to pass to [`RoutingPool::wait_for`]; replay must happen in seq
    /// order.
    pub fn dispatch(&mut self, origin: NodeId, tuples: Vec<Tuple>, schema: Schema) -> u64 {
        let snapshot = Arc::clone(
            self.snapshot
                .as_ref()
                .expect("ensure_snapshot before dispatch"),
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let shard = shard_of(
            tuples.first().map(|t| t.stream.as_str()).unwrap_or(""),
            self.senders.len(),
        );
        let job = Job {
            seq,
            origin,
            tuples,
            schema,
            snapshot,
        };
        self.in_flight += 1;
        self.senders[shard]
            .send(job)
            .expect("routing worker alive while pool exists");
        seq
    }

    /// Block until the routed output of `seq` is available. Results
    /// arriving out of seq order are buffered.
    ///
    /// Model: the `Receive`/`Replay` actions and the `replay-order`
    /// property — replaying the arrival order instead of seq order
    /// (`--inject-replay-arrival`) breaks linearization to serial
    /// submission order; dropping a batch's counter fold
    /// (`--inject-skip-fold`) breaks `counter-conservation`.
    pub fn wait_for(&mut self, seq: u64) -> RoutedBatch {
        loop {
            if let Some(r) = self.pending.remove(&seq) {
                self.in_flight -= 1;
                return r;
            }
            let (s, routed) = self
                .results
                .recv()
                .expect("routing workers cannot disconnect while jobs are in flight");
            self.worker_plans[routed.worker] = routed.plans.clone();
            self.pending.insert(s, routed);
        }
    }

    /// Plans currently cached in worker shard stores, counting only
    /// stores whose interest generation is still current (per
    /// `current_gen`): a stale store corresponds to a cache the serial
    /// driver has already cleared, and the worker will clear it before
    /// its next use.
    pub fn cached_plans(&self, current_gen: impl Fn(NodeId) -> u64) -> u64 {
        self.worker_plans
            .iter()
            .flatten()
            .filter(|(node, gen, _)| *gen == current_gen(*node))
            .map(|(_, _, count)| count)
            .sum()
    }
}

impl Drop for RoutingPool {
    fn drop(&mut self) {
        // Closing the job channels ends every worker loop; join so no
        // thread outlives the deployment it routed for.
        self.senders.clear();
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_stable_and_stream_keyed() {
        let a = shard_of("sensors-0", 4);
        assert_eq!(shard_of("sensors-0", 4), a, "same stream, same shard");
        assert!(a < 4);
        // Distinct streams spread over shards (these four names are the
        // bench workload; at least two distinct shards keeps the
        // pipeline busy).
        let shards: std::collections::BTreeSet<usize> = (0..4)
            .map(|i| shard_of(&format!("sensors-{i}"), 4))
            .collect();
        assert!(shards.len() >= 2);
    }

    #[test]
    fn pool_spawns_and_joins_cleanly() {
        let pool = RoutingPool::new(3);
        assert_eq!(pool.parallelism(), 3);
        assert_eq!(pool.in_flight, 0);
        drop(pool); // must not hang
    }
}
