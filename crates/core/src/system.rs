//! The deployed COSMOS system: nodes, routing, query management, and the
//! discrete-event driver.

use crate::autotune::{AutotuneOptions, AutotunePass, AutotunePolicy, AutotuneReport};
use crate::overload::{Action, OverloadConfig, OverloadController};
use crate::parallel::{PreForward, RoutingPool};
use cosmos_cbn::{BatchForward, Destination, Profile, RegistryMode, Router, SchemaRegistry};
use cosmos_metrics::{relative_drift, MetricsConfig, MetricsHub, MetricsSnapshot, RouterTotals};
use cosmos_overlay::{generate, minimum_spanning_tree, Graph, TopologyKind, Tree};
use cosmos_query::{retighten_profile, GroupManager, StatsCatalog, StreamStats};
use cosmos_spe::{AnalyzedQuery, DisorderStats, Executor, LatePolicy, StateSize};
use cosmos_types::{
    CosmosError, FxHashMap, NeumaierSum, NodeId, Punctuation, QueryId, RateLimit, Result, Schema,
    StreamName, SubscriberId, TimeDelta, Timestamp, Tuple,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// What a server contributes to the system (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Routes data only (data layer).
    Broker,
    /// Routes data and hosts an SPE (data layer + query layer).
    Processor,
}

/// Configuration of a COSMOS deployment.
#[derive(Debug, Clone)]
pub struct CosmosConfig {
    /// Number of overlay nodes.
    pub nodes: usize,
    /// Topology generator for the overlay.
    pub topology: TopologyKind,
    /// Fraction of nodes equipped with an SPE.
    pub processor_fraction: f64,
    /// Schema registry mode (flooding vs DHT).
    pub registry_mode: RegistryMode,
    /// Master seed (topology, placement).
    pub seed: u64,
    /// Number of candidate processors per stream set considered by the
    /// query distribution service. `1` maximizes merging opportunities
    /// (all queries over a stream set meet at one processor); larger
    /// values trade sharing for load balance.
    pub affinity_candidates: usize,
    /// Whether the query layer merges queries (Section 4). Disabling it
    /// reproduces the "Non-Share" baseline of Figure 3: every query gets
    /// its own result stream.
    pub merging_enabled: bool,
    /// "Currently the nodes in COSMOS are organized into multiple
    /// overlay dissemination trees" (Section 3.2). When enabled, every
    /// stream is disseminated along a shortest-path tree rooted at its
    /// origin instead of the single shared MST — lower delivery delay at
    /// the price of more per-node routing state.
    pub per_source_trees: bool,
}

impl Default for CosmosConfig {
    fn default() -> Self {
        CosmosConfig {
            nodes: 16,
            topology: TopologyKind::BarabasiAlbert { m: 2 },
            processor_fraction: 0.25,
            registry_mode: RegistryMode::Flooding,
            seed: 0,
            affinity_candidates: 1,
            merging_enabled: true,
            per_source_trees: false,
        }
    }
}

/// Out-of-order operation: how the deployed system copes with
/// disordered publishes (ISSUE: disorder injection / watermark
/// datagrams / late-tuple semantics).
///
/// When set via [`Cosmos::set_disorder`], the driver tracks the global
/// high water (the largest timestamp any accepted publish carried) and,
/// after every publish, emits per-stream watermark [`Punctuation`]
/// datagrams at `high_water − bound` along the dissemination trees.
/// Every representative executor runs in staged (out-of-order) intake
/// mode with the given late-tuple `policy`. When unset (the default),
/// behavior is bit-for-bit identical to in-order operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisorderRuntime {
    /// How far watermarks lag behind the global high water. Sound when
    /// it covers the workload's maximum lateness (for the seeded
    /// `cosmos-workload` disorder transform: `DisorderSpec::bound()`).
    pub bound: TimeDelta,
    /// What executors do with tuples behind their watermark frontier.
    pub policy: LatePolicy,
}

/// Book-keeping of an armed [`AutotunePolicy`]: when the last pass
/// ran, how many consecutive rate windows exceeded the drift
/// threshold, and the lifetime pass/rollback counters.
#[derive(Debug)]
struct AutotuneSched {
    policy: AutotunePolicy,
    /// Virtual time of the last scheduled pass.
    last_run_ms: i64,
    /// Last rate-window ordinal the drift trigger evaluated.
    last_window: i64,
    /// Consecutive windows with drift above the threshold so far.
    over_windows: u32,
    runs: u64,
    rollbacks: u64,
    last: Option<AutotuneReport>,
}

/// One result-stream production site: the representative executor
/// running at a processor.
#[derive(Debug)]
struct RepSite {
    processor: NodeId,
    executor: Executor,
    /// Generation stamp of this executor (see [`Cosmos::executor_generation`]).
    generation: u64,
}

/// Read-only view of one running representative executor's identity and
/// retained-state occupancy (see [`Cosmos::rep_states`]).
#[derive(Debug, Clone, Copy)]
pub struct RepStateView<'a> {
    /// The result stream the representative produces.
    pub result_stream: &'a StreamName,
    /// The processor hosting the executor.
    pub processor: NodeId,
    /// The representative query the executor runs.
    pub query: &'a AnalyzedQuery,
    /// Measured per-component state occupancy.
    pub state: StateSize,
    /// Out-of-order ingestion counters (`None` when disorder mode is
    /// off).
    pub disorder: Option<DisorderStats>,
    /// The executor's watermark frontier (`None` when disorder mode is
    /// off).
    pub frontier: Option<Timestamp>,
}

/// One hop of the dissemination BFS: a stream-homogeneous batch of
/// datagrams arriving at `at` over the link from `from` (`None` when
/// the batch entered the network at `at`).
struct Hop {
    from: Option<NodeId>,
    at: NodeId,
    tuples: Vec<Tuple>,
    schema: Schema,
}

/// Upper bound on retained warning headlines per accepted query, so a
/// pathological submission cannot balloon [`Cosmos`]'s memory (entries
/// are also dropped on [`Cosmos::unsubscribe`]).
const MAX_LINT_WARNINGS_PER_QUERY: usize = 16;

/// The analyzed query of one member inside a group.
fn member_query(g: &cosmos_query::QueryGroup, qid: QueryId) -> Result<AnalyzedQuery> {
    g.members
        .iter()
        .find(|(m, _)| *m == qid)
        .map(|(_, q)| q.clone())
        .ok_or_else(|| CosmosError::System(format!("query {qid} is not in group {}", g.id)))
}

/// A running COSMOS deployment.
#[derive(Debug)]
pub struct Cosmos {
    cfg: CosmosConfig,
    graph: Graph,
    tree: Tree,
    /// Per-origin shortest-path dissemination trees (lazily built when
    /// `per_source_trees` is enabled).
    source_trees: BTreeMap<NodeId, Tree>,
    roles: Vec<NodeRole>,
    processors: Vec<NodeId>,
    registry: SchemaRegistry,
    catalog: StatsCatalog,
    routers: Vec<Router>,
    /// Query-layer state per processor.
    managers: BTreeMap<NodeId, GroupManager>,
    /// Representative executors, keyed by result-stream name.
    reps: BTreeMap<StreamName, RepSite>,
    /// SPE-input subscriptions: subscriber → result stream it feeds.
    spe_subs: BTreeMap<SubscriberId, StreamName>,
    /// User subscriptions: subscriber → query it serves.
    user_subs: FxHashMap<SubscriberId, QueryId>,
    user_sub_of_query: FxHashMap<QueryId, SubscriberId>,
    /// Baseline (non-merging) mode: each query's private result stream.
    baseline_streams: BTreeMap<QueryId, StreamName>,
    delivered: FxHashMap<QueryId, Vec<Tuple>>,
    query_user: FxHashMap<QueryId, NodeId>,
    query_processor: FxHashMap<QueryId, NodeId>,
    processor_load: FxHashMap<NodeId, usize>,
    /// Warning-level lint findings per accepted query (error-level
    /// findings reject the query at submission instead).
    lint_warnings: FxHashMap<QueryId, Vec<String>>,
    link_bytes: BTreeMap<(NodeId, NodeId), u64>,
    /// Compensated so the readout is association-order insensitive (the
    /// serial driver and the shard pool replay hops in the same order
    /// today, but D0501 holds every oracle-feeding accumulation to the
    /// same standard).
    weighted_cost: NeumaierSum,
    tuples_published: u64,
    next_sub: u64,
    next_query: u64,
    baseline_counter: u64,
    /// Monotone counter stamped onto every freshly created executor.
    executor_gen: u64,
    /// Per-query generation of the executor currently serving it.
    query_executor_gen: FxHashMap<QueryId, u64>,
    /// Runtime observability: sliding-window rates, sampled stream
    /// statistics, delivery latencies (see [`Cosmos::metrics`]).
    metrics: MetricsHub,
    /// Out-of-order operation (None = in-order, zero behavior change).
    disorder: Option<DisorderRuntime>,
    /// Largest timestamp any accepted publish carried (disorder mode).
    high_water: Option<Timestamp>,
    /// Last watermark emitted per stream (sources and, via executor
    /// frontier propagation, result streams).
    emitted_watermarks: BTreeMap<StreamName, Timestamp>,
    /// Source streams that have published at least once in disorder
    /// mode — the streams watermarks are emitted for.
    published_streams: BTreeSet<StreamName>,
    /// Disorder counters of executors that were replaced or torn down,
    /// folded in so [`Cosmos::disorder_totals`] stays conserved.
    retired_disorder: DisorderStats,
    /// Source streams closed by their final watermark
    /// ([`Cosmos::close_streams`]); their routing state is pruned.
    closed_streams: BTreeSet<StreamName>,
    /// Shard-per-core routing workers (`None` = serial driver; see
    /// [`Cosmos::set_parallelism`]).
    parallel: Option<RoutingPool>,
    /// Per-node overload controller (`None` = unbounded delivery; see
    /// [`Cosmos::set_overload`]).
    overload: Option<OverloadController>,
    /// Armed self-tuning scheduler (`None` = manual
    /// [`Cosmos::autotune`] calls only; see [`Cosmos::set_autotune`]).
    autotune_sched: Option<AutotuneSched>,
}

impl Cosmos {
    /// Deploy a system with a generated topology.
    pub fn new(cfg: CosmosConfig) -> Result<Cosmos> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let graph = generate(cfg.topology, cfg.nodes, &mut rng)?;
        Self::with_graph(cfg, graph)
    }

    /// Deploy a system on an explicitly constructed overlay graph
    /// (used by the Figure 3 experiment and by tests that need exact
    /// topologies). Processors are chosen by stride to match
    /// `processor_fraction`.
    pub fn with_graph(cfg: CosmosConfig, graph: Graph) -> Result<Cosmos> {
        let n = graph.node_count();
        if n == 0 {
            return Err(CosmosError::System("empty overlay".into()));
        }
        let tree = minimum_spanning_tree(&graph, NodeId(0))?;
        let want = ((n as f64 * cfg.processor_fraction).round() as usize).clamp(1, n);
        let stride = (n / want).max(1);
        let mut roles = vec![NodeRole::Broker; n];
        let mut processors = Vec::with_capacity(want);
        for i in (0..n).step_by(stride) {
            if processors.len() == want {
                break;
            }
            roles[i] = NodeRole::Processor;
            processors.push(NodeId(i as u32));
        }
        let registry = SchemaRegistry::new(cfg.registry_mode, (0..n as u32).map(NodeId));
        let routers = (0..n as u32).map(|i| Router::new(NodeId(i))).collect();
        Ok(Cosmos {
            cfg,
            tree,
            source_trees: BTreeMap::new(),
            roles,
            processors,
            registry,
            catalog: StatsCatalog::new(),
            routers,
            managers: BTreeMap::new(),
            reps: BTreeMap::new(),
            spe_subs: BTreeMap::new(),
            user_subs: FxHashMap::default(),
            user_sub_of_query: FxHashMap::default(),
            baseline_streams: BTreeMap::new(),
            delivered: FxHashMap::default(),
            query_user: FxHashMap::default(),
            query_processor: FxHashMap::default(),
            processor_load: FxHashMap::default(),
            lint_warnings: FxHashMap::default(),
            link_bytes: BTreeMap::new(),
            weighted_cost: NeumaierSum::new(),
            tuples_published: 0,
            next_sub: 0,
            next_query: 0,
            baseline_counter: 0,
            executor_gen: 0,
            query_executor_gen: FxHashMap::default(),
            metrics: MetricsHub::new(MetricsConfig::default()),
            disorder: None,
            high_water: None,
            emitted_watermarks: BTreeMap::new(),
            published_streams: BTreeSet::new(),
            retired_disorder: DisorderStats::default(),
            closed_streams: BTreeSet::new(),
            parallel: None,
            overload: None,
            autotune_sched: None,
            graph,
        })
    }

    /// The overlay graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The dissemination tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Mutable overlay-graph access (fault module).
    pub(crate) fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// Per-source trees by origin (fault module).
    pub(crate) fn source_trees(&self) -> &BTreeMap<NodeId, Tree> {
        &self.source_trees
    }

    /// Split borrow: the overlay graph plus the mutable shared tree
    /// (fault module repairs need both at once).
    pub(crate) fn graph_and_tree_mut(&mut self) -> (&Graph, &mut Tree) {
        (&self.graph, &mut self.tree)
    }

    /// Split borrow: the overlay graph plus one mutable per-source tree.
    pub(crate) fn graph_and_source_tree_mut(
        &mut self,
        origin: NodeId,
    ) -> (&Graph, Option<&mut Tree>) {
        (&self.graph, self.source_trees.get_mut(&origin))
    }

    /// The deployment configuration.
    pub fn config(&self) -> &CosmosConfig {
        &self.cfg
    }

    /// Run the Section 3.2 adaptive reorganizer on the shared
    /// dissemination tree, using each node's local-subscription count as
    /// its consumer demand, then re-derive all routing state from the
    /// new tree. Returns a zero-move report in per-source-tree mode
    /// (those trees are delay-optimal by construction).
    pub fn optimize_tree(
        &mut self,
        cfg: cosmos_overlay::OptimizerConfig,
    ) -> cosmos_overlay::OptimizeReport {
        let demand: Vec<f64> = self
            .routers
            .iter()
            .map(|r| r.local_subscribers().count() as f64)
            .collect();
        self.optimize_tree_with_demand(cfg, &demand)
    }

    /// [`Cosmos::optimize_tree`] with an explicit per-node demand vector
    /// instead of subscription counts — [`Cosmos::autotune`] passes the
    /// *measured* per-node consumed byte rates here.
    pub fn optimize_tree_with_demand(
        &mut self,
        cfg: cosmos_overlay::OptimizerConfig,
        demand: &[f64],
    ) -> cosmos_overlay::OptimizeReport {
        if self.cfg.per_source_trees {
            let cost = cosmos_overlay::TreeOptimizer::new(cfg).cost(
                &self.graph,
                &self.tree,
                &vec![0.0; self.graph.node_count()],
            );
            return cosmos_overlay::OptimizeReport {
                cost_before: cost,
                cost_after: cost,
                moves: 0,
            };
        }
        let report =
            cosmos_overlay::TreeOptimizer::new(cfg).optimize(&self.graph, &mut self.tree, demand);
        if report.moves > 0 {
            self.rebuild_routes();
        }
        report
    }

    /// The role of a node.
    pub fn role(&self, node: NodeId) -> NodeRole {
        self.roles[node.index()]
    }

    /// The processor nodes.
    pub fn processors(&self) -> &[NodeId] {
        &self.processors
    }

    /// The schema registry.
    pub fn registry(&self) -> &SchemaRegistry {
        &self.registry
    }

    /// The statistics catalog.
    pub fn catalog(&self) -> &StatsCatalog {
        &self.catalog
    }

    /// Access a node's router (tests, diagnostics).
    pub fn router(&self, node: NodeId) -> &Router {
        &self.routers[node.index()]
    }

    /// Advertise a source stream published at `origin`.
    pub fn register_stream(
        &mut self,
        name: impl Into<StreamName>,
        schema: Schema,
        stats: StreamStats,
        origin: NodeId,
    ) -> Result<()> {
        let name = name.into();
        if origin.index() >= self.routers.len() {
            return Err(CosmosError::System(format!("unknown origin {origin}")));
        }
        self.registry
            .register(name.clone(), schema.clone(), origin)?;
        self.catalog.register(name, schema, stats);
        self.ensure_source_tree(origin);
        Ok(())
    }

    fn alloc_sub(&mut self) -> SubscriberId {
        let id = SubscriberId(self.next_sub);
        self.next_sub += 1;
        id
    }

    /// Query distribution (load management): pick the processor that
    /// will run this query. A small candidate set is derived from the
    /// query's stream set so queries over the same streams meet at the
    /// same processor(s); the least-loaded candidate wins.
    pub fn pick_processor(&self, q: &AnalyzedQuery) -> NodeId {
        let mut streams: Vec<&str> = q.streams.iter().map(|b| b.stream.as_str()).collect();
        streams.sort_unstable();
        let key = streams.join(",");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let k = self.cfg.affinity_candidates.clamp(1, self.processors.len());
        let start = (h as usize) % self.processors.len();
        (0..k)
            .map(|i| self.processors[(start + i) % self.processors.len()])
            .min_by_key(|p| (self.processor_load.get(p).copied().unwrap_or(0), p.raw()))
            .expect("at least one processor")
    }

    /// The dissemination tree used for streams originating at `origin`.
    pub fn tree_for(&self, origin: NodeId) -> &Tree {
        if self.cfg.per_source_trees {
            self.source_trees.get(&origin).unwrap_or(&self.tree)
        } else {
            &self.tree
        }
    }

    /// Lazily build the shortest-path dissemination tree rooted at a
    /// stream origin (multi-tree mode).
    fn ensure_source_tree(&mut self, origin: NodeId) {
        if !self.cfg.per_source_trees || self.source_trees.contains_key(&origin) {
            return;
        }
        let sp = cosmos_overlay::dijkstra(&self.graph, origin);
        let edges: Vec<(NodeId, NodeId)> = self
            .graph
            .nodes()
            .filter(|&v| v != origin)
            .map(|v| {
                let path = sp.path_to(v);
                debug_assert!(path.len() >= 2, "overlay must be connected");
                (path[path.len() - 2], v)
            })
            .collect();
        let tree = Tree::from_edges(self.graph.node_count(), origin, &edges)
            .expect("shortest-path tree of a connected graph is a tree");
        self.source_trees.insert(origin, tree);
    }

    /// Propagate a data-interest profile from `from` towards `origin`
    /// along `origin`'s dissemination tree (reverse-path subscription).
    pub(crate) fn propagate_interest(&mut self, from: NodeId, origin: NodeId, profile: &Profile) {
        let normalized = profile.normalized();
        let path = self.tree_for(origin).path(from, origin);
        for w in path.windows(2) {
            let (down, up) = (w[0], w[1]);
            self.routers[up.index()].merge_neighbor_interest(down, &normalized);
        }
    }

    /// Propagate each stream of a profile towards that stream's origin.
    fn propagate_per_stream(&mut self, from: NodeId, profile: &Profile) -> Result<()> {
        let split: Vec<(NodeId, Profile)> = profile
            .iter()
            .map(|(stream, entry)| {
                let origin = self.registry.origin(stream).ok_or_else(|| {
                    CosmosError::System(format!("stream '{stream}' is not advertised"))
                })?;
                let mut single = Profile::new();
                single.add_entry(stream.clone(), entry.clone());
                Ok((origin, single))
            })
            .collect::<Result<_>>()?;
        for (origin, single) in split {
            self.propagate_interest(from, origin, &single);
        }
        Ok(())
    }

    /// Rebuild every router's reverse-path interests from the *current*
    /// local subscriptions. Reverse-path state is a pure function of the
    /// tree and the local profiles, so this both heals the network after
    /// a tree reorganization and flushes stale interest left behind when
    /// a subscription's profile is replaced (a widened representative).
    pub fn rebuild_routes(&mut self) {
        for r in &mut self.routers {
            r.clear_neighbor_interests();
        }
        let subs: Vec<(NodeId, Profile)> = self
            .routers
            .iter()
            .flat_map(|r| {
                let node = r.node();
                r.local_subscribers()
                    .map(move |(_, p)| (node, p.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (node, profile) in subs {
            // Streams can only vanish from the registry via explicit
            // unregistration, which the system layer never does while
            // subscriptions exist; ignore unknown streams defensively.
            let _ = self.propagate_per_stream(node, &profile);
        }
    }

    /// Submit a user query at node `user`. Returns the query id; results
    /// accumulate in [`Cosmos::results`] as data is published.
    pub fn submit_query(&mut self, text: &str, user: NodeId) -> Result<QueryId> {
        if user.index() >= self.routers.len() {
            return Err(CosmosError::System(format!("unknown user node {user}")));
        }
        let spanned = cosmos_cql::parse_query_spanned(text)?;
        // Static analysis gates registration: a continuous query with an
        // error-level finding (unsatisfiable WHERE, type mismatch, …)
        // would run forever and deliver nothing, so refuse it up front.
        // Warnings don't block; they are kept for inspection.
        let diags = cosmos_lint::check_query_with(&spanned, self.catalog.schema_fn());
        if let Some(err) = diags
            .iter()
            .find(|d| d.severity == cosmos_lint::Severity::Error)
        {
            return Err(CosmosError::Lint(format!("{}: {}", err.code, err.message)));
        }
        let warnings: Vec<String> = diags
            .iter()
            .take(MAX_LINT_WARNINGS_PER_QUERY)
            .map(cosmos_lint::Diagnostic::headline)
            .collect();
        let parsed = spanned.query;
        let analyzed = AnalyzedQuery::analyze(&parsed, self.catalog.schema_fn())?;
        // Admission control (cosmos-bound): a query whose executor state
        // provably grows without bound — a join buffer or aggregate
        // window under `[Unbounded]` — is rejected before any routing
        // state is allocated or the result stream is advertised.
        // Warning-level findings (DISTINCT dedup state) ride along with
        // the lint warnings.
        let mut warnings = warnings;
        for d in cosmos_bound::check_query(&analyzed) {
            match d.severity {
                cosmos_lint::Severity::Error => {
                    return Err(CosmosError::Lint(format!("{}: {}", d.code, d.message)));
                }
                _ => {
                    if warnings.len() < MAX_LINT_WARNINGS_PER_QUERY {
                        warnings.push(d.headline());
                    }
                }
            }
        }
        let qid = QueryId(self.next_query);
        self.next_query += 1;
        if !warnings.is_empty() {
            self.lint_warnings.insert(qid, warnings);
        }
        let processor = self.pick_processor(&analyzed);
        *self.processor_load.entry(processor).or_insert(0) += 1;

        // Query management: group/merge, or the non-share baseline.
        let (result_stream, user_profile, rep, rep_is_new, rep_changed, updated_profiles) =
            if self.cfg.merging_enabled {
                let catalog = &self.catalog;
                let manager = self
                    .managers
                    .entry(processor)
                    .or_insert_with(|| GroupManager::new(format!("result::{processor}")));
                let outcome = manager.insert(qid, analyzed.clone(), catalog)?;
                let rep = manager
                    .group(outcome.group)
                    .expect("inserted group exists")
                    .representative
                    .clone();
                (
                    outcome.result_stream,
                    outcome.profile,
                    rep,
                    !outcome.joined_existing,
                    outcome.rep_changed,
                    outcome.updated_profiles,
                )
            } else {
                self.baseline_counter += 1;
                let stream =
                    StreamName::from(format!("result::{processor}::q{}", self.baseline_counter));
                let profile = retighten_profile(&analyzed, &analyzed, &stream)?;
                self.baseline_streams.insert(qid, stream.clone());
                (stream, profile, analyzed.clone(), true, false, Vec::new())
            };

        if rep_is_new {
            // Advertise the result stream and start the representative.
            self.ensure_source_tree(processor);
            self.registry
                .register(result_stream.clone(), rep.output_schema.clone(), processor)?;
            self.catalog.register(
                result_stream.clone(),
                rep.output_schema.clone(),
                StreamStats::with_rate(cosmos_query::estimate::output_tuples_per_sec(
                    &rep,
                    &self.catalog,
                )),
            );
            let mut executor = Executor::new(rep.clone(), result_stream.clone())?;
            self.arm_executor(&mut executor);
            // The SPE subscribes to the source data (Section 4 profile).
            let sub = self.alloc_sub();
            let source_profile = rep.source_profile();
            self.routers[processor.index()].add_local_subscriber(sub, source_profile.clone());
            self.spe_subs.insert(sub, result_stream.clone());
            self.propagate_per_stream(processor, &source_profile)?;
            self.executor_gen += 1;
            self.query_executor_gen.insert(qid, self.executor_gen);
            self.reps.insert(
                result_stream.clone(),
                RepSite {
                    processor,
                    executor,
                    generation: self.executor_gen,
                },
            );
        } else if rep_changed {
            // Replace the running representative: wider query, same
            // result stream. (Window state restarts; experiments submit
            // queries before publishing data.)
            self.retire_executor(&result_stream);
            self.registry
                .update_schema(&result_stream, rep.output_schema.clone())?;
            let mut executor = Executor::new(rep.clone(), result_stream.clone())?;
            self.arm_executor(&mut executor);
            self.executor_gen += 1;
            let site = self.reps.get_mut(&result_stream).expect("rep exists");
            site.executor = executor;
            site.generation = self.executor_gen;
            // The replaced executor starts fresh: every member of the
            // group (the new one included) is now served by the new
            // generation.
            self.query_executor_gen.insert(qid, self.executor_gen);
            if let Some(manager) = self.managers.get(&processor) {
                if let Some((g, _)) = manager.placement(qid) {
                    for (mid, _) in &g.members {
                        self.query_executor_gen.insert(*mid, self.executor_gen);
                    }
                }
            }
            // Re-subscribe the SPE input with the widened profile.
            let source_profile = rep.source_profile();
            let sub = *self
                .spe_subs
                .iter()
                .find(|(_, s)| **s == result_stream)
                .map(|(k, _)| k)
                .expect("spe subscription exists");
            self.routers[processor.index()].add_local_subscriber(sub, source_profile.clone());
            self.propagate_per_stream(processor, &source_profile)?;
        } else {
            // Joined an existing group without widening it: the query is
            // served by the warm, already-running executor.
            let gen = self.reps[&result_stream].generation;
            self.query_executor_gen.insert(qid, gen);
        }

        // A widened representative invalidates the other members'
        // re-tightened profiles: replace their local subscriptions and
        // rebuild the reverse-path state so no stale (looser or tighter)
        // interest lingers on intermediate nodes.
        let must_rebuild = !updated_profiles.is_empty();
        for (mid, profile) in updated_profiles {
            let member_user = self.query_user[&mid];
            let member_sub = self.user_sub_of_query[&mid];
            self.routers[member_user.index()].add_local_subscriber(member_sub, profile);
        }

        // The user retrieves the results through the CBN.
        let sub = self.alloc_sub();
        self.routers[user.index()].add_local_subscriber(sub, user_profile.clone());
        self.user_subs.insert(sub, qid);
        self.user_sub_of_query.insert(qid, sub);
        if must_rebuild {
            self.rebuild_routes();
        } else {
            self.propagate_interest(user, processor, &user_profile);
        }

        self.delivered.insert(qid, Vec::new());
        self.query_user.insert(qid, user);
        self.query_processor.insert(qid, processor);
        Ok(qid)
    }

    /// Self-tuning (the "Self-tuning" of COSMOS's name): re-optimize the
    /// query grouping at every processor. Where a better grouping exists
    /// (greedy insertion is order-sensitive), the processor's
    /// representatives are rebuilt, its result streams re-advertised,
    /// every affected user subscription refreshed, and the routing state
    /// re-derived. Returns the number of processors whose grouping
    /// improved.
    ///
    /// Like representative replacement on merge, rebuilt executors start
    /// with empty windows; run this between workload phases.
    pub fn reoptimize_groups(&mut self) -> Result<usize> {
        if !self.cfg.merging_enabled {
            return Ok(0);
        }
        let processors: Vec<NodeId> = self.managers.keys().copied().collect();
        let mut improved = 0usize;
        for p in processors {
            let catalog = self.catalog.clone();
            let Some(mgr) = self.managers.get_mut(&p) else {
                continue;
            };
            let Some(placements) = mgr.reoptimize(&catalog)? else {
                continue;
            };
            improved += 1;
            // Tear down every representative this processor was running.
            let old_streams: Vec<StreamName> = self
                .reps
                .iter()
                .filter(|(_, site)| site.processor == p)
                .map(|(k, _)| k.clone())
                .collect();
            for s in &old_streams {
                self.retire_executor(s);
                self.reps.remove(s);
                self.registry.unregister(s);
                let dead_subs: Vec<SubscriberId> = self
                    .spe_subs
                    .iter()
                    .filter(|(_, st)| *st == s)
                    .map(|(k, _)| *k)
                    .collect();
                for k in dead_subs {
                    self.spe_subs.remove(&k);
                    self.routers[p.index()].remove_local_subscriber(k);
                }
            }
            // Start the new representatives.
            let groups: Vec<(StreamName, AnalyzedQuery)> = self.managers[&p]
                .groups()
                .map(|g| (g.result_stream.clone(), g.representative.clone()))
                .collect();
            for (stream, rep) in groups {
                self.ensure_source_tree(p);
                let rate = cosmos_query::estimate::output_tuples_per_sec(&rep, &self.catalog);
                self.registry
                    .register(stream.clone(), rep.output_schema.clone(), p)?;
                self.catalog.register(
                    stream.clone(),
                    rep.output_schema.clone(),
                    StreamStats::with_rate(rate),
                );
                let mut executor = Executor::new(rep.clone(), stream.clone())?;
                self.arm_executor(&mut executor);
                let sub = self.alloc_sub();
                self.routers[p.index()].add_local_subscriber(sub, rep.source_profile());
                self.spe_subs.insert(sub, stream.clone());
                self.executor_gen += 1;
                self.reps.insert(
                    stream,
                    RepSite {
                        processor: p,
                        executor,
                        generation: self.executor_gen,
                    },
                );
            }
            // Refresh the affected users' subscriptions.
            for (qid, stream, profile) in placements {
                let user = self.query_user[&qid];
                let sub = self.user_sub_of_query[&qid];
                self.routers[user.index()].add_local_subscriber(sub, profile);
                let gen = self.reps[&stream].generation;
                self.query_executor_gen.insert(qid, gen);
            }
        }
        if improved > 0 {
            self.rebuild_routes();
        }
        Ok(improved)
    }

    /// Withdraw a query: remove its user subscription, drop it from its
    /// group (rebuilding the representative from the remaining members,
    /// or tearing the group down entirely), and re-derive routing state.
    ///
    /// Returns an error for unknown query ids. Results already delivered
    /// remain readable via [`Cosmos::results`].
    pub fn unsubscribe(&mut self, qid: QueryId) -> Result<()> {
        let user = self
            .query_user
            .get(&qid)
            .copied()
            .ok_or_else(|| CosmosError::System(format!("unknown query {qid}")))?;
        let sub = self.user_sub_of_query.remove(&qid).expect("sub per query");
        self.routers[user.index()].remove_local_subscriber(sub);
        self.user_subs.remove(&sub);
        let processor = self.query_processor[&qid];
        if let Some(load) = self.processor_load.get_mut(&processor) {
            *load = load.saturating_sub(1);
        }
        if self.cfg.merging_enabled {
            let manager = self.managers.get_mut(&processor).expect("manager exists");
            // Identify the group before removal to detect dissolution.
            let (group, _) = manager.placement(qid).expect("query placed");
            let (gid, result_stream) = (group.id, group.result_stream.clone());
            manager.remove(qid);
            match manager.group(gid) {
                None => {
                    // Group dissolved: stop the representative and drop
                    // its advertisement and SPE input subscription.
                    self.retire_executor(&result_stream);
                    self.reps.remove(&result_stream);
                    self.registry.unregister(&result_stream);
                    let spe_sub = self
                        .spe_subs
                        .iter()
                        .find(|(_, s)| **s == result_stream)
                        .map(|(k, _)| *k);
                    if let Some(s) = spe_sub {
                        self.spe_subs.remove(&s);
                        self.routers[processor.index()].remove_local_subscriber(s);
                    }
                }
                Some(g) => {
                    // Representative shrank: restart it and refresh the
                    // remaining members' profiles.
                    let rep = g.representative.clone();
                    let members: Vec<QueryId> = g.members.iter().map(|(m, _)| *m).collect();
                    self.retire_executor(&result_stream);
                    self.registry
                        .update_schema(&result_stream, rep.output_schema.clone())?;
                    let mut executor = Executor::new(rep.clone(), result_stream.clone())?;
                    self.arm_executor(&mut executor);
                    self.executor_gen += 1;
                    let site = self.reps.get_mut(&result_stream).expect("rep exists");
                    site.executor = executor;
                    site.generation = self.executor_gen;
                    for mid in &members {
                        self.query_executor_gen.insert(*mid, self.executor_gen);
                    }
                    let source_profile = rep.source_profile();
                    let spe_sub = *self
                        .spe_subs
                        .iter()
                        .find(|(_, s)| **s == result_stream)
                        .map(|(k, _)| k)
                        .expect("spe subscription exists");
                    self.routers[processor.index()].add_local_subscriber(spe_sub, source_profile);
                    for mid in members {
                        let manager = self.managers.get(&processor).expect("manager");
                        let (g, _) = manager.placement(mid).expect("member placed");
                        let profile = retighten_profile(
                            &member_query(g, mid)?,
                            &g.representative,
                            &result_stream,
                        )?;
                        let member_user = self.query_user[&mid];
                        let member_sub = self.user_sub_of_query[&mid];
                        self.routers[member_user.index()].add_local_subscriber(member_sub, profile);
                    }
                }
            }
        } else {
            // Baseline mode: every query has its own representative;
            // tear it down directly.
            let stream = self
                .baseline_streams
                .remove(&qid)
                .expect("baseline query has a private result stream");
            self.retire_executor(&stream);
            self.reps.remove(&stream);
            self.registry.unregister(&stream);
            let spe_sub = self
                .spe_subs
                .iter()
                .find(|(_, st)| **st == stream)
                .map(|(k, _)| *k);
            if let Some(k) = spe_sub {
                self.spe_subs.remove(&k);
                self.routers[processor.index()].remove_local_subscriber(k);
            }
        }
        self.query_user.remove(&qid);
        self.query_processor.remove(&qid);
        self.query_executor_gen.remove(&qid);
        self.lint_warnings.remove(&qid);
        self.rebuild_routes();
        Ok(())
    }

    fn account_link(&mut self, a: NodeId, b: NodeId, bytes: usize) {
        let key = (a.min(b), a.max(b));
        *self.link_bytes.entry(key).or_insert(0) += bytes as u64;
        // Price the hop exactly like TreeOptimizer::cost does, so the
        // measured weighted cost is comparable to the estimated one.
        let delay = self.graph.link_delay(a, b).unwrap_or_else(|| {
            debug_assert!(false, "traffic accounted on downed link {a}-{b}");
            self.graph.distance(a, b).max(f64::EPSILON)
        });
        self.weighted_cost.add(bytes as f64 * delay);
    }

    /// Publish one source datagram at its stream's origin node and drive
    /// it (and any result datagrams it triggers) through the network to
    /// completion.
    ///
    /// Thin wrapper over [`Cosmos::publish_batch`]; the input tuple is
    /// never cloned — the origin router borrows it and only the
    /// (projected, `Arc`-backed) forwarded copies are materialized.
    pub fn publish(&mut self, tuple: &Tuple) -> Result<()> {
        self.publish_batch(std::slice::from_ref(tuple))
    }

    /// Whether any representative executor consumes a stream that is
    /// itself produced by a representative. Batching such a topology
    /// would deliver a source batch and the result batch it triggers
    /// back-to-back instead of interleaved by timestamp, so
    /// [`Cosmos::publish_batch`] falls back to per-tuple routing.
    fn has_cascading_reps(&self) -> bool {
        self.reps.values().any(|site| {
            site.executor
                .query()
                .streams
                .iter()
                .any(|b| self.reps.contains_key(&b.stream))
        })
    }

    /// Publish a *stream-homogeneous* batch of source datagrams at their
    /// stream's origin and drive the whole batch through the network
    /// together: one match lookup per (router, batch), one projection
    /// plan per (router, destination), amortized link accounting, and
    /// whole batches fed to the SPE executors.
    ///
    /// Delivery is tuple-for-tuple identical to publishing the tuples
    /// one at a time (cosmos-testkit's batch oracle pins this down).
    pub fn publish_batch(&mut self, tuples: &[Tuple]) -> Result<()> {
        let Some(first) = tuples.first() else {
            return Ok(());
        };
        if tuples.iter().any(|t| t.stream != first.stream) {
            return Err(CosmosError::System(
                "publish_batch requires a single-stream batch".into(),
            ));
        }
        let reg = self.registry.peek(&first.stream).ok_or_else(|| {
            CosmosError::System(format!("stream '{}' is not advertised", first.stream))
        })?;
        let (origin, schema) = (reg.origin, reg.schema.clone());
        self.tuples_published += tuples.len() as u64;
        self.metrics.on_publish(&first.stream, &schema, tuples);
        if self.disorder.is_some() {
            self.published_streams.insert(first.stream.clone());
        }
        let cascading = self.has_cascading_reps();
        if tuples.len() > 1 && cascading {
            for t in tuples {
                self.drive(origin, t, &schema);
            }
            self.after_publish(tuples);
            self.autotune_tick();
            return Ok(());
        }
        // Cascading-rep topologies keep all source routing on the main
        // routers (store-placement consistency with the fallback above);
        // otherwise route through the worker pool when one is armed.
        if self.parallel.is_some() && !cascading {
            let mut pool = self.parallel.take().expect("checked above");
            pool.ensure_snapshot(&self.routers);
            let seq = pool.dispatch(origin, tuples.to_vec(), schema);
            let routed = pool.wait_for(seq);
            self.replay_routed(routed);
            self.parallel = Some(pool);
            self.after_publish(tuples);
            self.autotune_tick();
            return Ok(());
        }
        let mut queue: VecDeque<Hop> = VecDeque::new();
        let forwards = self.routers[origin.index()].route_batch(tuples, &schema, None);
        self.process_forwards(origin, forwards, &mut queue);
        while let Some(hop) = queue.pop_front() {
            let forwards =
                self.routers[hop.at.index()].route_batch(&hop.tuples, &hop.schema, hop.from);
            self.process_forwards(hop.at, forwards, &mut queue);
        }
        self.after_publish(tuples);
        self.autotune_tick();
        Ok(())
    }

    /// Replay one worker-routed batch on the driver thread, reproducing
    /// the serial BFS effect order exactly: precomputed source-derived
    /// hops are replayed FIFO, and SPE result streams route *live* on
    /// the main routers, interleaved at the precise queue positions the
    /// serial driver would give them. Counter deltas from the worker
    /// shard fold back into the routers first — the same totals, in one
    /// merge instead of per-tuple cell bumps.
    fn replay_routed(&mut self, routed: crate::parallel::RoutedBatch) {
        for (node, delta) in &routed.counters {
            self.routers[node.index()].absorb_counters(delta);
        }
        enum Entry {
            /// Index into the precomputed source-derived hops.
            Pre(usize),
            /// A live hop carrying SPE result tuples.
            Live(Hop),
        }
        let mut hops: Vec<Option<crate::parallel::PreHop>> =
            routed.hops.into_iter().map(Some).collect();
        let mut queue: VecDeque<Entry> = VecDeque::new();
        if !hops.is_empty() {
            queue.push_back(Entry::Pre(0));
        }
        while let Some(entry) = queue.pop_front() {
            match entry {
                Entry::Pre(i) => {
                    let pre = hops[i].take().expect("each pre-hop replays once");
                    let at = pre.at;
                    for f in pre.forwards {
                        match f {
                            PreForward::Neighbor {
                                to,
                                child,
                                tuples_len,
                                bytes,
                            } => {
                                self.account_link(at, to, bytes);
                                self.metrics.on_link(at, to, tuples_len, bytes);
                                queue.push_back(Entry::Pre(child));
                            }
                            PreForward::Local {
                                sub,
                                tuples,
                                schema,
                            } => {
                                if let Some(hop) = self.deliver_local(at, sub, tuples, &schema) {
                                    queue.push_back(Entry::Live(hop));
                                }
                            }
                        }
                    }
                }
                Entry::Live(hop) => {
                    let forwards = self.routers[hop.at.index()].route_batch(
                        &hop.tuples,
                        &hop.schema,
                        hop.from,
                    );
                    let mut tmp: VecDeque<Hop> = VecDeque::new();
                    self.process_forwards(hop.at, forwards, &mut tmp);
                    for h in tmp {
                        queue.push_back(Entry::Live(h));
                    }
                }
            }
        }
    }

    /// Drive one already-validated tuple through the network (the
    /// per-tuple fallback of [`Cosmos::publish_batch`]).
    fn drive(&mut self, origin: NodeId, tuple: &Tuple, schema: &Schema) {
        let mut queue: VecDeque<Hop> = VecDeque::new();
        let forwards =
            self.routers[origin.index()].route_batch(std::slice::from_ref(tuple), schema, None);
        self.process_forwards(origin, forwards, &mut queue);
        while let Some(hop) = queue.pop_front() {
            let forwards =
                self.routers[hop.at.index()].route_batch(&hop.tuples, &hop.schema, hop.from);
            self.process_forwards(hop.at, forwards, &mut queue);
        }
    }

    /// Handle the forwarding decisions of one (node, batch) routing
    /// step: account and enqueue neighbor hops, feed local SPE inputs
    /// (re-entering their outputs into the network), append user
    /// deliveries.
    fn process_forwards(
        &mut self,
        at: NodeId,
        forwards: Vec<BatchForward>,
        queue: &mut VecDeque<Hop>,
    ) {
        for f in forwards {
            match f.dest {
                Destination::Neighbor(n) => {
                    let bytes: usize = f.tuples.iter().map(Tuple::size_bytes).sum();
                    self.account_link(at, n, bytes);
                    self.metrics.on_link(at, n, f.tuples.len(), bytes);
                    queue.push_back(Hop {
                        from: Some(at),
                        at: n,
                        tuples: f.tuples,
                        schema: f.schema,
                    });
                }
                Destination::Local(sub) => {
                    if let Some(hop) = self.deliver_local(at, sub, f.tuples, &f.schema) {
                        queue.push_back(hop);
                    }
                }
            }
        }
    }

    /// Deliver a projected batch to one locally attached subscriber: an
    /// SPE input gets the batch pushed through its executor (returning
    /// the result datagrams re-entering the network as a new hop, if
    /// any), a user subscription gets the tuples appended to its
    /// delivery buffer. Shared verbatim by the serial BFS and the
    /// parallel replay so the two paths cannot drift.
    fn deliver_local(
        &mut self,
        at: NodeId,
        sub: SubscriberId,
        tuples: Vec<Tuple>,
        schema: &Schema,
    ) -> Option<Hop> {
        if let Some(stream) = self.spe_subs.get(&sub) {
            let stream = stream.clone();
            let site = self.reps.get_mut(&stream).expect("rep site exists");
            debug_assert_eq!(site.processor, at);
            let outputs = site.executor.push_projected_batch(&tuples, schema);
            let rep_schema = site.executor.result_schema().clone();
            self.metrics.on_spe_intake(at, &tuples);
            if !outputs.is_empty() {
                // Result datagrams enter the CBN here; observe them
                // like any other published stream.
                self.metrics.on_publish(&stream, &rep_schema, &outputs);
                return Some(Hop {
                    from: None,
                    at,
                    tuples: outputs,
                    schema: rep_schema,
                });
            }
        } else if let Some(&qid) = self.user_subs.get(&sub) {
            if self.overload.is_some() && self.metrics.enabled() {
                self.overload_deliver(at, qid, tuples);
            } else {
                self.metrics.on_delivery(qid, at, &tuples);
                self.delivered
                    .get_mut(&qid)
                    .expect("delivery buffer")
                    .extend(tuples);
            }
        }
        None
    }

    /// The overload-controlled user delivery path: consult the
    /// controller with the node's measured in-window intake, then map
    /// its verdict onto delivery-buffer and metrics effects. Budget
    /// decisions read only virtual-time state, so a replay of the same
    /// scenario reproduces identical shed decisions.
    fn overload_deliver(&mut self, at: NodeId, qid: QueryId, tuples: Vec<Tuple>) {
        let in_window = self.metrics.consumed_in_window(at);
        let window_index = self.metrics.now_ms().div_euclid(self.metrics.window_ms());
        let mut ctl = self.overload.take().expect("caller checked");
        let action = ctl.admit(at, qid, tuples, in_window, window_index);
        self.overload = Some(ctl);
        match action {
            Action::Deliver { tuples, .. } => {
                self.metrics.on_delivery(qid, at, &tuples);
                self.delivered
                    .get_mut(&qid)
                    .expect("delivery buffer")
                    .extend(tuples);
            }
            Action::Stage { coalesced } => {
                if coalesced {
                    self.metrics.on_coalesce();
                }
            }
            Action::Shed { tuples, bytes } => self.metrics.on_shed(tuples, bytes),
            Action::Throttle {
                tuples,
                bytes,
                limit,
            } => {
                self.metrics.on_shed(tuples, bytes);
                if let Some(limit) = limit {
                    self.send_rate_limit(at, limit);
                }
            }
        }
    }

    /// Route one [`RateLimit`] datagram from the overloaded consumer
    /// reverse along the throttled stream's dissemination tree to the
    /// stream's origin, accounting every link crossing in bytes exactly
    /// like a watermark punctuation. The notice is recorded at the
    /// origin (advisory in this build — sources are simulation-driven).
    fn send_rate_limit(&mut self, at: NodeId, limit: RateLimit) {
        let datagram_bytes = limit.size_bytes();
        let mut link_bytes = 0usize;
        if let Some(origin) = self.registry.origin(&limit.stream) {
            let path = self.tree_path(at, origin);
            for w in path.windows(2) {
                self.account_link(w[0], w[1], datagram_bytes);
                self.metrics.on_link(w[0], w[1], 0, datagram_bytes);
                link_bytes += datagram_bytes;
            }
        }
        self.metrics.on_throttle(link_bytes);
        if let Some(ctl) = self.overload.as_mut() {
            ctl.record_received(limit);
        }
    }

    /// The hop sequence between two nodes on the dissemination tree
    /// rooted for `to` (per-source mode uses `to`'s tree when one
    /// exists): up the parent chain from `from` to the lowest common
    /// ancestor, then down to `to`.
    fn tree_path(&self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        let tree = if self.cfg.per_source_trees {
            self.source_trees.get(&to).unwrap_or(&self.tree)
        } else {
            &self.tree
        };
        let ancestors = |mut n: NodeId| {
            let mut v = vec![n];
            while let Some(p) = tree.parent(n) {
                v.push(p);
                n = p;
            }
            v
        };
        let up = ancestors(from);
        let down = ancestors(to);
        let on_down: BTreeSet<NodeId> = down.iter().copied().collect();
        let mut path = Vec::new();
        let mut lca = *up.last().expect("chain includes the node itself");
        for n in &up {
            path.push(*n);
            if on_down.contains(n) {
                lca = *n;
                break;
            }
        }
        let pos = down
            .iter()
            .position(|n| *n == lca)
            .expect("LCA lies on both chains");
        for n in down[..pos].iter().rev() {
            path.push(*n);
        }
        path
    }

    /// Switch the deployment into (or out of) out-of-order operation.
    ///
    /// With a runtime set, publishes may arrive in any timestamp order
    /// within `runtime.bound` of the global high water: every
    /// representative executor stages out-of-order intake behind a
    /// watermark frontier with the given late-tuple policy, and the
    /// driver emits watermark punctuations after every publish. Pass
    /// `None` (the default) for classic in-order operation — no
    /// punctuations, no staging, bit-for-bit identical behavior.
    ///
    /// Call before publishing; executors already running are switched
    /// in place with empty staging areas.
    pub fn set_disorder(&mut self, runtime: Option<DisorderRuntime>) {
        self.disorder = runtime;
        let Some(rt) = runtime else { return };
        let seeds: Vec<(StreamName, Timestamp)> = self
            .emitted_watermarks
            .iter()
            .map(|(s, wm)| (s.clone(), *wm))
            .collect();
        for site in self.reps.values_mut() {
            site.executor.enable_disorder(rt.policy);
            for (s, wm) in &seeds {
                let outputs = site.executor.advance_watermark(s, *wm);
                debug_assert!(outputs.is_empty(), "fresh staging cannot drain");
            }
        }
    }

    /// The out-of-order runtime, if disorder mode is on.
    pub fn disorder(&self) -> Option<DisorderRuntime> {
        self.disorder
    }

    /// Put a freshly created executor into disorder mode (when on) and
    /// seed it with every watermark already emitted, so its frontier
    /// starts where the network's has advanced to instead of at −∞.
    fn arm_executor(&self, executor: &mut Executor) {
        let Some(rt) = self.disorder else { return };
        executor.enable_disorder(rt.policy);
        for (s, wm) in &self.emitted_watermarks {
            let outputs = executor.advance_watermark(s, *wm);
            debug_assert!(outputs.is_empty(), "fresh staging cannot drain");
        }
    }

    /// Before an executor is replaced or torn down: flush its staging
    /// area through the engine (routing whatever results that drains)
    /// and fold its disorder counters into the retired totals, so
    /// conservation holds across the whole deployment lifetime.
    fn retire_executor(&mut self, stream: &StreamName) {
        if self.disorder.is_none() {
            return;
        }
        let Some(site) = self.reps.get_mut(stream) else {
            return;
        };
        let outputs = site.executor.flush_staged();
        if let Some(stats) = site.executor.disorder_stats() {
            self.retired_disorder = self.retired_disorder.merge(&stats);
        }
        let processor = site.processor;
        let schema = site.executor.result_schema().clone();
        if !outputs.is_empty() {
            self.metrics.on_publish(stream, &schema, &outputs);
            self.inject_results(processor, outputs, schema);
        }
    }

    /// Drive result tuples that entered the network at `at` (an executor
    /// drain outside the normal publish path) through to completion.
    fn inject_results(&mut self, at: NodeId, tuples: Vec<Tuple>, schema: Schema) {
        let mut queue: VecDeque<Hop> = VecDeque::new();
        queue.push_back(Hop {
            from: None,
            at,
            tuples,
            schema,
        });
        while let Some(hop) = queue.pop_front() {
            let forwards =
                self.routers[hop.at.index()].route_batch(&hop.tuples, &hop.schema, hop.from);
            self.process_forwards(hop.at, forwards, &mut queue);
        }
    }

    /// Disorder-mode epilogue of every publish: advance the global high
    /// water and emit watermarks. A no-op in in-order operation.
    fn after_publish(&mut self, tuples: &[Tuple]) {
        if self.disorder.is_none() {
            return;
        }
        if let Some(hw) = tuples.iter().map(|t| t.timestamp).max() {
            self.high_water = Some(self.high_water.map_or(hw, |h| h.max(hw)));
        }
        self.emit_watermarks();
    }

    /// Emit `high_water − bound` as the watermark of every source
    /// stream that has published, where it advances past the last one
    /// emitted. Lagging the *global* high water is what makes the
    /// promise sound: the workload's disorder transform displaces a
    /// tuple's position by at most `bound` of application time, so no
    /// future publish of *any* stream can carry a timestamp at or below
    /// the emitted watermark.
    fn emit_watermarks(&mut self) {
        let (Some(rt), Some(hw)) = (self.disorder, self.high_water) else {
            return;
        };
        let wm = Timestamp(hw.0.saturating_sub(rt.bound.millis()));
        let streams: Vec<StreamName> = self.published_streams.iter().cloned().collect();
        for stream in streams {
            if self.closed_streams.contains(&stream) {
                continue;
            }
            if self
                .emitted_watermarks
                .get(&stream)
                .is_some_and(|l| wm <= *l)
            {
                continue;
            }
            let Some(origin) = self.registry.origin(&stream) else {
                continue;
            };
            self.emitted_watermarks.insert(stream.clone(), wm);
            self.disseminate_watermark(stream, wm, origin);
        }
    }

    /// Route one watermark punctuation from its origin along the
    /// stream's dissemination tree: every link crossing is accounted in
    /// bytes exactly like data (and counted by the metrics hub), every
    /// interested SPE input advances its executor's frontier (draining
    /// staged tuples into the network), and an executor whose frontier
    /// moved propagates a punctuation for its *result* stream — so
    /// watermarks cascade through operator chains. User subscriptions
    /// consume punctuations silently (their windows are the executors').
    fn disseminate_watermark(&mut self, stream: StreamName, watermark: Timestamp, origin: NodeId) {
        let mut queue: VecDeque<(Option<NodeId>, NodeId, StreamName, Timestamp)> = VecDeque::new();
        queue.push_back((None, origin, stream, watermark));
        while let Some((from, at, stream, wm)) = queue.pop_front() {
            for dest in self.routers[at.index()].route_punctuation(&stream, from) {
                match dest {
                    Destination::Neighbor(n) => {
                        let bytes = Punctuation::new(stream.clone(), wm).size_bytes();
                        self.account_link(at, n, bytes);
                        self.metrics.on_link(at, n, 0, bytes);
                        self.metrics.on_punctuation(bytes);
                        queue.push_back((Some(at), n, stream.clone(), wm));
                    }
                    Destination::Local(sub) => {
                        let Some(result_stream) = self.spe_subs.get(&sub).cloned() else {
                            continue;
                        };
                        let site = self.reps.get_mut(&result_stream).expect("rep site exists");
                        debug_assert_eq!(site.processor, at);
                        let processor = site.processor;
                        let before = site.executor.frontier();
                        let outputs = site.executor.advance_watermark(&stream, wm);
                        let after = site.executor.frontier();
                        let schema = site.executor.result_schema().clone();
                        if !outputs.is_empty() {
                            self.metrics.on_publish(&result_stream, &schema, &outputs);
                            self.inject_results(processor, outputs, schema);
                        }
                        // The executor's frontier is a low-water promise
                        // for its result stream (revision tuples may dip
                        // below it, but stay within the grace window any
                        // downstream executor retains).
                        let (Some(b), Some(a)) = (before, after) else {
                            continue;
                        };
                        if a > b
                            && self
                                .emitted_watermarks
                                .get(&result_stream)
                                .is_none_or(|l| a > *l)
                        {
                            self.emitted_watermarks.insert(result_stream.clone(), a);
                            queue.push_back((None, processor, result_stream, a));
                        }
                    }
                }
            }
        }
    }

    /// Declare every source stream finished: emit a final `+∞` watermark
    /// along each one's dissemination tree (draining every staging area
    /// and cascading through operator chains), then prune the streams'
    /// routing state — interest entries, filters, and the plan-cache
    /// lines they pinned — since no datagram of a closed stream can ever
    /// arrive again. Records the closed set for the network snapshot.
    /// Also drains any batches the overload controller was coalescing.
    /// Idempotent; apart from the overload drain, a no-op in in-order
    /// operation.
    pub fn close_streams(&mut self) {
        // Nothing more can arrive: release any coalesced batches the
        // overload controller is still holding.
        self.drain_overload_staged();
        if self.disorder.is_none() {
            return;
        }
        let mut sources: Vec<(StreamName, NodeId)> = self
            .registry
            .iter()
            .filter(|r| !self.reps.contains_key(&r.name))
            .map(|r| (r.name.clone(), r.origin))
            .collect();
        sources.sort_by(|a, b| a.0.cmp(&b.0));
        for (stream, origin) in sources {
            if self.closed_streams.contains(&stream) {
                continue;
            }
            self.emitted_watermarks
                .insert(stream.clone(), Timestamp(i64::MAX));
            self.disseminate_watermark(stream.clone(), Timestamp(i64::MAX), origin);
            for r in &mut self.routers {
                r.prune_stream(&stream);
            }
            self.closed_streams.insert(stream);
        }
    }

    /// Source streams closed by [`Cosmos::close_streams`].
    pub fn closed_streams(&self) -> &BTreeSet<StreamName> {
        &self.closed_streams
    }

    /// Deployment-wide out-of-order ingestion counters: every live
    /// executor's statistics plus everything accumulated from executors
    /// that were replaced or torn down. `conserved()` holds on this
    /// total at any instant.
    pub fn disorder_totals(&self) -> DisorderStats {
        let mut total = self.retired_disorder;
        for site in self.reps.values() {
            if let Some(stats) = site.executor.disorder_stats() {
                total = total.merge(&stats);
            }
        }
        total
    }

    /// Publish a whole timestamp-ordered input sequence.
    pub fn run<I: IntoIterator<Item = Tuple>>(&mut self, inputs: I) -> Result<()> {
        for t in inputs {
            self.publish(&t)?;
        }
        Ok(())
    }

    /// Publish a timestamp-ordered input sequence, batching maximal
    /// consecutive same-stream runs through [`Cosmos::publish_batch`].
    ///
    /// With [`Cosmos::set_parallelism`] armed (and no cascading
    /// representatives), batches are pipelined through the routing
    /// pool: while the driver replays batch `k`'s effects, workers
    /// route batches `k+1..` of other streams. Delivery is bit-for-bit
    /// identical either way.
    pub fn run_batched<I: IntoIterator<Item = Tuple>>(&mut self, inputs: I) -> Result<()> {
        if self.parallel.is_some() && !self.has_cascading_reps() {
            return self.run_batched_parallel(inputs);
        }
        let mut pending: Vec<Tuple> = Vec::new();
        for t in inputs {
            if pending.last().is_some_and(|p| p.stream != t.stream) {
                self.publish_batch(&pending)?;
                pending.clear();
            }
            pending.push(t);
        }
        if !pending.is_empty() {
            self.publish_batch(&pending)?;
        }
        Ok(())
    }

    /// The pipelined variant of [`Cosmos::run_batched`]: cut maximal
    /// same-stream runs, dispatch each to its stream's shard up to a
    /// bounded in-flight window, and replay routed outputs strictly in
    /// dispatch order — the deterministic (virtual-time, stream, seq)
    /// merge. Per batch, the serial prologue (publish accounting,
    /// metrics observation) runs immediately before its replay and the
    /// watermark epilogue immediately after, exactly as the serial
    /// driver interleaves them.
    ///
    /// Batch validation happens at dispatch time; this is equivalent to
    /// the serial driver's validate-at-publish because registration
    /// state cannot change while a run is in progress. On a validation
    /// error, every batch dispatched before the bad one is still
    /// replayed (matching serial partial progress) and the error is
    /// then returned.
    fn run_batched_parallel<I: IntoIterator<Item = Tuple>>(&mut self, inputs: I) -> Result<()> {
        let mut pool = self.parallel.take().expect("caller checked");
        pool.ensure_snapshot(&self.routers);
        let window = 2 * pool.parallelism();
        // Dispatched batches awaiting replay: (seq, tuples, schema).
        let mut awaiting: VecDeque<(u64, Vec<Tuple>, Schema)> = VecDeque::new();
        let mut error: Option<CosmosError> = None;

        let replay_front =
            |sys: &mut Cosmos, pool: &mut RoutingPool, awaiting: &mut VecDeque<_>| {
                let (seq, tuples, schema): (u64, Vec<Tuple>, Schema) =
                    awaiting.pop_front().expect("caller checked non-empty");
                let stream = &tuples.first().expect("batches are non-empty").stream;
                sys.tuples_published += tuples.len() as u64;
                sys.metrics.on_publish(stream, &schema, &tuples);
                if sys.disorder.is_some() {
                    sys.published_streams.insert(stream.clone());
                }
                let routed = pool.wait_for(seq);
                sys.replay_routed(routed);
                sys.after_publish(&tuples);
            };

        let dispatch = |sys: &mut Cosmos,
                        pool: &mut RoutingPool,
                        awaiting: &mut VecDeque<(u64, Vec<Tuple>, Schema)>,
                        batch: Vec<Tuple>|
         -> Result<()> {
            let first = batch.first().expect("batches are non-empty");
            let reg = sys.registry.peek(&first.stream).ok_or_else(|| {
                CosmosError::System(format!("stream '{}' is not advertised", first.stream))
            })?;
            let (origin, schema) = (reg.origin, reg.schema.clone());
            while awaiting.len() >= window {
                replay_front(sys, pool, awaiting);
            }
            let seq = pool.dispatch(origin, batch.clone(), schema.clone());
            awaiting.push_back((seq, batch, schema));
            Ok(())
        };

        let mut pending: Vec<Tuple> = Vec::new();
        for t in inputs {
            if pending.last().is_some_and(|p| p.stream != t.stream) {
                let batch = std::mem::take(&mut pending);
                if let Err(e) = dispatch(self, &mut pool, &mut awaiting, batch) {
                    error = Some(e);
                    break;
                }
            }
            pending.push(t);
        }
        if error.is_none() && !pending.is_empty() {
            if let Err(e) = dispatch(self, &mut pool, &mut awaiting, pending) {
                error = Some(e);
            }
        }
        while !awaiting.is_empty() {
            replay_front(self, &mut pool, &mut awaiting);
        }
        self.parallel = Some(pool);
        // One deferred tick for the whole run: inside the loop a pass
        // could rebuild routes while later batches are still in flight
        // against the workers' router snapshots.
        self.autotune_tick();
        match error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Arm (or disarm) shard-per-core parallel routing with a fixed
    /// pool of `n` std worker threads. `n <= 1` restores the serial
    /// driver (joining any existing workers). Routing through the pool
    /// is observably identical to the serial driver — same deliveries,
    /// same byte and cost accounting, same metrics, same digests — at
    /// any `n`; only wall-clock time changes.
    pub fn set_parallelism(&mut self, n: usize) {
        if n <= 1 {
            self.parallel = None;
        } else if self.parallel.as_ref().map(RoutingPool::parallelism) != Some(n) {
            self.parallel = Some(RoutingPool::new(n));
        }
    }

    /// Number of routing workers (1 = serial driver).
    pub fn parallelism(&self) -> usize {
        self.parallel.as_ref().map_or(1, RoutingPool::parallelism)
    }

    /// Arm (or disarm) the per-node overload controller. With a
    /// configuration set, every user delivery is admission-checked
    /// against the node's intake budget per metrics rate window and
    /// over-budget batches are shed, coalesced, or throttled per the
    /// per-query policy — ledger-accounted so that
    /// `offered == delivered + shed + staged` holds tuple- and
    /// byte-exact per query at any instant (cosmos-testkit checks the
    /// identity after every event).
    ///
    /// Budgets are measured against the metrics hub's virtual-time
    /// windows; the controller is inert while metrics recording is
    /// disabled. Disarming (or replacing) a controller first drains its
    /// pending coalesced batches into the delivery buffers.
    pub fn set_overload(&mut self, cfg: Option<OverloadConfig>) {
        self.drain_overload_staged();
        self.overload = cfg.map(OverloadController::new);
    }

    /// The armed overload controller (ledgers, high-water marks,
    /// received rate-limit notices), if any.
    pub fn overload(&self) -> Option<&OverloadController> {
        self.overload.as_ref()
    }

    /// Deliver every pending coalesced batch to its query's buffer
    /// (stream closure, controller disarm). The ledger moves the mass
    /// from `staged` to `delivered`, keeping the identity exact.
    fn drain_overload_staged(&mut self) {
        let Some(ctl) = self.overload.as_mut() else {
            return;
        };
        for (qid, tuples) in ctl.drain_all() {
            let node = self.query_user.get(&qid).copied();
            if let (Some(node), Some(buf)) = (node, self.delivered.get_mut(&qid)) {
                self.metrics.on_delivery(qid, node, &tuples);
                buf.extend(tuples);
            }
        }
    }

    /// Enable or disable projection-plan caching (and fan-out sharing)
    /// in every router. On by default; the off position restores the
    /// seed-era per-destination projection path for A/B benchmarking.
    pub fn set_plan_caching(&mut self, enabled: bool) {
        for r in &mut self.routers {
            r.set_plan_caching(enabled);
        }
    }

    /// Result tuples delivered to a query's user so far.
    pub fn results(&self, qid: QueryId) -> &[Tuple] {
        self.delivered.get(&qid).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Warning-level lint findings recorded when the query was accepted
    /// (e.g. a join over an `[Unbounded]` window). Empty for clean
    /// queries; error-level findings reject submission instead.
    pub fn lint_warnings(&self, qid: QueryId) -> &[String] {
        self.lint_warnings
            .get(&qid)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The user node of a query.
    pub fn user_of(&self, qid: QueryId) -> Option<NodeId> {
        self.query_user.get(&qid).copied()
    }

    /// The processor a query was assigned to.
    pub fn processor_of(&self, qid: QueryId) -> Option<NodeId> {
        self.query_processor.get(&qid).copied()
    }

    /// One view per running representative executor: its result stream,
    /// the processor hosting it, the representative query it runs, and
    /// its current retained-state occupancy — the measured side of
    /// `cosmos-bound`'s per-executor state bounds. Ordered by result
    /// stream for determinism.
    pub fn rep_states(&self) -> Vec<RepStateView<'_>> {
        let mut out: Vec<RepStateView<'_>> = self
            .reps
            .iter()
            .map(|(stream, site)| RepStateView {
                result_stream: stream,
                processor: site.processor,
                query: site.executor.query(),
                state: site.executor.state_size(),
                disorder: site.executor.disorder_stats(),
                frontier: site.executor.frontier(),
            })
            .collect();
        out.sort_by_key(|v| v.result_stream.clone());
        out
    }

    /// Bytes that crossed the (undirected) overlay link `a - b`.
    pub fn link_bytes(&self, a: NodeId, b: NodeId) -> u64 {
        self.link_bytes
            .get(&(a.min(b), a.max(b)))
            .copied()
            .unwrap_or(0)
    }

    /// Total bytes that crossed any overlay link.
    pub fn total_bytes(&self) -> u64 {
        self.link_bytes.values().sum()
    }

    /// Total delay-weighted communication cost (`Σ bytes × link delay`).
    pub fn weighted_cost(&self) -> f64 {
        self.weighted_cost.total()
    }

    /// Number of source datagrams published.
    pub fn tuples_published(&self) -> u64 {
        self.tuples_published
    }

    /// The live metrics hub (read access for diagnostics and tests).
    pub fn metrics_hub(&self) -> &MetricsHub {
        &self.metrics
    }

    /// Whether runtime metrics are being recorded.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.enabled()
    }

    /// Turn metrics recording on or off (history is kept). The off
    /// position exists for the bench overhead gate: every observation
    /// hook becomes an early return.
    pub fn set_metrics_enabled(&mut self, enabled: bool) {
        self.metrics.set_enabled(enabled);
    }

    /// Replace the metrics configuration. Resets all recorded history
    /// (windows of a different span are not comparable).
    pub fn set_metrics_config(&mut self, cfg: MetricsConfig) {
        self.metrics = MetricsHub::new(cfg);
    }

    /// A deterministic snapshot of every runtime metric: per-link and
    /// per-node traffic, per-stream observed rates and sampled attribute
    /// statistics, per-query delivery rates and virtual-time latencies,
    /// plus the aggregated CBN router counters. Versioned and
    /// serializable like `NetworkSnapshot`.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut router = RouterTotals::default();
        for r in &self.routers {
            router.fold_counters(&r.counters(), r.cached_plan_count() as u64);
        }
        if let Some(pool) = &self.parallel {
            // Worker shards own the plan stores of the streams they
            // route; count them here (current-generation stores only)
            // so the gauge equals the serial driver's, where every plan
            // lives in the routers' own stores.
            router.cached_plans +=
                pool.cached_plans(|n| self.routers[n.index()].interest_generation());
        }
        self.metrics.snapshot(router)
    }

    /// Maximum relative drift between what registration-time estimates
    /// claim and what the metrics layer has measured, split into the
    /// stream-rate component and the per-group representative-cost
    /// component. Streams the metrics layer never observed contribute
    /// nothing.
    pub fn measured_drift(&self) -> (f64, f64) {
        let measured = self.metrics.measured();
        let mut stream_drift = 0.0f64;
        for s in self.catalog.streams() {
            let (Some(m), Some(e)) = (measured.stream_rate(s), self.catalog.stats(s)) else {
                continue;
            };
            stream_drift = stream_drift.max(relative_drift(m, e.rate));
        }
        let measured_catalog = measured.catalog(&self.catalog);
        let mut group_drift = 0.0f64;
        for mgr in self.managers.values() {
            for g in mgr.groups() {
                let est = cosmos_query::estimate::cost_bps(&g.representative, &self.catalog);
                let meas = cosmos_query::estimate::cost_bps(&g.representative, &measured_catalog);
                group_drift = group_drift.max(relative_drift(meas, est));
            }
        }
        (stream_drift, group_drift)
    }

    /// Replace the registered statistics of every *observed* stream with
    /// its measured statistics (rate always; attribute ranges and
    /// distinct counts where the samplers saw values). Returns how many
    /// streams were updated. Unobserved streams keep their estimates.
    pub fn adopt_measured_stats(&mut self) -> usize {
        let streams: Vec<StreamName> = self.catalog.streams().cloned().collect();
        let mut adopted = 0usize;
        for s in streams {
            let Some(stats) = self
                .metrics
                .measured()
                .stream_stats(&s, self.catalog.stats(&s))
            else {
                continue;
            };
            let schema = self.catalog.schema(&s).cloned().expect("stream registered");
            self.catalog.register(s, schema, stats);
            adopted += 1;
        }
        adopted
    }

    /// Measured per-node demand: the windowed byte rate each node
    /// consumes locally (user deliveries plus SPE intake).
    fn measured_demand(&self) -> Vec<f64> {
        (0..self.graph.node_count())
            .map(|i| self.metrics.consumed_byte_rate(NodeId(i as u32)))
            .collect()
    }

    /// Close the self-tuning loop: compare measured statistics against
    /// the registration-time estimates the system planned with, and if
    /// the relative drift exceeds `opts.drift_threshold`, adopt the
    /// measured statistics into the catalog and re-run the existing
    /// optimizers — query re-grouping ([`Cosmos::reoptimize_groups`])
    /// and dissemination-tree reorganization with *measured* per-node
    /// demand ([`Cosmos::optimize_tree_with_demand`]).
    ///
    /// Below the threshold this is read-only and returns a pass with
    /// `triggered: false`. With metrics recording disabled the pass
    /// returns [`AutotuneReport::MetricsDisabled`] immediately — every
    /// measured rate would read zero, so computing the full group-cost
    /// drift against it would be both wasted work and misleading.
    pub fn autotune(&mut self, opts: &AutotuneOptions) -> Result<AutotuneReport> {
        // A direct call runs without a hysteresis band: the optimizer
        // only reports strict improvements, so nothing rolls back.
        self.autotune_gated(opts, 0.0)
    }

    /// [`Cosmos::autotune`] with a hysteresis band: a tree
    /// re-organization whose fractional improvement does not *exceed*
    /// `hysteresis` is rolled back (tree restored, routes rebuilt) and
    /// reported with `tree_rolled_back: true`, so near-equal plans
    /// cannot oscillate across scheduled passes.
    fn autotune_gated(
        &mut self,
        opts: &AutotuneOptions,
        hysteresis: f64,
    ) -> Result<AutotuneReport> {
        if !self.metrics.enabled() {
            return Ok(AutotuneReport::MetricsDisabled);
        }
        let (stream_drift, group_drift) = self.measured_drift();
        let drift = stream_drift.max(group_drift);
        let mut pass = AutotunePass {
            stream_drift,
            group_drift,
            drift,
            threshold: opts.drift_threshold,
            triggered: false,
            adopted_streams: 0,
            groups_improved: 0,
            tree: None,
            tree_rolled_back: false,
        };
        if !drift.is_finite() || drift <= opts.drift_threshold {
            return Ok(AutotuneReport::Measured(pass));
        }
        pass.triggered = true;
        pass.adopted_streams = self.adopt_measured_stats();
        pass.groups_improved = self.reoptimize_groups()?;
        let demand = self.measured_demand();
        let saved = (hysteresis > 0.0).then(|| self.tree.clone());
        let report = self.optimize_tree_with_demand(opts.optimizer, &demand);
        if let Some(saved) = saved {
            if report.moves > 0 && report.improvement() <= hysteresis {
                self.tree = saved;
                self.rebuild_routes();
                pass.tree_rolled_back = true;
            }
        }
        pass.tree = Some(report);
        Ok(AutotuneReport::Measured(pass))
    }

    /// Arm (or disarm) the self-tuning scheduler. With a policy set,
    /// the publish driver evaluates the policy's triggers after every
    /// publish (in virtual time — wall clocks never participate) and
    /// runs a hysteresis-gated autotune pass when one fires; see
    /// [`AutotunePolicy`] for the trigger semantics. A pass that fails
    /// (e.g. a regrouping error) is skipped, never propagated into the
    /// publish path. Arming resets the scheduler's phase to "a pass
    /// just ran now".
    pub fn set_autotune(&mut self, policy: Option<AutotunePolicy>) {
        self.autotune_sched = policy.map(|policy| AutotuneSched {
            policy,
            last_run_ms: self.metrics.now_ms(),
            last_window: self.metrics.now_ms().div_euclid(self.metrics.window_ms()),
            over_windows: 0,
            runs: 0,
            rollbacks: 0,
            last: None,
        });
    }

    /// The armed self-tuning policy, if any.
    pub fn autotune_policy(&self) -> Option<AutotunePolicy> {
        self.autotune_sched.as_ref().map(|s| s.policy)
    }

    /// Scheduled autotune passes run since the policy was armed.
    pub fn autotune_runs(&self) -> u64 {
        self.autotune_sched.as_ref().map_or(0, |s| s.runs)
    }

    /// Scheduled passes whose tree re-organization was rolled back by
    /// the hysteresis band.
    pub fn autotune_rollbacks(&self) -> u64 {
        self.autotune_sched.as_ref().map_or(0, |s| s.rollbacks)
    }

    /// The report of the most recent scheduled pass, if any ran.
    pub fn last_autotune(&self) -> Option<&AutotuneReport> {
        self.autotune_sched.as_ref().and_then(|s| s.last.as_ref())
    }

    /// Evaluate the armed scheduling policy at the current virtual
    /// time. Called by the publish driver after each publish completes
    /// (never mid-replay: a tree rebuild would invalidate in-flight
    /// worker router snapshots).
    fn autotune_tick(&mut self) {
        let Some(mut sched) = self.autotune_sched.take() else {
            return;
        };
        if self.metrics.enabled() {
            let now = self.metrics.now_ms();
            let mut due = false;
            let period = sched.policy.period_virtual.millis();
            if period > 0 && now - sched.last_run_ms >= period {
                due = true;
            }
            if sched.policy.trigger_after_k_windows > 0 {
                let win = now.div_euclid(self.metrics.window_ms());
                if win > sched.last_window {
                    // Evaluate drift once per rate window, on entry.
                    sched.last_window = win;
                    let (sd, gd) = self.measured_drift();
                    if sd.max(gd) > sched.policy.options.drift_threshold {
                        sched.over_windows += 1;
                    } else {
                        sched.over_windows = 0;
                    }
                    if sched.over_windows >= sched.policy.trigger_after_k_windows {
                        due = true;
                    }
                }
            }
            if due {
                if let Ok(report) =
                    self.autotune_gated(&sched.policy.options, sched.policy.hysteresis)
                {
                    sched.runs += 1;
                    if report.pass().is_some_and(|p| p.tree_rolled_back) {
                        sched.rollbacks += 1;
                    }
                    sched.last = Some(report);
                }
                sched.last_run_ms = now;
                sched.over_windows = 0;
            }
        }
        self.autotune_sched = Some(sched);
    }

    /// Grouping state of one processor (if it hosts any queries).
    pub fn group_manager(&self, processor: NodeId) -> Option<&GroupManager> {
        self.managers.get(&processor)
    }

    /// Overall grouping ratio (`Σ groups / Σ queries`) across processors.
    pub fn grouping_ratio(&self) -> f64 {
        let groups: usize = self.managers.values().map(|m| m.group_count()).sum();
        let queries: usize = self.managers.values().map(|m| m.query_count()).sum();
        if queries == 0 {
            1.0
        } else {
            groups as f64 / queries as f64
        }
    }

    /// Number of queries in the system.
    pub fn query_count(&self) -> usize {
        self.next_query as usize
    }

    /// Generation stamp of the executor currently serving a query.
    ///
    /// Every time an executor is (re)created — a group is founded, a
    /// representative is widened by a new member, a group is rebuilt by
    /// [`Cosmos::reoptimize_groups`], or it shrinks after an
    /// [`Cosmos::unsubscribe`] — the affected queries are stamped with a
    /// fresh, globally monotone generation. A query that joins a warm
    /// group without widening it inherits the running executor's stamp.
    /// The scenario harness uses this to cut oracle epochs exactly where
    /// window state restarts; `None` after unsubscription or for unknown
    /// ids.
    pub fn executor_generation(&self, qid: QueryId) -> Option<u64> {
        self.query_executor_gen.get(&qid).copied()
    }

    /// A deterministic digest of the routing state: dissemination-tree
    /// edges (shared and per-source), every router's local subscriptions,
    /// and every router's reverse-path neighbor interests.
    ///
    /// Two runs of the same seeded scenario must produce identical
    /// digests at every step (the harness's determinism contract); the
    /// digest also pins routing-state invariance across replays.
    pub fn routing_digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (parent, child) in self.tree.edges() {
            (parent.raw(), child.raw()).hash(&mut h);
        }
        let mut origins: Vec<NodeId> = self.source_trees.keys().copied().collect();
        origins.sort_unstable();
        for origin in origins {
            origin.raw().hash(&mut h);
            for (parent, child) in self.source_trees[&origin].edges() {
                (parent.raw(), child.raw()).hash(&mut h);
            }
        }
        for r in &self.routers {
            let mut locals: Vec<String> = r
                .local_subscribers()
                .map(|(sub, p)| format!("{sub:?}={p:?}"))
                .collect();
            locals.sort_unstable();
            locals.hash(&mut h);
            let mut interests: Vec<String> = self
                .graph
                .neighbors(r.node())
                .iter()
                .filter_map(|(n, _)| r.neighbor_interest(*n).map(|p| format!("{n}={p:?}")))
                .collect();
            interests.sort_unstable();
            interests.hash(&mut h);
        }
        h.finish()
    }

    /// Capture the complete deployed network state as a serializable
    /// [`crate::snapshot::NetworkSnapshot`] for static verification
    /// (`cosmos-verify`): every dissemination tree, every router's
    /// reverse-path interests and local subscriptions, every
    /// advertisement, and every query group with its representative and
    /// re-tightened member profiles. Queries travel as CQL text (the
    /// analyzed form has no serde shape); baseline deployments appear as
    /// singleton groups whose representative *is* the member.
    pub fn snapshot(&self) -> Result<crate::snapshot::NetworkSnapshot> {
        use crate::snapshot::*;
        let topo = |tree: &Tree| TreeTopology {
            root: tree.root(),
            node_count: tree.node_count(),
            edges: tree.edges().collect(),
        };
        let mut source_trees: Vec<TreeTopology> = self.source_trees.values().map(topo).collect();
        source_trees.sort_by_key(|t| t.root);

        let mut advertisements: Vec<Advertisement> = self
            .registry
            .iter()
            .map(|r| Advertisement {
                stream: r.name.clone(),
                origin: r.origin,
                schema: r.schema.clone(),
            })
            .collect();
        advertisements.sort_by(|a, b| a.stream.cmp(&b.stream));

        let routers = self
            .routers
            .iter()
            .map(|r| {
                let mut local_subscribers: Vec<LocalSubscriber> = r
                    .local_subscribers()
                    .map(|(id, profile)| {
                        let kind = if let Some(stream) = self.spe_subs.get(&id) {
                            SubscriberKind::SpeInput {
                                result_stream: stream.clone(),
                            }
                        } else if let Some(qid) = self.user_subs.get(&id) {
                            SubscriberKind::User { query: *qid }
                        } else {
                            // Unreachable in a consistent system; keep
                            // the snapshot total so the verifier can
                            // flag it rather than snapshotting failing.
                            SubscriberKind::User {
                                query: QueryId(u64::MAX),
                            }
                        };
                        LocalSubscriber {
                            id,
                            kind,
                            profile: profile.clone(),
                        }
                    })
                    .collect::<Vec<_>>();
                local_subscribers.sort_by_key(|s| s.id);
                RouterState {
                    node: r.node(),
                    neighbor_interests: r
                        .neighbor_interests()
                        .map(|(n, p)| (n, p.clone()))
                        .collect(),
                    local_subscribers,
                }
            })
            .collect();

        let unparse =
            |q: &AnalyzedQuery| -> Result<String> { Ok(cosmos_query::to_query(q)?.to_string()) };
        let mut groups: Vec<GroupSnapshot> = Vec::new();
        if self.cfg.merging_enabled {
            let mut procs: Vec<NodeId> = self.managers.keys().copied().collect();
            procs.sort_unstable();
            for p in procs {
                let manager = &self.managers[&p];
                for g in manager.groups() {
                    let mut members = Vec::new();
                    for (qid, member) in &g.members {
                        let (_, split) = manager
                            .placement(*qid)
                            .ok_or_else(|| CosmosError::System(format!("{qid} unplaced")))?;
                        members.push(MemberSnapshot {
                            query: *qid,
                            cql: unparse(member)?,
                            user: self.query_user[qid],
                            user_sub: self.user_sub_of_query[qid],
                            split_profile: split.clone(),
                        });
                    }
                    groups.push(GroupSnapshot {
                        processor: p,
                        result_stream: g.result_stream.clone(),
                        representative_cql: unparse(&g.representative)?,
                        members,
                    });
                }
            }
        } else {
            let mut qids: Vec<QueryId> = self.baseline_streams.keys().copied().collect();
            qids.sort_unstable();
            for qid in qids {
                let stream = &self.baseline_streams[&qid];
                let site = self
                    .reps
                    .get(stream)
                    .ok_or_else(|| CosmosError::System(format!("no rep for {stream}")))?;
                let rep = site.executor.query();
                let sub = self.user_sub_of_query[&qid];
                let split = self.routers[self.query_user[&qid].index()]
                    .local_interest(sub)
                    .cloned()
                    .unwrap_or_default();
                groups.push(GroupSnapshot {
                    processor: site.processor,
                    result_stream: stream.clone(),
                    representative_cql: unparse(rep)?,
                    members: vec![MemberSnapshot {
                        query: qid,
                        cql: unparse(rep)?,
                        user: self.query_user[&qid],
                        user_sub: sub,
                        split_profile: split,
                    }],
                });
            }
        }
        groups.sort_by(|a, b| a.result_stream.cmp(&b.result_stream));

        let overload = self
            .overload
            .as_ref()
            .map(|ctl| {
                ctl.ledgers()
                    .iter()
                    .map(|(qid, l)| OverloadLedgerSnapshot {
                        query: *qid,
                        offered_tuples: l.offered_tuples,
                        offered_bytes: l.offered_bytes,
                        delivered_tuples: l.delivered_tuples,
                        delivered_bytes: l.delivered_bytes,
                        shed_tuples: l.shed_tuples,
                        shed_bytes: l.shed_bytes,
                        staged_tuples: l.staged_tuples,
                        staged_bytes: l.staged_bytes,
                    })
                    .collect()
            })
            .unwrap_or_default();

        Ok(NetworkSnapshot {
            version: SNAPSHOT_VERSION,
            merging_enabled: self.cfg.merging_enabled,
            nodes: self.routers.len(),
            shared_tree: topo(&self.tree),
            source_trees,
            advertisements,
            routers,
            groups,
            closed_streams: self.closed_streams.iter().cloned().collect(),
            overload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_query::{AttrStats, StreamStats};
    use cosmos_types::{AttrType, Timestamp, Value};

    /// Line overlay 0 - 1 - 2 - 3 with the processor at node 0.
    fn line_system(merging: bool) -> Cosmos {
        let mut g = Graph::new(4);
        for i in 0..4 {
            g.set_position(NodeId(i), i as f64 / 4.0, 0.0);
        }
        for i in 0..3u32 {
            g.add_edge_by_distance(NodeId(i), NodeId(i + 1)).unwrap();
        }
        let cfg = CosmosConfig {
            nodes: 4,
            processor_fraction: 0.25,
            merging_enabled: merging,
            ..CosmosConfig::default()
        };
        let mut sys = Cosmos::with_graph(cfg, g).unwrap();
        sys.register_stream(
            "S",
            Schema::of(&[
                ("k", AttrType::Int),
                ("x", AttrType::Float),
                ("timestamp", AttrType::Int),
            ]),
            StreamStats::with_rate(1.0)
                .attr("k", AttrStats::categorical(10.0))
                .attr("x", AttrStats::numeric(0.0, 100.0, 100.0)),
            NodeId(0),
        )
        .unwrap();
        sys
    }

    fn s_tuple(ts: i64, k: i64, x: f64) -> Tuple {
        Tuple::new(
            "S",
            Timestamp(ts),
            vec![Value::Int(k), Value::Float(x), Value::Int(ts)],
        )
    }

    #[test]
    fn roles_and_processor_choice() {
        let sys = line_system(true);
        assert_eq!(sys.role(NodeId(0)), NodeRole::Processor);
        assert_eq!(sys.role(NodeId(1)), NodeRole::Broker);
        assert_eq!(sys.processors(), &[NodeId(0)]);
        assert_eq!(sys.graph().node_count(), 4);
        assert_eq!(sys.tree().node_count(), 4);
    }

    #[test]
    fn end_to_end_query_delivery() {
        let mut sys = line_system(true);
        let q = sys
            .submit_query("SELECT k, x FROM S [Now] WHERE x > 50.0", NodeId(3))
            .unwrap();
        sys.run((0..10).map(|i| s_tuple(i * 1000, i, (i * 12) as f64)))
            .unwrap();
        let res = sys.results(q);
        // x = 0, 12, 24, 36, 48 fail; 60, 72, 84, 96, 108 pass
        assert_eq!(res.len(), 5);
        assert_eq!(res[0].values()[1], Value::Float(60.0));
        assert_eq!(sys.user_of(q), Some(NodeId(3)));
        assert_eq!(sys.processor_of(q), Some(NodeId(0)));
        // data flowed over every link on the path 0→3
        assert!(sys.link_bytes(NodeId(0), NodeId(1)) > 0);
        assert!(sys.link_bytes(NodeId(2), NodeId(3)) > 0);
        assert!(sys.total_bytes() > 0);
        assert!(sys.weighted_cost() > 0.0);
        assert_eq!(sys.tuples_published(), 10);
    }

    #[test]
    fn unbounded_state_query_is_rejected_at_admission() {
        let mut sys = line_system(true);
        sys.register_stream(
            "T",
            Schema::of(&[("k", AttrType::Int), ("timestamp", AttrType::Int)]),
            StreamStats::with_rate(1.0).attr("k", AttrStats::categorical(10.0)),
            NodeId(0),
        )
        .unwrap();
        // Join buffers under [Unbounded] never evict: rejected before
        // any routing state is allocated or data published.
        let err = sys
            .submit_query(
                "SELECT S.k FROM S [Unbounded] S, T [Unbounded] T WHERE S.k = T.k",
                NodeId(3),
            )
            .unwrap_err();
        assert!(err.to_string().contains("B0101"), "{err}");
        // Aggregates over [Unbounded] retain their whole history.
        let err = sys
            .submit_query(
                "SELECT k, COUNT(*) FROM S [Unbounded] GROUP BY k",
                NodeId(2),
            )
            .unwrap_err();
        assert!(err.to_string().contains("B0102"), "{err}");
        // Rejection left nothing behind: a fresh query gets id 0 and
        // the system still works end to end.
        let q = sys
            .submit_query("SELECT DISTINCT k FROM S [Range 5 Second]", NodeId(3))
            .unwrap();
        assert_eq!(q, QueryId(0));
        assert!(
            sys.lint_warnings(q).iter().any(|w| w.contains("B0103")),
            "DISTINCT warning recorded: {:?}",
            sys.lint_warnings(q)
        );
        sys.run((0..4).map(|i| s_tuple(i * 1000, i % 2, i as f64)))
            .unwrap();
        assert_eq!(sys.results(q).len(), 2);
        // The admission gate's measured counterpart: rep state views.
        let views = sys.rep_states();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].processor, NodeId(0));
        assert_eq!(views[0].state.distinct_rows, 2);
    }

    #[test]
    fn publish_batch_matches_per_tuple_publish() {
        let inputs: Vec<Tuple> = (0..40)
            .map(|i| s_tuple(i * 500, i % 7, (i * 3) as f64))
            .collect();
        let deliver = |batched: bool| -> (Vec<Tuple>, Vec<Tuple>, u64, u64) {
            let mut sys = line_system(true);
            let q1 = sys
                .submit_query("SELECT k, x FROM S [Now] WHERE x > 30.0", NodeId(3))
                .unwrap();
            let q2 = sys
                .submit_query("SELECT k FROM S [Range 5 Second] WHERE k = 3", NodeId(2))
                .unwrap();
            if batched {
                sys.publish_batch(&inputs).unwrap();
            } else {
                sys.run(inputs.iter().cloned()).unwrap();
            }
            (
                sys.results(q1).to_vec(),
                sys.results(q2).to_vec(),
                sys.tuples_published(),
                sys.total_bytes(),
            )
        };
        let single = deliver(false);
        let batched = deliver(true);
        assert_eq!(single.0, batched.0, "q1 deliveries differ");
        assert_eq!(single.1, batched.1, "q2 deliveries differ");
        assert_eq!(single.2, batched.2, "published counts differ");
        assert_eq!(single.3, batched.3, "link bytes differ");
    }

    #[test]
    fn run_batched_segments_mixed_streams() {
        let mut sys = line_system(true);
        sys.register_stream(
            "T",
            Schema::of(&[("k", AttrType::Int), ("timestamp", AttrType::Int)]),
            StreamStats::with_rate(1.0).attr("k", AttrStats::categorical(10.0)),
            NodeId(1),
        )
        .unwrap();
        let q = sys
            .submit_query("SELECT k, x FROM S [Now]", NodeId(3))
            .unwrap();
        let mut inputs = Vec::new();
        for i in 0..12i64 {
            inputs.push(s_tuple(i * 1000, i, i as f64));
            if i % 3 == 0 {
                inputs.push(Tuple::new(
                    "T",
                    Timestamp(i * 1000 + 1),
                    vec![Value::Int(i), Value::Int(i * 1000 + 1)],
                ));
            }
        }
        sys.run_batched(inputs).unwrap();
        assert_eq!(sys.results(q).len(), 12);
        assert_eq!(sys.tuples_published(), 16);
    }

    /// The tentpole guarantee: the shard-per-core driver is observably
    /// identical to the serial one — deliveries, link-byte accounting,
    /// f64 cost accumulation (bit-for-bit), the full metrics snapshot
    /// (including the plan-cache gauge, whose plans live in worker
    /// shards), and the routing digest — across interest mutations
    /// between runs.
    #[test]
    fn parallel_routing_is_bit_identical_to_serial() {
        let mut inputs = Vec::new();
        for i in 0..30i64 {
            inputs.push(s_tuple(i * 1000, i % 7, (i * 11 % 100) as f64));
            if i % 3 == 0 {
                inputs.push(Tuple::new(
                    "T",
                    Timestamp(i * 1000 + 1),
                    vec![Value::Int(i % 5), Value::Int(i * 1000 + 1)],
                ));
            }
        }
        let extra: Vec<Tuple> = (30..45i64)
            .map(|i| s_tuple(i * 1000, i % 7, (i * 13 % 100) as f64))
            .collect();

        let run = |parallelism: usize| {
            let mut sys = line_system(true);
            sys.register_stream(
                "T",
                Schema::of(&[("k", AttrType::Int), ("timestamp", AttrType::Int)]),
                StreamStats::with_rate(1.0).attr("k", AttrStats::categorical(10.0)),
                NodeId(1),
            )
            .unwrap();
            sys.set_parallelism(parallelism);
            assert_eq!(sys.parallelism(), parallelism.max(1));
            let q1 = sys
                .submit_query("SELECT k, x FROM S [Now] WHERE x > 30.0", NodeId(3))
                .unwrap();
            let q2 = sys
                .submit_query("SELECT k FROM T [Range 5 Second] WHERE k = 3", NodeId(2))
                .unwrap();
            sys.run_batched(inputs.iter().cloned()).unwrap();
            // Interest mutation between runs: the copy-on-write
            // snapshot must refresh and stale shard plans must not
            // survive (serial invalidates its plan caches here too).
            let q3 = sys
                .submit_query("SELECT k, x FROM S [Now] WHERE x > 60.0", NodeId(1))
                .unwrap();
            sys.run_batched(extra.iter().cloned()).unwrap();
            let delivered: Vec<Vec<Tuple>> = [q1, q2, q3]
                .iter()
                .map(|q| sys.results(*q).to_vec())
                .collect();
            (
                delivered,
                sys.tuples_published(),
                sys.total_bytes(),
                sys.weighted_cost().to_bits(),
                sys.metrics(),
                sys.routing_digest(),
            )
        };

        let serial = run(1);
        for p in [2, 4] {
            let parallel = run(p);
            assert_eq!(serial.0, parallel.0, "deliveries differ at p={p}");
            assert_eq!(serial.1, parallel.1, "published counts differ at p={p}");
            assert_eq!(serial.2, parallel.2, "link bytes differ at p={p}");
            assert_eq!(serial.3, parallel.3, "weighted cost bits differ at p={p}");
            assert_eq!(serial.4, parallel.4, "metrics snapshots differ at p={p}");
            assert_eq!(serial.5, parallel.5, "routing digests differ at p={p}");
        }
        assert!(!serial.0[0].is_empty(), "q1 must actually deliver");
        assert!(!serial.0[2].is_empty(), "q3 must actually deliver");
    }

    /// Single-batch publishes also route through the pool (correctness
    /// coverage for the non-pipelined entry point), and validation
    /// errors behave exactly like the serial driver's.
    #[test]
    fn parallel_publish_batch_and_error_paths_match_serial() {
        let run = |parallelism: usize| {
            let mut sys = line_system(true);
            sys.set_parallelism(parallelism);
            let q = sys
                .submit_query("SELECT k, x FROM S [Now] WHERE x > 30.0", NodeId(3))
                .unwrap();
            for i in 0..10i64 {
                sys.publish(&s_tuple(i * 1000, i, (i * 12) as f64)).unwrap();
            }
            // Unadvertised stream mid-run: earlier batches must have
            // fully taken effect, the bad one must change nothing.
            let bad = vec![Tuple::new("Nope", Timestamp(99), vec![Value::Int(1)])];
            let mixed: Vec<Tuple> = (10..14i64)
                .map(|i| s_tuple(i * 1000, i, (i * 12) as f64))
                .chain(bad)
                .collect();
            assert!(sys.run_batched(mixed).is_err());
            (
                sys.results(q).to_vec(),
                sys.tuples_published(),
                sys.total_bytes(),
                sys.metrics(),
            )
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.1, 14, "the four good tuples before the error count");
    }

    #[test]
    fn publish_batch_rejects_bad_batches() {
        let mut sys = line_system(true);
        // empty batch is a no-op
        sys.publish_batch(&[]).unwrap();
        assert_eq!(sys.tuples_published(), 0);
        // mixed streams are refused
        let mixed = vec![
            s_tuple(0, 1, 1.0),
            Tuple::new("T", Timestamp(1), vec![Value::Int(1)]),
        ];
        assert!(sys.publish_batch(&mixed).is_err());
        // unadvertised stream is refused without counting anything
        let unknown = vec![Tuple::new("Nope", Timestamp(0), vec![Value::Int(1)])];
        assert!(sys.publish_batch(&unknown).is_err());
        assert_eq!(sys.tuples_published(), 0);
    }

    #[test]
    fn merged_queries_share_one_result_stream_on_the_trunk() {
        // Two identical queries from nodes 2 and 3: with merging the
        // shared trunk link 0-1 carries the result stream once; without
        // merging it carries it twice.
        let queries = ["SELECT k, x FROM S [Now] WHERE x >= 0.0"; 2];
        let run = |merging: bool| -> (u64, usize, usize) {
            let mut sys = line_system(merging);
            let q1 = sys.submit_query(queries[0], NodeId(2)).unwrap();
            let q2 = sys.submit_query(queries[1], NodeId(3)).unwrap();
            sys.run((0..50).map(|i| s_tuple(i * 1000, i % 5, i as f64)))
                .unwrap();
            (
                sys.link_bytes(NodeId(0), NodeId(1)),
                sys.results(q1).len(),
                sys.results(q2).len(),
            )
        };
        let (shared, r1, r2) = run(true);
        let (unshared, r1b, r2b) = run(false);
        // identical results either way
        assert_eq!(r1, 50);
        assert_eq!(r2, 50);
        assert_eq!(r1, r1b);
        assert_eq!(r2, r2b);
        // sharing saves trunk bandwidth
        assert!(
            shared < unshared,
            "shared {shared} should be < unshared {unshared}"
        );
    }

    #[test]
    fn grouping_state_is_visible() {
        let mut sys = line_system(true);
        sys.submit_query("SELECT k FROM S [Now] WHERE x < 10.0", NodeId(2))
            .unwrap();
        sys.submit_query("SELECT k FROM S [Now] WHERE x < 10.0", NodeId(3))
            .unwrap();
        let gm = sys.group_manager(NodeId(0)).unwrap();
        assert_eq!(gm.query_count(), 2);
        assert_eq!(gm.group_count(), 1);
        assert!((sys.grouping_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(sys.query_count(), 2);
    }

    #[test]
    fn early_projection_reduces_upstream_bytes() {
        // A query projecting one attribute must move fewer bytes than a
        // query projecting everything.
        let narrow = {
            let mut sys = line_system(true);
            sys.submit_query("SELECT k FROM S [Now]", NodeId(3))
                .unwrap();
            sys.run((0..50).map(|i| s_tuple(i * 1000, i, i as f64)))
                .unwrap();
            sys.total_bytes()
        };
        let wide = {
            let mut sys = line_system(true);
            sys.submit_query("SELECT k, x, timestamp FROM S [Now]", NodeId(3))
                .unwrap();
            sys.run((0..50).map(|i| s_tuple(i * 1000, i, i as f64)))
                .unwrap();
            sys.total_bytes()
        };
        assert!(narrow < wide, "narrow {narrow} vs wide {wide}");
    }

    #[test]
    fn filters_drop_traffic_at_the_source() {
        // A highly selective filter must keep almost all tuples off the
        // wire entirely (filtering happens at the origin's router).
        let mut sys = line_system(true);
        sys.submit_query("SELECT k, x FROM S [Now] WHERE x > 1000.0", NodeId(3))
            .unwrap();
        sys.run((0..50).map(|i| s_tuple(i * 1000, i, i as f64)))
            .unwrap();
        // only subscription control state, no data bytes at all
        assert_eq!(sys.total_bytes(), 0);
    }

    #[test]
    fn join_query_runs_end_to_end() {
        let mut sys = line_system(true);
        sys.register_stream(
            "T",
            Schema::of(&[
                ("k", AttrType::Int),
                ("y", AttrType::Float),
                ("timestamp", AttrType::Int),
            ]),
            StreamStats::with_rate(1.0).attr("k", AttrStats::categorical(10.0)),
            NodeId(1),
        )
        .unwrap();
        let q = sys
            .submit_query(
                "SELECT A.k, A.x, B.y FROM S [Range 10 Second] A, T [Range 10 Second] B \
                 WHERE A.k = B.k",
                NodeId(3),
            )
            .unwrap();
        let mut inputs = Vec::new();
        for i in 0..10i64 {
            inputs.push(s_tuple(i * 1000, i % 3, i as f64));
            inputs.push(Tuple::new(
                "T",
                Timestamp(i * 1000 + 500),
                vec![
                    Value::Int(i % 3),
                    Value::Float(-(i as f64)),
                    Value::Int(i * 1000 + 500),
                ],
            ));
        }
        sys.run(inputs).unwrap();
        assert!(!sys.results(q).is_empty());
    }

    #[test]
    fn errors_are_reported() {
        let mut sys = line_system(true);
        // unknown stream in query
        assert!(sys
            .submit_query("SELECT a FROM Nope [Now]", NodeId(1))
            .is_err());
        // unknown user node
        assert!(sys
            .submit_query("SELECT k FROM S [Now]", NodeId(99))
            .is_err());
        // unadvertised stream published
        assert!(sys
            .publish(&Tuple::new("Nope", Timestamp(0), vec![]))
            .is_err());
        // duplicate stream registration
        assert!(sys
            .register_stream(
                "S",
                Schema::of(&[("a", AttrType::Int)]),
                StreamStats::default(),
                NodeId(0)
            )
            .is_err());
        // bad origin
        assert!(sys
            .register_stream(
                "U",
                Schema::of(&[("a", AttrType::Int)]),
                StreamStats::default(),
                NodeId(42)
            )
            .is_err());
        // empty overlay rejected
        assert!(Cosmos::with_graph(CosmosConfig::default(), Graph::new(0)).is_err());
    }

    #[test]
    fn lint_rejects_unsatisfiable_queries_at_registration() {
        let mut sys = line_system(false);
        let err = sys
            .submit_query("SELECT k FROM S [Now] WHERE x > 5.0 AND x < 3.0", NodeId(1))
            .unwrap_err();
        assert_eq!(err.kind(), "lint");
        assert!(err.message().contains("C0101"), "{}", err.message());
        // type errors are caught before registration too
        let err = sys
            .submit_query("SELECT k FROM S [Now] WHERE k = 'red'", NodeId(1))
            .unwrap_err();
        assert_eq!(err.kind(), "lint");
        assert!(err.message().contains("C0203"), "{}", err.message());
        // a rejected query must leave no state behind
        assert_eq!(sys.query_count(), 0);
    }

    #[test]
    fn lint_warnings_are_recorded_for_accepted_queries() {
        let mut sys = line_system(false);
        let q = sys
            .submit_query("SELECT k, AVG(x) FROM S [Now] GROUP BY k", NodeId(1))
            .unwrap();
        let warnings = sys.lint_warnings(q);
        assert!(
            warnings.iter().any(|w| w.contains("C0302")),
            "expected a zero-width-aggregate warning, got {warnings:?}"
        );
        // clean queries carry no warnings
        let q2 = sys
            .submit_query("SELECT k FROM S [Now] WHERE x < 10.0", NodeId(2))
            .unwrap();
        assert!(sys.lint_warnings(q2).is_empty());
    }

    #[test]
    fn reoptimize_groups_end_to_end() {
        // Adversarial arrival order: two disjoint narrow queries seed
        // separate groups before the wide query arrives.
        let mut sys = line_system(true);
        let qa = sys
            .submit_query(
                "SELECT k, x FROM S [Now] WHERE x BETWEEN 0.0 AND 10.0",
                NodeId(1),
            )
            .unwrap();
        let qb = sys
            .submit_query(
                "SELECT k, x FROM S [Now] WHERE x BETWEEN 90.0 AND 100.0",
                NodeId(2),
            )
            .unwrap();
        let qc = sys
            .submit_query(
                "SELECT k, x FROM S [Now] WHERE x BETWEEN 0.0 AND 100.0",
                NodeId(3),
            )
            .unwrap();
        assert_eq!(sys.group_manager(NodeId(0)).unwrap().group_count(), 2);
        let improved = sys.reoptimize_groups().unwrap();
        assert_eq!(improved, 1);
        assert_eq!(sys.group_manager(NodeId(0)).unwrap().group_count(), 1);
        // delivery stays exact for every member after retuning
        sys.run((0..21).map(|i| s_tuple(i * 1000, i, (i * 5) as f64)))
            .unwrap();
        assert_eq!(sys.results(qa).len(), 3); // x ∈ {0, 5, 10}
        assert_eq!(sys.results(qb).len(), 3); // x ∈ {90, 95, 100}
        assert_eq!(sys.results(qc).len(), 21);
        // idempotent afterwards
        assert_eq!(sys.reoptimize_groups().unwrap(), 0);
        // no-op in baseline mode
        let mut base = line_system(false);
        base.submit_query("SELECT k FROM S [Now]", NodeId(1))
            .unwrap();
        assert_eq!(base.reoptimize_groups().unwrap(), 0);
    }

    #[test]
    fn unsubscribe_stops_one_query_and_keeps_others() {
        let mut sys = line_system(true);
        let q1 = sys
            .submit_query("SELECT k, x FROM S [Now] WHERE x <= 20.0", NodeId(2))
            .unwrap();
        let q2 = sys
            .submit_query("SELECT k, x FROM S [Now] WHERE x <= 40.0", NodeId(3))
            .unwrap();
        sys.run((0..5).map(|i| s_tuple(i * 1000, i, (i * 10) as f64)))
            .unwrap();
        assert_eq!(sys.results(q1).len(), 3);
        assert_eq!(sys.results(q2).len(), 5);
        // Drop the wide member: the representative must shrink back to
        // q1's shape, and q1 keeps receiving exactly its results.
        sys.unsubscribe(q2).unwrap();
        sys.run((5..10).map(|i| s_tuple(i * 1000, i % 5, ((i % 5) * 10) as f64)))
            .unwrap();
        assert_eq!(sys.results(q1).len(), 6); // +3 new matches (0,10,20)
        assert_eq!(sys.results(q2).len(), 5); // frozen after unsubscribe
        let gm = sys.group_manager(NodeId(0)).unwrap();
        assert_eq!(gm.query_count(), 1);
        assert_eq!(gm.group_count(), 1);
    }

    #[test]
    fn unsubscribe_last_member_dissolves_group_and_silences_traffic() {
        let mut sys = line_system(true);
        let q = sys
            .submit_query("SELECT k, x FROM S [Now]", NodeId(3))
            .unwrap();
        sys.run((0..3).map(|i| s_tuple(i * 1000, i, i as f64)))
            .unwrap();
        let bytes_before = sys.total_bytes();
        assert!(bytes_before > 0);
        sys.unsubscribe(q).unwrap();
        let gm = sys.group_manager(NodeId(0)).unwrap();
        assert_eq!(gm.group_count(), 0);
        // further publishes move no bytes at all
        sys.run((3..10).map(|i| s_tuple(i * 1000, i, i as f64)))
            .unwrap();
        assert_eq!(sys.total_bytes(), bytes_before);
        // delivered results remain readable; unknown ids error
        assert_eq!(sys.results(q).len(), 3);
        assert!(sys.unsubscribe(q).is_err());
        assert!(sys.unsubscribe(QueryId(99)).is_err());
    }

    #[test]
    fn unsubscribe_in_baseline_mode() {
        let mut sys = line_system(false);
        let q1 = sys
            .submit_query("SELECT k FROM S [Now]", NodeId(2))
            .unwrap();
        let q2 = sys
            .submit_query("SELECT k FROM S [Now]", NodeId(3))
            .unwrap();
        sys.unsubscribe(q1).unwrap();
        sys.run((0..4).map(|i| s_tuple(i * 1000, i, i as f64)))
            .unwrap();
        assert_eq!(sys.results(q1).len(), 0);
        assert_eq!(sys.results(q2).len(), 4);
    }

    #[test]
    fn per_source_trees_deliver_and_shorten_paths() {
        // A ring-ish overlay where the shared MST forces a long detour
        // for one source, but its own shortest-path tree is direct.
        let mut g = Graph::new(5);
        g.set_position(NodeId(0), 0.0, 0.0);
        g.set_position(NodeId(1), 0.25, 0.0);
        g.set_position(NodeId(2), 0.5, 0.0);
        g.set_position(NodeId(3), 0.75, 0.0);
        g.set_position(NodeId(4), 1.0, 0.0);
        for i in 0..4u32 {
            g.add_edge_by_distance(NodeId(i), NodeId(i + 1)).unwrap();
        }
        // direct (slightly heavier than the 4-hop sum, so the MST keeps
        // the chain but a per-source tree from node 4 can use it)
        g.add_edge(NodeId(0), NodeId(4), 1.02).unwrap();
        let run = |per_source: bool| {
            let cfg = CosmosConfig {
                nodes: 5,
                processor_fraction: 0.2,
                per_source_trees: per_source,
                ..CosmosConfig::default()
            };
            let mut sys = Cosmos::with_graph(cfg, g.clone()).unwrap();
            sys.register_stream(
                "S",
                Schema::of(&[("k", AttrType::Int), ("timestamp", AttrType::Int)]),
                StreamStats::with_rate(1.0).attr("k", AttrStats::categorical(8.0)),
                NodeId(4),
            )
            .unwrap();
            let q = sys
                .submit_query("SELECT k FROM S [Now]", NodeId(1))
                .unwrap();
            sys.run((0..6).map(|i| {
                Tuple::new(
                    "S",
                    Timestamp(i * 1000),
                    vec![Value::Int(i), Value::Int(i * 1000)],
                )
            }))
            .unwrap();
            assert_eq!(sys.results(q).len(), 6);
            sys
        };
        let shared = run(false);
        let multi = run(true);
        // both deliver; the per-source tree of origin 4 exists
        assert!(multi.tree_for(NodeId(4)).parent(NodeId(4)).is_none());
        assert_eq!(multi.tree_for(NodeId(4)).root(), NodeId(4));
        // shared mode uses the MST regardless of origin
        assert_eq!(shared.tree_for(NodeId(4)).root(), NodeId(0));
    }

    #[test]
    fn optimize_tree_rewires_and_keeps_delivering() {
        // Line overlay, user far from the source: the optimizer can
        // shortcut the path (overlay links are logical).
        let mut g = Graph::new(6);
        for i in 0..6 {
            g.set_position(NodeId(i), 0.15 * i as f64, 0.0);
        }
        for i in 0..5u32 {
            g.add_edge_by_distance(NodeId(i), NodeId(i + 1)).unwrap();
        }
        let cfg = CosmosConfig {
            nodes: 6,
            processor_fraction: 0.17,
            ..CosmosConfig::default()
        };
        let mut sys = Cosmos::with_graph(cfg, g).unwrap();
        sys.register_stream(
            "S",
            Schema::of(&[("k", AttrType::Int), ("timestamp", AttrType::Int)]),
            StreamStats::with_rate(1.0).attr("k", AttrStats::categorical(8.0)),
            NodeId(0),
        )
        .unwrap();
        let q = sys
            .submit_query("SELECT k FROM S [Now]", NodeId(5))
            .unwrap();
        sys.run((0..3).map(|i| {
            Tuple::new(
                "S",
                Timestamp(i * 1000),
                vec![Value::Int(i), Value::Int(i * 1000)],
            )
        }))
        .unwrap();
        let report = sys.optimize_tree(cosmos_overlay::OptimizerConfig {
            max_degree: 4,
            w_delay: 1.0,
            w_load: 0.0,
            rounds: 4,
        });
        assert!(report.cost_after <= report.cost_before);
        // delivery continues after reorganization
        sys.run((3..6).map(|i| {
            Tuple::new(
                "S",
                Timestamp(i * 1000),
                vec![Value::Int(i), Value::Int(i * 1000)],
            )
        }))
        .unwrap();
        assert_eq!(sys.results(q).len(), 6);
    }

    #[test]
    fn optimize_tree_noop_with_per_source_trees() {
        let cfg = CosmosConfig {
            nodes: 8,
            per_source_trees: true,
            seed: 2,
            ..CosmosConfig::default()
        };
        let mut sys = Cosmos::new(cfg).unwrap();
        let report = sys.optimize_tree(cosmos_overlay::OptimizerConfig::default());
        assert_eq!(report.moves, 0);
        assert_eq!(report.cost_before, report.cost_after);
    }

    #[test]
    fn rep_change_replaces_executor_and_still_delivers() {
        let mut sys = line_system(true);
        let q1 = sys
            .submit_query("SELECT k, x FROM S [Now] WHERE x <= 20.0", NodeId(2))
            .unwrap();
        // widening second member forces a representative change
        let q2 = sys
            .submit_query("SELECT k, x FROM S [Now] WHERE x <= 40.0", NodeId(3))
            .unwrap();
        sys.run((0..10).map(|i| s_tuple(i * 1000, i, (i * 10) as f64)))
            .unwrap();
        assert_eq!(sys.results(q1).len(), 3); // x = 0, 10, 20
        assert_eq!(sys.results(q2).len(), 5); // x = 0..40
        let gm = sys.group_manager(NodeId(0)).unwrap();
        assert_eq!(gm.group_count(), 1);
    }

    #[test]
    fn disordered_publishes_converge_after_close() {
        let mut sys = line_system(true);
        let q = sys
            .submit_query(
                "SELECT k, COUNT(*) FROM S [Range 10 Second] GROUP BY k",
                NodeId(3),
            )
            .unwrap();
        sys.set_disorder(Some(DisorderRuntime {
            bound: TimeDelta::from_millis(3_000),
            policy: LatePolicy::Revise {
                grace: TimeDelta::from_millis(3_000),
            },
        }));
        // Timestamps displaced by up to the bound, plus one exact
        // duplicate. In-order reference below must agree post-close.
        let ts = [2_000i64, 1_000, 3_000, 5_000, 4_000, 5_000, 7_000, 6_000];
        for t in ts {
            let k = t / 1_000;
            sys.publish(&s_tuple(t, k % 2, k as f64)).unwrap();
        }
        sys.close_streams();
        let totals = sys.disorder_totals();
        assert!(totals.conserved(), "{totals:?}");
        assert_eq!(totals.duplicates, 1);
        assert_eq!(totals.staged, 0, "close must drain all staging");
        // The in-order reference run (disorder off, duplicate removed).
        let mut reference = line_system(true);
        let rq = reference
            .submit_query(
                "SELECT k, COUNT(*) FROM S [Range 10 Second] GROUP BY k",
                NodeId(3),
            )
            .unwrap();
        let mut sorted: Vec<i64> = ts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 5)
            .map(|(_, t)| *t)
            .collect();
        sorted.sort_unstable();
        for t in sorted {
            let k = t / 1_000;
            reference.publish(&s_tuple(t, k % 2, k as f64)).unwrap();
        }
        assert_eq!(sys.results(q), reference.results(rq));
        // Punctuations crossed links and were accounted both ways.
        let snap = sys.metrics();
        assert!(snap.punctuations > 0);
        assert_eq!(snap.punctuation_bytes, 18 * snap.punctuations);
        assert_eq!(snap.link_bytes_total(), sys.total_bytes());
        // The closed set reached the network snapshot (and only there:
        // an in-order snapshot stays byte-identical to the old format).
        let netsnap = sys.snapshot().unwrap();
        assert_eq!(netsnap.closed_streams, vec![StreamName::from("S")]);
        let json = netsnap.to_json().unwrap();
        let back = crate::snapshot::NetworkSnapshot::from_json(&json).unwrap();
        assert_eq!(back, netsnap);
        let plain = reference.snapshot().unwrap().to_json().unwrap();
        assert!(!plain.contains("closed_streams"));
    }

    #[test]
    fn in_order_disorder_mode_changes_nothing_but_watermarks() {
        // Same in-order feed, disorder mode on vs off: deliveries are
        // identical tuple for tuple (staging releases everything, no
        // late path is ever taken).
        let feed: Vec<Tuple> = (0..12).map(|i| s_tuple(i * 500, i % 3, i as f64)).collect();
        let deliver = |disorder: bool| -> Vec<Tuple> {
            let mut sys = line_system(true);
            let q = sys
                .submit_query(
                    "SELECT k, COUNT(*) FROM S [Range 2 Second] GROUP BY k",
                    NodeId(3),
                )
                .unwrap();
            if disorder {
                sys.set_disorder(Some(DisorderRuntime {
                    bound: TimeDelta::from_millis(1_000),
                    policy: LatePolicy::Drop,
                }));
            }
            sys.run(feed.iter().cloned()).unwrap();
            sys.close_streams();
            sys.results(q).to_vec()
        };
        assert_eq!(deliver(false), deliver(true));
    }

    #[test]
    fn retiring_a_rep_flushes_its_staging_through_the_engine() {
        let mut sys = line_system(true);
        let q1 = sys
            .submit_query("SELECT k, x FROM S [Now] WHERE x <= 20.0", NodeId(2))
            .unwrap();
        sys.set_disorder(Some(DisorderRuntime {
            bound: TimeDelta::from_millis(10_000),
            policy: LatePolicy::Drop,
        }));
        // A huge bound keeps every publish staged (watermark trails far
        // behind), so results only exist if replacement flushes.
        sys.publish(&s_tuple(1_000, 1, 10.0)).unwrap();
        sys.publish(&s_tuple(2_000, 2, 20.0)).unwrap();
        assert!(sys.results(q1).is_empty(), "still staged");
        // Widening member replaces the representative executor, which
        // must flush the staged tuples through the old engine first.
        let q2 = sys
            .submit_query("SELECT k, x FROM S [Now] WHERE x <= 40.0", NodeId(3))
            .unwrap();
        assert_eq!(sys.results(q1).len(), 2);
        assert!(sys.results(q2).is_empty(), "flushed before q2 subscribed");
        let totals = sys.disorder_totals();
        assert!(totals.conserved(), "{totals:?}");
        assert_eq!(totals.drained, 2);
        sys.close_streams();
        assert!(sys.disorder_totals().conserved());
    }
}
