#![forbid(unsafe_code)]
//! The COSMOS system layer (Figures 1 and 2 of the paper).
//!
//! This crate ties the substrates together into the architecture the
//! paper describes: a set of autonomous servers — plain **brokers** that
//! only run the data layer, and **processors** that additionally host a
//! stream processing engine — interconnected by an overlay network whose
//! dissemination tree carries a stream-aware content-based network.
//!
//! [`Cosmos`] is the whole deployment, driven as a deterministic
//! discrete-event simulation:
//!
//! * sources *advertise* and publish their streams at origin nodes;
//! * user queries enter at any node, are routed to a processor by the
//!   **query distribution** (load management) service, pass through the
//!   processor's **query management** module (grouping/merging of
//!   Section 4), and install data-interest profiles into the CBN — one
//!   for the processor to *retrieve the source data* and one per user to
//!   *retrieve the results* from the representative's result stream;
//! * every datagram is physically routed hop-by-hop along the
//!   dissemination tree with reverse-path forwarding and early
//!   projection, and every link crossing is accounted in bytes and in
//!   delay-weighted cost.
//!
//! [`experiment`] contains the analytic Figure 4 harness (query-merging
//! benefit/grouping ratios at paper scale: 1000-node power-law overlay,
//! thousands of queries), and [`fault`] the data-layer fault-tolerance
//! extension (tree repair + subscription re-propagation).

pub mod autotune;
pub mod experiment;
pub mod fault;
pub mod overload;
mod parallel;
pub mod snapshot;
pub mod system;

pub use autotune::{AutotuneOptions, AutotunePass, AutotunePolicy, AutotuneReport};
pub use cosmos_metrics::{MetricsConfig, MetricsSnapshot, RouterTotals, METRICS_VERSION};
pub use cosmos_spe::{DisorderStats, LatePolicy};
pub use overload::{Budget, OverloadConfig, OverloadController, OverloadPolicy, QueryLedger};
pub use snapshot::NetworkSnapshot;
pub use system::{Cosmos, CosmosConfig, DisorderRuntime, NodeRole, RepStateView};
