//! Self-tuning options, scheduling policy, and reports.
//!
//! COSMOS plans with registration-time estimates; the metrics layer
//! measures what actually happens. [`Cosmos::autotune`] compares the
//! two and, past a drift threshold, feeds the measurements back into
//! the existing optimizers. This module holds the knobs, the scheduler
//! that decides *when* a pass runs ([`AutotunePolicy`], armed with
//! [`Cosmos::set_autotune`]), and the structured outcome of one pass.
//!
//! **Hysteresis.** Measured demand drifts continuously, so two
//! near-equal tree plans can leapfrog each other across consecutive
//! passes — plan A beats B by ε in one rate window, B beats A by ε in
//! the next, and the deployment pays a full route rebuild for every
//! flip. The scheduler therefore adopts a tree re-organization only
//! when its fractional cost improvement *exceeds* the policy's
//! hysteresis band; anything at or below the band is rolled back. A
//! flip then requires the demand shift itself to be worth more than
//! the band, which ε-oscillation by construction is not — plan
//! adoption under a band is monotone in the driving demand.
//!
//! [`Cosmos::autotune`]: crate::Cosmos::autotune
//! [`Cosmos::set_autotune`]: crate::Cosmos::set_autotune

use cosmos_overlay::{OptimizeReport, OptimizerConfig};
use cosmos_types::TimeDelta;

/// Knobs for one [`Cosmos::autotune`] pass.
///
/// [`Cosmos::autotune`]: crate::Cosmos::autotune
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutotuneOptions {
    /// Relative drift between measured and estimated statistics above
    /// which the pass adopts measurements and re-optimizes. `0.25`
    /// means "act when reality is 25% away from the plan".
    pub drift_threshold: f64,
    /// Tree-optimizer configuration used when the pass re-organizes the
    /// dissemination tree with measured demand.
    pub optimizer: OptimizerConfig,
}

impl Default for AutotuneOptions {
    fn default() -> Self {
        AutotuneOptions {
            drift_threshold: 0.25,
            optimizer: OptimizerConfig::default(),
        }
    }
}

/// When and how the deployment re-tunes itself without being asked
/// (armed with [`Cosmos::set_autotune`]).
///
/// A pass is scheduled when **either** trigger fires:
///
/// * **periodic** — at least `period_virtual` of virtual time elapsed
///   since the last scheduled pass (zero disables the periodic
///   trigger);
/// * **drift** — measured drift exceeded `options.drift_threshold` in
///   `trigger_after_k_windows` *consecutive* rate windows (zero
///   disables the drift trigger). Requiring K consecutive windows
///   keeps a single bursty window from thrashing the optimizers.
///
/// [`Cosmos::set_autotune`]: crate::Cosmos::set_autotune
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutotunePolicy {
    /// Periodic trigger: run a pass whenever this much virtual time has
    /// elapsed since the last one (zero = periodic trigger off).
    pub period_virtual: TimeDelta,
    /// Drift trigger: run a pass after measured drift exceeded the
    /// threshold in this many consecutive rate windows (zero = drift
    /// trigger off).
    pub trigger_after_k_windows: u32,
    /// Hysteresis band: a tree re-organization is adopted only when its
    /// fractional cost improvement ([`OptimizeReport::improvement`])
    /// strictly exceeds this value; otherwise the previous tree is
    /// restored. Zero adopts every strict improvement (no damping).
    pub hysteresis: f64,
    /// Per-pass knobs (drift threshold, optimizer configuration).
    pub options: AutotuneOptions,
}

impl Default for AutotunePolicy {
    fn default() -> Self {
        AutotunePolicy {
            period_virtual: TimeDelta::from_secs(60),
            trigger_after_k_windows: 2,
            hysteresis: 0.05,
            options: AutotuneOptions::default(),
        }
    }
}

/// What one [`Cosmos::autotune`] pass observed and did.
///
/// [`Cosmos::autotune`]: crate::Cosmos::autotune
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AutotuneReport {
    /// Metrics recording is disabled: there are no measurements to
    /// compare against the plan, so the pass did nothing — it did not
    /// even compute drift (every measured rate would read zero, which
    /// is indistinguishable from "no traffic").
    MetricsDisabled,
    /// Metrics were live and a measured pass ran (it may still have
    /// been read-only, when drift stayed under the threshold).
    Measured(AutotunePass),
}

impl AutotuneReport {
    /// Whether drift exceeded the threshold and feedback ran.
    pub fn triggered(&self) -> bool {
        matches!(self, AutotuneReport::Measured(p) if p.triggered)
    }

    /// The measured pass, when metrics were live.
    pub fn pass(&self) -> Option<&AutotunePass> {
        match self {
            AutotuneReport::MetricsDisabled => None,
            AutotuneReport::Measured(p) => Some(p),
        }
    }
}

/// The measurements and actions of one live [`Cosmos::autotune`] pass.
///
/// [`Cosmos::autotune`]: crate::Cosmos::autotune
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutotunePass {
    /// Worst relative drift between a stream's measured and registered
    /// arrival rate.
    pub stream_drift: f64,
    /// Worst relative drift between a group representative's cost under
    /// measured vs registered statistics.
    pub group_drift: f64,
    /// `max(stream_drift, group_drift)` — what was compared against the
    /// threshold.
    pub drift: f64,
    /// The threshold the pass ran with.
    pub threshold: f64,
    /// Whether the drift exceeded the threshold and feedback ran.
    pub triggered: bool,
    /// Streams whose catalog statistics were replaced by measurements.
    pub adopted_streams: usize,
    /// Processors whose query grouping improved under measured stats.
    pub groups_improved: usize,
    /// Outcome of the measured-demand tree re-organization (`None` when
    /// the pass did not trigger).
    pub tree: Option<OptimizeReport>,
    /// Whether the re-organized tree was rolled back because its
    /// improvement did not clear the hysteresis band (always `false`
    /// for direct [`Cosmos::autotune`] calls, which run without a
    /// band).
    ///
    /// [`Cosmos::autotune`]: crate::Cosmos::autotune
    pub tree_rolled_back: bool,
}
