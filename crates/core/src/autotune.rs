//! Self-tuning options and reports.
//!
//! COSMOS plans with registration-time estimates; the metrics layer
//! measures what actually happens. [`Cosmos::autotune`] compares the
//! two and, past a drift threshold, feeds the measurements back into
//! the existing optimizers. This module holds the knobs and the
//! structured outcome of one such pass.
//!
//! [`Cosmos::autotune`]: crate::Cosmos::autotune

use cosmos_overlay::{OptimizeReport, OptimizerConfig};

/// Knobs for one [`Cosmos::autotune`] pass.
///
/// [`Cosmos::autotune`]: crate::Cosmos::autotune
#[derive(Debug, Clone, Copy)]
pub struct AutotuneOptions {
    /// Relative drift between measured and estimated statistics above
    /// which the pass adopts measurements and re-optimizes. `0.25`
    /// means "act when reality is 25% away from the plan".
    pub drift_threshold: f64,
    /// Tree-optimizer configuration used when the pass re-organizes the
    /// dissemination tree with measured demand.
    pub optimizer: OptimizerConfig,
}

impl Default for AutotuneOptions {
    fn default() -> Self {
        AutotuneOptions {
            drift_threshold: 0.25,
            optimizer: OptimizerConfig::default(),
        }
    }
}

/// What one [`Cosmos::autotune`] pass observed and did.
///
/// [`Cosmos::autotune`]: crate::Cosmos::autotune
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutotuneReport {
    /// Worst relative drift between a stream's measured and registered
    /// arrival rate.
    pub stream_drift: f64,
    /// Worst relative drift between a group representative's cost under
    /// measured vs registered statistics.
    pub group_drift: f64,
    /// `max(stream_drift, group_drift)` — what was compared against the
    /// threshold.
    pub drift: f64,
    /// The threshold the pass ran with.
    pub threshold: f64,
    /// Whether the drift exceeded the threshold and feedback ran.
    pub triggered: bool,
    /// Streams whose catalog statistics were replaced by measurements.
    pub adopted_streams: usize,
    /// Processors whose query grouping improved under measured stats.
    pub groups_improved: usize,
    /// Outcome of the measured-demand tree re-organization (`None` when
    /// the pass did not trigger).
    pub tree: Option<OptimizeReport>,
}
