//! Per-node overload control: bounded delivery budgets, accounted load
//! shedding, coalescing, and upstream throttling.
//!
//! Every node gets an intake *budget* — bytes or tuples per metrics
//! rate window. The controller sits on the single shared delivery
//! point ([`Cosmos::publish_batch`]'s `deliver_local`, used verbatim by
//! the serial BFS and the parallel replay), so a user delivery that
//! would push the node's measured in-window intake past its budget is
//! intercepted *before* it lands in the delivery buffer and handled by
//! a deterministic per-query [`OverloadPolicy`]:
//!
//! * [`Shed`](OverloadPolicy::Shed) — drop the batch, counted
//!   tuple- and byte-exact in the query's [`QueryLedger`] (never
//!   silent: the conservation identity below is checked by
//!   cosmos-testkit after every event);
//! * [`Coalesce`](OverloadPolicy::Coalesce) — merge the batch into the
//!   query's single pending batch and deliver the merged batch once
//!   the node is back under budget (or at stream closure);
//! * [`Throttle`](OverloadPolicy::Throttle) — shed like `Shed` and
//!   additionally send a [`RateLimit`] datagram reverse along the
//!   stream's dissemination tree toward its origin, link-byte
//!   accounted like a watermark punctuation, at most once per
//!   `(node, stream)` per rate window.
//!
//! The controller maintains, per query, the **conservation identity**
//!
//! ```text
//! offered == delivered + shed + staged        (tuples AND bytes)
//! ```
//!
//! where `offered` counts every batch the routing layer handed to the
//! user subscription, `delivered` what reached the delivery buffer,
//! `shed` what the Shed/Throttle policies dropped, and `staged` what
//! Coalesce is currently holding. Budget decisions read only the
//! metrics hub's virtual-time windows, so replays of the same scenario
//! reproduce identical shed decisions bit for bit.
//!
//! [`Cosmos::publish_batch`]: crate::Cosmos::publish_batch
//! [`RateLimit`]: cosmos_types::RateLimit

use cosmos_types::{NodeId, QueryId, RateLimit, StreamName, Tuple};
use std::collections::BTreeMap;

/// An intake budget per metrics rate window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// At most this many bytes of user delivery per window.
    Bytes(u64),
    /// At most this many tuples of user delivery per window.
    Tuples(u64),
}

impl Budget {
    /// A budget no realizable window can exceed.
    pub const UNLIMITED: Budget = Budget::Bytes(u64::MAX);

    /// Would accepting a `(batch_tuples, batch_bytes)` batch on top of
    /// the measured `(in_tuples, in_bytes)` window occupancy cross the
    /// budget?
    pub fn exceeded_by(&self, in_window: (u64, u64), batch: (u64, u64)) -> bool {
        match *self {
            Budget::Bytes(b) => in_window.1.saturating_add(batch.1) > b,
            Budget::Tuples(n) => in_window.0.saturating_add(batch.0) > n,
        }
    }
}

/// What to do with a delivery that would cross the node's budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Drop the batch, ledger-accounted (the default).
    #[default]
    Shed,
    /// Merge the batch into the query's pending batch; deliver merged
    /// once under budget again (or at stream closure).
    Coalesce,
    /// Shed the batch and notify the stream's origin with a
    /// [`RateLimit`] datagram routed along the dissemination tree.
    Throttle,
}

/// Deployment-wide overload configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OverloadConfig {
    /// Default intake budget for every node.
    pub budget: Budget,
    /// Per-node overrides of `budget`.
    pub node_budgets: BTreeMap<NodeId, Budget>,
    /// Default policy for every query.
    pub policy: OverloadPolicy,
    /// Per-query overrides of `policy`.
    pub query_policies: BTreeMap<QueryId, OverloadPolicy>,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::UNLIMITED
    }
}

impl OverloadConfig {
    /// A uniform bytes-per-window budget for every node, default
    /// (Shed) policy.
    pub fn uniform_bytes(budget: u64) -> OverloadConfig {
        OverloadConfig {
            budget: Budget::Bytes(budget),
            ..OverloadConfig::default()
        }
    }

    /// The budget in force at `node`.
    pub fn budget_for(&self, node: NodeId) -> Budget {
        self.node_budgets.get(&node).copied().unwrap_or(self.budget)
    }

    /// The policy in force for `qid`.
    pub fn policy_for(&self, qid: QueryId) -> OverloadPolicy {
        self.query_policies
            .get(&qid)
            .copied()
            .unwrap_or(self.policy)
    }
}

/// Per-query conservation ledger (see the module docs for the
/// identity it maintains). `staged` is a gauge — it moves to
/// `delivered` when a pending Coalesce batch drains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryLedger {
    /// Tuples the routing layer offered to the user subscription.
    pub offered_tuples: u64,
    /// Bytes offered.
    pub offered_bytes: u64,
    /// Tuples that reached the delivery buffer.
    pub delivered_tuples: u64,
    /// Bytes delivered.
    pub delivered_bytes: u64,
    /// Tuples dropped by the Shed/Throttle policies.
    pub shed_tuples: u64,
    /// Bytes shed.
    pub shed_bytes: u64,
    /// Tuples currently pending in the Coalesce batch.
    pub staged_tuples: u64,
    /// Bytes staged.
    pub staged_bytes: u64,
}

impl QueryLedger {
    /// `offered == delivered + shed + staged`, tuple- and byte-exact.
    pub fn conserved(&self) -> bool {
        self.offered_tuples == self.delivered_tuples + self.shed_tuples + self.staged_tuples
            && self.offered_bytes == self.delivered_bytes + self.shed_bytes + self.staged_bytes
    }
}

/// The controller's verdict on one offered batch. The driver maps each
/// variant onto delivery-buffer and metrics-hub effects.
#[derive(Debug)]
pub enum Action {
    /// Deliver `tuples` (the offered batch, preceded by any drained
    /// pending batch). `drained` is true when a pending Coalesce batch
    /// rode along.
    Deliver { tuples: Vec<Tuple>, drained: bool },
    /// The batch was staged into the query's pending batch;
    /// `coalesced` is true when it merged into an existing one.
    Stage { coalesced: bool },
    /// The batch was shed (`tuples`/`bytes` give its exact size).
    Shed { tuples: u64, bytes: u64 },
    /// The batch was shed and, when `limit` is set, the origin should
    /// be notified along the reverse tree path (at most one notice per
    /// `(node, stream)` per window, deduplicated here).
    Throttle {
        tuples: u64,
        bytes: u64,
        limit: Option<RateLimit>,
    },
}

/// Deterministic fault injection for the shed-conservation canary:
/// `drop_shed_ledger` makes the controller shed tuples *without*
/// incrementing the ledger's shed counters — the classic silent-drop
/// bug the extended conservation oracle exists to catch.
pub mod faultinject {
    use std::sync::atomic::{AtomicBool, Ordering};

    static DROP_SHED_LEDGER: AtomicBool = AtomicBool::new(false);

    /// Arm (or disarm) the shed-ledger leak.
    pub fn set_drop_shed_ledger(enabled: bool) {
        DROP_SHED_LEDGER.store(enabled, Ordering::SeqCst);
    }

    /// Whether the leak is armed.
    pub fn drop_shed_ledger() -> bool {
        DROP_SHED_LEDGER.load(Ordering::SeqCst)
    }
}

/// The per-deployment overload controller (one per [`Cosmos`], armed
/// with [`Cosmos::set_overload`]).
///
/// [`Cosmos`]: crate::Cosmos
/// [`Cosmos::set_overload`]: crate::Cosmos::set_overload
#[derive(Debug)]
pub struct OverloadController {
    cfg: OverloadConfig,
    ledgers: BTreeMap<QueryId, QueryLedger>,
    /// Pending Coalesce batch per query.
    staged: BTreeMap<QueryId, Vec<Tuple>>,
    /// Per-node high-water mark: the largest in-window intake (bytes)
    /// any *admitted* delivery left behind, counting the admitted
    /// batch itself.
    high_water: BTreeMap<NodeId, u64>,
    /// Rate-window index of the last [`RateLimit`] emitted per
    /// `(node, stream)`.
    throttled_window: BTreeMap<(NodeId, StreamName), i64>,
    /// Rate-limit notices that reached a stream's origin (advisory in
    /// this build; see `cosmos_types::RateLimit`).
    received: Vec<RateLimit>,
}

fn batch_size(tuples: &[Tuple]) -> (u64, u64) {
    (
        tuples.len() as u64,
        tuples.iter().map(|t| t.size_bytes() as u64).sum(),
    )
}

impl OverloadController {
    /// A controller enforcing `cfg`.
    pub fn new(cfg: OverloadConfig) -> OverloadController {
        OverloadController {
            cfg,
            ledgers: BTreeMap::new(),
            staged: BTreeMap::new(),
            high_water: BTreeMap::new(),
            throttled_window: BTreeMap::new(),
            received: Vec::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &OverloadConfig {
        &self.cfg
    }

    /// Decide what happens to a batch offered to `qid`'s user
    /// subscription at `node`. `in_window` is the node's measured
    /// `(tuples, bytes)` intake in the live rate window (the metrics
    /// hub's `consumed_in_window`), `window_index` the current window's
    /// ordinal (for throttle deduplication). Deterministic: the verdict
    /// is a pure function of controller state and the two measurements.
    pub fn admit(
        &mut self,
        node: NodeId,
        qid: QueryId,
        tuples: Vec<Tuple>,
        in_window: (u64, u64),
        window_index: i64,
    ) -> Action {
        let batch = batch_size(&tuples);
        let ledger = self.ledgers.entry(qid).or_default();
        ledger.offered_tuples += batch.0;
        ledger.offered_bytes += batch.1;
        let budget = self.cfg.budget_for(node);
        let hw = self.high_water.entry(node).or_insert(0);
        if !budget.exceeded_by(in_window, batch) {
            // Under budget. Drain the pending Coalesce batch along when
            // the combined mass still fits; otherwise keep coalescing
            // so the window stays bounded (closure drains the rest).
            let pending = self
                .staged
                .get(&qid)
                .map(|p| batch_size(p))
                .unwrap_or((0, 0));
            let combined = (batch.0 + pending.0, batch.1 + pending.1);
            if pending.0 > 0 && budget.exceeded_by(in_window, combined) {
                ledger.staged_tuples += batch.0;
                ledger.staged_bytes += batch.1;
                self.staged.entry(qid).or_default().extend(tuples);
                return Action::Stage { coalesced: true };
            }
            ledger.delivered_tuples += combined.0;
            ledger.delivered_bytes += combined.1;
            ledger.staged_tuples -= pending.0;
            ledger.staged_bytes -= pending.1;
            *hw = (*hw).max(in_window.1 + combined.1);
            let drained = pending.0 > 0;
            let mut out = self.staged.remove(&qid).unwrap_or_default();
            out.extend(tuples);
            return Action::Deliver {
                tuples: out,
                drained,
            };
        }
        match self.cfg.policy_for(qid) {
            OverloadPolicy::Shed => {
                if !faultinject::drop_shed_ledger() {
                    ledger.shed_tuples += batch.0;
                    ledger.shed_bytes += batch.1;
                }
                Action::Shed {
                    tuples: batch.0,
                    bytes: batch.1,
                }
            }
            OverloadPolicy::Coalesce => {
                ledger.staged_tuples += batch.0;
                ledger.staged_bytes += batch.1;
                let slot = self.staged.entry(qid).or_default();
                let coalesced = !slot.is_empty();
                slot.extend(tuples);
                Action::Stage { coalesced }
            }
            OverloadPolicy::Throttle => {
                if !faultinject::drop_shed_ledger() {
                    ledger.shed_tuples += batch.0;
                    ledger.shed_bytes += batch.1;
                }
                let stream = tuples
                    .first()
                    .map(|t| t.stream.clone())
                    .unwrap_or_else(|| StreamName::from(""));
                let key = (node, stream.clone());
                let limit = if self.throttled_window.get(&key) != Some(&window_index) {
                    self.throttled_window.insert(key, window_index);
                    let budget_bytes = match budget {
                        Budget::Bytes(b) => b,
                        // Tuple budgets travel scaled by the rejected
                        // batch's mean tuple size.
                        Budget::Tuples(n) => n.saturating_mul(batch.1 / batch.0.max(1)),
                    };
                    Some(RateLimit::new(stream, node, budget_bytes))
                } else {
                    None
                };
                Action::Throttle {
                    tuples: batch.0,
                    bytes: batch.1,
                    limit,
                }
            }
        }
    }

    /// Drain every pending Coalesce batch unconditionally (stream
    /// closure, controller disarm): the batches move to `delivered`
    /// and are returned for the driver to append to the delivery
    /// buffers, in query order.
    pub fn drain_all(&mut self) -> Vec<(QueryId, Vec<Tuple>)> {
        let staged = std::mem::take(&mut self.staged);
        let mut out = Vec::with_capacity(staged.len());
        for (qid, tuples) in staged {
            let (t, b) = batch_size(&tuples);
            let ledger = self.ledgers.entry(qid).or_default();
            ledger.staged_tuples -= t;
            ledger.staged_bytes -= b;
            ledger.delivered_tuples += t;
            ledger.delivered_bytes += b;
            out.push((qid, tuples));
        }
        out
    }

    /// Record a rate-limit notice that reached its stream's origin.
    pub fn record_received(&mut self, limit: RateLimit) {
        self.received.push(limit);
    }

    /// Rate-limit notices recorded at stream origins, in arrival order.
    pub fn received(&self) -> &[RateLimit] {
        &self.received
    }

    /// A query's ledger (zero for queries never offered a batch).
    pub fn ledger(&self, qid: QueryId) -> QueryLedger {
        self.ledgers.get(&qid).copied().unwrap_or_default()
    }

    /// All per-query ledgers, in query order.
    pub fn ledgers(&self) -> &BTreeMap<QueryId, QueryLedger> {
        &self.ledgers
    }

    /// A node's delivery high-water mark: the largest in-window intake
    /// (bytes, admitted batch included) any *admitted* delivery left
    /// behind. Deliveries are admitted only when they fit, so with a
    /// `Bytes` budget this never exceeds the budget — the bounded-
    /// buffer guarantee of the overload scenario.
    pub fn high_water(&self, node: NodeId) -> u64 {
        self.high_water.get(&node).copied().unwrap_or(0)
    }

    /// Tuples currently staged for a query.
    pub fn staged_len(&self, qid: QueryId) -> usize {
        self.staged.get(&qid).map(Vec::len).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_types::{Timestamp, Value};

    fn tup(ts: i64) -> Tuple {
        Tuple::new("S", Timestamp(ts), vec![Value::Int(ts)])
    }

    fn ctl(budget: Budget, policy: OverloadPolicy) -> OverloadController {
        OverloadController::new(OverloadConfig {
            budget,
            policy,
            ..OverloadConfig::default()
        })
    }

    #[test]
    fn under_budget_delivers_and_conserves() {
        let mut c = ctl(Budget::Tuples(10), OverloadPolicy::Shed);
        let q = QueryId(1);
        match c.admit(NodeId(0), q, vec![tup(1), tup(2)], (0, 0), 0) {
            Action::Deliver { tuples, drained } => {
                assert_eq!(tuples.len(), 2);
                assert!(!drained);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        let l = c.ledger(q);
        assert!(l.conserved());
        assert_eq!(l.offered_tuples, 2);
        assert_eq!(l.delivered_tuples, 2);
        assert_eq!(l.shed_tuples, 0);
    }

    #[test]
    fn shed_is_ledger_accounted_byte_exact() {
        let mut c = ctl(Budget::Tuples(1), OverloadPolicy::Shed);
        let q = QueryId(1);
        let batch = vec![tup(1), tup(2)];
        let bytes: u64 = batch.iter().map(|t| t.size_bytes() as u64).sum();
        match c.admit(NodeId(0), q, batch, (1, 100), 0) {
            Action::Shed { tuples, bytes: b } => {
                assert_eq!(tuples, 2);
                assert_eq!(b, bytes);
            }
            other => panic!("expected shed, got {other:?}"),
        }
        let l = c.ledger(q);
        assert!(l.conserved());
        assert_eq!(l.shed_tuples, 2);
        assert_eq!(l.shed_bytes, bytes);
        assert_eq!(l.delivered_tuples, 0);
    }

    #[test]
    fn coalesce_stages_then_drains_in_order() {
        let mut c = ctl(Budget::Tuples(3), OverloadPolicy::Coalesce);
        let q = QueryId(1);
        // Window full: two over-budget batches coalesce into one.
        match c.admit(NodeId(0), q, vec![tup(1)], (3, 30), 0) {
            Action::Stage { coalesced } => assert!(!coalesced),
            other => panic!("expected stage, got {other:?}"),
        }
        match c.admit(NodeId(0), q, vec![tup(2)], (3, 30), 0) {
            Action::Stage { coalesced } => assert!(coalesced, "second batch merges"),
            other => panic!("expected stage, got {other:?}"),
        }
        assert_eq!(c.ledger(q).staged_tuples, 2);
        assert!(c.ledger(q).conserved());
        // Window drained: the pending batch (2 tuples) plus the new one
        // fit the 3-tuple budget together, so it rides along, oldest
        // first.
        match c.admit(NodeId(0), q, vec![tup(3)], (0, 0), 1) {
            Action::Deliver { tuples, drained } => {
                assert!(drained);
                let ts: Vec<i64> = tuples.iter().map(|t| t.timestamp.0).collect();
                assert_eq!(ts, vec![1, 2, 3]);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        let l = c.ledger(q);
        assert!(l.conserved());
        assert_eq!(l.delivered_tuples, 3);
        assert_eq!(l.staged_tuples, 0);
    }

    #[test]
    fn drain_all_moves_staged_to_delivered() {
        let mut c = ctl(Budget::Tuples(0), OverloadPolicy::Coalesce);
        let q = QueryId(7);
        c.admit(NodeId(0), q, vec![tup(1), tup(2)], (5, 50), 0);
        assert_eq!(c.staged_len(q), 2);
        let drained = c.drain_all();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, q);
        assert_eq!(drained[0].1.len(), 2);
        let l = c.ledger(q);
        assert!(l.conserved());
        assert_eq!(l.delivered_tuples, 2);
        assert_eq!(c.staged_len(q), 0);
    }

    #[test]
    fn throttle_emits_one_notice_per_window() {
        let mut c = ctl(Budget::Bytes(10), OverloadPolicy::Throttle);
        let q = QueryId(1);
        let lim = match c.admit(NodeId(3), q, vec![tup(1)], (4, 40), 0) {
            Action::Throttle { limit, .. } => limit.expect("first over-budget batch notifies"),
            other => panic!("expected throttle, got {other:?}"),
        };
        assert_eq!(lim.from, NodeId(3));
        assert_eq!(lim.budget_bytes, 10);
        // Same window: deduplicated.
        match c.admit(NodeId(3), q, vec![tup(2)], (4, 40), 0) {
            Action::Throttle { limit, .. } => assert!(limit.is_none()),
            other => panic!("expected throttle, got {other:?}"),
        }
        // Next window: a fresh notice.
        match c.admit(NodeId(3), q, vec![tup(3)], (4, 40), 1) {
            Action::Throttle { limit, .. } => assert!(limit.is_some()),
            other => panic!("expected throttle, got {other:?}"),
        }
        assert!(c.ledger(q).conserved());
        assert_eq!(c.ledger(q).shed_tuples, 3);
    }

    #[test]
    fn high_water_never_exceeds_a_byte_budget() {
        let mut c = ctl(Budget::Bytes(100), OverloadPolicy::Shed);
        let q = QueryId(1);
        for i in 0..20 {
            // Window occupancy sweeps well past the budget; everything
            // over it is shed, so the delivery high-water stays bounded.
            c.admit(NodeId(0), q, vec![tup(i)], (0, (i as u64 * 30).min(300)), 0);
        }
        let hw = c.high_water(NodeId(0));
        assert!(hw > 0, "some deliveries were admitted");
        assert!(hw <= 100, "high water {hw} exceeds the budget");
    }

    #[test]
    fn shed_leak_injection_breaks_conservation() {
        let mut c = ctl(Budget::Tuples(0), OverloadPolicy::Shed);
        let q = QueryId(1);
        faultinject::set_drop_shed_ledger(true);
        c.admit(NodeId(0), q, vec![tup(1)], (1, 10), 0);
        faultinject::set_drop_shed_ledger(false);
        assert!(!c.ledger(q).conserved(), "the leak must be observable");
        assert_eq!(c.ledger(q).offered_tuples, 1);
        assert_eq!(c.ledger(q).shed_tuples, 0);
    }
}
