//! Data-layer fault tolerance (Section 2's second fault-tolerance
//! function: "providing highly available data transmission service").
//!
//! The paper defers this topic for space; we implement the natural
//! mechanism for a tree-structured CBN: when a dissemination-tree link
//! fails, the orphaned subtree is re-attached to the closest surviving
//! node (overlay links are logical, so any pair may become a tree edge),
//! and every subscription is re-propagated along the new tree paths from
//! the high-level subscription log. Queries keep running; only data in
//! flight during the repair is lost, matching the paper's
//! gap-recovery-style guarantee for the data layer.

use crate::system::Cosmos;
use cosmos_types::{CosmosError, NodeId, Result};

impl Cosmos {
    /// Fail the dissemination-tree link between `a` and `b` and repair
    /// the tree by re-attaching the orphaned subtree at the closest
    /// surviving node. All subscriptions are re-propagated.
    pub fn fail_tree_link(&mut self, a: NodeId, b: NodeId) -> Result<()> {
        if self.config().per_source_trees {
            return Err(CosmosError::Overlay(
                "link-failure repair operates on the shared dissemination tree; \
                 per-source trees must be rebuilt via their origins"
                    .into(),
            ));
        }
        // Identify the child side of the failed link.
        let child = if self.tree().parent(a) == Some(b) {
            a
        } else if self.tree().parent(b) == Some(a) {
            b
        } else {
            return Err(CosmosError::Overlay(format!(
                "{a} - {b} is not a dissemination-tree link"
            )));
        };
        // Choose the closest node outside the orphaned subtree.
        let orphaned = self.tree().subtree(child);
        let in_subtree = {
            let mut v = vec![false; self.tree().node_count()];
            for n in &orphaned {
                v[n.index()] = true;
            }
            v
        };
        let old_parent = self.tree().parent(child).expect("child has a parent");
        let mut best: Option<(NodeId, f64)> = None;
        for u in self.graph().nodes() {
            if in_subtree[u.index()] || u == old_parent {
                continue;
            }
            // Prefer healing over the orphan root; any subtree member
            // could reattach, but the orphan root keeps the repair local.
            let d = self.graph().distance(child, u).max(f64::EPSILON);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((u, d));
            }
        }
        let (new_parent, _) = best.ok_or_else(|| {
            CosmosError::Overlay("no surviving node to re-attach the subtree to".into())
        })?;
        self.tree_mut().reattach(child, new_parent)?;
        self.rebuild_routes();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::system::{Cosmos, CosmosConfig};
    use cosmos_overlay::Graph;
    use cosmos_query::{AttrStats, StreamStats};
    use cosmos_types::{AttrType, NodeId, Schema, Timestamp, Tuple, Value};

    /// A ring-capable overlay: line 0-1-2-3 plus a spare edge 0-3 that
    /// the repair can fall back on.
    fn ring_system() -> Cosmos {
        let mut g = Graph::new(4);
        g.set_position(NodeId(0), 0.0, 0.0);
        g.set_position(NodeId(1), 0.3, 0.0);
        g.set_position(NodeId(2), 0.6, 0.0);
        g.set_position(NodeId(3), 0.9, 0.0);
        for i in 0..3u32 {
            g.add_edge_by_distance(NodeId(i), NodeId(i + 1)).unwrap();
        }
        g.add_edge(NodeId(0), NodeId(3), 5.0).unwrap(); // expensive spare
        let mut sys = Cosmos::with_graph(
            CosmosConfig {
                nodes: 4,
                processor_fraction: 0.25,
                ..CosmosConfig::default()
            },
            g,
        )
        .unwrap();
        sys.register_stream(
            "S",
            Schema::of(&[("k", AttrType::Int), ("timestamp", AttrType::Int)]),
            StreamStats::with_rate(1.0).attr("k", AttrStats::categorical(10.0)),
            NodeId(0),
        )
        .unwrap();
        sys
    }

    fn tup(ts: i64, k: i64) -> Tuple {
        Tuple::new("S", Timestamp(ts), vec![Value::Int(k), Value::Int(ts)])
    }

    #[test]
    fn delivery_resumes_after_link_failure() {
        let mut sys = ring_system();
        let q = sys
            .submit_query("SELECT k FROM S [Now]", NodeId(3))
            .unwrap();
        sys.run((0..5).map(|i| tup(i * 1000, i))).unwrap();
        assert_eq!(sys.results(q).len(), 5);
        // Fail the tree link feeding node 3's path (2-3).
        sys.fail_tree_link(NodeId(2), NodeId(3)).unwrap();
        // Node 3 must have been re-attached outside the old parent.
        assert_ne!(sys.tree().parent(NodeId(3)), Some(NodeId(2)));
        // New data still arrives.
        sys.run((5..10).map(|i| tup(i * 1000, i))).unwrap();
        assert_eq!(sys.results(q).len(), 10);
    }

    #[test]
    fn repairing_a_trunk_link_reroutes_a_whole_subtree() {
        let mut sys = ring_system();
        let q2 = sys
            .submit_query("SELECT k FROM S [Now]", NodeId(2))
            .unwrap();
        let q3 = sys
            .submit_query("SELECT k FROM S [Now]", NodeId(3))
            .unwrap();
        sys.fail_tree_link(NodeId(1), NodeId(2)).unwrap();
        sys.run((0..4).map(|i| tup(i * 1000, i))).unwrap();
        assert_eq!(sys.results(q2).len(), 4);
        assert_eq!(sys.results(q3).len(), 4);
    }

    #[test]
    fn non_tree_links_cannot_fail() {
        let mut sys = ring_system();
        // 0-3 is a graph edge but not a tree edge (MST avoids weight 5).
        assert!(sys.fail_tree_link(NodeId(0), NodeId(3)).is_err());
        // arbitrary non-adjacent pair
        assert!(sys.fail_tree_link(NodeId(0), NodeId(2)).is_err());
    }

    #[test]
    fn rebuild_routes_is_idempotent() {
        let mut sys = ring_system();
        let q = sys
            .submit_query("SELECT k FROM S [Now]", NodeId(2))
            .unwrap();
        sys.rebuild_routes();
        sys.rebuild_routes();
        sys.run((0..3).map(|i| tup(i * 1000, i))).unwrap();
        assert_eq!(sys.results(q).len(), 3);
    }
}
