//! Data-layer fault tolerance (Section 2's second fault-tolerance
//! function: "providing highly available data transmission service").
//!
//! The paper defers this topic for space; we implement the natural
//! mechanism for a tree-structured CBN: when a dissemination-tree link
//! fails, it is first marked down in the overlay [`Graph`] (removing it
//! from neighbor lists, shortest paths, spanning trees, and
//! [`Graph::link_delay`] pricing, so no later reorganization can
//! silently re-adopt it), then every dissemination tree that used the
//! link — the shared tree and, in per-source-tree mode, each affected
//! per-source tree — is repaired by re-attaching its orphaned subtree
//! to the closest surviving node (overlay links are logical, so any
//! *live* pair may become a tree edge). Finally every subscription is
//! re-propagated along the new tree paths from the high-level
//! subscription log. Queries keep running; only data in flight during
//! the repair is lost, matching the paper's gap-recovery-style
//! guarantee for the data layer. [`Cosmos::heal_tree_link`] reverses
//! the graph marking so later reorganizations may use the link again.
//!
//! [`Graph`]: cosmos_overlay::Graph
//! [`Graph::link_delay`]: cosmos_overlay::Graph::link_delay

use crate::system::Cosmos;
use cosmos_overlay::{Graph, Tree};
use cosmos_types::{CosmosError, NodeId, Result};

/// The child endpoint of `a - b` if it is an edge of `tree`.
fn child_of(tree: &Tree, a: NodeId, b: NodeId) -> Option<NodeId> {
    if tree.parent(a) == Some(b) {
        Some(a)
    } else if tree.parent(b) == Some(a) {
        Some(b)
    } else {
        None
    }
}

/// Reconnect the subtree orphaned by the failure of the link above
/// `child` over the cheapest live pair across the cut, pricing
/// candidate healing links with [`Graph::link_delay`] so downed pairs
/// (including the failed link itself) are never considered. When the
/// best pair's orphan endpoint is not the orphan root the component is
/// re-rooted around it; ties prefer the lowest node ids, keeping the
/// repair deterministic.
fn repair_tree(graph: &Graph, tree: &mut Tree, child: NodeId) -> Result<()> {
    let orphaned = tree.subtree(child);
    let n = tree.node_count();
    let mut in_subtree = vec![false; n];
    for u in &orphaned {
        in_subtree[u.index()] = true;
    }
    let old_parent = tree.parent(child).expect("child has a parent");
    let mut best: Option<(f64, NodeId, NodeId)> = None;
    for &u in &orphaned {
        for v in graph.nodes() {
            if in_subtree[v.index()] {
                continue;
            }
            let Some(d) = graph.link_delay(u, v) else {
                continue; // downed pair — unusable at any price
            };
            let better = best.is_none_or(|(bd, bu, bv)| d < bd || (d == bd && (u, v) < (bu, bv)));
            if better {
                best = Some((d, u, v));
            }
        }
    }
    let Some((_, u, v)) = best else {
        return Err(CosmosError::Overlay(
            "no surviving link to re-attach the subtree over".into(),
        ));
    };
    if u == child {
        return tree.reattach(child, v);
    }
    // The healing link lands inside the orphan: rebuild the tree from
    // its undirected edges with the cut removed and u-v added, which
    // re-roots the orphan component at `u`.
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (p, c) in tree.edges() {
        if (p, c) == (old_parent, child) {
            continue;
        }
        adj[p.index()].push(c);
        adj[c.index()].push(p);
    }
    adj[u.index()].push(v);
    adj[v.index()].push(u);
    let root = tree.root();
    let mut seen = vec![false; n];
    seen[root.index()] = true;
    let mut queue = std::collections::VecDeque::from([root]);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    while let Some(x) = queue.pop_front() {
        for &y in &adj[x.index()] {
            if !seen[y.index()] {
                seen[y.index()] = true;
                edges.push((x, y));
                queue.push_back(y);
            }
        }
    }
    *tree = Tree::from_edges(n, root, &edges)?;
    Ok(())
}

impl Cosmos {
    /// Fail the dissemination-tree link between `a` and `b`: mark it
    /// down in the overlay graph and repair every tree that used it by
    /// re-attaching the orphaned subtree at the closest surviving node.
    /// All subscriptions are re-propagated.
    ///
    /// In per-source-tree mode each affected per-source tree is
    /// repaired independently (the same reattach procedure per tree).
    pub fn fail_tree_link(&mut self, a: NodeId, b: NodeId) -> Result<()> {
        // Identify every tree that carries this link before mutating
        // anything (sorted origins keep the repair order deterministic).
        let shared_child = child_of(self.tree(), a, b);
        let mut source_children: Vec<(NodeId, NodeId)> = self
            .source_trees()
            .iter()
            .filter_map(|(&origin, tree)| child_of(tree, a, b).map(|c| (origin, c)))
            .collect();
        source_children.sort_by_key(|&(origin, _)| origin);
        if shared_child.is_none() && source_children.is_empty() {
            return Err(CosmosError::Overlay(format!(
                "{a} - {b} is not a dissemination-tree link"
            )));
        }
        // Snapshot the affected trees so an unrepairable failure (no
        // live link across the cut) can be rolled back atomically.
        let saved_shared = shared_child.map(|_| self.tree().clone());
        let saved_sources: Vec<(NodeId, Tree)> = source_children
            .iter()
            .map(|&(origin, _)| (origin, self.source_trees()[&origin].clone()))
            .collect();
        // Mark the link down first so the survivor searches below (and
        // any later optimize_tree / MST rebuild) can never route
        // through it or re-adopt it.
        self.graph_mut().fail_link(a, b)?;
        let mut res = Ok(());
        if let Some(child) = shared_child {
            let (g, tree) = self.graph_and_tree_mut();
            res = repair_tree(g, tree, child);
        }
        if res.is_ok() {
            for &(origin, child) in &source_children {
                let (g, tree) = self.graph_and_source_tree_mut(origin);
                res = repair_tree(g, tree.expect("origin collected above"), child);
                if res.is_err() {
                    break;
                }
            }
        }
        if let Err(e) = res {
            // Roll back: the link comes back up and every tree keeps
            // its pre-failure shape.
            if let Some(saved) = saved_shared {
                *self.graph_and_tree_mut().1 = saved;
            }
            for (origin, saved) in saved_sources {
                if let (_, Some(slot)) = self.graph_and_source_tree_mut(origin) {
                    *slot = saved;
                }
            }
            let _ = self.graph_mut().heal_link(a, b);
            return Err(e);
        }
        self.rebuild_routes();
        Ok(())
    }

    /// Bring a previously failed link back up. The dissemination trees
    /// keep their repaired shape — the healed link simply becomes
    /// available again to `optimize_tree` and future repairs.
    pub fn heal_tree_link(&mut self, a: NodeId, b: NodeId) -> Result<()> {
        self.graph_mut().heal_link(a, b)
    }
}

#[cfg(test)]
mod tests {
    use crate::system::{Cosmos, CosmosConfig};
    use cosmos_overlay::{Graph, OptimizerConfig, TreeOptimizer};
    use cosmos_query::{AttrStats, StreamStats};
    use cosmos_types::{AttrType, NodeId, Schema, Timestamp, Tuple, Value};

    /// A ring-capable overlay: line 0-1-2-3 plus a spare edge 0-3 that
    /// the repair can fall back on.
    fn ring_system() -> Cosmos {
        ring_system_with(CosmosConfig::default())
    }

    fn ring_system_with(cfg: CosmosConfig) -> Cosmos {
        let mut g = Graph::new(4);
        g.set_position(NodeId(0), 0.0, 0.0);
        g.set_position(NodeId(1), 0.3, 0.0);
        g.set_position(NodeId(2), 0.6, 0.0);
        g.set_position(NodeId(3), 0.9, 0.0);
        for i in 0..3u32 {
            g.add_edge_by_distance(NodeId(i), NodeId(i + 1)).unwrap();
        }
        g.add_edge(NodeId(0), NodeId(3), 5.0).unwrap(); // expensive spare
        let mut sys = Cosmos::with_graph(
            CosmosConfig {
                nodes: 4,
                processor_fraction: 0.25,
                ..cfg
            },
            g,
        )
        .unwrap();
        sys.register_stream(
            "S",
            Schema::of(&[("k", AttrType::Int), ("timestamp", AttrType::Int)]),
            StreamStats::with_rate(1.0).attr("k", AttrStats::categorical(10.0)),
            NodeId(0),
        )
        .unwrap();
        sys
    }

    fn tup(ts: i64, k: i64) -> Tuple {
        Tuple::new("S", Timestamp(ts), vec![Value::Int(k), Value::Int(ts)])
    }

    #[test]
    fn delivery_resumes_after_link_failure() {
        let mut sys = ring_system();
        let q = sys
            .submit_query("SELECT k FROM S [Now]", NodeId(3))
            .unwrap();
        sys.run((0..5).map(|i| tup(i * 1000, i))).unwrap();
        assert_eq!(sys.results(q).len(), 5);
        // Fail the tree link feeding node 3's path (2-3).
        sys.fail_tree_link(NodeId(2), NodeId(3)).unwrap();
        // Node 3 must have been re-attached outside the old parent.
        assert_ne!(sys.tree().parent(NodeId(3)), Some(NodeId(2)));
        // New data still arrives.
        sys.run((5..10).map(|i| tup(i * 1000, i))).unwrap();
        assert_eq!(sys.results(q).len(), 10);
    }

    #[test]
    fn repairing_a_trunk_link_reroutes_a_whole_subtree() {
        let mut sys = ring_system();
        let q2 = sys
            .submit_query("SELECT k FROM S [Now]", NodeId(2))
            .unwrap();
        let q3 = sys
            .submit_query("SELECT k FROM S [Now]", NodeId(3))
            .unwrap();
        sys.fail_tree_link(NodeId(1), NodeId(2)).unwrap();
        sys.run((0..4).map(|i| tup(i * 1000, i))).unwrap();
        assert_eq!(sys.results(q2).len(), 4);
        assert_eq!(sys.results(q3).len(), 4);
    }

    #[test]
    fn non_tree_links_cannot_fail() {
        let mut sys = ring_system();
        // 0-3 is a graph edge but not a tree edge (MST avoids weight 5).
        assert!(sys.fail_tree_link(NodeId(0), NodeId(3)).is_err());
        // arbitrary non-adjacent pair
        assert!(sys.fail_tree_link(NodeId(0), NodeId(2)).is_err());
    }

    #[test]
    fn rebuild_routes_is_idempotent() {
        let mut sys = ring_system();
        let q = sys
            .submit_query("SELECT k FROM S [Now]", NodeId(2))
            .unwrap();
        sys.rebuild_routes();
        sys.rebuild_routes();
        sys.run((0..3).map(|i| tup(i * 1000, i))).unwrap();
        assert_eq!(sys.results(q).len(), 3);
    }

    /// Satellite-1 regression: a failed link is marked down in the
    /// overlay graph, so a later tree re-optimization can never
    /// re-adopt it — and delivery still works after the re-optimization.
    #[test]
    fn downed_edge_is_never_readopted_by_reoptimization() {
        let mut sys = ring_system();
        let q = sys
            .submit_query("SELECT k FROM S [Now]", NodeId(3))
            .unwrap();
        sys.fail_tree_link(NodeId(2), NodeId(3)).unwrap();
        assert!(sys.graph().is_link_down(NodeId(2), NodeId(3)));
        assert!(!sys.graph().has_edge(NodeId(2), NodeId(3)));
        // Hill-climb the repaired tree; the downed edge must stay out.
        let report = sys.optimize_tree(OptimizerConfig::default());
        assert!(report.cost_after.is_finite());
        for (p, c) in sys.tree().edges() {
            assert!(
                !sys.graph().is_link_down(p, c),
                "re-optimization re-adopted downed link {p}-{c}"
            );
        }
        sys.run((0..5).map(|i| tup(i * 1000, i))).unwrap();
        assert_eq!(sys.results(q).len(), 5);
        // Healing makes the link available again (tree shape unchanged).
        sys.heal_tree_link(NodeId(2), NodeId(3)).unwrap();
        assert!(sys.graph().has_edge(NodeId(2), NodeId(3)));
        assert!(sys.heal_tree_link(NodeId(2), NodeId(3)).is_err());
    }

    /// Satellite-2 regression: in per-source-tree mode a link failure
    /// degrades gracefully — every per-source tree using the link is
    /// repaired, and both sources keep delivering.
    #[test]
    fn per_source_trees_survive_link_failure() {
        let mut sys = ring_system_with(CosmosConfig {
            per_source_trees: true,
            ..CosmosConfig::default()
        });
        // Second source at the far end: its shortest-path tree uses the
        // failed trunk in the opposite direction.
        sys.register_stream(
            "T",
            Schema::of(&[("k", AttrType::Int), ("timestamp", AttrType::Int)]),
            StreamStats::with_rate(1.0).attr("k", AttrStats::categorical(10.0)),
            NodeId(3),
        )
        .unwrap();
        let qs = sys
            .submit_query("SELECT k FROM S [Now]", NodeId(3))
            .unwrap();
        let qt = sys
            .submit_query("SELECT k FROM T [Now]", NodeId(1))
            .unwrap();
        let t_tup =
            |ts: i64, k: i64| Tuple::new("T", Timestamp(ts), vec![Value::Int(k), Value::Int(ts)]);
        sys.run((0..3).map(|i| tup(i * 1000, i))).unwrap();
        sys.run((0..3).map(|i| t_tup(i * 1000, i))).unwrap();
        assert_eq!(sys.results(qs).len(), 3);
        assert_eq!(sys.results(qt).len(), 3);
        // 1-2 is a trunk edge of both per-source trees.
        sys.fail_tree_link(NodeId(1), NodeId(2)).unwrap();
        for origin in [NodeId(0), NodeId(3)] {
            for (p, c) in sys.tree_for(origin).edges() {
                assert!(
                    !sys.graph().is_link_down(p, c),
                    "tree for {origin} still uses downed link {p}-{c}"
                );
            }
        }
        sys.run((3..8).map(|i| tup(i * 1000, i))).unwrap();
        sys.run((3..8).map(|i| t_tup(i * 1000, i))).unwrap();
        assert_eq!(sys.results(qs).len(), 8);
        assert_eq!(sys.results(qt).len(), 8);
    }

    /// Satellite-3 regression: after repairs put a *weighted* overlay
    /// edge (weight 5.0, distance 0.9) on the delivery path, the
    /// runtime's measured `weighted_cost` and the optimizer's estimated
    /// cost price it identically — both read `Graph::link_delay`.
    #[test]
    fn measured_and_estimated_cost_agree_on_healed_trees() {
        let mut sys = ring_system();
        let q = sys
            .submit_query("SELECT k FROM S [Now]", NodeId(3))
            .unwrap();
        // First failure re-attaches 3 under 1 over a logical link;
        // failing that too leaves only the weight-5.0 spare edge 0-3.
        sys.fail_tree_link(NodeId(2), NodeId(3)).unwrap();
        assert_eq!(sys.tree().parent(NodeId(3)), Some(NodeId(1)));
        sys.fail_tree_link(NodeId(1), NodeId(3)).unwrap();
        assert_eq!(sys.tree().parent(NodeId(3)), Some(NodeId(0)));
        let before = sys.weighted_cost();
        sys.run((0..5).map(|i| tup(i * 1000, i))).unwrap();
        assert_eq!(sys.results(q).len(), 5);
        let measured = sys.weighted_cost() - before;
        // All delivery traffic crossed the single hop 0-3.
        let bytes = sys.link_bytes(NodeId(0), NodeId(3)) as f64;
        assert!(bytes > 0.0);
        let mut demand = vec![0.0; 4];
        demand[3] = bytes;
        let estimated = TreeOptimizer::new(OptimizerConfig {
            w_delay: 1.0,
            w_load: 0.0,
            ..OptimizerConfig::default()
        })
        .cost(sys.graph(), sys.tree(), &demand);
        // Both must price the hop at the edge's weight (5.0), not its
        // endpoint distance (0.9).
        assert!((measured - bytes * 5.0).abs() < 1e-9);
        assert!(
            (measured - estimated).abs() < 1e-9,
            "measured {measured} != estimated {estimated}"
        );
    }
}
