//! Metamorphic property for the overload controller (ISSUE 10
//! acceptance): armed with a budget above every node's actual peak
//! intake, the controller must be a *pure witness* — byte-identical
//! digests and metrics documents to an unarmed run, zero shed, exact
//! ledger conservation — across 64 generated seeds. And the
//! conservation oracle must have teeth: with a budget tight enough to
//! actually shed, silently dropping the shed-side ledger accounting
//! (`cosmos::overload::faultinject`) must be caught at the first
//! event boundary it perturbs, attributed to the shed ledger.

use cosmos_testkit::{gen, run_scenario, RunOptions};

#[test]
fn above_peak_budget_is_a_pure_witness_across_seeds() {
    for seed in 0..64u64 {
        let scenario = gen::generate(seed);
        let opts = RunOptions {
            static_verify: false,
            bound_checks: false,
            ..RunOptions::default()
        };
        let plain = run_scenario(&scenario, &opts).expect("unarmed run");
        let budgeted = run_scenario(
            &scenario,
            &RunOptions {
                overload_budget: Some(u64::MAX / 4),
                ..opts
            },
        )
        .expect("budgeted run");
        assert_eq!(
            budgeted.overload_shed_tuples, 0,
            "seed {seed}: an above-peak budget must never shed"
        );
        assert_eq!(
            plain.digest, budgeted.digest,
            "seed {seed}: arming the controller changed observable behavior"
        );
        assert_eq!(
            plain.metrics_json, budgeted.metrics_json,
            "seed {seed}: arming the controller perturbed the metrics document"
        );
        assert_eq!(
            plain.routing_digests, budgeted.routing_digests,
            "seed {seed}: arming the controller perturbed routing state"
        );
        assert!(
            budgeted.metrics_violations.is_empty(),
            "seed {seed}: ledger conservation broken: {:?}",
            budgeted.metrics_violations
        );
    }
}

#[test]
fn injected_shed_leak_is_caught_by_the_conservation_oracle() {
    // A 64-byte window budget sheds on any realistic delivery volume;
    // find the first seed that actually sheds (deterministically) so
    // the canary is guaranteed to exercise the broken path.
    let tight = RunOptions {
        static_verify: false,
        bound_checks: false,
        overload_budget: Some(64),
        ..RunOptions::default()
    };
    let (seed, honest) = (0..16u64)
        .find_map(|seed| {
            let r = run_scenario(&gen::generate(seed), &tight).expect("tight run");
            (r.overload_shed_tuples > 0).then_some((seed, r))
        })
        .expect("some seed in 0..16 must shed under a 64-byte budget");
    // Honest accounting: shedding is fine, the ledger stays balanced.
    assert!(
        honest.metrics_violations.is_empty(),
        "seed {seed}: honest shed broke conservation: {:?}",
        honest.metrics_violations
    );
    // Leaky accounting: the same run with the shed ledger silently
    // dropped must break the identity, attributed to the shed ledger.
    let leaky = run_scenario(
        &gen::generate(seed),
        &RunOptions {
            inject_shed_leak: true,
            ..tight
        },
    )
    .expect("leaky run");
    assert!(
        !leaky.metrics_violations.is_empty(),
        "seed {seed}: the injected shed leak went unnoticed"
    );
    assert!(
        leaky
            .metrics_violations
            .iter()
            .any(|(_, d)| d.contains("shed-ledger")),
        "seed {seed}: leak not attributed to the shed ledger: {:?}",
        leaky.metrics_violations
    );
}
