//! Harness self-tests: determinism, oracle sensitivity, shrinking, and
//! replay-file round-tripping.
//!
//! The merge-layer fault-injection flag
//! ([`cosmos_query::merge::faultinject`]) is process-global, and cargo
//! runs the `#[test]`s of one binary on parallel threads — so every test
//! here that executes scenarios takes `LOCK`, and the tests that inject
//! the bug arm it through a guard that disarms on drop (panic included).

use cosmos_query::merge::faultinject;
use cosmos_testkit::{
    check_scenario, check_scenario_opts, gen, run_scenario, shrink, CheckOptions, Event,
    RunOptions, Scenario,
};
use std::sync::{Mutex, PoisonError};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms the deliberate merge bug for one scope; disarms on drop.
struct InjectedBug;

impl InjectedBug {
    fn arm() -> Self {
        faultinject::set_skip_retighten(true);
        InjectedBug
    }
}

impl Drop for InjectedBug {
    fn drop(&mut self) {
        faultinject::set_skip_retighten(false);
    }
}

/// Seed expansion is a pure function of the seed, and executing the same
/// scenario twice produces identical digests — the contract that makes
/// `cosmos-sim run --seed S` replayable bit-for-bit.
#[test]
fn seed_expansion_and_execution_are_deterministic() {
    let _g = lock();
    let a = gen::generate(7);
    let b = gen::generate(7);
    assert_eq!(a, b, "seed expansion must be a pure function of the seed");

    let r1 = run_scenario(&a, &RunOptions::default()).expect("run");
    let r2 = run_scenario(&b, &RunOptions::default()).expect("run");
    assert_eq!(r1.digest, r2.digest, "same scenario, same digest");
    assert_eq!(r1.routing_digests, r2.routing_digests);
    assert_eq!(r1.published.len(), r2.published.len());
}

/// Acceptance check from the issue: a deliberately broken merge layer —
/// selection re-tightening skipped, so members of merged groups
/// over-deliver — is caught by the *metamorphic* oracle alone (the
/// differential oracle is disabled here), within a 64-seed sweep. Seeds
/// 1 and 6 are the first two such catches.
#[test]
fn injected_merge_bug_is_caught_by_metamorphic_oracle() {
    let _g = lock();
    let _bug = InjectedBug::arm();
    let opts = CheckOptions {
        differential: false,
        metamorphic_merge: true,
        metamorphic_tree: false,
        metamorphic_batch: false,
        determinism: false,
        static_verify: false,
        metrics_conservation: false,
        bound_soundness: false,
        parallelism: 1,
        metamorphic_parallel: false,
        overload_budget: None,
        inject_shed_leak: false,
    };
    for seed in [1u64, 6] {
        let scenario = gen::generate(seed);
        let failure = check_scenario_opts(&scenario, &opts)
            .expect_err("the broken merge layer must over-deliver");
        assert_eq!(
            failure.oracle, "metamorphic-merge",
            "seed {seed}: wrong oracle fired: {failure}"
        );
    }
}

/// Acceptance check from the issue: the *static* verifier catches the
/// same injected merge bug symbolically — as a V0501 split-filter
/// violation — with every publish event stripped from the scenario, so
/// not a single tuple flows. The dynamic oracles above need deliveries
/// to diverge; `cosmos-verify` proves the over-delivery from the routing
/// state alone.
#[test]
fn injected_merge_bug_is_caught_statically_before_any_publish() {
    let _g = lock();
    let _bug = InjectedBug::arm();
    let opts = CheckOptions {
        differential: false,
        metamorphic_merge: false,
        metamorphic_tree: false,
        metamorphic_batch: false,
        determinism: false,
        static_verify: true,
        metrics_conservation: false,
        bound_soundness: false,
        parallelism: 1,
        metamorphic_parallel: false,
        overload_budget: None,
        inject_shed_leak: false,
    };
    for seed in [1u64, 6] {
        let mut scenario = gen::generate(seed);
        scenario
            .events
            .retain(|e| !matches!(e, Event::Publish { .. }));
        let failure = check_scenario_opts(&scenario, &opts)
            .expect_err("the static verifier must reject the unre-tightened split filter");
        assert!(
            failure.oracle.starts_with("static-verify"),
            "seed {seed}: wrong oracle fired: {failure}"
        );
        assert!(
            failure.detail.contains("V0501"),
            "seed {seed}: expected a V0501 split-filter violation: {failure}"
        );
    }
}

/// The same seeds pass every oracle on a healthy build — the failures
/// above are the bug's doing, not the harness's.
#[test]
fn bug_seeds_pass_on_healthy_build() {
    let _g = lock();
    assert!(!faultinject::skip_retighten());
    for seed in [1u64, 6] {
        check_scenario(&gen::generate(seed)).unwrap_or_else(|f| panic!("seed {seed}: {f}"));
    }
}

/// The shrinker returns a strictly smaller scenario that still fails,
/// exercising the skip-tolerance of every event kind.
#[test]
fn shrinker_minimizes_failing_scenarios() {
    let _g = lock();
    let _bug = InjectedBug::arm();
    let scenario = gen::generate(1);
    assert!(check_scenario(&scenario).is_err(), "seed 1 must fail armed");
    let small = shrink(&scenario, 120);
    assert!(
        small.events.len() < scenario.events.len(),
        "no events dropped ({} of {})",
        small.events.len(),
        scenario.events.len()
    );
    assert!(
        check_scenario(&small).is_err(),
        "shrunk scenario must still fail"
    );
}

/// Runtime-determinism probe — the dynamic twin of `cosmos-detlint`'s
/// D0201/D0301 lints: a full scenario run never pushes the metrics
/// hub's virtual clock past the largest published tuple timestamp, and
/// the clock never regresses. A wall-clock or ambient-randomness leak
/// into the metrics path would trip this at runtime even if the lint's
/// static heuristics (or an allowlist entry) missed the site.
#[test]
fn full_run_makes_zero_runtime_determinism_violations() {
    let _g = lock();
    for seed in [1u64, 3, 6, 7] {
        let run = run_scenario(&gen::generate(seed), &RunOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            run.runtime_violations.is_empty(),
            "seed {seed}: {:?}",
            run.runtime_violations
        );
        assert!(
            !run.published.is_empty(),
            "seed {seed}: no publishes — the probe never saw a clock advance"
        );
    }
}

/// Failure files replay: JSON round-trips losslessly and version
/// mismatches are rejected instead of silently misinterpreted.
#[test]
fn scenario_json_round_trips() {
    let scenario = gen::generate(3);
    let json = scenario.to_json();
    let back = Scenario::from_json(&json).expect("parse back");
    assert_eq!(scenario, back);

    let mut stale = scenario;
    stale.version += 1;
    assert!(
        Scenario::from_json(&stale.to_json()).is_err(),
        "future versions must be rejected"
    );
}
