//! Metamorphic property: batched publishing is observably identical to
//! per-tuple publishing (ISSUE 3 acceptance). `Cosmos::publish_batch`
//! routes a stream-homogeneous batch through the dissemination tree
//! together — one match lookup per (router, batch), cached projection
//! plans, shared projected tuples, whole-batch SPE intake — and none of
//! that may change a single delivered tuple, epoch stamp, or digest.

use cosmos_testkit::{gen, run_scenario, RunOptions};

/// Tuple-for-tuple equivalence across ≥64 seeded scenarios, in both
/// merged and baseline modes.
#[test]
fn batched_publish_is_delivery_identical_across_seeds() {
    for seed in 0..64u64 {
        let scenario = gen::generate(seed);
        for merging in [true, false] {
            let single = run_scenario(
                &scenario,
                &RunOptions {
                    merging,
                    ..RunOptions::default()
                },
            )
            .expect("per-tuple run");
            let batched = run_scenario(
                &scenario,
                &RunOptions {
                    merging,
                    batched: true,
                    ..RunOptions::default()
                },
            )
            .expect("batched run");

            assert_eq!(
                single.published.len(),
                batched.published.len(),
                "seed {seed} merging={merging}: accepted publish counts differ"
            );
            assert_eq!(
                single.skipped_publishes, batched.skipped_publishes,
                "seed {seed} merging={merging}: skipped publish counts differ"
            );
            assert_eq!(
                single.queries.len(),
                batched.queries.len(),
                "seed {seed} merging={merging}: accepted query counts differ"
            );
            for (q, b) in single.queries.iter().zip(&batched.queries) {
                assert_eq!(q.label, b.label);
                assert_eq!(
                    q.delivered, b.delivered,
                    "seed {seed} merging={merging}: query #{} delivery differs \
                     (tuple-for-tuple, including order)",
                    q.label
                );
                assert_eq!(
                    q.epochs, b.epochs,
                    "seed {seed} merging={merging}: query #{} epochs differ",
                    q.label
                );
            }
            assert_eq!(
                single.routing_digests, batched.routing_digests,
                "seed {seed} merging={merging}: routing state diverged"
            );
            assert_eq!(
                single.digest, batched.digest,
                "seed {seed} merging={merging}: run digests differ"
            );
        }
    }
}
