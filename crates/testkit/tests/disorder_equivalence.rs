//! Metamorphic property: disorder must converge (ISSUE 7 acceptance).
//! Running the same seed with disorder on vs off — same deployment,
//! same event schedule, same tuples per publish batch, only the arrival
//! order perturbed (skew, stragglers) and exact duplicates injected —
//! must converge to identical post-watermark results: the watermark
//! bound absorbs every displacement in the staging area and duplicates
//! are discarded on arrival, so once the end-of-schedule closure drains
//! everything, no delivered multiset may differ.
//!
//! Comparable queries are those whose delivery set is well-defined in
//! both runs: alive at closure (a mid-run withdrawal freezes the buffer
//! while tuples sit staged) and cold-started in a single epoch in both
//! runs (a warm join inherits whatever the group's staging area drains
//! after the join — tuples the in-order run handed out before the query
//! existed). Everything else is still covered per-epoch by the
//! convergence oracle inside each run.

use cosmos_testkit::{gen, normalize_delivered, run_scenario, RunOptions};

#[test]
fn disordered_runs_converge_to_in_order_results_across_seeds() {
    let mut compared = 0usize;
    for seed in 0..64u64 {
        let in_order = gen::generate(seed);
        let shuffled = gen::generate_disordered(seed);
        assert_eq!(
            in_order.events.len(),
            shuffled.events.len(),
            "seed {seed}: disorder must not change the schedule shape"
        );
        let opts = RunOptions {
            static_verify: false,
            bound_checks: false,
            ..RunOptions::default()
        };
        let ordered = run_scenario(&in_order, &opts).expect("in-order run");
        let disordered = run_scenario(&shuffled, &opts).expect("disordered run");

        // Submission acceptance is a static property — disorder may not
        // change which queries the system admits.
        let labels = |r: &[(u32, String)]| {
            let mut v: Vec<u32> = r.iter().map(|(l, _)| *l).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(
            labels(&ordered.rejected),
            labels(&disordered.rejected),
            "seed {seed}: rejected query sets differ under disorder"
        );

        // Closure must leave the disorder ledger balanced and empty.
        let totals = disordered
            .disorder_totals
            .expect("disordered run records totals");
        assert!(
            totals.conserved(),
            "seed {seed}: disorder conservation broken: {totals:?}"
        );
        assert_eq!(
            totals.staged, 0,
            "seed {seed}: tuples still staged after closure: {totals:?}"
        );
        assert!(
            ordered.disorder_totals.is_none(),
            "seed {seed}: in-order run must not engage the disorder machinery"
        );

        let late_activity = totals.late + totals.revisions + totals.shed > 0;
        for q in &ordered.queries {
            let Some(d) = disordered.queries.iter().find(|d| d.label == q.label) else {
                panic!("seed {seed}: query #{} vanished under disorder", q.label);
            };
            let cold_single = |r: &cosmos_testkit::QueryRun| {
                r.epochs.len() == 1 && r.epochs[0].member_start == r.epochs[0].exec_start
            };
            if late_activity
                || q.input_end.is_some()
                || d.input_end.is_some()
                || !cold_single(q)
                || !cold_single(d)
            {
                continue;
            }
            compared += 1;
            assert_eq!(
                normalize_delivered(&q.delivered),
                normalize_delivered(&d.delivered),
                "seed {seed}: query #{} ('{}') did not converge to the in-order results",
                q.label,
                q.text
            );
        }
    }
    // The restriction above must not hollow the property out.
    assert!(
        compared >= 100,
        "only {compared} queries were comparable across 64 seeds"
    );
}
