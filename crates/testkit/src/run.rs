//! Scenario execution against a real `Cosmos` deployment.
//!
//! The runner drives the event schedule and keeps, per query, the
//! bookkeeping the oracles need:
//!
//! - `published` — every tuple the system accepted, in order. The
//!   discrete-event `publish` drives each tuple to completion, so this
//!   sequence *is* the global input history.
//! - epochs — COSMOS restarts a representative executor with empty
//!   windows whenever its group changes shape (a widening member, an
//!   [`cosmos::Cosmos::unsubscribe`] shrink, a
//!   [`cosmos::Cosmos::reoptimize_groups`] rebuild). Delivered results
//!   are only comparable against a reference evaluation that starts at
//!   the same point, so the runner snapshots every query's
//!   [`cosmos::Cosmos::executor_generation`] after each event and opens
//!   a new [`Epoch`] whenever it moves. A query that joins a warm group
//!   without widening it inherits a running executor — its epoch's
//!   `exec_start` (where the executor's history began) then predates its
//!   `member_start` (where the query subscribed), and the oracle skips
//!   the reference outputs produced in between.

use crate::scenario::{Event, Scenario};
use cosmos::{Cosmos, CosmosConfig, DisorderRuntime, DisorderStats, LatePolicy};
use cosmos_cbn::RegistryMode;
use cosmos_spe::AnalyzedQuery;
use cosmos_types::{NodeId, QueryId, Result, StreamName, Tuple};
use cosmos_workload::sensor_catalog;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Per-run toggles the metamorphic oracles vary.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Query merging (Section 4) on or off.
    pub merging: bool,
    /// Inject a tree re-optimization after every event (results must be
    /// invariant — routing is semantically transparent).
    pub optimize_every_event: bool,
    /// Publish via [`cosmos::Cosmos::publish_batch`], batching each
    /// publish event's maximal consecutive same-stream runs (results
    /// must be invariant — batching is semantically transparent).
    pub batched: bool,
    /// Run the static verifier ([`cosmos_verify::verify_snapshot`]) on a
    /// fresh [`cosmos::NetworkSnapshot`] after every routing-relevant
    /// event (everything but plain publishes — those leave routing state
    /// untouched, unless `optimize_every_event` re-optimizes after them
    /// too). Violations are collected in
    /// [`RunOutcome::static_violations`]; they prove a broken invariant
    /// *before* any tuple exercises it.
    pub static_verify: bool,
    /// Run the bound-soundness oracle ([`crate::bound::BoundTracker`])
    /// after every event: measured delivered counts, per-node consumed
    /// bytes, and executor state sizes must all be dominated by the
    /// static `cosmos-bound` bounds instantiated with the observed
    /// trace envelope. Violations are collected in
    /// [`RunOutcome::bound_violations`].
    pub bound_checks: bool,
    /// Routing workers ([`cosmos::Cosmos::set_parallelism`]); 1 runs
    /// the serial driver. Every outcome — digests included — must be
    /// identical at any value (the shard-per-core driver is observably
    /// deterministic), which the metamorphic-parallel oracle enforces.
    pub parallelism: usize,
    /// Arm the overload controller with this uniform per-node byte
    /// budget per rate window ([`cosmos::Cosmos::set_overload`], Shed
    /// policy). The runner then checks the conservation identity
    /// `offered = delivered + shed + staged` (tuples *and* bytes) for
    /// every query's ledger after every event, and that nothing stays
    /// staged after closure. `None` leaves the controller unarmed.
    pub overload_budget: Option<u64>,
    /// Fault-injection canary: silently drop the shed-side ledger
    /// accounting ([`cosmos::overload::faultinject`]) so that any
    /// actual shed breaks the conservation identity — the oracle must
    /// attribute the failure to the shed ledger. Only meaningful with a
    /// budget tight enough to shed.
    pub inject_shed_leak: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            merging: true,
            optimize_every_event: false,
            batched: false,
            static_verify: true,
            bound_checks: true,
            parallelism: 1,
            overload_budget: None,
            inject_shed_leak: false,
        }
    }
}

/// One window-state lifetime of the executor serving a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// Executor generation stamp.
    pub generation: u64,
    /// Index into `published` where this executor's input history began.
    pub exec_start: usize,
    /// Index into `published` where this query started receiving from
    /// the executor (`== exec_start` except for warm group joins).
    pub member_start: usize,
    /// Length of the query's delivery buffer when the epoch opened.
    pub delivered_start: usize,
    /// System-wide `late + revisions + shed` disorder counter when the
    /// epoch opened (always 0 in order). The convergence oracle compares
    /// an epoch exactly only when this counter did not move across it:
    /// staging-absorbed disorder converges bit-for-bit, while the rare
    /// revise/shed paths are covered by the `crates/spe` directed tests
    /// and the conservation counters instead.
    pub late_start: u64,
}

/// One accepted query's bookkeeping across a run.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// Scenario-stable label.
    pub label: u32,
    /// CQL text.
    pub text: String,
    /// The id this run assigned.
    pub qid: QueryId,
    /// Analyzed form (for reference evaluation).
    pub analyzed: AnalyzedQuery,
    /// Executor epochs, in order.
    pub epochs: Vec<Epoch>,
    /// Tuples delivered to the user, in delivery order.
    pub delivered: Vec<Tuple>,
    /// `published` length at withdrawal (`None` while live at the end).
    pub input_end: Option<usize>,
}

/// Everything one run produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// Accepted queries in submission order.
    pub queries: Vec<QueryRun>,
    /// `(label, error)` of rejected submissions.
    pub rejected: Vec<(u32, String)>,
    /// Accepted source tuples, in publish order.
    pub published: Vec<Tuple>,
    /// Tuples bounced for lack of an advertised stream.
    pub skipped_publishes: usize,
    /// Events skipped because their precondition no longer held.
    pub skipped_events: usize,
    /// [`Cosmos::routing_digest`] after every event.
    pub routing_digests: Vec<u64>,
    /// Static verifier violations, as `(event index, headline)` — empty
    /// on a healthy run (or when [`RunOptions::static_verify`] is off).
    /// Deliberately excluded from `digest`: the digest compares what the
    /// system *did*, the verifier what it *would do*.
    pub static_violations: Vec<(usize, String)>,
    /// JSON of the first snapshot the verifier rejected.
    pub first_violation_snapshot: Option<String>,
    /// JSON of the network snapshot after the last event.
    pub final_snapshot: Option<String>,
    /// Metrics-conservation violations, as `(event index, detail)` —
    /// the metrics layer's lifetime counters must agree exactly with
    /// the driver's own accounting after every event. Excluded from
    /// `digest` (like `static_violations`).
    pub metrics_violations: Vec<(usize, String)>,
    /// JSON of the final [`cosmos::MetricsSnapshot`]. Compared for
    /// byte equality across the determinism replay (same mode only:
    /// router plan-cache counters legitimately differ between
    /// per-tuple and batched publishing).
    pub metrics_json: Option<String>,
    /// Bound-soundness violations, as `(event index, detail)` — a
    /// measured metric exceeded its static `cosmos-bound` bound under
    /// the observed trace envelope. Empty on a healthy run (or when
    /// [`RunOptions::bound_checks`] is off). Excluded from `digest`
    /// (like `static_violations`).
    pub bound_violations: Vec<(usize, String)>,
    /// Runtime-determinism violations, as `(event index, detail)` —
    /// the dynamic twin of `cosmos-detlint`'s D0201/D0301: the metrics
    /// hub's virtual clock must be driven only by tuple timestamps, so
    /// it may never run ahead of the largest published timestamp nor go
    /// backward. A wall-clock or ambient-randomness leak into the
    /// metrics path shows up here at the first event it perturbs.
    /// Excluded from `digest` (like `static_violations`).
    pub runtime_violations: Vec<(usize, String)>,
    /// The final measured-vs-bound comparison, entry per subject —
    /// the `cosmos-sim bounds` report.
    pub bound_report: Vec<crate::bound::BoundReportEntry>,
    /// Digest over delivered results, epochs, and routing state — equal
    /// across runs iff the runs were observably identical.
    pub digest: u64,
    /// Final disorder conservation counters (`None` for in-order runs).
    /// `arrived == drained + staged + shed + duplicates` must hold, and
    /// `staged` must be 0 after stream closure.
    pub disorder_totals: Option<DisorderStats>,
    /// Total tuples the overload controller shed across all queries
    /// (always 0 when [`RunOptions::overload_budget`] is `None`). The
    /// semantic oracles back off when this is nonzero: a shed delivery
    /// buffer is legitimately a sub-multiset of the reference output,
    /// and the conservation ledger is the dedicated check for it.
    pub overload_shed_tuples: u64,
}

/// The system-wide `late + revisions + shed` counter — the part of the
/// disorder machinery the convergence oracle cannot replay exactly.
fn lateish(sys: &Cosmos) -> u64 {
    let t = sys.disorder_totals();
    t.late + t.revisions + t.shed
}

/// RAII reset for the shed-leak fault injection: the flag is process
/// global, so it must never outlive the run that armed it (an early
/// `?` return included).
struct ShedLeakGuard(bool);

impl Drop for ShedLeakGuard {
    fn drop(&mut self) {
        if self.0 {
            cosmos::overload::faultinject::set_drop_shed_ledger(false);
        }
    }
}

/// Check every overload ledger's conservation identity, attributing a
/// broken balance explicitly to the shed ledger (it is the only
/// counter a policy increments outside the delivery path).
fn overload_conservation(
    sys: &Cosmos,
    queries: &[QueryRun],
    ev_idx: usize,
    out: &mut Vec<(usize, String)>,
) {
    let Some(ctl) = sys.overload() else { return };
    for q in queries {
        let l = ctl.ledger(q.qid);
        if !l.conserved() {
            out.push((
                ev_idx,
                format!(
                    "overload shed-ledger conservation broken for query #{}: offered \
                     {}t/{}b != delivered {}t/{}b + shed {}t/{}b + staged {}t/{}b",
                    q.label,
                    l.offered_tuples,
                    l.offered_bytes,
                    l.delivered_tuples,
                    l.delivered_bytes,
                    l.shed_tuples,
                    l.shed_bytes,
                    l.staged_tuples,
                    l.staged_bytes,
                ),
            ));
        }
    }
}

/// Execute a scenario once.
pub fn run_scenario(scenario: &Scenario, opts: &RunOptions) -> Result<RunOutcome> {
    let sc = &scenario.config;
    let nodes = sc.nodes as u32;
    let mut sys = Cosmos::new(CosmosConfig {
        nodes: sc.nodes,
        topology: sc.topology.kind(),
        processor_fraction: sc.processor_fraction,
        registry_mode: if sc.dht_replicas == 0 {
            RegistryMode::Flooding
        } else {
            RegistryMode::Dht {
                replicas: sc.dht_replicas,
            }
        },
        seed: sc.cosmos_seed,
        affinity_candidates: sc.affinity_candidates,
        merging_enabled: opts.merging,
        per_source_trees: sc.per_source_trees,
    })?;
    // Disordered scenario: arm the watermark machinery. The injected
    // displacement of any non-duplicate tuple is strictly under
    // `spec.bound()`, so a watermark lag of `bound` with a matching
    // revision grace makes the late path unreachable except for
    // memory-evicted duplicates — disorder is absorbed by staging.
    if let Some(spec) = &sc.disorder {
        let bound = spec.bound();
        sys.set_disorder(Some(DisorderRuntime {
            bound,
            policy: LatePolicy::Revise { grace: bound },
        }));
    }
    if opts.parallelism > 1 {
        sys.set_parallelism(opts.parallelism);
    }
    if let Some(budget) = opts.overload_budget {
        sys.set_overload(Some(cosmos::OverloadConfig::uniform_bytes(budget)));
    }
    let _leak_guard = ShedLeakGuard(opts.inject_shed_leak);
    if opts.inject_shed_leak {
        cosmos::overload::faultinject::set_drop_shed_ledger(true);
    }
    let sensors = sensor_catalog();

    let mut queries: Vec<QueryRun> = Vec::new();
    let mut by_label: HashMap<u32, usize> = HashMap::new();
    let mut rejected: Vec<(u32, String)> = Vec::new();
    let mut published: Vec<Tuple> = Vec::new();
    let mut skipped_publishes = 0usize;
    let mut skipped_events = 0usize;
    // Generation → `published` length when first observed. Executors are
    // only created while handling an event and every live member
    // observes its generation at the end of that same event, so the
    // first observation is the creation point.
    let mut gen_created_at: HashMap<u64, usize> = HashMap::new();
    let mut routing_digests: Vec<u64> = Vec::new();
    let mut static_violations: Vec<(usize, String)> = Vec::new();
    let mut first_violation_snapshot: Option<String> = None;
    let mut metrics_violations: Vec<(usize, String)> = Vec::new();
    let mut bound_violations: Vec<(usize, String)> = Vec::new();
    let mut runtime_violations: Vec<(usize, String)> = Vec::new();
    // Runtime-determinism probe state: the largest timestamp among
    // accepted publishes (the only legitimate clock source) and the
    // hub's reading at the previous event boundary.
    let mut max_published_ms: i64 = 0;
    let mut last_now_ms: i64 = 0;
    let mut tracker = opts
        .bound_checks
        .then(|| crate::bound::BoundTracker::new(nodes));
    if let (Some(tr), Some(spec)) = (tracker.as_mut(), sc.disorder.as_ref()) {
        tr.set_disorder_bound(Some(spec.bound()));
    }

    for (ev_idx, ev) in scenario.events.iter().enumerate() {
        match ev {
            Event::Register { stream, origin } => {
                let key = StreamName::from(stream.as_str());
                match (sensors.schema(&key), sensors.stats(&key)) {
                    (Some(schema), Some(stats)) => {
                        if sys
                            .register_stream(
                                stream.as_str(),
                                schema.clone(),
                                stats.clone(),
                                NodeId(*origin % nodes),
                            )
                            .is_err()
                        {
                            skipped_events += 1;
                        }
                    }
                    _ => skipped_events += 1,
                }
            }
            Event::Submit { label, user, text } => {
                match sys.submit_query(text, NodeId(*user % nodes)) {
                    Ok(qid) => {
                        if let Some(tr) = tracker.as_mut() {
                            tr.on_submit(qid, NodeId(*user % nodes));
                        }
                        let analyzed = AnalyzedQuery::analyze(
                            &cosmos_cql::parse_query(text)?,
                            sys.catalog().schema_fn(),
                        )?;
                        by_label.insert(*label, queries.len());
                        queries.push(QueryRun {
                            label: *label,
                            text: text.clone(),
                            qid,
                            analyzed,
                            epochs: Vec::new(),
                            delivered: Vec::new(),
                            input_end: None,
                        });
                    }
                    Err(e) => rejected.push((*label, e.to_string())),
                }
            }
            Event::Publish { tuples } => {
                if opts.batched {
                    // Scenario publish batches interleave streams; cut
                    // them into the maximal same-stream runs that
                    // `publish_batch` accepts. A run fails atomically —
                    // exactly the tuples per-tuple publishing would skip
                    // (advertisement cannot change inside one event).
                    let mut rest: &[Tuple] = tuples;
                    while let Some(first) = rest.first() {
                        let len = rest.iter().take_while(|t| t.stream == first.stream).count();
                        let (run, tail) = rest.split_at(len);
                        rest = tail;
                        match sys.publish_batch(run) {
                            Ok(()) => {
                                if let Some(tr) = tracker.as_mut() {
                                    run.iter().for_each(|t| tr.on_publish(t));
                                }
                                for t in run {
                                    max_published_ms = max_published_ms.max(t.timestamp.millis());
                                }
                                published.extend(run.iter().cloned());
                            }
                            Err(_) => skipped_publishes += run.len(),
                        }
                    }
                } else {
                    for t in tuples {
                        match sys.publish(t) {
                            Ok(()) => {
                                if let Some(tr) = tracker.as_mut() {
                                    tr.on_publish(t);
                                }
                                max_published_ms = max_published_ms.max(t.timestamp.millis());
                                published.push(t.clone());
                            }
                            Err(_) => skipped_publishes += 1,
                        }
                    }
                }
            }
            Event::Unsubscribe { label } => match by_label.get(label) {
                Some(&i)
                    if queries[i].input_end.is_none()
                        && sys.unsubscribe(queries[i].qid).is_ok() =>
                {
                    queries[i].input_end = Some(published.len());
                    queries[i].delivered = sys.results(queries[i].qid).to_vec();
                }
                _ => skipped_events += 1,
            },
            Event::Reoptimize => {
                if sys.reoptimize_groups().is_err() {
                    skipped_events += 1;
                }
            }
            Event::OptimizeTree => {
                sys.optimize_tree(cosmos_overlay::OptimizerConfig::default());
            }
            Event::FailLink { nth } => {
                let edges: Vec<(NodeId, NodeId)> = sys.tree().edges().collect();
                if edges.is_empty() {
                    skipped_events += 1;
                } else {
                    let (a, b) = edges[*nth as usize % edges.len()];
                    if sys.fail_tree_link(a, b).is_err() {
                        skipped_events += 1;
                    }
                }
            }
        }
        if opts.optimize_every_event {
            sys.optimize_tree(cosmos_overlay::OptimizerConfig::default());
        }
        // Epoch snapshot: cut a new epoch for every live query whose
        // executor generation moved during this event.
        for q in queries.iter_mut() {
            if q.input_end.is_some() {
                continue;
            }
            let Some(generation) = sys.executor_generation(q.qid) else {
                continue;
            };
            let exec_start = *gen_created_at.entry(generation).or_insert(published.len());
            if q.epochs.last().map(|e| e.generation) != Some(generation) {
                q.epochs.push(Epoch {
                    generation,
                    exec_start,
                    member_start: published.len(),
                    delivered_start: sys.results(q.qid).len(),
                    late_start: lateish(&sys),
                });
            }
        }
        routing_digests.push(sys.routing_digest());
        // Metrics conservation: the metrics layer's lifetime counters
        // must agree with the driver's accounting at every event
        // boundary — Σ per-link metric bytes against `total_bytes()`,
        // and per-query delivered counts against the delivery buffers
        // (withdrawn queries keep their buffers, so they stay covered).
        let hub = sys.metrics_hub();
        if hub.link_bytes_total() != sys.total_bytes() {
            metrics_violations.push((
                ev_idx,
                format!(
                    "link byte conservation broken: metrics {} vs accounted {}",
                    hub.link_bytes_total(),
                    sys.total_bytes()
                ),
            ));
        }
        for q in &queries {
            let want = sys.results(q.qid).len() as u64;
            let got = hub.delivered_count(q.qid);
            if got != want {
                metrics_violations.push((
                    ev_idx,
                    format!(
                        "delivery conservation broken for query #{}: metrics {got} vs delivered {want}",
                        q.label
                    ),
                ));
            }
        }
        // Overload accounting: every armed query's ledger must balance
        // (`offered = delivered + shed + staged`, byte-exact) at every
        // event boundary — a tuple dropped without a shed-ledger entry
        // surfaces here, attributed to the shed ledger.
        overload_conservation(&sys, &queries, ev_idx, &mut metrics_violations);
        // Runtime-determinism probe (the dynamic twin of detlint's
        // D0201/D0301): the hub is clocked by tuple timestamps alone.
        // Operator outputs are stamped with their completing arrival's
        // timestamp τ, so every legitimate advance is bounded by the
        // largest accepted publish; a wall clock leaking into the
        // metrics path would push virtual time past that ceiling, and
        // any regress would corrupt the rate windows.
        let now_ms = hub.now_ms();
        if now_ms > max_published_ms {
            runtime_violations.push((
                ev_idx,
                format!(
                    "virtual clock ran ahead of the data: hub at {now_ms} ms but the \
                     largest published tuple timestamp is {max_published_ms} ms"
                ),
            ));
        }
        if now_ms < last_now_ms {
            runtime_violations.push((
                ev_idx,
                format!("virtual clock went backward: {last_now_ms} ms -> {now_ms} ms"),
            ));
        }
        last_now_ms = now_ms;
        // Bound-soundness oracle: every measured metric must stay under
        // the static bound instantiated with the trace observed so far.
        // Bounds are monotone in the envelope and the measurements are
        // lifetime counters or current occupancies, so checking after
        // every event also catches transient state peaks.
        if let Some(tr) = tracker.as_mut() {
            tr.observe_processors(&sys, &queries);
            bound_violations.extend(tr.check(&sys, &queries).into_iter().map(|v| (ev_idx, v)));
        }
        // Static oracle: prove V1–V5 over the routing state this event
        // left behind. Plain publishes don't move routing state, so
        // re-verifying after them would only re-prove the same snapshot.
        let routing_changed = !matches!(ev, Event::Publish { .. }) || opts.optimize_every_event;
        if opts.static_verify && routing_changed {
            let snap = sys.snapshot()?;
            let diags = cosmos_verify::verify_snapshot(&snap);
            if cosmos_verify::has_violations(&diags) {
                if first_violation_snapshot.is_none() {
                    first_violation_snapshot = Some(snap.to_json()?);
                }
                static_violations.extend(
                    diags
                        .iter()
                        .filter(|d| d.severity == cosmos_verify::VerifySeverity::Error)
                        .map(|d| (ev_idx, d.headline())),
                );
            }
        }
    }

    // End of schedule: close every source stream. In disorder mode this
    // disseminates a final +∞ watermark per source, draining all staged
    // tuples, closing every window, and pruning the routers' interest in
    // the closed streams; in order it is a no-op, keeping in-order runs
    // bit-for-bit identical to the pre-disorder harness.
    sys.close_streams();
    let disorder_totals = sc.disorder.is_some().then(|| sys.disorder_totals());
    if let Some(totals) = &disorder_totals {
        let ev_idx = scenario.events.len();
        if !totals.conserved() {
            metrics_violations.push((
                ev_idx,
                format!("disorder tuple conservation broken after closure: {totals:?}"),
            ));
        }
        if totals.staged != 0 {
            metrics_violations.push((
                ev_idx,
                format!("{} tuples still staged after stream closure", totals.staged),
            ));
        }
        let hub = sys.metrics_hub();
        if hub.link_bytes_total() != sys.total_bytes() {
            metrics_violations.push((
                ev_idx,
                format!(
                    "link byte conservation broken after closure: metrics {} vs accounted {}",
                    hub.link_bytes_total(),
                    sys.total_bytes()
                ),
            ));
        }
        // Closure drains staged tuples and disseminates +∞ watermark
        // punctuations; punctuations carry no timestamp and drained
        // tuples were already published, so the virtual-clock ceiling
        // still holds here.
        if hub.now_ms() > max_published_ms {
            runtime_violations.push((
                ev_idx,
                format!(
                    "virtual clock ran ahead of the data after closure: hub at {} ms but \
                     the largest published tuple timestamp is {max_published_ms} ms",
                    hub.now_ms()
                ),
            ));
        }
        for q in &queries {
            let want = sys.results(q.qid).len() as u64;
            let got = hub.delivered_count(q.qid);
            if got != want {
                metrics_violations.push((
                    ev_idx,
                    format!(
                        "delivery conservation broken for query #{} after closure: \
                         metrics {got} vs delivered {want}",
                        q.label
                    ),
                ));
            }
        }
        if let Some(tr) = tracker.as_mut() {
            tr.observe_processors(&sys, &queries);
            bound_violations.extend(tr.check(&sys, &queries).into_iter().map(|v| (ev_idx, v)));
        }
        // The closed deployment must still verify: watermark-driven
        // pruning may not leave dangling interest in closed streams (V7)
        // nor break any V1–V6 invariant for the surviving result paths.
        if opts.static_verify {
            let snap = sys.snapshot()?;
            let diags = cosmos_verify::verify_snapshot(&snap);
            if cosmos_verify::has_violations(&diags) {
                if first_violation_snapshot.is_none() {
                    first_violation_snapshot = Some(snap.to_json()?);
                }
                static_violations.extend(
                    diags
                        .iter()
                        .filter(|d| d.severity == cosmos_verify::VerifySeverity::Error)
                        .map(|d| (ev_idx, d.headline())),
                );
            }
        }
    }

    // Overload post-closure: the ledgers must still balance, nothing
    // may remain staged (closure drains every pending coalesce batch),
    // and total shed is carried out so the semantic oracles know when
    // to back off.
    let mut overload_shed_tuples = 0u64;
    if let Some(ctl) = sys.overload() {
        let ev_idx = scenario.events.len();
        overload_conservation(&sys, &queries, ev_idx, &mut metrics_violations);
        for (qid, l) in ctl.ledgers() {
            overload_shed_tuples += l.shed_tuples;
            if l.staged_tuples != 0 {
                metrics_violations.push((
                    ev_idx,
                    format!(
                        "{} overload tuples still staged for {qid} after stream closure",
                        l.staged_tuples
                    ),
                ));
            }
        }
    }

    for q in queries.iter_mut() {
        if q.input_end.is_none() {
            q.delivered = sys.results(q.qid).to_vec();
        }
    }

    let mut h = std::collections::hash_map::DefaultHasher::new();
    for d in &routing_digests {
        d.hash(&mut h);
    }
    for q in &queries {
        q.label.hash(&mut h);
        format!("{:?}", q.delivered).hash(&mut h);
        for e in &q.epochs {
            (
                e.generation,
                e.exec_start,
                e.member_start,
                e.delivered_start,
            )
                .hash(&mut h);
        }
    }
    for (label, err) in &rejected {
        label.hash(&mut h);
        err.hash(&mut h);
    }
    (published.len(), skipped_publishes, skipped_events).hash(&mut h);
    let digest = h.finish();

    let final_snapshot = Some(sys.snapshot()?.to_json()?);
    let metrics_json = Some(sys.metrics().to_json()?);
    let bound_report = tracker
        .as_ref()
        .map(|tr| tr.assess(&sys, &queries))
        .unwrap_or_default();

    Ok(RunOutcome {
        queries,
        rejected,
        published,
        skipped_publishes,
        skipped_events,
        routing_digests,
        static_violations,
        first_violation_snapshot,
        final_snapshot,
        metrics_violations,
        metrics_json,
        bound_violations,
        runtime_violations,
        bound_report,
        digest,
        disorder_totals,
        overload_shed_tuples,
    })
}
