//! The bound-soundness oracle: measured runtime metrics must be
//! dominated by `cosmos-bound`'s static bounds.
//!
//! `cosmos-bound` (PR 6) claims its closed-form bounds are sound
//! against the executor's actual retention policy. This module re-checks
//! that claim on every scenario run by instantiating the formulas with
//! the **observed trace envelope** — every accepted publish is recorded
//! as an arrival, so `N`/`W`/`B` are exact properties of the input the
//! system actually saw — and comparing three measured families after
//! every event:
//!
//! * **delivered rows** — [`cosmos_metrics::MetricsHub::delivered_count`]
//!   per query against the query's `output_rows` bound;
//! * **per-node consumed bytes** —
//!   [`cosmos_metrics::MetricsHub::consumed_bytes_total`] against the
//!   sum of `output_bytes` over queries whose user lives on the node
//!   plus `intake_bytes` over queries whose representative the node has
//!   ever hosted (processor sets only grow: a moved executor's historic
//!   intake stays covered);
//! * **executor state** — every live representative's measured
//!   [`cosmos_spe::StateSize`] ([`cosmos::Cosmos::rep_states`]) against
//!   the per-component row bounds of the *representative's own* query.
//!
//! All three bounds are monotone in the envelope and the measurements
//! are lifetime counters or current occupancies, so an any-time check
//! after each event is valid — and strictly stronger than an end-of-run
//! check, because transient occupancy peaks are caught too.

use crate::run::QueryRun;
use cosmos::Cosmos;
use cosmos_bound::{query_bounds, Bound, Envelope, QueryBounds};
use cosmos_types::{NodeId, QueryId, TimeDelta, Tuple};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One measured-vs-static comparison, serializable for the
/// `cosmos-sim bounds` report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoundReportEntry {
    /// What was measured (`query #3 delivered rows`, `node 5 consumed
    /// bytes`, `rep 'result::…' join-buffer rows`).
    pub subject: String,
    /// The measured value.
    pub measured: f64,
    /// The static bound (`None` when no finite bound is derivable —
    /// which dominates every measurement).
    pub bound: Option<f64>,
    /// Whether the bound dominates the measurement.
    pub ok: bool,
}

impl BoundReportEntry {
    fn new(subject: String, measured: f64, bound: Bound) -> BoundReportEntry {
        BoundReportEntry {
            subject,
            measured,
            bound: bound.as_finite(),
            ok: bound.dominates(measured),
        }
    }

    /// Render a failing entry as an oracle violation line.
    fn violation(&self) -> String {
        format!(
            "{}: measured {} exceeds static bound {}",
            self.subject,
            self.measured,
            match self.bound {
                Some(b) => b.to_string(),
                None => "∞".into(),
            }
        )
    }
}

/// Accumulates the observed trace envelope and per-query placement, and
/// checks the three measured families against the static bounds.
#[derive(Debug)]
pub struct BoundTracker {
    env: Envelope,
    /// Deployment size (node ids are `0..nodes`).
    nodes: u32,
    /// Node each accepted query's user subscribed at.
    users: BTreeMap<QueryId, NodeId>,
    /// Every processor ever observed hosting the query's representative.
    procs: BTreeMap<QueryId, BTreeSet<NodeId>>,
    /// Watermark lag of a disordered run, doubling as the envelope's
    /// reorder slack (`None` in order).
    disorder_bound: Option<TimeDelta>,
}

impl BoundTracker {
    /// A fresh tracker (empty envelope: everything unbounded until the
    /// first publish).
    pub fn new(nodes: u32) -> BoundTracker {
        BoundTracker {
            env: Envelope::new(),
            nodes,
            users: BTreeMap::new(),
            procs: BTreeMap::new(),
            disorder_bound: None,
        }
    }

    /// Arm the tracker for a disordered run: `bound` is the watermark
    /// lag (= revision grace). It becomes the envelope's *reorder slack*
    /// — disordered traces are evaluated in sorted order (the staged
    /// executor's processing order) and every window is widened by the
    /// slack to cover grace retention — and bounds the staging area:
    /// staged tuples span at most `(frontier, high-water]`, a band of
    /// width `bound`, so `window_rows(stream, bound)` dominates each
    /// input stream's contribution.
    pub fn set_disorder_bound(&mut self, bound: Option<TimeDelta>) {
        self.disorder_bound = bound;
        self.env.set_reorder_slack(bound);
    }

    /// Record one accepted publish as a trace arrival.
    pub fn on_publish(&mut self, t: &Tuple) {
        self.env
            .record(&t.stream, t.timestamp.millis(), t.size_bytes());
    }

    /// Record an accepted submission's user placement.
    pub fn on_submit(&mut self, qid: QueryId, user: NodeId) {
        self.users.insert(qid, user);
        self.procs.entry(qid).or_default();
    }

    /// Refresh every live query's processor set (called after each
    /// event; sets only grow, so historic intake stays covered after a
    /// representative moves or a query withdraws).
    pub fn observe_processors(&mut self, sys: &Cosmos, queries: &[QueryRun]) {
        for q in queries {
            if let Some(p) = sys.processor_of(q.qid) {
                self.procs.entry(q.qid).or_default().insert(p);
            }
        }
    }

    /// The observed trace envelope.
    pub fn envelope(&self) -> &Envelope {
        &self.env
    }

    /// Compare every measured family against its static bound. Entries
    /// with `ok: false` are soundness violations.
    pub fn assess(&self, sys: &Cosmos, queries: &[QueryRun]) -> Vec<BoundReportEntry> {
        let hub = sys.metrics_hub();
        let bounds: Vec<QueryBounds> = queries
            .iter()
            .map(|q| query_bounds(&q.analyzed, &self.env))
            .collect();
        let mut out = Vec::new();

        // Delivered rows per query (lifetime, survives withdrawal).
        for (q, b) in queries.iter().zip(&bounds) {
            out.push(BoundReportEntry::new(
                format!("query #{} delivered rows", q.label),
                hub.delivered_count(q.qid) as f64,
                b.output_rows,
            ));
        }

        // Consumed bytes per node: deliveries to resident users plus
        // intake of every representative the node ever hosted.
        for i in 0..self.nodes {
            let n = NodeId(i);
            let measured = hub.consumed_bytes_total(n) as f64;
            let mut bound = Bound::ZERO;
            for (q, b) in queries.iter().zip(&bounds) {
                if self.users.get(&q.qid) == Some(&n) {
                    bound = bound + b.output_bytes;
                }
                if self.procs.get(&q.qid).is_some_and(|ps| ps.contains(&n)) {
                    bound = bound + b.intake_bytes;
                }
            }
            if measured == 0.0 && bound == Bound::ZERO {
                continue;
            }
            out.push(BoundReportEntry::new(
                format!("node {i} consumed bytes"),
                measured,
                bound,
            ));
        }

        // Retained state per live representative executor, component by
        // component, against the representative's own bounds.
        for v in sys.rep_states() {
            let b = query_bounds(v.query, &self.env);
            for (component, measured, bound) in [
                ("join-buffer", v.state.buffer_rows, b.buffer_rows),
                ("agg-window", v.state.agg_window_rows, b.agg_window_rows),
                ("group-table", v.state.group_rows, b.group_rows),
                ("distinct-set", v.state.distinct_rows, b.distinct_rows),
            ] {
                if measured == 0 && bound == Bound::ZERO {
                    continue;
                }
                out.push(BoundReportEntry::new(
                    format!(
                        "rep '{}' @ node {} {component} rows",
                        v.result_stream,
                        v.processor.index()
                    ),
                    measured as f64,
                    bound,
                ));
            }
            if let Some(db) = self.disorder_bound {
                let mut staging_bound = Bound::ZERO;
                for b in &v.query.streams {
                    staging_bound = staging_bound + self.env.window_rows(&b.stream, db);
                }
                if v.state.staging_rows != 0 || staging_bound != Bound::ZERO {
                    out.push(BoundReportEntry::new(
                        format!(
                            "rep '{}' @ node {} staging rows",
                            v.result_stream,
                            v.processor.index()
                        ),
                        v.state.staging_rows as f64,
                        staging_bound,
                    ));
                }
            }
        }
        out
    }

    /// The violations among [`BoundTracker::assess`], rendered.
    pub fn check(&self, sys: &Cosmos, queries: &[QueryRun]) -> Vec<String> {
        self.assess(sys, queries)
            .into_iter()
            .filter(|e| !e.ok)
            .map(|e| e.violation())
            .collect()
    }
}
