#![forbid(unsafe_code)]
//! `cosmos-sim` CLI: run, replay, and sweep deterministic scenarios.
//!
//! ```text
//! cosmos-sim run --seed S [--disorder] [--overload [--budget B]] [--no-bounds] [--no-shrink] [--out FILE]
//! cosmos-sim replay FILE
//! cosmos-sim sweep --seeds N [--start S0] [--disorder] [--overload [--budget B]] [--no-bounds] [--no-shrink] [--out-dir DIR]
//! cosmos-sim snapshot --seed S [--baseline] [--disorder] [--out FILE]
//! cosmos-sim metrics --seed S [--baseline] [--disorder] [--out FILE]
//! cosmos-sim bounds --seed S [--baseline] [--disorder] [--out FILE]
//! cosmos-sim admission-canary
//! ```
//!
//! `run` expands one seed and checks every oracle — including the static
//! verifier (`cosmos-verify`), which proves the V1–V6 routing invariants
//! over a network snapshot after every routing-relevant event; on
//! failure the scenario is minimized and written as a replayable JSON
//! file, and for static-verify failures the violating snapshot is
//! written next to it. `replay` re-checks a scenario file (shrunk files
//! stay failing until the bug is fixed, then flip to PASS). `sweep` runs
//! a contiguous seed range, as CI does. `snapshot` dumps the network
//! snapshot a seed's scenario ends in, for `cosmos-verify <file>`.
//! `metrics` dumps the versioned metrics snapshot the same run ends in —
//! per-link/node traffic, observed stream statistics, per-query delivery
//! rates and latencies, and the aggregated router counters. `bounds`
//! runs the bound-soundness oracle on one seed and dumps the final
//! measured-vs-static comparison as a JSON report (exit 1 if any
//! measured metric exceeded its static `cosmos-bound` bound).
//! `admission-canary` submits a deliberately unbounded-state query to a
//! live deployment and exits nonzero unless the admission gate rejects
//! it with a stable `B01xx` code before any tuple is published. The
//! hidden `--inject-bug` flag disables selection re-tightening in the
//! merge layer — a deliberately broken build used to prove the oracles
//! catch real merge bugs (the static verifier flags it as V0501 with no
//! tuple published).
//!
//! `--disorder` expands seeds with [`gen::generate_disordered`] instead:
//! publish batches arrive skewed, with stragglers and duplicates, and
//! the *convergence* oracle replaces the differential one. The hidden
//! `--inject-eviction-bug` flag makes every executor skip watermark
//! gating (process in raw arrival order) — a deliberately broken build
//! the convergence oracle must catch on a disordered sweep.
//! `--no-bounds` turns the (per-event, and therefore earliest-firing)
//! bound-soundness oracle off for `run`/`sweep`, so a canary failure is
//! attributed to the end-of-run semantic oracles instead.
//!
//! `--overload` arms the adaptive overload controller with a uniform
//! per-node delivery budget of `--budget` bytes per rate window
//! (default `u64::MAX / 4`, far above any generated scenario's peak —
//! a pure accounting witness). Every run then also checks the ledger
//! conservation identity `offered = delivered + shed + staged`
//! byte-exactly after every event. The hidden `--inject-shed-leak`
//! flag silently drops the shed-side ledger accounting — a
//! deliberately broken build the conservation oracle must catch and
//! attribute to the shed ledger when the budget is tight enough to
//! shed.
//!
//! Exit status: 0 all scenarios pass, 1 any oracle failure, 2 usage/IO.

use cosmos_testkit::{
    check_scenario, check_scenario_opts, gen, run_scenario, shrink, CheckOptions, RunOptions,
    Scenario,
};
use std::process::ExitCode;

fn usage(msg: &str) -> ExitCode {
    eprintln!("cosmos-sim: {msg}");
    eprintln!(
        "usage: cosmos-sim run --seed S [--disorder] [--no-bounds] [--parallelism N] \
         [--overload [--budget B]] [--no-shrink] [--out FILE]\n\
         \u{20}      cosmos-sim replay FILE\n\
         \u{20}      cosmos-sim sweep --seeds N [--start S0] [--disorder] [--no-bounds] \
         [--parallelism N] [--overload [--budget B]] [--no-shrink] [--out-dir DIR]\n\
         \u{20}      cosmos-sim snapshot --seed S [--baseline] [--disorder] [--out FILE]\n\
         \u{20}      cosmos-sim metrics --seed S [--baseline] [--disorder] [--out FILE]\n\
         \u{20}      cosmos-sim bounds --seed S [--baseline] [--disorder] [--out FILE]\n\
         \u{20}      cosmos-sim admission-canary"
    );
    ExitCode::from(2)
}

struct Opts {
    seed: u64,
    seeds: u64,
    start: u64,
    no_shrink: bool,
    no_bounds: bool,
    baseline: bool,
    disorder: bool,
    parallelism: usize,
    overload: bool,
    budget: u64,
    inject_shed_leak: bool,
    out: Option<String>,
    out_dir: String,
    files: Vec<String>,
}

impl Opts {
    /// Expand a seed per the `--disorder` flag.
    fn expand(&self, seed: u64) -> Scenario {
        if self.disorder {
            gen::generate_disordered(seed)
        } else {
            gen::generate(seed)
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage("no command");
    };
    let mut o = Opts {
        seed: 0,
        seeds: 64,
        start: 0,
        no_shrink: false,
        no_bounds: false,
        baseline: false,
        disorder: false,
        parallelism: 1,
        overload: false,
        budget: u64::MAX / 4,
        inject_shed_leak: false,
        out: None,
        out_dir: "cosmos-sim-failures".into(),
        files: Vec::new(),
    };
    let mut seed_given = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => {
                    o.seed = v;
                    seed_given = true;
                }
                None => return usage("--seed needs an integer"),
            },
            "--seeds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => o.seeds = v,
                None => return usage("--seeds needs an integer"),
            },
            "--start" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => o.start = v,
                None => return usage("--start needs an integer"),
            },
            "--no-shrink" => o.no_shrink = true,
            "--no-bounds" => o.no_bounds = true,
            "--parallelism" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => o.parallelism = v,
                _ => return usage("--parallelism needs an integer >= 1"),
            },
            "--baseline" => o.baseline = true,
            "--disorder" => o.disorder = true,
            "--overload" => o.overload = true,
            "--budget" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => o.budget = v,
                _ => return usage("--budget needs an integer >= 1"),
            },
            "--inject-shed-leak" => o.inject_shed_leak = true,
            "--out" => match args.next() {
                Some(v) => o.out = Some(v),
                None => return usage("--out needs a path"),
            },
            "--out-dir" => match args.next() {
                Some(v) => o.out_dir = v,
                None => return usage("--out-dir needs a path"),
            },
            "--inject-bug" => cosmos_query::merge::faultinject::set_skip_retighten(true),
            "--inject-eviction-bug" => cosmos_spe::faultinject::set_skip_watermark_gating(true),
            "--help" | "-h" => {
                return usage("");
            }
            other if other.starts_with('-') => return usage(&format!("unknown flag '{other}'")),
            file => o.files.push(file.to_string()),
        }
    }
    match cmd.as_str() {
        "run" => {
            if !seed_given {
                return usage("run needs --seed");
            }
            if run_one(o.seed, &o) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "replay" => {
            if o.files.len() != 1 {
                return usage("replay needs exactly one scenario file");
            }
            replay(&o.files[0])
        }
        "sweep" => {
            let mut failed = 0u64;
            for seed in o.start..o.start + o.seeds {
                if !run_one(seed, &o) {
                    failed += 1;
                }
            }
            println!(
                "sweep: {}/{} seeds passed (start {})",
                o.seeds - failed,
                o.seeds,
                o.start
            );
            if failed == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "snapshot" => {
            if !seed_given {
                return usage("snapshot needs --seed");
            }
            dump_snapshot(&o)
        }
        "metrics" => {
            if !seed_given {
                return usage("metrics needs --seed");
            }
            dump_metrics(&o)
        }
        "bounds" => {
            if !seed_given {
                return usage("bounds needs --seed");
            }
            check_bounds(&o)
        }
        "admission-canary" => admission_canary(),
        other => usage(&format!("unknown command '{other}'")),
    }
}

/// Run one seed's scenario to the end and dump the resulting network
/// snapshot as `cosmos-verify` input.
fn dump_snapshot(o: &Opts) -> ExitCode {
    let scenario = o.expand(o.seed);
    let opts = RunOptions {
        merging: !o.baseline,
        static_verify: false,
        ..RunOptions::default()
    };
    let outcome = match run_scenario(&scenario, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cosmos-sim: seed {}: {e}", o.seed);
            return ExitCode::from(2);
        }
    };
    let Some(json) = outcome.final_snapshot else {
        eprintln!("cosmos-sim: seed {}: run produced no snapshot", o.seed);
        return ExitCode::from(2);
    };
    let path = o
        .out
        .clone()
        .unwrap_or_else(|| format!("seed-{}.snapshot.json", o.seed));
    match std::fs::write(&path, json) {
        Ok(()) => {
            println!("wrote {path} (verify with: cosmos-verify {path})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cosmos-sim: could not write {path}: {e}");
            ExitCode::from(2)
        }
    }
}

/// Run one seed's scenario to the end and dump the metrics snapshot it
/// produced. Any metrics-conservation violation the run recorded makes
/// the command fail.
fn dump_metrics(o: &Opts) -> ExitCode {
    let scenario = o.expand(o.seed);
    let opts = RunOptions {
        merging: !o.baseline,
        static_verify: false,
        ..RunOptions::default()
    };
    let outcome = match run_scenario(&scenario, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cosmos-sim: seed {}: {e}", o.seed);
            return ExitCode::from(2);
        }
    };
    if let Some((ev_idx, detail)) = outcome.metrics_violations.first() {
        eprintln!(
            "cosmos-sim: seed {}: metrics conservation broken after event #{ev_idx}: {detail}",
            o.seed
        );
        return ExitCode::FAILURE;
    }
    let Some(json) = outcome.metrics_json else {
        eprintln!("cosmos-sim: seed {}: run produced no metrics", o.seed);
        return ExitCode::from(2);
    };
    let path = o
        .out
        .clone()
        .unwrap_or_else(|| format!("seed-{}.metrics.json", o.seed));
    match std::fs::write(&path, json) {
        Ok(()) => {
            println!("wrote {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cosmos-sim: could not write {path}: {e}");
            ExitCode::from(2)
        }
    }
}

/// Submit a deliberately unbounded-state query (a join whose buffer is
/// never evicted under an `[Unbounded]` window) to a live deployment.
/// The `cosmos-bound` admission gate must reject it with a stable
/// `B01xx` error before any tuple is published; if the query is
/// admitted, the gate is broken and the canary exits nonzero.
fn admission_canary() -> ExitCode {
    use cosmos_types::NodeId;
    let mut sys = match cosmos::Cosmos::new(cosmos::CosmosConfig {
        nodes: 8,
        seed: 1,
        ..cosmos::CosmosConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cosmos-sim: building deployment: {e}");
            return ExitCode::from(2);
        }
    };
    let sensors = cosmos_workload::sensor_catalog();
    for (i, stream) in ["sensors_00", "sensors_01"].into_iter().enumerate() {
        let key = stream.into();
        let (Some(schema), Some(stats)) = (sensors.schema(&key), sensors.stats(&key)) else {
            eprintln!("cosmos-sim: sensor catalog is missing {stream}");
            return ExitCode::from(2);
        };
        if let Err(e) = sys.register_stream(stream, schema.clone(), stats.clone(), NodeId(i as u32))
        {
            eprintln!("cosmos-sim: registering {stream}: {e}");
            return ExitCode::from(2);
        }
    }
    let text = "SELECT A.node_id, B.ambient_temp \
                FROM sensors_00 [Unbounded] A, sensors_01 [Range 10 Second] B \
                WHERE A.node_id = B.node_id";
    match sys.submit_query(text, NodeId(5)) {
        Ok(qid) => {
            eprintln!(
                "cosmos-sim: admission gate FAILED — unbounded-state query was \
                 admitted as {qid:?}: {text}"
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            let msg = e.to_string();
            if msg.contains("B01") {
                println!("admission canary OK — rejected statically: {msg}");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "cosmos-sim: query was rejected, but not by the bound gate \
                     (no B01xx code): {msg}"
                );
                ExitCode::FAILURE
            }
        }
    }
}

/// Run one seed's scenario with the bound-soundness oracle on and dump
/// the final measured-vs-static report. Any measurement exceeding its
/// static bound makes the command fail.
fn check_bounds(o: &Opts) -> ExitCode {
    let scenario = o.expand(o.seed);
    let opts = RunOptions {
        merging: !o.baseline,
        static_verify: false,
        bound_checks: true,
        ..RunOptions::default()
    };
    let outcome = match run_scenario(&scenario, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cosmos-sim: seed {}: {e}", o.seed);
            return ExitCode::from(2);
        }
    };
    let json = match serde_json::to_string(&outcome.bound_report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cosmos-sim: seed {}: serializing report: {e}", o.seed);
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &o.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cosmos-sim: could not write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    } else {
        println!("{json}");
    }
    if let Some((ev_idx, detail)) = outcome.bound_violations.first() {
        eprintln!(
            "cosmos-sim: seed {}: bound soundness broken after event #{ev_idx}: {detail}{}",
            o.seed,
            match outcome.bound_violations.len() {
                1 => String::new(),
                n => format!(" (+{} more violations)", n - 1),
            }
        );
        return ExitCode::FAILURE;
    }
    let checked = outcome.bound_report.len();
    eprintln!(
        "seed {}: bound soundness OK — {checked} subject{} within static bounds",
        o.seed,
        if checked == 1 { "" } else { "s" }
    );
    ExitCode::SUCCESS
}

/// Expand, check, and (on failure) minimize + persist one seed.
/// Returns true on pass.
fn run_one(seed: u64, o: &Opts) -> bool {
    let scenario = o.expand(seed);
    let copts = CheckOptions {
        bound_soundness: !o.no_bounds,
        parallelism: o.parallelism,
        overload_budget: o.overload.then_some(o.budget),
        inject_shed_leak: o.inject_shed_leak,
        // At --parallelism > 1 every oracle run is already the parallel
        // driver; CI compares the sweep's digests against a serial
        // sweep instead of paying for a redundant in-process replay.
        metamorphic_parallel: o.parallelism <= 1,
        ..CheckOptions::default()
    };
    match check_scenario_opts(&scenario, &copts) {
        Ok(r) => {
            println!(
                "seed {seed}: PASS — {} queries ({} rejected), {} tuples, {} epochs, \
                 {} merge-compared, digest {:016x}",
                r.queries, r.rejected, r.published, r.epochs, r.merge_compared, r.digest
            );
            true
        }
        Err(f) => {
            eprintln!("seed {seed}: FAIL {f}");
            eprintln!("  scenario: {}", scenario.summary());
            let minimized = if o.no_shrink {
                scenario
            } else {
                let m = shrink(&scenario, 300);
                eprintln!("  shrunk to: {}", m.summary());
                m
            };
            let path = o
                .out
                .clone()
                .unwrap_or_else(|| format!("{}/seed-{seed}.json", o.out_dir));
            if let Some(dir) = std::path::Path::new(&path).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            match std::fs::write(&path, minimized.to_json()) {
                Ok(()) => eprintln!("  wrote {path} (replay with: cosmos-sim replay {path})"),
                Err(e) => eprintln!("  could not write {path}: {e}"),
            }
            if f.oracle.starts_with("static-verify") {
                write_violating_snapshot(&minimized, &path);
            }
            false
        }
    }
}

/// For a static-verify failure, re-run the (deterministic) scenario and
/// dump the first snapshot the verifier rejected next to the scenario
/// file — the artifact CI uploads.
fn write_violating_snapshot(scenario: &Scenario, scenario_path: &str) {
    for merging in [true, false] {
        let outcome = match run_scenario(
            scenario,
            &RunOptions {
                merging,
                ..RunOptions::default()
            },
        ) {
            Ok(r) => r,
            Err(_) => continue,
        };
        if let Some(json) = outcome.first_violation_snapshot {
            let path = format!("{scenario_path}.violating-snapshot.json");
            match std::fs::write(&path, json) {
                Ok(()) => eprintln!("  wrote {path} (inspect with: cosmos-verify {path})"),
                Err(e) => eprintln!("  could not write {path}: {e}"),
            }
            return;
        }
    }
}

/// Re-check a scenario file.
fn replay(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cosmos-sim: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let scenario = match Scenario::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cosmos-sim: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!("replaying seed {}: {}", scenario.seed, scenario.summary());
    match check_scenario(&scenario) {
        Ok(r) => {
            println!(
                "PASS — {} queries, {} tuples, digest {:016x}",
                r.queries, r.published, r.digest
            );
            ExitCode::SUCCESS
        }
        Err(f) => {
            eprintln!("FAIL {f}");
            ExitCode::FAILURE
        }
    }
}
