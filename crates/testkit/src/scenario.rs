//! Replayable scenario files.
//!
//! A scenario captures everything a run needs — deployment parameters
//! and the full event schedule, with published tuples embedded — so a
//! failure written to disk replays bit-for-bit on any machine. Every
//! event is *skip-tolerant*: an event whose precondition no longer holds
//! (a dead query label, a non-tree link, an already-registered stream)
//! is counted and skipped rather than aborting the run. This makes
//! every subsequence of a scenario's events a valid scenario, which is
//! what the greedy shrinker relies on.

use cosmos_overlay::TopologyKind;
use cosmos_types::{CosmosError, Result, Tuple};
use cosmos_workload::DisorderSpec;
use serde::{Deserialize, Serialize};

/// Scenario file format version (rejected on mismatch at load time).
pub const SCENARIO_VERSION: u32 = 1;

/// Serializable mirror of [`TopologyKind`] (which lives in a crate that
/// does not depend on serde).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// Barabási–Albert preferential attachment with `m` links per node.
    BarabasiAlbert { m: usize },
    /// Waxman random graph (stitched connected).
    Waxman { alpha: f64, beta: f64 },
    /// A grid of the given width (node count must be a multiple).
    Grid { width: usize },
    /// A simple path.
    Line,
    /// A star centered at node 0.
    Star,
}

impl TopologySpec {
    /// The overlay generator this spec selects.
    pub fn kind(&self) -> TopologyKind {
        match *self {
            TopologySpec::BarabasiAlbert { m } => TopologyKind::BarabasiAlbert { m },
            TopologySpec::Waxman { alpha, beta } => TopologyKind::Waxman { alpha, beta },
            TopologySpec::Grid { width } => TopologyKind::Grid { width },
            TopologySpec::Line => TopologyKind::Line,
            TopologySpec::Star => TopologyKind::Star,
        }
    }
}

/// Deployment parameters of a scenario (everything
/// [`cosmos::CosmosConfig`] needs except `merging_enabled`, which the
/// metamorphic oracle varies per run).
///
/// `Serialize`/`Deserialize` are written by hand (the vendored derive
/// supports no field attributes): `disorder` is omitted from JSON when
/// `None` and defaults to `None` when absent, so in-order scenarios
/// keep the exact pre-disorder file format and old files still load.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Overlay size.
    pub nodes: usize,
    /// Overlay shape.
    pub topology: TopologySpec,
    /// Seed driving topology generation inside `Cosmos::new`.
    pub cosmos_seed: u64,
    /// Fraction of nodes hosting an SPE.
    pub processor_fraction: f64,
    /// Query-distribution candidate set size.
    pub affinity_candidates: usize,
    /// DHT registry replica count; `0` selects flooding mode.
    pub dht_replicas: usize,
    /// Per-source dissemination trees instead of the shared MST.
    pub per_source_trees: bool,
    /// Disorder transform applied to the publish sequence (recorded so
    /// replays stay bit-for-bit); `None` runs the scenario in order.
    pub disorder: Option<DisorderSpec>,
}

impl serde::Serialize for ScenarioConfig {
    fn to_content(&self) -> serde::Content {
        let mut entries = vec![
            ("nodes", self.nodes.to_content()),
            ("topology", self.topology.to_content()),
            ("cosmos_seed", self.cosmos_seed.to_content()),
            ("processor_fraction", self.processor_fraction.to_content()),
            ("affinity_candidates", self.affinity_candidates.to_content()),
            ("dht_replicas", self.dht_replicas.to_content()),
            ("per_source_trees", self.per_source_trees.to_content()),
        ];
        if let Some(d) = &self.disorder {
            entries.push(("disorder", d.to_content()));
        }
        serde::Content::Map(
            entries
                .into_iter()
                .map(|(k, v)| (serde::Content::Str(k.to_string()), v))
                .collect(),
        )
    }
}

impl serde::Deserialize for ScenarioConfig {
    fn from_content(c: &serde::Content) -> std::result::Result<Self, serde::DeError> {
        Ok(ScenarioConfig {
            nodes: Deserialize::from_content(serde::map_get(c, "nodes")?)?,
            topology: Deserialize::from_content(serde::map_get(c, "topology")?)?,
            cosmos_seed: Deserialize::from_content(serde::map_get(c, "cosmos_seed")?)?,
            processor_fraction: Deserialize::from_content(serde::map_get(
                c,
                "processor_fraction",
            )?)?,
            affinity_candidates: Deserialize::from_content(serde::map_get(
                c,
                "affinity_candidates",
            )?)?,
            dht_replicas: Deserialize::from_content(serde::map_get(c, "dht_replicas")?)?,
            per_source_trees: Deserialize::from_content(serde::map_get(c, "per_source_trees")?)?,
            disorder: match serde::map_get(c, "disorder") {
                Ok(v) => Some(Deserialize::from_content(v)?),
                Err(_) => None,
            },
        })
    }
}

/// One step of the interleaved schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// Advertise sensor stream `stream` (a `sensors_NN` name; schema and
    /// statistics come from the sensor catalog) at overlay node `origin`.
    Register { stream: String, origin: u32 },
    /// Submit a CQL query at node `user`. `label` names the query across
    /// runs; query ids are an implementation detail of one run.
    Submit { label: u32, user: u32, text: String },
    /// Publish a batch of source tuples (globally timestamp-ordered
    /// across all `Publish` events). Tuples on streams not yet
    /// registered are skipped — that is the advertise/subscribe
    /// decoupling edge case, not an error.
    Publish { tuples: Vec<Tuple> },
    /// Withdraw the query labelled `label` (skipped if absent or
    /// already withdrawn).
    Unsubscribe { label: u32 },
    /// Re-optimize query groupings at every processor.
    Reoptimize,
    /// Run the adaptive dissemination-tree reorganizer.
    OptimizeTree,
    /// Fail the `nth mod edge-count` link of the current shared tree
    /// (in per-source-tree mode every per-source tree using the link
    /// is repaired too).
    FailLink { nth: u32 },
}

/// A complete, self-contained, replayable scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// File format version ([`SCENARIO_VERSION`]).
    pub version: u32,
    /// The seed [`crate::gen::generate`] expanded into this scenario.
    pub seed: u64,
    /// Deployment parameters.
    pub config: ScenarioConfig,
    /// The event schedule.
    pub events: Vec<Event>,
}

impl Scenario {
    /// Serialize to the on-disk JSON format.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("scenario serializes")
    }

    /// Load from the on-disk JSON format.
    pub fn from_json(text: &str) -> Result<Scenario> {
        let s: Scenario = serde_json::from_str(text)
            .map_err(|e| CosmosError::System(format!("scenario parse error: {e}")))?;
        if s.version != SCENARIO_VERSION {
            return Err(CosmosError::System(format!(
                "scenario version {} unsupported (expected {SCENARIO_VERSION})",
                s.version
            )));
        }
        Ok(s)
    }

    /// One-line summary for CLI output.
    pub fn summary(&self) -> String {
        let mut registers = 0usize;
        let mut submits = 0usize;
        let mut tuples = 0usize;
        let mut unsubs = 0usize;
        let mut reopts = 0usize;
        let mut tree_opts = 0usize;
        let mut faults = 0usize;
        for e in &self.events {
            match e {
                Event::Register { .. } => registers += 1,
                Event::Submit { .. } => submits += 1,
                Event::Publish { tuples: t } => tuples += t.len(),
                Event::Unsubscribe { .. } => unsubs += 1,
                Event::Reoptimize => reopts += 1,
                Event::OptimizeTree => tree_opts += 1,
                Event::FailLink { .. } => faults += 1,
            }
        }
        format!(
            "{} nodes ({:?}), {} events: {registers} registers, {submits} submits, \
             {tuples} tuples, {unsubs} unsubs, {reopts} reopts, {tree_opts} tree-opts, \
             {faults} faults",
            self.config.nodes,
            self.config.topology,
            self.events.len()
        )
    }
}
