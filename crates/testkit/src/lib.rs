#![forbid(unsafe_code)]
//! Deterministic scenario harness for whole-system COSMOS testing.
//!
//! A [`Scenario`] is a seeded, fully serializable description of one
//! end-to-end experiment: an overlay deployment plus an interleaved
//! schedule of stream registrations, query submissions, tuple
//! publications, unsubscriptions, group re-optimizations, tree
//! reorganizations, and dissemination-link failures. The harness runs a
//! scenario against a real [`cosmos::Cosmos`] instance several times and
//! checks two oracle families after every run:
//!
//! - **differential** — every query's delivered tuples equal the
//!   centralized [`cosmos_spe::oracle::evaluate`] output over the same
//!   published inputs, cut into epochs wherever the system restarts the
//!   executor serving the query (see [`run::Epoch`]);
//! - **metamorphic** — results are invariant between merging enabled and
//!   disabled (Theorems 1–2: merge/split is semantically invisible), and
//!   invariant under tree re-optimization injected after every event
//!   (routing is semantically transparent).
//!
//! Scenarios may carry a [`cosmos_workload::DisorderSpec`]
//! ([`gen::generate_disordered`]): publish batches arrive skewed, with
//! stragglers and duplicates, the runner arms the watermark machinery
//! (`Cosmos::set_disorder`) and closes every source stream after the
//! schedule, and the differential family runs in *convergence* form —
//! post-watermark deliveries must equal the reference evaluation of the
//! *sorted, deduplicated* input (DESIGN.md §13).
//!
//! A third, *static* family runs inside the runner itself: after every
//! routing-relevant event, [`cosmos::Cosmos::snapshot`] is handed to
//! [`cosmos_verify::verify_snapshot`], which symbolically proves the
//! V1–V6 network invariants (no black holes, no over-delivery, tree
//! well-formedness, merge containment, split-filter exactness,
//! abstraction consistency) — catching routing-state bugs before any
//! tuple exercises them.
//!
//! A fourth, *bound-soundness* family ([`bound::BoundTracker`]) checks
//! after every event that measured `cosmos-metrics` counters — per-query
//! delivered rows, per-node consumed bytes, per-executor retained state
//! — are dominated by `cosmos-bound`'s closed-form static bounds
//! instantiated with the observed trace envelope.
//!
//! Failures are written as replayable JSON scenario files, minimized by
//! a greedy event-level shrinker ([`shrink::shrink`]; the vendored
//! proptest has no shrinking, so the harness owns minimization). The
//! `cosmos-sim` binary exposes `run --seed`, `replay <file>`, and
//! `sweep --seeds N` over this library.

pub mod bound;
pub mod gen;
pub mod oracle;
pub mod run;
pub mod scenario;
pub mod shrink;

pub use bound::{BoundReportEntry, BoundTracker};
pub use oracle::{
    assert_results_match_oracle, check_scenario, check_scenario_opts, normalize_delivered,
    normalize_expected, CheckOptions, Failure, Report,
};
pub use run::{run_scenario, Epoch, QueryRun, RunOptions, RunOutcome};
pub use scenario::{Event, Scenario, ScenarioConfig, TopologySpec};
pub use shrink::shrink;
