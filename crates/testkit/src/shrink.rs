//! Greedy event-level scenario minimization.
//!
//! The vendored proptest has no shrinking, so the harness owns it.
//! Because every event is skip-tolerant, any subsequence of a failing
//! scenario's events is itself a valid scenario; the shrinker greedily
//! drops whole events (from the end, so submissions outlive their
//! withdrawals as long as possible) and then thins publish batches,
//! re-checking after each candidate and keeping any that still fails.

use crate::oracle::check_scenario;
use crate::scenario::{Event, Scenario};

/// Shrink a failing scenario, re-running the oracles at most `budget`
/// times. Returns the smallest still-failing scenario found (the input
/// itself if nothing smaller fails).
pub fn shrink(scenario: &Scenario, budget: usize) -> Scenario {
    fn fails(c: &Scenario, runs: &mut usize) -> bool {
        *runs += 1;
        check_scenario(c).is_err()
    }
    let mut runs = 0usize;
    let mut cur = scenario.clone();
    if !fails(&cur, &mut runs) {
        return cur;
    }
    loop {
        let mut changed = false;

        // Pass 1: drop whole events, scanning from the end.
        let mut i = cur.events.len();
        while i > 0 {
            i -= 1;
            if runs >= budget {
                return cur;
            }
            let mut cand = cur.clone();
            cand.events.remove(i);
            if fails(&cand, &mut runs) {
                cur = cand;
                changed = true;
            }
        }

        // Pass 2: thin publish batches — halve large ones, then drop
        // single tuples from small ones.
        let mut i = 0;
        while i < cur.events.len() {
            let n = match &cur.events[i] {
                Event::Publish { tuples } => tuples.len(),
                _ => 0,
            };
            if n >= 2 {
                for range in [(0, n / 2), (n / 2, n)] {
                    if runs >= budget {
                        return cur;
                    }
                    let mut cand = cur.clone();
                    if let Event::Publish { tuples } = &mut cand.events[i] {
                        *tuples = tuples[range.0..range.1].to_vec();
                    }
                    if fails(&cand, &mut runs) {
                        cur = cand;
                        changed = true;
                        break;
                    }
                }
            }
            let n = match &cur.events[i] {
                Event::Publish { tuples } => tuples.len(),
                _ => 0,
            };
            if (2..=16).contains(&n) {
                let mut j = 0;
                while j < n {
                    if runs >= budget {
                        return cur;
                    }
                    let mut cand = cur.clone();
                    if let Event::Publish { tuples } = &mut cand.events[i] {
                        tuples.remove(j);
                    }
                    if fails(&cand, &mut runs) {
                        cur = cand;
                        changed = true;
                        break;
                    }
                    j += 1;
                }
            }
            i += 1;
        }

        if !changed {
            return cur;
        }
    }
}
