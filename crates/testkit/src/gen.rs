//! Seed → scenario expansion.
//!
//! Everything is drawn from one `StdRng`, so a seed fully determines the
//! scenario: topology, sensor deployments, query batch, input tuples,
//! and the interleaving of submissions, withdrawals, re-optimizations
//! and link failures. Queries come from the workload generator
//! ([`cosmos_workload::QueryGenerator`]) rejection-sampled down to the
//! streams the scenario actually registers; inputs come from the sensor
//! generators, globally timestamp-ordered and cut into publish batches.

use crate::scenario::{Event, Scenario, ScenarioConfig, TopologySpec, SCENARIO_VERSION};
use cosmos_spe::AnalyzedQuery;
use cosmos_workload::sensor::{merged_inputs, stream_name};
use cosmos_workload::{
    sensor_catalog, DisorderSpec, QueryGenConfig, QueryGenerator, SensorGenerator, SENSOR_STREAMS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Expand a seed into a scenario.
pub fn generate(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC05_305);

    // Deployment shape. A fifth of the scenarios exercise per-source
    // trees (link failures repair every affected per-source tree).
    let per_source_trees = rng.gen_bool(0.2);
    let (topology, nodes) = match rng.gen_range(0..6u32) {
        0 | 1 => (
            TopologySpec::BarabasiAlbert { m: 2 },
            rng.gen_range(6..=20usize),
        ),
        2 => (
            TopologySpec::Waxman {
                alpha: 0.6,
                beta: 0.4,
            },
            rng.gen_range(6..=20usize),
        ),
        3 => (TopologySpec::Line, rng.gen_range(6..=14usize)),
        4 => (TopologySpec::Star, rng.gen_range(6..=16usize)),
        _ => {
            let width = rng.gen_range(2..=4usize);
            (
                TopologySpec::Grid { width },
                width * rng.gen_range(2..=5usize),
            )
        }
    };
    let config = ScenarioConfig {
        nodes,
        topology,
        cosmos_seed: seed ^ 0xA5A5,
        processor_fraction: [0.2, 0.25, 0.34, 0.5][rng.gen_range(0..4usize)],
        affinity_candidates: if rng.gen_bool(0.8) { 1 } else { 2 },
        dht_replicas: if rng.gen_bool(0.25) {
            rng.gen_range(2..=3usize)
        } else {
            0
        },
        per_source_trees,
        disorder: None,
    };

    // Sensor deployments: k consecutive streams (consecutive so the
    // workload generator's neighbor joins can stay inside the set). One
    // may be registered late, mid-schedule, to exercise the
    // advertise/subscribe decoupling: its earlier tuples bounce.
    let k = rng.gen_range(2..=4usize);
    let base = rng.gen_range(0..SENSOR_STREAMS - k);
    let streams: Vec<String> = (base..base + k).map(stream_name).collect();
    let late_stream: Option<String> = if k >= 3 && rng.gen_bool(0.3) {
        Some(streams[k - 1].clone())
    } else {
        None
    };

    // Query batch: rejection-sample the workload generator down to the
    // registered streams. Short windows relative to the input horizon
    // keep sliding-window behavior observable.
    let catalog = sensor_catalog();
    let qcfg = QueryGenConfig {
        join_fraction: 0.25,
        agg_fraction: 0.15,
        windows_ms: vec![5_000, 15_000, 60_000],
        ..QueryGenConfig::default()
    };
    let mut qgen = QueryGenerator::new(qcfg, seed ^ 0x51);
    let n_queries = rng.gen_range(3..=8usize);
    // (text, needs the late stream)
    let mut queries: Vec<(String, bool)> = Vec::new();
    let mut attempts = 0usize;
    while queries.len() < n_queries && attempts < 20_000 {
        attempts += 1;
        let text = qgen.next_query();
        let Some(refs) = streams_of(&text, &catalog) else {
            continue;
        };
        if refs.iter().all(|s| streams.contains(s)) {
            let needs_late = late_stream.as_ref().is_some_and(|late| refs.contains(late));
            queries.push((text, needs_late));
        }
    }
    // Pathological configs still terminate: pad with plain selections
    // over registered streams.
    while queries.len() < n_queries {
        let s = &streams[rng.gen_range(0..streams.len() - usize::from(late_stream.is_some()))];
        queries.push((
            format!("SELECT node_id, ambient_temp FROM {s} [Range 15 Second]"),
            false,
        ));
    }

    // Inputs: every registered stream emits over the full horizon, then
    // the merged, timestamp-ordered sequence is cut into publish batches.
    let mut gens: Vec<SensorGenerator> = (base..base + k)
        .map(|i| SensorGenerator::new(i, seed))
        .collect();
    let horizon_ms = rng.gen_range(20..=40i64) * 1000;
    let all_inputs = merged_inputs(&mut gens, horizon_ms);
    let n_chunks = rng.gen_range(3..=6usize).min(all_inputs.len().max(1));
    let mut cuts: Vec<usize> = (0..n_chunks - 1)
        .map(|_| rng.gen_range(0..=all_inputs.len()))
        .collect();
    cuts.sort_unstable();
    cuts.insert(0, 0);
    cuts.push(all_inputs.len());

    // Assemble the schedule: early registers up front, then publish
    // batches in order with everything else spliced in between.
    let mut events: Vec<Event> = streams
        .iter()
        .filter(|s| late_stream.as_ref() != Some(*s))
        .map(|s| Event::Register {
            stream: s.clone(),
            origin: rng.gen_range(0..nodes as u32),
        })
        .collect();
    let head = events.len();
    for w in cuts.windows(2) {
        if w[0] < w[1] {
            events.push(Event::Publish {
                tuples: all_inputs[w[0]..w[1]].to_vec(),
            });
        }
    }

    // The late register goes somewhere mid-schedule.
    if let Some(late) = &late_stream {
        let at = rng.gen_range(head..=events.len());
        events.insert(
            at,
            Event::Register {
                stream: late.clone(),
                origin: rng.gen_range(0..nodes as u32),
            },
        );
    }
    let late_pos = |events: &[Event]| {
        events.iter().position(
            |e| matches!(e, Event::Register { stream, .. } if Some(stream) == late_stream.as_ref()),
        )
    };

    // Submissions: anywhere after the head registers; queries over the
    // late stream only after its registration.
    for (label, (text, needs_late)) in queries.into_iter().enumerate() {
        let lo = if needs_late {
            late_pos(&events).map(|p| p + 1).unwrap_or(head)
        } else {
            head
        };
        let at = rng.gen_range(lo..=events.len());
        events.insert(
            at,
            Event::Submit {
                label: label as u32,
                user: rng.gen_range(0..nodes as u32),
                text,
            },
        );
    }

    // Withdrawals: after the corresponding submission.
    let n_unsub = rng.gen_range(0..=2usize).min(n_queries);
    let mut unsub_labels: Vec<u32> = (0..n_queries as u32).collect();
    for _ in 0..n_unsub {
        let label = unsub_labels.remove(rng.gen_range(0..unsub_labels.len()));
        let submit_at = events
            .iter()
            .position(|e| matches!(e, Event::Submit { label: l, .. } if l == &label))
            .expect("submitted above");
        let at = rng.gen_range(submit_at + 1..=events.len());
        events.insert(at, Event::Unsubscribe { label });
    }

    // Maintenance events.
    for _ in 0..rng.gen_range(0..=2usize) {
        let at = rng.gen_range(head..=events.len());
        events.insert(at, Event::Reoptimize);
    }
    if rng.gen_bool(0.5) {
        let at = rng.gen_range(head..=events.len());
        events.insert(at, Event::OptimizeTree);
    }
    for _ in 0..rng.gen_range(0..=2usize) {
        let at = rng.gen_range(head..=events.len());
        events.insert(
            at,
            Event::FailLink {
                nth: rng.gen_range(0..64u32),
            },
        );
    }

    Scenario {
        version: SCENARIO_VERSION,
        seed,
        config,
        events,
    }
}

/// Expand a seed into a *disordered* scenario: the same deployment and
/// event schedule as [`generate`], with every publish batch run through
/// a seeded [`DisorderSpec`] (skew, stragglers, duplicates) drawn from
/// the same seed. Batch boundaries are preserved — disorder reshuffles
/// arrivals *within* each publish event — so the set of tuples any
/// submission or registration boundary has seen is identical to the
/// in-order scenario. That is what makes `disorder_equivalence` an
/// exact metamorphic oracle: the two runs must converge to the same
/// post-watermark results.
pub fn generate_disordered(seed: u64) -> Scenario {
    let mut sc = generate(seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD15_02DE);
    let spec = DisorderSpec {
        seed: rng.gen(),
        skew_ms: rng.gen_range(100..=2_000),
        straggler_ms: rng.gen_range(500..=5_000),
        straggler_prob: rng.gen_range(0.10..=0.30),
        duplicate_prob: rng.gen_range(0.05..=0.15),
    };
    for ev in &mut sc.events {
        if let Event::Publish { tuples } = ev {
            *tuples = spec.apply(tuples);
        }
    }
    sc.config.disorder = Some(spec);
    sc
}

/// The stream names a query references, or `None` if it does not even
/// analyze against the full sensor catalog.
fn streams_of(text: &str, catalog: &cosmos_query::StatsCatalog) -> Option<Vec<String>> {
    let parsed = cosmos_cql::parse_query(text).ok()?;
    let analyzed = AnalyzedQuery::analyze(&parsed, catalog.schema_fn()).ok()?;
    Some(
        analyzed
            .streams
            .iter()
            .map(|b| b.stream.as_str().to_string())
            .collect(),
    )
}
