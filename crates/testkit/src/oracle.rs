//! The differential and metamorphic oracles.
//!
//! **Differential.** For every accepted query, per executor epoch, the
//! delivered tuples must equal the centralized
//! [`cosmos_spe::oracle::evaluate`] output over the published inputs of
//! that epoch. The reference evaluator is incremental (it appends
//! outputs per arrival), so a warm group join — where the query starts
//! listening to an executor with pre-existing window state — is exactly
//! the reference output over `[exec_start, end)` with the prefix
//! produced by `[exec_start, member_start)` skipped.
//!
//! **Convergence.** On a disordered scenario the same check runs in
//! *convergence form*: after the end-of-schedule stream closure has
//! drained every staged tuple, each epoch's deliveries must equal the
//! reference evaluation of the epoch's inputs **sorted by timestamp and
//! exact-duplicate-deduplicated** — the staged executor processes
//! exactly that sequence, so disorder the watermark bound absorbs must
//! leave no trace in the results. Epochs across which the system's
//! `late + revisions + shed` counter moved are skipped (revision
//! folding is covered by the `crates/spe` directed tests and by the
//! conservation counters), as are warm joins and mid-run withdrawals,
//! whose cut points are blurred by staging.
//!
//! **Metamorphic (merge).** Theorems 1–2: merging is semantically
//! invisible, so delivered results with merging enabled must equal the
//! non-share baseline. Executor restarts only happen with merging on
//! (groups never change shape in baseline mode), so the whole-run
//! comparison is performed for queries whose delivery is restart-proof:
//! stateless queries (single stream, no aggregate, no DISTINCT), and
//! stateful queries that lived in a single cold-started epoch in both
//! runs. Everything else is still covered per-epoch by the differential
//! oracle in both modes.
//!
//! **Metamorphic (tree).** Re-running with a tree re-optimization
//! injected after every event must leave every query's delivered
//! results unchanged: routing adaptation never touches executor state.
//!
//! **Metamorphic (batch).** Re-running with batched publishing
//! (`publish_batch` over each publish event's same-stream runs) must be
//! observably identical to per-tuple publishing: exact delivery order,
//! epochs, counts, and digest.
//!
//! **Determinism.** Running the same scenario twice must produce
//! identical digests — the contract that makes `run --seed` replayable.

use crate::run::{run_scenario, RunOptions, RunOutcome};
use crate::scenario::Scenario;
use cosmos_spe::{oracle, AnalyzedQuery};
use cosmos_types::{QueryId, Timestamp, Tuple, Value};

/// A minimal, displayable oracle violation.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which oracle fired (`differential (merged)` — `convergence
    /// (merged)` on disordered scenarios —, `metamorphic-merge`,
    /// `metamorphic-tree`, `metamorphic-batch`, `metamorphic-parallel`,
    /// `determinism`, `static-verify (…)`, `metrics-conservation (…)`,
    /// `bound-soundness (…)`, `run-error`).
    pub oracle: String,
    /// The offending query's scenario label, when attributable.
    pub label: Option<u32>,
    /// Human-readable details.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.label {
            Some(l) => write!(f, "[{}] query #{l}: {}", self.oracle, self.detail),
            None => write!(f, "[{}] {}", self.oracle, self.detail),
        }
    }
}

/// Statistics of a passing scenario.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Accepted queries.
    pub queries: usize,
    /// Rejected submissions (lint/analysis).
    pub rejected: usize,
    /// Published source tuples.
    pub published: usize,
    /// Executor epochs checked differentially.
    pub epochs: usize,
    /// Queries compared whole-run between merged and baseline modes.
    pub merge_compared: usize,
    /// The base run's digest.
    pub digest: u64,
}

/// Which oracles to run (all by default; the injected-bug acceptance
/// test isolates the metamorphic family).
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// Per-epoch differential comparison, both modes.
    pub differential: bool,
    /// Merged-vs-baseline whole-run comparison.
    pub metamorphic_merge: bool,
    /// Tree-reorganization invariance.
    pub metamorphic_tree: bool,
    /// Batched-publish invariance (per-tuple vs `publish_batch`).
    pub metamorphic_batch: bool,
    /// Same-scenario digest equality.
    pub determinism: bool,
    /// Static verification (`cosmos-verify`) of the routing state after
    /// every routing-relevant event, in both merged and baseline modes.
    pub static_verify: bool,
    /// Metrics conservation: the metrics layer's lifetime counters must
    /// agree with the driver's accounting after every event, and the
    /// final metrics snapshot must be byte-identical across the
    /// determinism replay.
    pub metrics_conservation: bool,
    /// Bound soundness: measured delivered counts, per-node consumed
    /// bytes, and executor state sizes must be dominated by the static
    /// `cosmos-bound` bounds after every event, in merged, baseline,
    /// and batched modes.
    pub bound_soundness: bool,
    /// Routing workers for every run ([`RunOptions::parallelism`]);
    /// 1 = serial driver. All oracles must hold unchanged at any value.
    pub parallelism: usize,
    /// Parallel-vs-serial equality: re-run the merged scenario with
    /// 4 routing workers and demand an identical digest, identical
    /// per-event routing digests, and a byte-identical metrics
    /// snapshot. Redundant (and skipped by `cosmos-sim`) when
    /// `parallelism` is already > 1 — the whole sweep then *is* the
    /// parallel side, compared against a serial sweep in CI.
    pub metamorphic_parallel: bool,
    /// Arm the overload controller with this uniform per-node byte
    /// budget in every run ([`RunOptions::overload_budget`]). The
    /// conservation identity is checked after every event; when the
    /// budget is tight enough to actually shed, the semantic oracles
    /// back off per query (a shed buffer is legitimately a sub-multiset
    /// of the reference output) while determinism and the parallel
    /// replay still demand bit-identical shed decisions.
    pub overload_budget: Option<u64>,
    /// Fault-injection canary ([`RunOptions::inject_shed_leak`]): drop
    /// the shed-side ledger accounting so any real shed must be caught
    /// by the conservation oracle, attributed to the shed ledger.
    pub inject_shed_leak: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            differential: true,
            metamorphic_merge: true,
            metamorphic_tree: true,
            metamorphic_batch: true,
            determinism: true,
            static_verify: true,
            metrics_conservation: true,
            bound_soundness: true,
            parallelism: 1,
            metamorphic_parallel: true,
            overload_budget: None,
            inject_shed_leak: false,
        }
    }
}

/// Run every oracle over a scenario.
pub fn check_scenario(scenario: &Scenario) -> Result<Report, Failure> {
    check_scenario_opts(scenario, &CheckOptions::default())
}

/// Run the selected oracles over a scenario.
pub fn check_scenario_opts(scenario: &Scenario, opts: &CheckOptions) -> Result<Report, Failure> {
    let run_err = |e: cosmos_types::CosmosError| Failure {
        oracle: "run-error".into(),
        label: None,
        detail: e.to_string(),
    };
    let merged = run_scenario(
        scenario,
        &RunOptions {
            static_verify: opts.static_verify,
            bound_checks: opts.bound_soundness,
            parallelism: opts.parallelism,
            overload_budget: opts.overload_budget,
            inject_shed_leak: opts.inject_shed_leak,
            ..RunOptions::default()
        },
    )
    .map_err(run_err)?;
    // Conservation before the static verifier: both can see a broken
    // overload ledger (the snapshot carries it as V0801), but the
    // runner's per-event check names the shed ledger directly, so it
    // owns the attribution.
    if opts.metrics_conservation {
        metrics_conservation_failure(&merged, "merged")?;
    }
    static_verify_failure(&merged, "merged")?;
    bound_soundness_failure(&merged, "merged")?;
    runtime_determinism_failure(&merged, "merged")?;

    if opts.determinism {
        // The verifier and bound tracker only read state, so skipping
        // them here cannot change the digest being compared.
        let again = run_scenario(
            scenario,
            &RunOptions {
                static_verify: false,
                bound_checks: false,
                parallelism: opts.parallelism,
                overload_budget: opts.overload_budget,
                inject_shed_leak: opts.inject_shed_leak,
                ..RunOptions::default()
            },
        )
        .map_err(run_err)?;
        if again.digest != merged.digest || again.routing_digests != merged.routing_digests {
            return Err(Failure {
                oracle: "determinism".into(),
                label: None,
                detail: format!(
                    "two runs of the same scenario diverged: digest {:016x} vs {:016x}",
                    merged.digest, again.digest
                ),
            });
        }
        if opts.metrics_conservation && again.metrics_json != merged.metrics_json {
            return Err(Failure {
                oracle: "determinism".into(),
                label: None,
                detail: "two runs of the same scenario produced different metrics snapshots".into(),
            });
        }
    }

    if opts.metamorphic_parallel && opts.parallelism <= 1 {
        // The shard-per-core driver must be observably identical to the
        // serial one: same digest (delivery order included), same
        // per-event routing digests, byte-identical metrics snapshot.
        let parallel = run_scenario(
            scenario,
            &RunOptions {
                static_verify: false,
                bound_checks: false,
                parallelism: 4,
                overload_budget: opts.overload_budget,
                inject_shed_leak: opts.inject_shed_leak,
                ..RunOptions::default()
            },
        )
        .map_err(run_err)?;
        if parallel.digest != merged.digest || parallel.routing_digests != merged.routing_digests {
            return Err(Failure {
                oracle: "metamorphic-parallel".into(),
                label: None,
                detail: format!(
                    "4-worker run diverged from serial: digest {:016x} vs {:016x}",
                    parallel.digest, merged.digest
                ),
            });
        }
        if opts.metrics_conservation && parallel.metrics_json != merged.metrics_json {
            return Err(Failure {
                oracle: "metamorphic-parallel".into(),
                label: None,
                detail: "4-worker run produced a different metrics snapshot than serial".into(),
            });
        }
    }

    if opts.differential {
        differential(&merged, "merged")?;
    }

    let baseline = run_scenario(
        scenario,
        &RunOptions {
            merging: false,
            static_verify: opts.static_verify,
            bound_checks: opts.bound_soundness,
            parallelism: opts.parallelism,
            overload_budget: opts.overload_budget,
            inject_shed_leak: opts.inject_shed_leak,
            ..RunOptions::default()
        },
    )
    .map_err(run_err)?;
    if opts.metrics_conservation {
        metrics_conservation_failure(&baseline, "baseline")?;
    }
    static_verify_failure(&baseline, "baseline")?;
    bound_soundness_failure(&baseline, "baseline")?;
    runtime_determinism_failure(&baseline, "baseline")?;
    if opts.differential {
        differential(&baseline, "baseline")?;
    }

    let mut merge_compared = 0usize;
    if opts.metamorphic_merge {
        merge_compared = metamorphic_merge(&merged, &baseline)?;
    }

    if opts.metamorphic_tree {
        let treed = run_scenario(
            scenario,
            &RunOptions {
                merging: true,
                optimize_every_event: true,
                static_verify: false,
                bound_checks: false,
                parallelism: opts.parallelism,
                overload_budget: opts.overload_budget,
                inject_shed_leak: opts.inject_shed_leak,
                ..RunOptions::default()
            },
        )
        .map_err(run_err)?;
        if opts.metrics_conservation {
            metrics_conservation_failure(&treed, "treed")?;
        }
        metamorphic_tree(&merged, &treed)?;
    }

    if opts.metamorphic_batch {
        let batched = run_scenario(
            scenario,
            &RunOptions {
                batched: true,
                static_verify: false,
                bound_checks: opts.bound_soundness,
                parallelism: opts.parallelism,
                overload_budget: opts.overload_budget,
                inject_shed_leak: opts.inject_shed_leak,
                ..RunOptions::default()
            },
        )
        .map_err(run_err)?;
        if opts.metrics_conservation {
            metrics_conservation_failure(&batched, "batched")?;
        }
        bound_soundness_failure(&batched, "batched")?;
        metamorphic_batch(&merged, &batched)?;
    }

    Ok(Report {
        queries: merged.queries.len(),
        rejected: merged.rejected.len(),
        published: merged.published.len(),
        epochs: merged.queries.iter().map(|q| q.epochs.len()).sum(),
        merge_compared,
        digest: merged.digest,
    })
}

/// Surface a run's bound-soundness violations as an oracle failure (a
/// no-op when the run had bound checks off, since the list is empty).
fn bound_soundness_failure(run: &RunOutcome, mode: &str) -> Result<(), Failure> {
    let Some((ev_idx, detail)) = run.bound_violations.first() else {
        return Ok(());
    };
    Err(Failure {
        oracle: format!("bound-soundness ({mode})"),
        label: None,
        detail: format!(
            "after event #{ev_idx}: {detail}{}",
            match run.bound_violations.len() {
                1 => String::new(),
                n => format!(" (+{} more violations)", n - 1),
            }
        ),
    })
}

/// Surface a run's runtime-determinism violations as an oracle failure
/// — the dynamic twin of `cosmos-detlint`'s D0201/D0301: the metrics
/// hub's virtual clock stayed within the tuple-timestamp ceiling and
/// never regressed. Always on: the probe is O(1) per event.
fn runtime_determinism_failure(run: &RunOutcome, mode: &str) -> Result<(), Failure> {
    let Some((ev_idx, detail)) = run.runtime_violations.first() else {
        return Ok(());
    };
    Err(Failure {
        oracle: format!("runtime-determinism ({mode})"),
        label: None,
        detail: format!(
            "after event #{ev_idx}: {detail}{}",
            match run.runtime_violations.len() {
                1 => String::new(),
                n => format!(" (+{} more violations)", n - 1),
            }
        ),
    })
}

/// Surface a run's metrics-conservation violations as an oracle failure.
fn metrics_conservation_failure(run: &RunOutcome, mode: &str) -> Result<(), Failure> {
    let Some((ev_idx, detail)) = run.metrics_violations.first() else {
        return Ok(());
    };
    Err(Failure {
        oracle: format!("metrics-conservation ({mode})"),
        label: None,
        detail: format!(
            "after event #{ev_idx}: {detail}{}",
            match run.metrics_violations.len() {
                1 => String::new(),
                n => format!(" (+{} more violations)", n - 1),
            }
        ),
    })
}

/// Surface a run's static-verifier violations as an oracle failure. The
/// headline of the first violation (with its event index) is the detail;
/// the violating snapshot rides along in [`RunOutcome`] for artifact
/// dumping.
fn static_verify_failure(run: &RunOutcome, mode: &str) -> Result<(), Failure> {
    let Some((ev_idx, headline)) = run.static_violations.first() else {
        return Ok(());
    };
    Err(Failure {
        oracle: format!("static-verify ({mode})"),
        label: None,
        detail: format!(
            "after event #{ev_idx}: {headline}{}",
            match run.static_violations.len() {
                1 => String::new(),
                n => format!(" (+{} more violations)", n - 1),
            }
        ),
    })
}

/// Quantize floats before comparison. The deployed executor maintains
/// running SUM/AVG accumulators (evictions subtract), while the
/// reference evaluator recomputes each aggregate from scratch; with
/// Kahan-compensated accumulation the two stay within an ulp or two, so
/// quantizing to 1e-9 absolute (sensor magnitudes are ~1e2) erases that
/// noise without masking any real divergence (which shows up as whole
/// tuples, not last digits).
fn canon(v: Value) -> Value {
    match v {
        Value::Float(x) => Value::Float((x * 1e9).round() / 1e9),
        other => other,
    }
}

/// Normalized delivered multiset: `(timestamp, sorted values)`, sorted.
/// Delivered tuples carry the member's column set but in the
/// representative schema's order, so comparisons are value-multiset
/// based, per timestamp, with floats quantized (see [`canon`]).
pub fn normalize_delivered(tuples: &[Tuple]) -> Vec<(Timestamp, Vec<Value>)> {
    let mut out: Vec<(Timestamp, Vec<Value>)> = tuples
        .iter()
        .map(|t| {
            let mut vs: Vec<Value> = t.values().iter().cloned().map(canon).collect();
            vs.sort();
            (t.timestamp, vs)
        })
        .collect();
    out.sort();
    out
}

/// Normalize reference-evaluation tuples the same way, first deduping
/// columns by name (the split profile projects each column once, however
/// often the member's SELECT repeats it).
pub fn normalize_expected(tuples: &[Tuple], names: &[String]) -> Vec<(Timestamp, Vec<Value>)> {
    let mut out: Vec<(Timestamp, Vec<Value>)> = tuples
        .iter()
        .map(|t| {
            let mut row: Vec<(String, Value)> = names
                .iter()
                .cloned()
                .zip(t.values().iter().cloned())
                .collect();
            row.sort();
            row.dedup_by(|a, b| a.0 == b.0);
            let mut vs: Vec<Value> = row.into_iter().map(|(_, v)| canon(v)).collect();
            vs.sort();
            (t.timestamp, vs)
        })
        .collect();
    out.sort();
    out
}

fn first_diff(want: &[(Timestamp, Vec<Value>)], got: &[(Timestamp, Vec<Value>)]) -> String {
    let i = want
        .iter()
        .zip(got.iter())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| want.len().min(got.len()));
    format!(
        "expected {} tuples, got {}; first divergence at #{i}: expected {:?}, got {:?}",
        want.len(),
        got.len(),
        want.get(i),
        got.get(i)
    )
}

/// The staged executor's processing order: stably sorted by timestamp
/// (arrival order breaks ties, matching the staging area's
/// `(timestamp, arrival)` key) with exact duplicates removed, keeping
/// the first occurrence — the executor's duplicate memory discards the
/// rest on arrival. Injected duplicates never rewrite timestamps, so
/// matching within the same-timestamp group is exhaustive.
fn sorted_deduped(tuples: &[Tuple]) -> Vec<Tuple> {
    let mut v = tuples.to_vec();
    v.sort_by_key(|t| t.timestamp);
    let mut out: Vec<Tuple> = Vec::with_capacity(v.len());
    for t in v {
        let dup = out
            .iter()
            .rev()
            .take_while(|u| u.timestamp == t.timestamp)
            .any(|u| *u == t);
        if !dup {
            out.push(t);
        }
    }
    out
}

/// Per-query, per-epoch comparison against the reference evaluator. On
/// a disordered run this is the *convergence* oracle: the reference
/// evaluates the epoch's inputs in sorted, deduplicated order (see
/// [`sorted_deduped`]), and epochs whose cut points staging blurs —
/// warm joins, mid-run withdrawals, any late/revision/shed activity —
/// are skipped.
fn differential(run: &RunOutcome, mode: &str) -> Result<(), Failure> {
    if run.overload_shed_tuples > 0 {
        // A shed delivery buffer is legitimately a sub-multiset of the
        // reference output; the conservation ledger is the dedicated
        // oracle for budgeted runs.
        return Ok(());
    }
    let disordered = run.disorder_totals.is_some();
    let oracle_name = if disordered {
        format!("convergence ({mode})")
    } else {
        format!("differential ({mode})")
    };
    let final_late = run
        .disorder_totals
        .map(|t| t.late + t.revisions + t.shed)
        .unwrap_or(0);
    for q in &run.queries {
        if disordered && q.input_end.is_some() {
            // Withdrawn mid-run: the delivery buffer was frozen while
            // tuples sat staged, so no input cut reproduces it exactly.
            continue;
        }
        let names: Vec<String> = q
            .analyzed
            .output_schema
            .names()
            .map(str::to_string)
            .collect();
        let input_end = q.input_end.unwrap_or(run.published.len());
        for (i, ep) in q.epochs.iter().enumerate() {
            let in_end = q
                .epochs
                .get(i + 1)
                .map(|n| n.member_start)
                .unwrap_or(input_end);
            let del_end = q
                .epochs
                .get(i + 1)
                .map(|n| n.delivered_start)
                .unwrap_or(q.delivered.len());
            if ep.exec_start > ep.member_start || ep.member_start > in_end {
                return Err(Failure {
                    oracle: oracle_name.clone(),
                    label: Some(q.label),
                    detail: format!(
                        "inconsistent epoch bounds: exec {} member {} end {in_end}",
                        ep.exec_start, ep.member_start
                    ),
                });
            }
            if disordered {
                let late_end = q
                    .epochs
                    .get(i + 1)
                    .map(|n| n.late_start)
                    .unwrap_or(final_late);
                if ep.member_start > ep.exec_start || late_end > ep.late_start {
                    continue;
                }
            }
            let inputs: Vec<Tuple> = if disordered {
                sorted_deduped(&run.published[ep.exec_start..in_end])
            } else {
                run.published[ep.exec_start..in_end].to_vec()
            };
            let full = oracle::evaluate(&q.analyzed, "ref", &inputs);
            let skip = if ep.member_start > ep.exec_start {
                oracle::evaluate(
                    &q.analyzed,
                    "ref",
                    &run.published[ep.exec_start..ep.member_start],
                )
                .len()
            } else {
                0
            };
            let want = normalize_expected(&full[skip.min(full.len())..], &names);
            let got = normalize_delivered(&q.delivered[ep.delivered_start..del_end]);
            if want != got {
                return Err(Failure {
                    oracle: oracle_name.clone(),
                    label: Some(q.label),
                    detail: format!(
                        "'{}' epoch {i} (inputs {}..{in_end}, warm-skip {skip}): {}",
                        q.text,
                        ep.exec_start,
                        first_diff(&want, &got)
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Is delivery for this query unaffected by executor restarts?
fn stateless(q: &AnalyzedQuery) -> bool {
    !q.is_aggregate() && q.streams.len() == 1 && !q.distinct
}

/// A run's `late + revisions + shed` total — nonzero when some tuple
/// took a path whose output interleaving is timing-dependent, which is
/// when the cross-run metamorphic comparisons back off to what still
/// must hold.
fn run_lateish(run: &RunOutcome) -> u64 {
    run.disorder_totals
        .map(|t| t.late + t.revisions + t.shed)
        .unwrap_or(0)
}

/// Merged vs baseline whole-run comparison. Returns how many queries
/// were comparable.
fn metamorphic_merge(merged: &RunOutcome, baseline: &RunOutcome) -> Result<usize, Failure> {
    if merged.overload_shed_tuples > 0 || baseline.overload_shed_tuples > 0 {
        // Merging moves the per-node intake the budget meters, so shed
        // decisions legitimately differ between the modes.
        return Ok(0);
    }
    for (label, _) in &merged.rejected {
        if baseline.queries.iter().any(|q| q.label == *label) {
            return Err(Failure {
                oracle: "metamorphic-merge".into(),
                label: Some(*label),
                detail: "rejected with merging enabled but accepted in baseline mode".into(),
            });
        }
    }
    let disordered = merged.disorder_totals.is_some();
    let late_activity = run_lateish(merged) > 0 || run_lateish(baseline) > 0;
    let mut compared = 0usize;
    for q in &merged.queries {
        let Some(base) = baseline.queries.iter().find(|b| b.label == q.label) else {
            return Err(Failure {
                oracle: "metamorphic-merge".into(),
                label: Some(q.label),
                detail: "accepted with merging enabled but rejected in baseline mode".into(),
            });
        };
        let cold_single = |runs: &crate::run::QueryRun| {
            runs.epochs.len() == 1 && runs.epochs[0].member_start == runs.epochs[0].exec_start
        };
        // Disordered runs: compare only queries alive at closure (a
        // mid-run withdrawal freezes the buffer with tuples staged),
        // cold-started in both modes — a warm join inherits whatever the
        // group's staging area drains after the join, which the
        // baseline's fresh executor never saw, so even stateless
        // deliveries legitimately differ — and only when neither run
        // took a timing-dependent late path.
        let comparable = if disordered {
            q.input_end.is_none() && !late_activity && cold_single(q) && cold_single(base)
        } else {
            stateless(&q.analyzed) || (cold_single(q) && cold_single(base))
        };
        if !comparable {
            continue;
        }
        compared += 1;
        let want = normalize_delivered(&base.delivered);
        let got = normalize_delivered(&q.delivered);
        if want != got {
            return Err(Failure {
                oracle: "metamorphic-merge".into(),
                label: Some(q.label),
                detail: format!(
                    "'{}': merged delivery differs from baseline: {}",
                    q.text,
                    first_diff(&want, &got)
                ),
            });
        }
    }
    Ok(compared)
}

/// Tree-reorganization invariance: every query delivers identically
/// (on disordered runs: every query alive at closure, when no late path
/// fired — see [`run_lateish`]).
fn metamorphic_tree(merged: &RunOutcome, treed: &RunOutcome) -> Result<(), Failure> {
    if merged.overload_shed_tuples > 0 || treed.overload_shed_tuples > 0 {
        return Ok(());
    }
    let disordered = merged.disorder_totals.is_some();
    let late_activity = run_lateish(merged) > 0 || run_lateish(treed) > 0;
    for q in &merged.queries {
        if disordered && (q.input_end.is_some() || late_activity) {
            continue;
        }
        let Some(t) = treed.queries.iter().find(|t| t.label == q.label) else {
            return Err(Failure {
                oracle: "metamorphic-tree".into(),
                label: Some(q.label),
                detail: "query vanished under injected tree re-optimization".into(),
            });
        };
        let want = normalize_delivered(&q.delivered);
        let got = normalize_delivered(&t.delivered);
        if want != got {
            return Err(Failure {
                oracle: "metamorphic-tree".into(),
                label: Some(q.label),
                detail: format!(
                    "'{}': delivery changed under injected tree re-optimization: {}",
                    q.text,
                    first_diff(&want, &got)
                ),
            });
        }
    }
    Ok(())
}

/// Batched-publish invariance: routing each publish event's same-stream
/// runs through `publish_batch` must be *observably identical* to
/// per-tuple publishing — tuple-for-tuple delivery (exact order, not
/// just multisets), identical epochs and skip counts, identical digest.
/// On a disordered run with late-path activity the exact interleaving
/// legitimately differs (a revision fires at arrival time, which batch
/// boundaries move relative to watermark drains), so the comparison
/// backs off to per-query delivered multisets and the publish counts.
fn metamorphic_batch(merged: &RunOutcome, batched: &RunOutcome) -> Result<(), Failure> {
    if merged.overload_shed_tuples > 0 || batched.overload_shed_tuples > 0 {
        // Batching changes the batch shapes `admit` meters, so shed
        // decisions legitimately differ; only the publish accounting
        // (which runs upstream of the controller) must still agree.
        if batched.skipped_publishes != merged.skipped_publishes
            || batched.published.len() != merged.published.len()
        {
            return Err(Failure {
                oracle: "metamorphic-batch".into(),
                label: None,
                detail: format!(
                    "accepted/skipped publish counts changed under batching: {}+{} vs {}+{}",
                    merged.published.len(),
                    merged.skipped_publishes,
                    batched.published.len(),
                    batched.skipped_publishes
                ),
            });
        }
        return Ok(());
    }
    let strict =
        merged.disorder_totals.is_none() || (run_lateish(merged) == 0 && run_lateish(batched) == 0);
    for q in &merged.queries {
        let Some(b) = batched.queries.iter().find(|b| b.label == q.label) else {
            return Err(Failure {
                oracle: "metamorphic-batch".into(),
                label: Some(q.label),
                detail: "query vanished under batched publishing".into(),
            });
        };
        if !strict {
            let want = normalize_delivered(&q.delivered);
            let got = normalize_delivered(&b.delivered);
            if want != got {
                return Err(Failure {
                    oracle: "metamorphic-batch".into(),
                    label: Some(q.label),
                    detail: format!(
                        "'{}': batched delivery diverged beyond revision reordering: {}",
                        q.text,
                        first_diff(&want, &got)
                    ),
                });
            }
            continue;
        }
        if b.delivered != q.delivered {
            let i = q
                .delivered
                .iter()
                .zip(b.delivered.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| q.delivered.len().min(b.delivered.len()));
            return Err(Failure {
                oracle: "metamorphic-batch".into(),
                label: Some(q.label),
                detail: format!(
                    "'{}': batched delivery differs from per-tuple: expected {} tuples, \
                     got {}; first divergence at #{i}: expected {:?}, got {:?}",
                    q.text,
                    q.delivered.len(),
                    b.delivered.len(),
                    q.delivered.get(i),
                    b.delivered.get(i)
                ),
            });
        }
        if b.epochs != q.epochs {
            return Err(Failure {
                oracle: "metamorphic-batch".into(),
                label: Some(q.label),
                detail: format!(
                    "'{}': executor epochs changed under batched publishing",
                    q.text
                ),
            });
        }
    }
    if batched.skipped_publishes != merged.skipped_publishes
        || batched.published.len() != merged.published.len()
    {
        return Err(Failure {
            oracle: "metamorphic-batch".into(),
            label: None,
            detail: format!(
                "accepted/skipped publish counts changed under batching: {}+{} vs {}+{}",
                merged.published.len(),
                merged.skipped_publishes,
                batched.published.len(),
                batched.skipped_publishes
            ),
        });
    }
    if strict && batched.digest != merged.digest {
        return Err(Failure {
            oracle: "metamorphic-batch".into(),
            label: None,
            detail: format!(
                "run digest changed under batched publishing: {:016x} vs {:016x}",
                merged.digest, batched.digest
            ),
        });
    }
    Ok(())
}

/// Assert that a deployed system's delivered results match the reference
/// evaluator for each `(query id, CQL text)` over `inputs` — the shared
/// helper behind `tests/distributed_vs_local.rs`-style pinned cases.
///
/// Queries must have been submitted before any of `inputs` were
/// published (cold start, single epoch); `inputs` is the full published
/// history in order.
pub fn assert_results_match_oracle(
    sys: &cosmos::Cosmos,
    queries: &[(QueryId, String)],
    inputs: &[Tuple],
) {
    for (qid, text) in queries {
        let analyzed = AnalyzedQuery::analyze(
            &cosmos_cql::parse_query(text).expect("query parses"),
            sys.catalog().schema_fn(),
        )
        .expect("query analyzes");
        let names: Vec<String> = analyzed.output_schema.names().map(str::to_string).collect();
        let want = normalize_expected(&oracle::evaluate(&analyzed, "ref", inputs), &names);
        let got = normalize_delivered(sys.results(*qid));
        assert_eq!(
            want, got,
            "deployment diverged from local evaluation for {text}"
        );
    }
}
