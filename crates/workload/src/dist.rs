//! Sampling distributions for workload generation.

use rand::Rng;

/// Popularity distribution over `n` items (streams), matching the
/// paper's "uniform or zipfian" query generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Popularity {
    /// Every item equally likely.
    Uniform,
    /// Zipf with skew `s`: `P(i) ∝ 1 / (i+1)^s`.
    Zipf(f64),
}

impl Popularity {
    /// Human-readable label used in experiment tables ("uniform",
    /// "zipf1.0", …).
    pub fn label(&self) -> String {
        match self {
            Popularity::Uniform => "uniform".to_string(),
            Popularity::Zipf(s) => format!("zipf{s}"),
        }
    }
}

/// A precomputed sampler for a [`Popularity`] over `n` items.
#[derive(Debug, Clone)]
pub struct PopularitySampler {
    cdf: Vec<f64>,
}

impl PopularitySampler {
    /// Build a sampler over `n` items.
    pub fn new(pop: Popularity, n: usize) -> PopularitySampler {
        assert!(n > 0, "cannot sample from zero items");
        let weights: Vec<f64> = match pop {
            Popularity::Uniform => vec![1.0; n],
            Popularity::Zipf(s) => (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect(),
        };
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        PopularitySampler { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one item index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of item `i`.
    pub fn mass(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(pop: Popularity, n: usize, draws: usize) -> Vec<usize> {
        let sampler = PopularitySampler::new(pop, n);
        let mut rng = StdRng::seed_from_u64(99);
        let mut h = vec![0usize; n];
        for _ in 0..draws {
            h[sampler.sample(&mut rng)] += 1;
        }
        h
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let h = histogram(Popularity::Uniform, 10, 20_000);
        for c in &h {
            assert!(*c > 1_500 && *c < 2_500, "count {c} too far from 2000");
        }
    }

    #[test]
    fn zipf_is_skewed_and_monotone() {
        let h = histogram(Popularity::Zipf(1.0), 10, 20_000);
        assert!(h[0] > 3 * h[4], "head not heavy enough: {h:?}");
        // stronger skew concentrates more mass on the head
        let h2 = histogram(Popularity::Zipf(2.0), 10, 20_000);
        assert!(h2[0] > h[0]);
    }

    #[test]
    fn masses_sum_to_one() {
        for pop in [Popularity::Uniform, Popularity::Zipf(1.5)] {
            let s = PopularitySampler::new(pop, 63);
            let total: f64 = (0..63).map(|i| s.mass(i)).sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert_eq!(s.len(), 63);
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn zipf_mass_follows_power_law() {
        let s = PopularitySampler::new(Popularity::Zipf(1.0), 100);
        // mass(0) / mass(9) ≈ 10 for s = 1
        let ratio = s.mass(0) / s.mass(9);
        assert!((ratio - 10.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn labels() {
        assert_eq!(Popularity::Uniform.label(), "uniform");
        assert_eq!(Popularity::Zipf(1.5).label(), "zipf1.5");
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn zero_items_rejected() {
        PopularitySampler::new(Popularity::Uniform, 0);
    }
}
