//! The auction-monitoring workload of Table 1.

use cosmos_query::{AttrStats, StatsCatalog, StreamStats};
use cosmos_types::{AttrType, Schema, Timestamp, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Table 1, q1: "Report all auctions that closed within three hours of
/// their opening."
pub const Q1: &str = "SELECT O.* \
    FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C \
    WHERE O.itemID = C.itemID";

/// Table 1, q2: "Report the items and buyers of auctions closed within
/// five hours of their opening." (The paper's `O.timetamp` typo is
/// corrected to `O.timestamp`.)
pub const Q2: &str = "SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp \
    FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C \
    WHERE O.itemID = C.itemID";

/// Table 1, q3: the representative query containing q1 and q2.
pub const Q3: &str = "SELECT O.*, C.buyerID, C.timestamp \
    FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C \
    WHERE O.itemID = C.itemID";

/// Schema of the `OpenAuction` stream (paper Section 4).
pub fn open_auction_schema() -> Schema {
    Schema::of(&[
        ("itemID", AttrType::Int),
        ("sellerID", AttrType::Int),
        ("start_price", AttrType::Float),
        ("timestamp", AttrType::Int),
    ])
}

/// Schema of the `ClosedAuction` stream (paper Section 4).
pub fn closed_auction_schema() -> Schema {
    Schema::of(&[
        ("itemID", AttrType::Int),
        ("buyerID", AttrType::Int),
        ("timestamp", AttrType::Int),
    ])
}

/// Statistics catalog for the auction streams.
pub fn auction_catalog(opens_per_hour: f64) -> StatsCatalog {
    let mut cat = StatsCatalog::new();
    let rate = opens_per_hour / 3600.0;
    cat.register(
        "OpenAuction",
        open_auction_schema(),
        StreamStats::with_rate(rate)
            .attr("itemID", AttrStats::categorical(10_000.0))
            .attr("sellerID", AttrStats::categorical(500.0))
            .attr("start_price", AttrStats::numeric(1.0, 1000.0, 2000.0)),
    );
    cat.register(
        "ClosedAuction",
        closed_auction_schema(),
        StreamStats::with_rate(rate)
            .attr("itemID", AttrStats::categorical(10_000.0))
            .attr("buyerID", AttrStats::categorical(2_000.0)),
    );
    cat
}

/// Deterministic generator of interleaved auction events: each item is
/// opened once and closed after a configurable random delay.
#[derive(Debug, Clone)]
pub struct AuctionGenerator {
    rng: StdRng,
    /// Mean time between openings, in milliseconds.
    pub open_every_ms: i64,
    /// Maximum open→close delay, in milliseconds.
    pub max_close_delay_ms: i64,
}

impl AuctionGenerator {
    /// Generator with an opening every `open_every_ms` and closings up
    /// to `max_close_delay_ms` later.
    pub fn new(seed: u64, open_every_ms: i64, max_close_delay_ms: i64) -> AuctionGenerator {
        AuctionGenerator {
            rng: StdRng::seed_from_u64(seed),
            open_every_ms,
            max_close_delay_ms,
        }
    }

    /// Generate `items` auctions as a timestamp-ordered event sequence.
    pub fn generate(&mut self, items: i64) -> Vec<Tuple> {
        let mut events = Vec::with_capacity(2 * items as usize);
        for item in 0..items {
            let open_ts =
                item * self.open_every_ms + self.rng.gen_range(0..self.open_every_ms.max(1));
            let close_ts = open_ts + self.rng.gen_range(0..=self.max_close_delay_ms);
            let seller = self.rng.gen_range(0..500i64);
            let buyer = self.rng.gen_range(0..2000i64);
            let price = (self.rng.gen_range(1.0..1000.0f64) * 100.0).round() / 100.0;
            events.push(Tuple::new(
                "OpenAuction",
                Timestamp(open_ts),
                vec![
                    Value::Int(item),
                    Value::Int(seller),
                    Value::Float(price),
                    Value::Int(open_ts),
                ],
            ));
            events.push(Tuple::new(
                "ClosedAuction",
                Timestamp(close_ts),
                vec![Value::Int(item), Value::Int(buyer), Value::Int(close_ts)],
            ));
        }
        events.sort_by_key(|t| t.timestamp);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_cql::parse_query;

    #[test]
    fn table1_queries_parse_and_analyze() {
        let cat = auction_catalog(60.0);
        for text in [Q1, Q2, Q3] {
            let q = parse_query(text).unwrap();
            cosmos_spe::AnalyzedQuery::analyze(&q, cat.schema_fn())
                .unwrap_or_else(|e| panic!("{text}: {e}"));
        }
    }

    #[test]
    fn events_are_ordered_and_paired() {
        let mut g = AuctionGenerator::new(7, 60_000, 6 * 3_600_000);
        let ev = g.generate(100);
        assert_eq!(ev.len(), 200);
        for w in ev.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
        let opens = ev
            .iter()
            .filter(|t| t.stream.as_str() == "OpenAuction")
            .count();
        assert_eq!(opens, 100);
        // every close follows its open
        let open_schema = open_auction_schema();
        let closed_schema = closed_auction_schema();
        for item in 0..100i64 {
            let open = ev
                .iter()
                .find(|t| {
                    t.stream.as_str() == "OpenAuction"
                        && t.get_by_name(&open_schema, "itemID") == Some(&Value::Int(item))
                })
                .unwrap();
            let close = ev
                .iter()
                .find(|t| {
                    t.stream.as_str() == "ClosedAuction"
                        && t.get_by_name(&closed_schema, "itemID") == Some(&Value::Int(item))
                })
                .unwrap();
            assert!(close.timestamp >= open.timestamp);
            assert!(
                (close.timestamp - open.timestamp).millis() <= 6 * 3_600_000,
                "close delay out of range"
            );
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = AuctionGenerator::new(1, 1000, 10_000).generate(20);
        let b = AuctionGenerator::new(1, 1000, 10_000).generate(20);
        assert_eq!(a, b);
        let c = AuctionGenerator::new(2, 1000, 10_000).generate(20);
        assert_ne!(a, c);
    }

    #[test]
    fn q1_q2_merge_into_q3_shape() {
        // Cross-check with the query layer: the paper's q3 is exactly
        // merge(q1, q2) up to column order.
        let cat = auction_catalog(60.0);
        let analyze = |t: &str| {
            cosmos_spe::AnalyzedQuery::analyze(&parse_query(t).unwrap(), cat.schema_fn()).unwrap()
        };
        let rep = cosmos_query::merge(&analyze(Q1), &analyze(Q2)).unwrap();
        let q3 = analyze(Q3);
        let cols = |a: &cosmos_spe::AnalyzedQuery| {
            a.output_schema
                .names()
                .map(str::to_string)
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert_eq!(cols(&rep), cols(&q3));
        assert!(cosmos_query::contained(&analyze(Q1), &q3));
        assert!(cosmos_query::contained(&analyze(Q2), &q3));
    }
}
