#![forbid(unsafe_code)]
//! Workload generators for the COSMOS experiments.
//!
//! The paper's preliminary study (Section 5) uses:
//!
//! * the **SensorScope** environmental-sensing dataset — "63 streams"
//!   measuring "key environmental data such as air temperature and
//!   humidity etc." — emulated here by [`sensor`], a deterministic
//!   synthetic generator with matching schemas, rates and value
//!   distributions;
//! * randomly generated queries — "randomly selecting the involved
//!   streams, their window sizes and the filtering predicates based on a
//!   distribution (uniform or zipfian)" — implemented by [`querygen`];
//! * the **auction monitoring** application of Table 1 (`OpenAuction` /
//!   `ClosedAuction`), implemented by [`auction`] together with the
//!   verbatim `q1`/`q2`/`q3` query texts.
//!
//! All generators are seeded and fully deterministic.

pub mod auction;
pub mod disorder;
pub mod dist;
pub mod querygen;
pub mod sensor;

pub use disorder::DisorderSpec;
pub use dist::Popularity;
pub use querygen::{QueryGenConfig, QueryGenerator};
pub use sensor::{sensor_catalog, SensorGenerator, SENSOR_STREAMS};
