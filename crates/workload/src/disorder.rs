//! Seeded disorder injection: bounded timestamp skew, straggler delay,
//! and duplicate injection over a generated publish sequence.
//!
//! The sensor-network setting the paper targets is exactly where
//! disorder is the norm: datagrams from independent deployments race
//! each other through the overlay, a slow link turns a tuple into a
//! straggler, and retransmission duplicates it. [`DisorderSpec`] models
//! all three as a deterministic, seeded transform over an in-order
//! merged publish sequence:
//!
//! * every tuple's *arrival position* is perturbed by a uniform skew in
//!   `[0, skew_ms]`;
//! * with probability `straggler_prob` a tuple is additionally delayed
//!   by a uniform draw in `[1, straggler_ms]`;
//! * with probability `duplicate_prob` an exact copy of the tuple is
//!   re-injected behind the original by a uniform draw in
//!   `[1, straggler_ms]`.
//!
//! Application timestamps are never rewritten — only the order tuples
//! are *published* in changes — so the disordered sequence converges to
//! the same answers as the in-order one once every watermark has
//! passed. The total displacement of any non-duplicate tuple is at most
//! `skew_ms + straggler_ms`, which is why [`DisorderSpec::bound`]
//! (one more than that) is a sound watermark lag: see DESIGN.md §13.

use cosmos_types::{TimeDelta, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A seeded disorder transform, recorded verbatim in the scenario JSON
/// so replays stay bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisorderSpec {
    /// Seed of the transform's own RNG (independent of the scenario
    /// seed so shrinking one does not reshuffle the other).
    pub seed: u64,
    /// Maximum uniform per-tuple arrival skew, in milliseconds.
    pub skew_ms: i64,
    /// Maximum additional straggler delay, in milliseconds.
    pub straggler_ms: i64,
    /// Probability a tuple becomes a straggler.
    pub straggler_prob: f64,
    /// Probability a tuple is duplicated behind itself.
    pub duplicate_prob: f64,
}

impl DisorderSpec {
    /// The watermark lag this disorder is covered by: a tuple published
    /// at virtual time `t` arrives at most `skew_ms + straggler_ms`
    /// late, so a watermark of `high_water − bound()` never overtakes a
    /// non-duplicate tuple (the `+ 1` keeps the boundary strict).
    pub fn bound(&self) -> TimeDelta {
        TimeDelta::from_millis(self.skew_ms + self.straggler_ms + 1)
    }

    /// Apply the transform to an in-order publish sequence.
    ///
    /// Each tuple is assigned an arrival key `timestamp + skew
    /// (+ straggler)`; duplicates get the original's key plus a strictly
    /// positive offset. The result is the input stably sorted by
    /// `(arrival key, original index)` — deterministic for a given
    /// `seed`, timestamps untouched.
    pub fn apply(&self, tuples: &[Tuple]) -> Vec<Tuple> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xD150_4DE5);
        let mut keyed: Vec<(i64, usize, Tuple)> = Vec::with_capacity(tuples.len());
        for (i, t) in tuples.iter().enumerate() {
            let mut key = t.timestamp.millis() + rng.gen_range(0..=self.skew_ms.max(0));
            if self.straggler_ms > 0 && rng.gen_bool(self.straggler_prob.clamp(0.0, 1.0)) {
                key += rng.gen_range(1..=self.straggler_ms);
            }
            keyed.push((key, i, t.clone()));
            if self.straggler_ms > 0 && rng.gen_bool(self.duplicate_prob.clamp(0.0, 1.0)) {
                let dup_key = key + rng.gen_range(1..=self.straggler_ms);
                keyed.push((dup_key, i, t.clone()));
            }
        }
        keyed.sort_by_key(|(key, i, _)| (*key, *i));
        keyed.into_iter().map(|(_, _, t)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_types::{Timestamp, Value};

    fn seq(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| Tuple::new("S", Timestamp(i * 100), vec![Value::Int(i)]))
            .collect()
    }

    fn spec() -> DisorderSpec {
        DisorderSpec {
            seed: 7,
            skew_ms: 250,
            straggler_ms: 1_000,
            straggler_prob: 0.3,
            duplicate_prob: 0.2,
        }
    }

    #[test]
    fn apply_is_deterministic_and_preserves_timestamps() {
        let input = seq(200);
        let a = spec().apply(&input);
        let b = spec().apply(&input);
        assert_eq!(a, b);
        // Every original tuple survives (duplicates only add).
        assert!(a.len() >= input.len());
        let mut sorted: Vec<&Tuple> = a.iter().collect();
        sorted.sort_by_key(|t| t.timestamp);
        sorted.dedup_by_key(|t| t.timestamp);
        assert_eq!(sorted.len(), input.len());
    }

    #[test]
    fn displacement_is_bounded_without_duplicates() {
        let mut s = spec();
        s.duplicate_prob = 0.0;
        let input = seq(500);
        let out = s.apply(&input);
        let bound = s.bound().millis();
        // A tuple can only be overtaken by tuples whose timestamp is
        // within the displacement bound: whenever t precedes u in the
        // disordered order, u.ts > t.ts − bound. (Only duplicates may
        // trail further — they are deduplicated at the executor.)
        let mut min_seen = i64::MAX;
        for t in out.iter().rev() {
            min_seen = min_seen.min(t.timestamp.millis());
            assert!(t.timestamp.millis() < min_seen + bound);
        }
    }

    #[test]
    fn duplicates_trail_their_original() {
        let input = seq(300);
        let out = spec().apply(&input);
        assert!(out.len() > input.len(), "expected injected duplicates");
        // Exactly-equal copies: the first occurrence is the original,
        // every further occurrence arrives strictly later in the order.
        let mut last = std::collections::HashMap::new();
        for (pos, t) in out.iter().enumerate() {
            if let Some(prev) = last.insert(t.timestamp, pos) {
                assert!(pos > prev);
                assert_eq!(out[prev], *t);
            }
        }
    }

    #[test]
    fn zero_disorder_is_identity() {
        let input = seq(50);
        let id = DisorderSpec {
            seed: 1,
            skew_ms: 0,
            straggler_ms: 0,
            straggler_prob: 0.0,
            duplicate_prob: 0.0,
        };
        assert_eq!(id.apply(&input), input);
    }

    #[test]
    fn serde_round_trip() {
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<DisorderSpec>(&json).unwrap(), s);
    }
}
