//! The planted watermark-gating bug must actually change behavior —
//! otherwise the CI canary that relies on it proves nothing. Kept in
//! its own test binary because the fault-injection flag is
//! process-global.

use cosmos_cql::parse_query;
use cosmos_spe::{faultinject, AnalyzedQuery, Executor, LatePolicy};
use cosmos_types::{AttrType, Schema, TimeDelta, Timestamp, Tuple, Value};

fn s(ts: i64, k: i64) -> Tuple {
    Tuple::new("S", Timestamp(ts), vec![Value::Int(k)])
}

#[test]
fn skip_watermark_gating_processes_arrival_order() {
    let catalog = |n: &str| (n == "S").then(|| Schema::of(&[("k", AttrType::Int)]));
    let q = AnalyzedQuery::analyze(
        &parse_query("SELECT k, COUNT(*) FROM S [Range 10 Second] GROUP BY k").unwrap(),
        catalog,
    )
    .unwrap();
    let mut ex = Executor::new(q, "result").unwrap();
    ex.enable_disorder(LatePolicy::Revise {
        grace: TimeDelta::from_millis(1_000),
    });
    faultinject::set_skip_watermark_gating(true);
    // Out-of-order arrivals are processed immediately instead of being
    // staged — exactly the bug the convergence oracle must catch.
    let out1 = ex.push_out_of_order(&s(2_000, 1));
    let out2 = ex.push_out_of_order(&s(1_000, 1));
    faultinject::set_skip_watermark_gating(false);
    assert_eq!(out1.len(), 1);
    assert_eq!(out2.len(), 1);
    assert_eq!(out2[0].timestamp, Timestamp(1_000));
    let st = ex.disorder_stats().unwrap();
    assert_eq!((st.arrived, st.drained, st.staged), (2, 2, 0));
    assert!(st.conserved());
    // Duplicates are still deduplicated even with gating disabled.
    faultinject::set_skip_watermark_gating(true);
    assert!(ex.push_out_of_order(&s(2_000, 1)).is_empty());
    faultinject::set_skip_watermark_gating(false);
    assert_eq!(ex.disorder_stats().unwrap().duplicates, 1);
}
