//! Executor edge cases beyond the unit suite: timestamp-order
//! enforcement, tie handling, empty/degenerate inputs, and long-running
//! window hygiene.

use cosmos_cql::parse_query;
use cosmos_spe::{AnalyzedQuery, Executor};
use cosmos_types::{AttrType, Schema, Timestamp, Tuple, Value};

fn catalog(name: &str) -> Option<Schema> {
    matches!(name, "L" | "R").then(|| {
        Schema::of(&[
            ("k", AttrType::Int),
            ("v", AttrType::Int),
            ("timestamp", AttrType::Int),
        ])
    })
}

fn executor(text: &str) -> Executor {
    let q = AnalyzedQuery::analyze(&parse_query(text).unwrap(), catalog).unwrap();
    Executor::new(q, "out").unwrap()
}

fn t(stream: &str, ts: i64, k: i64, v: i64) -> Tuple {
    Tuple::new(
        stream,
        Timestamp(ts),
        vec![Value::Int(k), Value::Int(v), Value::Int(ts)],
    )
}

#[test]
#[should_panic(expected = "timestamp order")]
#[cfg(debug_assertions)]
fn out_of_order_arrivals_are_rejected_in_debug() {
    let mut ex = executor("SELECT k FROM L [Now]");
    ex.push(&t("L", 10_000, 1, 1));
    ex.push(&t("L", 5_000, 1, 1)); // goes backwards
}

#[test]
fn equal_timestamps_are_fine() {
    let mut ex = executor("SELECT k FROM L [Now]");
    assert_eq!(ex.push(&t("L", 1_000, 1, 1)).len(), 1);
    assert_eq!(ex.push(&t("L", 1_000, 2, 2)).len(), 1);
    assert_eq!(ex.push(&t("L", 1_000, 3, 3)).len(), 1);
}

#[test]
fn join_ties_at_identical_timestamps() {
    // Both streams deliver at the same instant; [Now] windows on both
    // sides must pair them regardless of arrival interleaving.
    let mut ex = executor("SELECT A.k FROM L [Now] A, R [Now] B WHERE A.k = B.k");
    let mut total = 0;
    total += ex.push(&t("L", 1_000, 7, 0)).len();
    total += ex.push(&t("R", 1_000, 7, 0)).len();
    assert_eq!(total, 1);
    // reversed interleaving at the next instant
    let mut total = 0;
    total += ex.push(&t("R", 2_000, 8, 0)).len();
    total += ex.push(&t("L", 2_000, 8, 0)).len();
    assert_eq!(total, 1);
}

#[test]
fn long_run_windows_stay_bounded() {
    // One million milliseconds of data through a 5-second join window:
    // buffers must stay small (eviction works), and the executor must
    // keep producing.
    let mut ex =
        executor("SELECT A.k FROM L [Range 5 Second] A, R [Range 5 Second] B WHERE A.k = B.k");
    let mut produced = 0usize;
    for i in 0..2_000i64 {
        let ts = i * 500;
        produced += ex.push(&t("L", ts, i % 3, i)).len();
        produced += ex.push(&t("R", ts + 100, i % 3, i)).len();
    }
    assert!(produced > 0);
    // 5s window at 2 tuples/s per stream ≈ 10 buffered per side; the
    // executor's consumed counter confirms it actually saw everything.
    assert_eq!(ex.consumed(), 4_000);
}

#[test]
fn no_matching_stream_means_silence() {
    let mut ex = executor("SELECT k FROM L [Now]");
    for i in 0..50 {
        assert!(ex.push(&t("R", i * 100, i, i)).is_empty());
    }
    assert_eq!(ex.consumed(), 0);
    assert_eq!(ex.emitted(), 0);
}

#[test]
fn aggregate_single_group_lifecycle() {
    // A group empties out entirely (all members evicted) and then
    // repopulates; counts must restart from 1, not accumulate.
    let mut ex = executor("SELECT k, COUNT(*) FROM L [Range 2 Second] GROUP BY k");
    let r1 = ex.push(&t("L", 0, 5, 0));
    assert_eq!(r1[0].values()[1], Value::Int(1));
    let r2 = ex.push(&t("L", 1_000, 5, 0));
    assert_eq!(r2[0].values()[1], Value::Int(2));
    // 10 seconds later: the group has been empty for a long time
    let r3 = ex.push(&t("L", 10_000, 5, 0));
    assert_eq!(r3[0].values()[1], Value::Int(1));
}

#[test]
fn result_stream_tag_and_schema_are_stable() {
    let mut ex = executor("SELECT k, v FROM L [Now] WHERE v >= 0");
    let out = ex.push(&t("L", 0, 1, 2));
    assert_eq!(out[0].stream.as_str(), "out");
    assert_eq!(
        ex.result_schema().names().collect::<Vec<_>>(),
        vec!["k", "v"]
    );
    assert_eq!(out[0].values().len(), ex.result_schema().arity());
}
