//! Directed tests for the executor's late-tuple policies: one per
//! policy × operator kind (COUNT/SUM/AVG/MIN aggregates, DISTINCT
//! selection, window join), plus duplicate-injection dedup inside the
//! grace window and shed-counter conservation accounting.
//!
//! The canary fault injection (`faultinject::skip_watermark_gating`) is
//! process-global, so its test lives in its own integration binary
//! (`canary_gating.rs`) and never races these.

use cosmos_cql::parse_query;
use cosmos_spe::{AnalyzedQuery, Executor, LatePolicy};
use cosmos_types::{AttrType, Schema, TimeDelta, Timestamp, Tuple, Value};

fn catalog(name: &str) -> Option<Schema> {
    match name {
        "Open" => Some(Schema::of(&[
            ("itemID", AttrType::Int),
            ("start_price", AttrType::Float),
        ])),
        "Closed" => Some(Schema::of(&[
            ("itemID", AttrType::Int),
            ("buyerID", AttrType::Int),
        ])),
        "S" => Some(Schema::of(&[("k", AttrType::Int), ("v", AttrType::Float)])),
        _ => None,
    }
}

fn executor(text: &str, policy: LatePolicy) -> Executor {
    let q = AnalyzedQuery::analyze(&parse_query(text).unwrap(), catalog).unwrap();
    let mut ex = Executor::new(q, "result").unwrap();
    ex.enable_disorder(policy);
    ex
}

fn s(ts: i64, k: i64, v: f64) -> Tuple {
    Tuple::new("S", Timestamp(ts), vec![Value::Int(k), Value::Float(v)])
}

fn open(ts: i64, item: i64) -> Tuple {
    Tuple::new(
        "Open",
        Timestamp(ts),
        vec![Value::Int(item), Value::Float(1.0)],
    )
}

fn closed(ts: i64, item: i64, buyer: i64) -> Tuple {
    Tuple::new(
        "Closed",
        Timestamp(ts),
        vec![Value::Int(item), Value::Int(buyer)],
    )
}

fn revise(grace_ms: i64) -> LatePolicy {
    LatePolicy::Revise {
        grace: TimeDelta::from_millis(grace_ms),
    }
}

#[test]
fn watermark_releases_staged_tuples_in_timestamp_order() {
    let mut ex = executor("SELECT k FROM S [Now]", LatePolicy::Drop);
    assert!(ex.push_out_of_order(&s(3_000, 3, 0.0)).is_empty());
    assert!(ex.push_out_of_order(&s(1_000, 1, 0.0)).is_empty());
    assert!(ex.push_out_of_order(&s(2_000, 2, 0.0)).is_empty());
    assert_eq!(ex.state_size().staging_rows, 3);
    let out = ex.advance_watermark(&"S".into(), Timestamp(2_500));
    let ks: Vec<_> = out.iter().map(|t| t.values()[0].clone()).collect();
    assert_eq!(ks, vec![Value::Int(1), Value::Int(2)]);
    assert_eq!(ex.frontier(), Some(Timestamp(2_500)));
    let st = ex.disorder_stats().unwrap();
    assert_eq!((st.arrived, st.drained, st.staged), (3, 2, 1));
    assert!(st.conserved());
}

#[test]
fn drop_policy_sheds_late_sum() {
    let mut ex = executor(
        "SELECT k, SUM(v) FROM S [Range 10 Second] GROUP BY k",
        LatePolicy::Drop,
    );
    ex.push_out_of_order(&s(1_000, 1, 10.0));
    ex.push_out_of_order(&s(3_000, 1, 30.0));
    let out = ex.advance_watermark(&"S".into(), Timestamp(4_000));
    assert_eq!(out.len(), 2);
    assert_eq!(out[1].values(), &[Value::Int(1), Value::Float(40.0)]);
    // Late arrival behind the frontier: shed, counted, no output.
    assert!(ex.push_out_of_order(&s(2_000, 1, 20.0)).is_empty());
    let st = ex.disorder_stats().unwrap();
    assert_eq!((st.shed, st.drained, st.late), (1, 2, 0));
    assert!(st.conserved());
    // The shed tuple never contaminates later windows.
    ex.push_out_of_order(&s(5_000, 1, 5.0));
    let out = ex.advance_watermark(&"S".into(), Timestamp(6_000));
    assert_eq!(out[0].values(), &[Value::Int(1), Value::Float(45.0)]);
}

#[test]
fn revise_policy_folds_late_tuple_into_sum() {
    let mut ex = executor(
        "SELECT k, SUM(v) FROM S [Range 10 Second] GROUP BY k",
        revise(5_000),
    );
    ex.push_out_of_order(&s(1_000, 1, 10.0));
    let out = ex.advance_watermark(&"S".into(), Timestamp(2_000));
    assert_eq!(out[0].values(), &[Value::Int(1), Value::Float(10.0)]);
    ex.push_out_of_order(&s(3_000, 1, 30.0));
    let out = ex.advance_watermark(&"S".into(), Timestamp(4_000));
    assert_eq!(out[0].values(), &[Value::Int(1), Value::Float(40.0)]);
    // Late tuple within grace: its own row as-of t=2000, then a
    // revision of the already-emitted row at t=3000.
    let out = ex.push_out_of_order(&s(2_000, 1, 20.0));
    assert_eq!(out.len(), 2);
    assert_eq!(out[0].timestamp, Timestamp(2_000));
    assert_eq!(out[0].values(), &[Value::Int(1), Value::Float(30.0)]);
    assert_eq!(out[1].timestamp, Timestamp(3_000));
    assert_eq!(out[1].values(), &[Value::Int(1), Value::Float(60.0)]);
    let st = ex.disorder_stats().unwrap();
    assert_eq!((st.late, st.revisions, st.shed), (1, 1, 0));
    assert!(st.conserved());
    // In-order processing resumes with the late tuple folded in.
    ex.push_out_of_order(&s(5_000, 1, 5.0));
    let out = ex.advance_watermark(&"S".into(), Timestamp(6_000));
    assert_eq!(out[0].values(), &[Value::Int(1), Value::Float(65.0)]);
}

#[test]
fn revise_policy_folds_late_tuple_into_count() {
    let mut ex = executor(
        "SELECT k, COUNT(*) FROM S [Range 10 Second] GROUP BY k",
        revise(5_000),
    );
    ex.push_out_of_order(&s(1_000, 1, 0.0));
    ex.push_out_of_order(&s(3_000, 1, 0.0));
    ex.advance_watermark(&"S".into(), Timestamp(4_000));
    let out = ex.push_out_of_order(&s(2_000, 1, 0.0));
    assert_eq!(out.len(), 2);
    assert_eq!(out[0].values(), &[Value::Int(1), Value::Int(2)]);
    assert_eq!(out[1].values(), &[Value::Int(1), Value::Int(3)]);
}

#[test]
fn revise_policy_folds_late_tuple_into_avg_and_min() {
    let mut ex = executor(
        "SELECT k, AVG(v), MIN(v) FROM S [Range 10 Second] GROUP BY k",
        revise(5_000),
    );
    ex.push_out_of_order(&s(1_000, 1, 10.0));
    ex.push_out_of_order(&s(3_000, 1, 30.0));
    ex.advance_watermark(&"S".into(), Timestamp(4_000));
    let out = ex.push_out_of_order(&s(2_000, 1, 5.0));
    assert_eq!(out.len(), 2);
    assert_eq!(
        out[0].values(),
        &[Value::Int(1), Value::Float(7.5), Value::Float(5.0)]
    );
    assert_eq!(
        out[1].values(),
        &[Value::Int(1), Value::Float(15.0), Value::Float(5.0)]
    );
}

#[test]
fn revisions_respect_window_expiry() {
    let mut ex = executor(
        "SELECT k, SUM(v) FROM S [Range 2 Second] GROUP BY k",
        revise(20_000),
    );
    ex.push_out_of_order(&s(1_000, 1, 10.0));
    ex.push_out_of_order(&s(6_000, 1, 60.0));
    ex.advance_watermark(&"S".into(), Timestamp(7_000));
    // Late t=2000: inside t=1000's neighborhood but more than one
    // window ahead of it lies t=6000, which must NOT be revised.
    let out = ex.push_out_of_order(&s(2_000, 1, 20.0));
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].timestamp, Timestamp(2_000));
    assert_eq!(out[0].values(), &[Value::Int(1), Value::Float(30.0)]);
}

#[test]
fn late_beyond_grace_is_shed_under_revise() {
    let mut ex = executor(
        "SELECT k, SUM(v) FROM S [Range 10 Second] GROUP BY k",
        revise(1_000),
    );
    ex.push_out_of_order(&s(1_000, 1, 10.0));
    ex.advance_watermark(&"S".into(), Timestamp(4_000));
    // t=2500 is behind frontier − grace = 3000: shed, not revised.
    assert!(ex.push_out_of_order(&s(2_500, 1, 20.0)).is_empty());
    let st = ex.disorder_stats().unwrap();
    assert_eq!((st.shed, st.late, st.revisions), (1, 0, 0));
    assert!(st.conserved());
}

#[test]
fn drop_policy_drops_late_distinct() {
    let mut ex = executor("SELECT DISTINCT k FROM S [Now]", LatePolicy::Drop);
    ex.push_out_of_order(&s(1_000, 7, 0.0));
    assert_eq!(ex.advance_watermark(&"S".into(), Timestamp(2_000)).len(), 1);
    assert!(ex.push_out_of_order(&s(500, 8, 0.0)).is_empty());
    assert_eq!(ex.disorder_stats().unwrap().shed, 1);
}

#[test]
fn revise_policy_emits_late_distinct_as_of_its_timestamp() {
    let mut ex = executor("SELECT DISTINCT k FROM S [Now]", revise(5_000));
    ex.push_out_of_order(&s(1_000, 7, 0.0));
    assert_eq!(ex.advance_watermark(&"S".into(), Timestamp(2_000)).len(), 1);
    // Late tuple with an already-seen value: suppressed by DISTINCT.
    assert!(ex.push_out_of_order(&s(500, 7, 1.0)).is_empty());
    // Late tuple with a fresh value: emitted as of its own timestamp.
    let out = ex.push_out_of_order(&s(600, 8, 0.0));
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].timestamp, Timestamp(600));
    assert_eq!(out[0].values(), &[Value::Int(8)]);
    let st = ex.disorder_stats().unwrap();
    assert_eq!((st.late, st.revisions), (2, 0));
    assert!(st.conserved());
}

#[test]
fn drop_policy_sheds_late_join_side() {
    let mut ex = executor(
        "SELECT O.itemID, C.buyerID FROM Open [Range 1 Hour] O, Closed [Range 1 Hour] C \
         WHERE O.itemID = C.itemID",
        LatePolicy::Drop,
    );
    ex.push_out_of_order(&open(0, 1));
    ex.advance_watermark(&"Open".into(), Timestamp(500));
    // Frontier is the min over BOTH input streams' watermarks.
    assert_eq!(ex.frontier(), Some(Timestamp(i64::MIN)));
    ex.advance_watermark(&"Closed".into(), Timestamp(500));
    assert_eq!(ex.frontier(), Some(Timestamp(500)));
    ex.push_out_of_order(&closed(2_000, 1, 99));
    ex.advance_watermark(&"Open".into(), Timestamp(3_000));
    let out = ex.advance_watermark(&"Closed".into(), Timestamp(3_000));
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].values(), &[Value::Int(1), Value::Int(99)]);
    // A late opening is shed and completes nothing.
    assert!(ex.push_out_of_order(&open(1_500, 1)).is_empty());
    assert_eq!(ex.disorder_stats().unwrap().shed, 1);
}

#[test]
fn revise_policy_completes_missed_join_combinations() {
    let mut ex = executor(
        "SELECT O.itemID, C.buyerID FROM Open [Range 1 Hour] O, Closed [Range 1 Hour] C \
         WHERE O.itemID = C.itemID",
        revise(10_000),
    );
    ex.push_out_of_order(&open(0, 1));
    ex.push_out_of_order(&closed(2_000, 1, 99));
    ex.advance_watermark(&"Open".into(), Timestamp(3_000));
    let out = ex.advance_watermark(&"Closed".into(), Timestamp(3_000));
    assert_eq!(out.len(), 1);
    // The late opening joins the already-processed closing; the
    // combination is stamped with the latest member's timestamp.
    let out = ex.push_out_of_order(&open(1_500, 1));
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].timestamp, Timestamp(2_000));
    assert_eq!(out[0].values(), &[Value::Int(1), Value::Int(99)]);
    // A later closing still sees the revised-in opening.
    ex.push_out_of_order(&closed(4_000, 1, 100));
    ex.advance_watermark(&"Open".into(), Timestamp(5_000));
    let out = ex.advance_watermark(&"Closed".into(), Timestamp(5_000));
    assert_eq!(out.len(), 2);
    assert!(ex.disorder_stats().unwrap().conserved());
}

#[test]
fn duplicates_are_discarded_inside_the_grace_window() {
    let mut ex = executor(
        "SELECT k, SUM(v) FROM S [Range 10 Second] GROUP BY k",
        revise(10_000),
    );
    let t1 = s(1_000, 1, 10.0);
    ex.push_out_of_order(&t1);
    // Duplicate of a staged tuple.
    assert!(ex.push_out_of_order(&t1).is_empty());
    ex.advance_watermark(&"S".into(), Timestamp(5_000));
    // Duplicate of a drained tuple, still inside the grace window.
    assert!(ex.push_out_of_order(&t1).is_empty());
    let st = ex.disorder_stats().unwrap();
    assert_eq!((st.arrived, st.drained, st.duplicates), (3, 1, 2));
    assert_eq!((st.late, st.revisions, st.shed), (0, 0, 0));
    assert!(st.conserved());
}

#[test]
fn dedup_memory_is_released_past_the_grace_window() {
    let mut ex = executor("SELECT k FROM S [Now]", LatePolicy::Drop);
    let t1 = s(1_000, 1, 0.0);
    ex.push_out_of_order(&t1);
    ex.advance_watermark(&"S".into(), Timestamp(2_000));
    // With zero grace the dedup entry is evicted once the frontier
    // passes it; the copy re-arrives late and is shed instead.
    assert!(ex.push_out_of_order(&t1).is_empty());
    let st = ex.disorder_stats().unwrap();
    assert_eq!((st.shed, st.duplicates), (1, 0));
    assert!(st.conserved());
}

#[test]
fn flush_drains_staging_without_moving_the_frontier() {
    let mut ex = executor("SELECT k FROM S [Now]", revise(1_000));
    ex.push_out_of_order(&s(2_000, 2, 0.0));
    ex.push_out_of_order(&s(1_000, 1, 0.0));
    let out = ex.flush_staged();
    let ks: Vec<_> = out.iter().map(|t| t.values()[0].clone()).collect();
    assert_eq!(ks, vec![Value::Int(1), Value::Int(2)]);
    assert_eq!(ex.frontier(), Some(Timestamp(i64::MIN)));
    let st = ex.disorder_stats().unwrap();
    assert_eq!((st.arrived, st.drained, st.staged), (2, 2, 0));
    assert!(st.conserved());
}

#[test]
fn conservation_holds_across_a_mixed_feed() {
    let mut ex = executor(
        "SELECT k, COUNT(*) FROM S [Range 10 Second] GROUP BY k",
        revise(2_000),
    );
    ex.push_out_of_order(&s(1_000, 1, 0.0));
    ex.push_out_of_order(&s(1_000, 1, 0.0)); // duplicate
    ex.push_out_of_order(&s(4_000, 1, 0.0));
    ex.advance_watermark(&"S".into(), Timestamp(5_000));
    ex.push_out_of_order(&s(4_500, 1, 0.0)); // late, within grace
    ex.push_out_of_order(&s(2_000, 1, 0.0)); // late, beyond grace
    ex.push_out_of_order(&s(9_000, 1, 0.0)); // staged
    let st = ex.disorder_stats().unwrap();
    assert_eq!(st.arrived, 6);
    assert_eq!(st.drained, 3);
    assert_eq!(st.staged, 1);
    assert_eq!(st.shed, 1);
    assert_eq!(st.duplicates, 1);
    assert_eq!(st.late, 1);
    assert!(st.conserved());
    assert_eq!(ex.state_size().staging_rows, 1);
}
