//! Semantic analysis: from parsed CQL to a bound, normalized query.

use cosmos_cbn::{Conjunction, DiffRange, Profile, Projection};
use cosmos_cql::{AggFunc, AttrRef, CmpOp, Operand, Predicate, Query, SelectItem};
use cosmos_types::{AttrType, CosmosError, Field, Result, Schema, StreamName, TimeDelta, Value};
use std::collections::BTreeSet;

/// A fully qualified attribute: stream binding (alias) plus attribute name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QAttr {
    /// The stream binding (alias or stream name).
    pub binding: String,
    /// The attribute name inside that stream.
    pub name: String,
}

impl QAttr {
    /// Construct a qualified attribute.
    pub fn new(binding: impl Into<String>, name: impl Into<String>) -> QAttr {
        QAttr {
            binding: binding.into(),
            name: name.into(),
        }
    }

    /// The `binding.name` form used in multi-stream result schemas.
    pub fn qualified(&self) -> String {
        format!("{}.{}", self.binding, self.name)
    }
}

impl std::fmt::Display for QAttr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.binding, self.name)
    }
}

/// One stream of the `FROM` clause after binding.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundStream {
    /// The stream's registered name.
    pub stream: StreamName,
    /// The binding qualifying its attributes in this query.
    pub binding: String,
    /// The window size `T` (`0` = `[Now]`, `∞` = `[Unbounded]`).
    pub window: TimeDelta,
    /// The stream's schema.
    pub schema: Schema,
}

/// A canonicalized equi-join predicate between two different streams.
///
/// `left` always orders before `right` by `(binding, name)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JoinPred {
    /// Lexicographically smaller side.
    pub left: QAttr,
    /// Lexicographically larger side.
    pub right: QAttr,
}

impl JoinPred {
    /// Canonicalize an equi-join between two qualified attributes.
    pub fn new(a: QAttr, b: QAttr) -> JoinPred {
        if a <= b {
            JoinPred { left: a, right: b }
        } else {
            JoinPred { left: b, right: a }
        }
    }
}

/// One column of the output schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OutputColumn {
    /// A plain attribute.
    Attr(QAttr),
    /// An aggregate (`None` argument = `COUNT(*)`).
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// Its argument.
        arg: Option<QAttr>,
    },
}

/// A bound, normalized select-project-join(-aggregate) continuous query.
///
/// This is the representation the whole query layer works on: the
/// containment theorems, representative-query synthesis and profile
/// composition all operate on `AnalyzedQuery`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedQuery {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// The bound streams, in `FROM` order.
    pub streams: Vec<BoundStream>,
    /// Per-stream selection conjunction over *bare* attribute names,
    /// parallel to `streams`.
    pub selections: Vec<Conjunction>,
    /// Canonical equi-join predicates between different streams.
    pub joins: BTreeSet<JoinPred>,
    /// Output columns, in `SELECT` order (stars expanded).
    pub output: Vec<OutputColumn>,
    /// Grouping attributes (empty for non-aggregate queries).
    pub group_by: Vec<QAttr>,
    /// The derived result-stream schema.
    pub output_schema: Schema,
}

impl AnalyzedQuery {
    /// Analyze a parsed query against a schema catalog.
    pub fn analyze<F>(q: &Query, schema_of: F) -> Result<AnalyzedQuery>
    where
        F: Fn(&str) -> Option<Schema>,
    {
        let mut streams = Vec::with_capacity(q.from.len());
        for sref in &q.from {
            let schema = schema_of(&sref.stream)
                .ok_or_else(|| CosmosError::Analyze(format!("unknown stream '{}'", sref.stream)))?;
            let binding = sref.binding().to_string();
            if streams.iter().any(|b: &BoundStream| b.binding == binding) {
                return Err(CosmosError::Analyze(format!(
                    "duplicate stream binding '{binding}'"
                )));
            }
            streams.push(BoundStream {
                stream: StreamName::from(sref.stream.as_str()),
                binding,
                window: sref.window.size(),
                schema,
            });
        }

        let resolver = Resolver { streams: &streams };

        // Classify WHERE predicates.
        let mut selections = vec![Conjunction::always(); streams.len()];
        let mut joins = BTreeSet::new();
        for p in &q.predicates {
            classify_predicate(p, &resolver, &mut selections, &mut joins)?;
        }

        // Expand the SELECT list.
        let mut output = Vec::new();
        for item in &q.select {
            match item {
                SelectItem::Star => {
                    for b in &streams {
                        for f in b.schema.fields() {
                            output.push(OutputColumn::Attr(QAttr::new(&b.binding, &f.name)));
                        }
                    }
                }
                SelectItem::QualifiedStar(binding) => {
                    let b = resolver.stream_by_binding(binding)?;
                    for f in b.schema.fields() {
                        output.push(OutputColumn::Attr(QAttr::new(&b.binding, &f.name)));
                    }
                }
                SelectItem::Attr(a) => {
                    let (qa, _) = resolver.resolve(a)?;
                    output.push(OutputColumn::Attr(qa));
                }
                SelectItem::Agg { func, arg } => {
                    let arg = match arg {
                        Some(a) => {
                            let (qa, ty) = resolver.resolve(a)?;
                            if matches!(func, AggFunc::Sum | AggFunc::Avg) && !ty.is_numeric() {
                                return Err(CosmosError::Analyze(format!(
                                    "{func}({qa}) requires a numeric argument"
                                )));
                            }
                            Some(qa)
                        }
                        None => None,
                    };
                    output.push(OutputColumn::Agg { func: *func, arg });
                }
            }
        }
        if output.is_empty() {
            return Err(CosmosError::Analyze("empty SELECT list".into()));
        }

        let group_by: Vec<QAttr> = q
            .group_by
            .iter()
            .map(|a| resolver.resolve(a).map(|(qa, _)| qa))
            .collect::<Result<_>>()?;

        let has_agg = output.iter().any(|c| matches!(c, OutputColumn::Agg { .. }));
        if has_agg {
            if streams.len() != 1 {
                return Err(CosmosError::Analyze(
                    "aggregate queries over joins are not supported".into(),
                ));
            }
            for c in &output {
                if let OutputColumn::Attr(a) = c {
                    if !group_by.contains(a) {
                        return Err(CosmosError::Analyze(format!(
                            "non-aggregated output attribute {a} must appear in GROUP BY"
                        )));
                    }
                }
            }
        } else if !group_by.is_empty() {
            return Err(CosmosError::Analyze(
                "GROUP BY requires at least one aggregate in the SELECT list".into(),
            ));
        }

        let output_schema = derive_schema(&streams, &output, streams.len() > 1)?;

        Ok(AnalyzedQuery {
            distinct: q.distinct,
            streams,
            selections,
            joins,
            output,
            group_by,
            output_schema,
        })
    }

    /// Assemble an analyzed query directly from its parts, deriving and
    /// validating the output schema. Used by the query layer to build
    /// representative queries without a textual round trip.
    pub fn from_parts(
        distinct: bool,
        streams: Vec<BoundStream>,
        selections: Vec<Conjunction>,
        joins: BTreeSet<JoinPred>,
        output: Vec<OutputColumn>,
        group_by: Vec<QAttr>,
    ) -> Result<AnalyzedQuery> {
        if streams.is_empty() {
            return Err(CosmosError::Analyze(
                "a query needs at least one stream".into(),
            ));
        }
        if selections.len() != streams.len() {
            return Err(CosmosError::Analyze(
                "one selection conjunction per stream is required".into(),
            ));
        }
        if output.is_empty() {
            return Err(CosmosError::Analyze("empty output column list".into()));
        }
        let output_schema = derive_schema(&streams, &output, streams.len() > 1)?;
        Ok(AnalyzedQuery {
            distinct,
            streams,
            selections,
            joins,
            output,
            group_by,
            output_schema,
        })
    }

    /// Whether the query contains aggregates.
    pub fn is_aggregate(&self) -> bool {
        self.output
            .iter()
            .any(|c| matches!(c, OutputColumn::Agg { .. }))
    }

    /// Whether output column names are qualified (`binding.attr`).
    pub fn qualified_names(&self) -> bool {
        self.streams.len() > 1
    }

    /// The display/schema name of an output column.
    pub fn column_name(&self, col: &OutputColumn) -> String {
        column_name(col, self.qualified_names())
    }

    /// The bound stream with the given binding.
    pub fn stream_by_binding(&self, binding: &str) -> Option<&BoundStream> {
        self.streams.iter().find(|b| b.binding == binding)
    }

    /// Index (into `streams`) of the stream with the given binding.
    pub fn stream_index(&self, binding: &str) -> Option<usize> {
        self.streams.iter().position(|b| b.binding == binding)
    }

    /// Attributes of stream `i` the query touches anywhere (output,
    /// selections, joins, grouping) — the projection set `P` of the
    /// source-retrieval profile.
    pub fn used_attrs(&self, i: usize) -> BTreeSet<String> {
        let b = &self.streams[i];
        let mut out = BTreeSet::new();
        for c in &self.output {
            match c {
                OutputColumn::Attr(a) if a.binding == b.binding => {
                    out.insert(a.name.clone());
                }
                OutputColumn::Agg { arg: Some(a), .. } if a.binding == b.binding => {
                    out.insert(a.name.clone());
                }
                _ => {}
            }
        }
        out.extend(self.selections[i].referenced_attrs());
        for j in &self.joins {
            if j.left.binding == b.binding {
                out.insert(j.left.name.clone());
            }
            if j.right.binding == b.binding {
                out.insert(j.right.name.clone());
            }
        }
        for g in &self.group_by {
            if g.binding == b.binding {
                out.insert(g.name.clone());
            }
        }
        out
    }

    /// Compose the source-retrieval profile `⟨S, P, F⟩` of Section 4:
    /// "the selection predicates applied to each individual source stream
    /// are extracted to compose the filters of the profile. Then a
    /// projection predicate is composed by using all the attributes in
    /// the query."
    pub fn source_profile(&self) -> Profile {
        let mut profile = Profile::new();
        for (i, b) in self.streams.iter().enumerate() {
            let used = self.used_attrs(i);
            let projection = if used.len() == b.schema.arity() {
                Projection::All
            } else {
                Projection::Attrs(used)
            };
            profile.add_interest(b.stream.clone(), projection, self.selections[i].clone());
        }
        profile
    }
}

/// The display/schema name of an output column under a naming mode.
pub fn column_name(col: &OutputColumn, qualified: bool) -> String {
    let attr_name = |a: &QAttr| {
        if qualified {
            a.qualified()
        } else {
            a.name.clone()
        }
    };
    match col {
        OutputColumn::Attr(a) => attr_name(a),
        OutputColumn::Agg { func, arg: Some(a) } => format!("{func}({})", attr_name(a)),
        OutputColumn::Agg { func, arg: None } => format!("{func}(*)"),
    }
}

struct Resolver<'a> {
    streams: &'a [BoundStream],
}

impl Resolver<'_> {
    fn stream_by_binding(&self, binding: &str) -> Result<&BoundStream> {
        self.streams
            .iter()
            .find(|b| b.binding == binding)
            .ok_or_else(|| CosmosError::Analyze(format!("unknown stream binding '{binding}'")))
    }

    /// Resolve an attribute reference to a qualified attribute and type.
    fn resolve(&self, a: &AttrRef) -> Result<(QAttr, AttrType)> {
        match &a.qualifier {
            Some(q) => {
                let b = self.stream_by_binding(q)?;
                let f = b.schema.field(&a.name).ok_or_else(|| {
                    CosmosError::Analyze(format!(
                        "stream '{}' has no attribute '{}'",
                        b.binding, a.name
                    ))
                })?;
                Ok((QAttr::new(&b.binding, &a.name), f.ty))
            }
            None => {
                let mut hit: Option<(QAttr, AttrType)> = None;
                for b in self.streams {
                    if let Some(f) = b.schema.field(&a.name) {
                        if hit.is_some() {
                            return Err(CosmosError::Analyze(format!(
                                "ambiguous attribute '{}'",
                                a.name
                            )));
                        }
                        hit = Some((QAttr::new(&b.binding, &a.name), f.ty));
                    }
                }
                hit.ok_or_else(|| CosmosError::Analyze(format!("unknown attribute '{}'", a.name)))
            }
        }
    }
}

fn check_const_type(attr: &QAttr, ty: AttrType, v: &Value) -> Result<()> {
    let ok = match v {
        Value::Null => false,
        Value::Bool(_) => ty == AttrType::Bool,
        Value::Int(_) | Value::Float(_) => ty.is_numeric(),
        Value::Str(_) => ty == AttrType::Str,
    };
    if ok {
        Ok(())
    } else {
        Err(CosmosError::Analyze(format!(
            "constant {v} is not comparable with {attr} of type {ty}"
        )))
    }
}

fn add_const_constraint(conj: &mut Conjunction, attr: &str, op: CmpOp, v: Value) {
    match op {
        CmpOp::Eq => {
            conj.equals(attr, v);
        }
        CmpOp::Ne => {
            conj.excludes(attr, v);
        }
        CmpOp::Lt => {
            conj.upper(attr, v, false);
        }
        CmpOp::Le => {
            conj.upper(attr, v, true);
        }
        CmpOp::Gt => {
            conj.lower(attr, v, false);
        }
        CmpOp::Ge => {
            conj.lower(attr, v, true);
        }
    }
}

fn classify_predicate(
    p: &Predicate,
    resolver: &Resolver<'_>,
    selections: &mut [Conjunction],
    joins: &mut BTreeSet<JoinPred>,
) -> Result<()> {
    match p {
        Predicate::Between { attr, lo, hi } => {
            let (qa, ty) = resolver.resolve(attr)?;
            check_const_type(&qa, ty, lo)?;
            check_const_type(&qa, ty, hi)?;
            let idx = resolver
                .streams
                .iter()
                .position(|b| b.binding == qa.binding)
                .expect("resolved binding exists");
            selections[idx].between(qa.name.as_str(), lo.clone(), hi.clone());
            Ok(())
        }
        Predicate::Cmp { left, op, right } => match (left, right) {
            (Operand::Const(a), Operand::Const(b)) => Err(CosmosError::Analyze(format!(
                "constant comparison {a} {op} {b} is not a stream predicate"
            ))),
            (Operand::Attr(a), Operand::Const(v)) => {
                let (qa, ty) = resolver.resolve(a)?;
                check_const_type(&qa, ty, v)?;
                let idx = resolver
                    .streams
                    .iter()
                    .position(|b| b.binding == qa.binding)
                    .expect("resolved binding exists");
                add_const_constraint(&mut selections[idx], &qa.name, *op, v.clone());
                Ok(())
            }
            (Operand::Const(v), Operand::Attr(a)) => {
                let (qa, ty) = resolver.resolve(a)?;
                check_const_type(&qa, ty, v)?;
                let idx = resolver
                    .streams
                    .iter()
                    .position(|b| b.binding == qa.binding)
                    .expect("resolved binding exists");
                add_const_constraint(&mut selections[idx], &qa.name, op.flipped(), v.clone());
                Ok(())
            }
            (Operand::Attr(a), Operand::Attr(b)) => {
                let (qa, ta) = resolver.resolve(a)?;
                let (qb, tb) = resolver.resolve(b)?;
                if qa.binding == qb.binding {
                    // Same-stream attribute comparison → difference range.
                    if !ta.is_numeric() || !tb.is_numeric() {
                        return Err(CosmosError::Analyze(format!(
                            "attribute comparison {qa} {op} {qb} requires numeric attributes"
                        )));
                    }
                    let range = match op {
                        CmpOp::Eq => DiffRange::new(0.0, 0.0),
                        CmpOp::Le => DiffRange::new(f64::NEG_INFINITY, 0.0),
                        CmpOp::Ge => DiffRange::new(0.0, f64::INFINITY),
                        other => {
                            return Err(CosmosError::Analyze(format!(
                                "same-stream comparison {qa} {other} {qb} is not supported \
                                 (only =, <=, >=)"
                            )))
                        }
                    };
                    let idx = resolver
                        .streams
                        .iter()
                        .position(|s| s.binding == qa.binding)
                        .expect("resolved binding exists");
                    selections[idx].diff(qa.name.as_str(), qb.name.as_str(), range);
                    Ok(())
                } else {
                    if *op != CmpOp::Eq {
                        return Err(CosmosError::Analyze(format!(
                            "only equi-joins are supported, got {qa} {op} {qb}"
                        )));
                    }
                    if ta != tb && !(ta.is_numeric() && tb.is_numeric()) {
                        return Err(CosmosError::Analyze(format!(
                            "join {qa} = {qb} compares incompatible types {ta} and {tb}"
                        )));
                    }
                    joins.insert(JoinPred::new(qa, qb));
                    Ok(())
                }
            }
        },
    }
}

fn derive_schema(
    streams: &[BoundStream],
    output: &[OutputColumn],
    qualified: bool,
) -> Result<Schema> {
    let mut fields = Vec::with_capacity(output.len());
    for col in output {
        let ty = match col {
            OutputColumn::Attr(a)
            | OutputColumn::Agg {
                arg: Some(a),
                func: AggFunc::Min,
            }
            | OutputColumn::Agg {
                arg: Some(a),
                func: AggFunc::Max,
            }
            | OutputColumn::Agg {
                arg: Some(a),
                func: AggFunc::Sum,
            } => {
                let b = streams
                    .iter()
                    .find(|b| b.binding == a.binding)
                    .expect("bound binding");
                let base = b.schema.field(&a.name).expect("resolved attr").ty;
                match col {
                    OutputColumn::Attr(_)
                    | OutputColumn::Agg {
                        func: AggFunc::Min, ..
                    }
                    | OutputColumn::Agg {
                        func: AggFunc::Max, ..
                    } => base,
                    _ => base, // SUM keeps the numeric input type
                }
            }
            OutputColumn::Agg {
                func: AggFunc::Avg, ..
            } => AttrType::Float,
            OutputColumn::Agg {
                func: AggFunc::Count,
                ..
            } => AttrType::Int,
            OutputColumn::Agg { arg: None, .. } => AttrType::Int,
        };
        fields.push(Field::new(column_name(col, qualified), ty));
    }
    Schema::new(fields).map_err(|e| {
        CosmosError::Analyze(format!("invalid output schema (duplicate column?): {e}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_cql::parse_query;

    fn open_auction() -> Schema {
        Schema::of(&[
            ("itemID", AttrType::Int),
            ("sellerID", AttrType::Int),
            ("start_price", AttrType::Float),
            ("timestamp", AttrType::Int),
        ])
    }

    fn closed_auction() -> Schema {
        Schema::of(&[
            ("itemID", AttrType::Int),
            ("buyerID", AttrType::Int),
            ("timestamp", AttrType::Int),
        ])
    }

    fn catalog(name: &str) -> Option<Schema> {
        match name {
            "OpenAuction" => Some(open_auction()),
            "ClosedAuction" => Some(closed_auction()),
            "Sensors" => Some(Schema::of(&[
                ("station", AttrType::Int),
                ("temperature", AttrType::Float),
                ("timestamp", AttrType::Int),
            ])),
            _ => None,
        }
    }

    fn analyze(text: &str) -> Result<AnalyzedQuery> {
        AnalyzedQuery::analyze(&parse_query(text).unwrap(), catalog)
    }

    #[test]
    fn analyzes_table1_q1() {
        let a = analyze(
            "SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C \
             WHERE O.itemID = C.itemID",
        )
        .unwrap();
        assert_eq!(a.streams.len(), 2);
        assert_eq!(a.streams[0].window, TimeDelta::from_hours(3));
        assert_eq!(a.streams[1].window, TimeDelta::ZERO);
        assert_eq!(a.joins.len(), 1);
        let j = a.joins.iter().next().unwrap();
        assert_eq!(j.left, QAttr::new("C", "itemID"));
        assert_eq!(j.right, QAttr::new("O", "itemID"));
        assert_eq!(a.output.len(), 4); // O.*
        assert!(a.qualified_names());
        assert!(a.output_schema.contains("O.itemID"));
        assert!(!a.is_aggregate());
        assert_eq!(a.stream_index("C"), Some(1));
        assert!(a.stream_by_binding("O").is_some());
    }

    #[test]
    fn composes_section4_source_profile() {
        // The R/S example of Section 4: S = {R, S},
        // P = {R.A, R.B, S.B, S.C}, F = {R.A > 10}.
        let cat = |n: &str| match n {
            "R" => Some(Schema::of(&[
                ("A", AttrType::Int),
                ("B", AttrType::Int),
                ("Z", AttrType::Int),
            ])),
            "S" => Some(Schema::of(&[
                ("B", AttrType::Int),
                ("C", AttrType::Int),
                ("Z", AttrType::Int),
            ])),
            _ => None,
        };
        let q = parse_query("SELECT R.A, S.C FROM R [Now], S [Now] WHERE R.B = S.B AND R.A > 10")
            .unwrap();
        let a = AnalyzedQuery::analyze(&q, cat).unwrap();
        let p = a.source_profile();
        assert_eq!(p.stream_count(), 2);
        let r_entry = p.entry(&StreamName::from("R")).unwrap();
        assert!(r_entry.projection.contains("A"));
        assert!(r_entry.projection.contains("B"));
        assert!(!r_entry.projection.contains("Z"));
        assert_eq!(r_entry.filters.len(), 1);
        assert!(!r_entry.filters[0].constraint_for("A").is_any());
        let s_entry = p.entry(&StreamName::from("S")).unwrap();
        assert!(s_entry.projection.contains("B"));
        assert!(s_entry.projection.contains("C"));
        assert!(!s_entry.projection.contains("Z"));
        assert!(s_entry.filters.is_empty()); // no selection on S
    }

    #[test]
    fn bare_attrs_resolve_when_unambiguous() {
        let a = analyze(
            "SELECT buyerID FROM OpenAuction [Now] O, ClosedAuction [Now] C \
             WHERE O.itemID = C.itemID",
        )
        .unwrap();
        assert_eq!(a.output[0], OutputColumn::Attr(QAttr::new("C", "buyerID")));
        // itemID is ambiguous
        let err =
            analyze("SELECT itemID FROM OpenAuction [Now] O, ClosedAuction [Now] C").unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn single_stream_names_stay_bare() {
        let a = analyze(
            "SELECT station, temperature FROM Sensors [Range 1 Minute] WHERE temperature > 20.0",
        )
        .unwrap();
        assert!(!a.qualified_names());
        assert_eq!(
            a.output_schema.names().collect::<Vec<_>>(),
            vec!["station", "temperature"]
        );
        assert!(!a.selections[0].constraint_for("temperature").is_any());
    }

    #[test]
    fn aggregates_analyzed() {
        let a = analyze(
            "SELECT station, AVG(temperature), COUNT(*) FROM Sensors [Range 10 Minute] \
             GROUP BY station",
        )
        .unwrap();
        assert!(a.is_aggregate());
        assert_eq!(a.group_by, vec![QAttr::new("Sensors", "station")]);
        assert_eq!(
            a.output_schema.names().collect::<Vec<_>>(),
            vec!["station", "AVG(temperature)", "COUNT(*)"]
        );
        assert_eq!(
            a.output_schema.field("AVG(temperature)").unwrap().ty,
            AttrType::Float
        );
        assert_eq!(a.output_schema.field("COUNT(*)").unwrap().ty, AttrType::Int);
    }

    #[test]
    fn rejects_semantic_errors() {
        // unknown stream
        assert!(analyze("SELECT a FROM Nope [Now]").is_err());
        // unknown attribute
        assert!(analyze("SELECT nope FROM Sensors [Now]").is_err());
        // type mismatch in selection
        assert!(analyze("SELECT station FROM Sensors [Now] WHERE station = 'x'").is_err());
        // non-equi join
        assert!(analyze(
            "SELECT O.itemID FROM OpenAuction [Now] O, ClosedAuction [Now] C \
             WHERE O.itemID < C.itemID"
        )
        .is_err());
        // aggregate over join
        assert!(analyze(
            "SELECT COUNT(*) FROM OpenAuction [Now] O, ClosedAuction [Now] C \
             WHERE O.itemID = C.itemID"
        )
        .is_err());
        // bare attr not in GROUP BY
        assert!(
            analyze("SELECT temperature, COUNT(*) FROM Sensors [Now] GROUP BY station").is_err()
        );
        // GROUP BY without aggregate
        assert!(analyze("SELECT station FROM Sensors [Now] GROUP BY station").is_err());
        // SUM of non-numeric
        assert!(analyze("SELECT SUM(tag) FROM Sensors [Now]").is_err());
        // duplicate binding
        assert!(analyze("SELECT station FROM Sensors [Now] S, Sensors [Now] S").is_err());
    }

    #[test]
    fn same_stream_attr_comparison_becomes_diff_constraint() {
        let a = analyze("SELECT itemID FROM OpenAuction [Now] WHERE itemID >= sellerID").unwrap();
        let diffs: Vec<_> = a.selections[0].diff_constraints().collect();
        assert_eq!(diffs.len(), 1);
        // strict same-stream comparison unsupported
        assert!(analyze("SELECT itemID FROM OpenAuction [Now] WHERE itemID > sellerID").is_err());
    }

    #[test]
    fn from_parts_validation() {
        let a = analyze("SELECT station FROM Sensors [Now]").unwrap();
        // roundtrip through from_parts
        let rebuilt = AnalyzedQuery::from_parts(
            a.distinct,
            a.streams.clone(),
            a.selections.clone(),
            a.joins.clone(),
            a.output.clone(),
            a.group_by.clone(),
        )
        .unwrap();
        assert_eq!(a, rebuilt);
        // no streams
        assert!(AnalyzedQuery::from_parts(
            false,
            vec![],
            vec![],
            Default::default(),
            a.output.clone(),
            vec![]
        )
        .is_err());
        // selections arity mismatch
        assert!(AnalyzedQuery::from_parts(
            false,
            a.streams.clone(),
            vec![],
            Default::default(),
            a.output.clone(),
            vec![]
        )
        .is_err());
        // empty output
        assert!(AnalyzedQuery::from_parts(
            false,
            a.streams.clone(),
            a.selections.clone(),
            Default::default(),
            vec![],
            vec![]
        )
        .is_err());
        // duplicate output columns → invalid schema
        let mut dup = a.output.clone();
        dup.extend(a.output.clone());
        assert!(AnalyzedQuery::from_parts(
            false,
            a.streams.clone(),
            a.selections.clone(),
            Default::default(),
            dup,
            vec![]
        )
        .is_err());
    }

    #[test]
    fn self_join_with_aliases() {
        let a = analyze(
            "SELECT A.itemID FROM OpenAuction [Range 1 Hour] A, OpenAuction [Now] B \
             WHERE A.itemID = B.itemID",
        )
        .unwrap();
        assert_eq!(a.streams.len(), 2);
        assert_eq!(a.streams[0].stream, a.streams[1].stream);
        assert_eq!(a.joins.len(), 1);
    }

    #[test]
    fn constant_on_left_flips() {
        let a = analyze("SELECT station FROM Sensors [Now] WHERE 20.0 < temperature").unwrap();
        let c = a.selections[0].constraint_for("temperature");
        assert!(c.satisfies(&Value::Float(25.0)));
        assert!(!c.satisfies(&Value::Float(15.0)));
    }

    #[test]
    fn used_attrs_cover_all_clauses() {
        let a = analyze(
            "SELECT O.sellerID FROM OpenAuction [Now] O, ClosedAuction [Now] C \
             WHERE O.itemID = C.itemID AND O.start_price > 10.0",
        )
        .unwrap();
        let used = a.used_attrs(0);
        assert!(used.contains("sellerID"));
        assert!(used.contains("itemID"));
        assert!(used.contains("start_price"));
        assert!(!used.contains("timestamp"));
    }
}
