#![forbid(unsafe_code)]
//! A continuous-query stream processing engine (SPE).
//!
//! COSMOS treats the SPE as a pluggable component: "Existing single site
//! SPEs such as TelegraphCQ, STREAM and Aurora can be employed"
//! (Section 2), with a *query wrapper* translating CQL into the engine's
//! language and a *data wrapper* translating datagrams. The paper's own
//! experiments plug in GSN. Since no off-the-shelf engine is available
//! here, this crate is that engine, built from scratch:
//!
//! * [`analyze`] — the query wrapper: resolves a parsed
//!   [`cosmos_cql::Query`] against stream schemas into an
//!   [`AnalyzedQuery`] (bound streams with window sizes, per-stream
//!   selection [`cosmos_cbn::Conjunction`]s, canonical equi-join
//!   predicate set, output columns, derived result schema) and composes
//!   the **source-retrieval profile** `⟨S, P, F⟩` of Section 4.
//! * [`executor`] — push-based continuous execution: single-stream
//!   select/project, symmetric *n*-way window joins implementing exactly
//!   the timestamp-difference semantics of the paper's Lemma 1, and
//!   sliding-window grouped aggregation (`COUNT`/`SUM`/`AVG`/`MIN`/`MAX`).
//! * [`oracle`] — a deliberately simple brute-force re-evaluator used by
//!   property tests (and by the query layer's containment tests) as
//!   ground truth.
//!
//! Tuples must be pushed in global timestamp order (the discrete
//! application time domain `T` of the paper); the engine asserts
//! monotonicity in debug builds.

pub mod analyze;
pub mod executor;
pub mod oracle;

pub use analyze::{AnalyzedQuery, BoundStream, JoinPred, OutputColumn, QAttr};
pub use executor::{faultinject, DisorderStats, Executor, LatePolicy, StateSize};
