//! Push-based continuous execution of analyzed queries.
//!
//! The executor receives source tuples in global timestamp order and
//! produces the query's result stream incrementally (Istream semantics:
//! a result tuple is emitted the moment the arrival completing it is
//! processed, stamped with that arrival's timestamp).
//!
//! **Join semantics** are precisely the paper's Lemma 1: for streams
//! `S1, S2` with window sizes `T1, T2`, tuples `t1, t2` join iff they
//! satisfy the join predicates and `−T1 ≤ t1.ts − t2.ts ≤ T2`. For *n*-way
//! joins the condition generalizes to `tᵢ.ts ≥ τ − Tᵢ` for every
//! participant, where `τ` is the completing arrival's timestamp.
//!
//! **Aggregate semantics**: on each arrival that passes the selection,
//! the sliding window is advanced (tuples older than `τ − T` evicted)
//! and one result row for the arriving tuple's group is emitted.

use crate::analyze::{AnalyzedQuery, OutputColumn, QAttr};
use cosmos_cql::AggFunc;
use cosmos_types::{
    AttrType, CosmosError, FxHashMap, FxHashSet, NeumaierSum, Result, Schema, StreamName,
    TimeDelta, Timestamp, Tuple, Value,
};
use std::collections::{BTreeMap, VecDeque};

/// Positional source of one output column: `(stream index, attr index)`.
type ColSource = (usize, usize);

/// A snapshot of an executor's retained-state occupancy, by component.
/// Each field is the measured counterpart of a row bound derived by the
/// `cosmos-bound` crate (`QueryBounds`), so the testkit can check
/// measured ≤ bound on every sweep event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StateSize {
    /// Rows across all join input buffers.
    pub buffer_rows: usize,
    /// Rows in the aggregate's sliding window (including disorder-mode
    /// revision history retained behind the live window).
    pub agg_window_rows: usize,
    /// Live groups in the aggregate's group table.
    pub group_rows: usize,
    /// Entries in the DISTINCT dedup set.
    pub distinct_rows: usize,
    /// Tuples staged behind the watermark frontier (disorder mode).
    pub staging_rows: usize,
}

impl StateSize {
    /// Total retained rows across all components.
    pub fn total_rows(&self) -> usize {
        self.buffer_rows
            + self.agg_window_rows
            + self.group_rows
            + self.distinct_rows
            + self.staging_rows
    }
}

/// What to do with a tuple that arrives *behind* the watermark frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatePolicy {
    /// Shed late tuples, counting them so conservation still balances.
    Drop,
    /// Process late tuples within `grace` of the frontier by emitting
    /// their result as-of their timestamp plus *revision* tuples for
    /// already-emitted results they change; shed beyond the grace.
    Revise {
        /// How far behind the frontier a tuple may still be folded in.
        grace: TimeDelta,
    },
}

impl LatePolicy {
    /// How long state needed to fold late tuples in must be retained.
    fn grace(&self) -> TimeDelta {
        match self {
            LatePolicy::Drop => TimeDelta::ZERO,
            LatePolicy::Revise { grace } => *grace,
        }
    }
}

/// Disorder-mode bookkeeping counters. The conservation identity
/// `arrived == drained + staged + shed + duplicates` holds at every
/// instant; the testkit asserts it on every sweep event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DisorderStats {
    /// Out-of-order arrivals offered to this executor.
    pub arrived: u64,
    /// Tuples processed through the engine (in-order drains, flushes,
    /// and late tuples folded in by revision).
    pub drained: u64,
    /// Tuples currently staged behind the frontier.
    pub staged: u64,
    /// Late tuples shed (beyond grace, or `Drop` policy).
    pub shed: u64,
    /// Exact duplicates discarded by the dedup set.
    pub duplicates: u64,
    /// Late tuples folded in via the revision path (subset of `drained`).
    pub late: u64,
    /// Revision tuples emitted to supersede earlier emissions.
    pub revisions: u64,
}

impl DisorderStats {
    /// Sum two stat snapshots (used to total live + retired executors).
    pub fn merge(&self, other: &DisorderStats) -> DisorderStats {
        DisorderStats {
            arrived: self.arrived + other.arrived,
            drained: self.drained + other.drained,
            staged: self.staged + other.staged,
            shed: self.shed + other.shed,
            duplicates: self.duplicates + other.duplicates,
            late: self.late + other.late,
            revisions: self.revisions + other.revisions,
        }
    }

    /// The conservation identity; false means tuples were lost or
    /// double-counted somewhere in the disorder machinery.
    pub fn conserved(&self) -> bool {
        self.arrived == self.drained + self.staged + self.shed + self.duplicates
    }
}

/// Identity of a tuple for exact-duplicate detection.
type DedupKey = (StreamName, Timestamp, Vec<Value>);

/// Out-of-order ingestion state: a staging area ordered by
/// `(timestamp, arrival seq)`, the watermark frontier that releases it,
/// and an exact-duplicate dedup set with a time-indexed eviction queue.
#[derive(Debug, Clone)]
struct DisorderState {
    policy: LatePolicy,
    /// Tuples not yet released: all have `ts > frontier`.
    staging: BTreeMap<(Timestamp, u64), Tuple>,
    /// Arrival tiebreaker so equal timestamps drain in arrival order.
    seq: u64,
    /// Greatest effective watermark seen: `min` over the query's input
    /// streams of their last watermark.
    frontier: Timestamp,
    /// Last watermark per stream (streams missing here hold `i64::MIN`).
    watermarks: FxHashMap<StreamName, Timestamp>,
    /// Exact duplicates of anything here are discarded.
    seen: FxHashSet<DedupKey>,
    /// Eviction index for `seen`: entries below `frontier − grace` can
    /// no longer collide with a processable arrival.
    seen_index: BTreeMap<Timestamp, Vec<DedupKey>>,
    stats: DisorderStats,
}

impl DisorderState {
    fn new(policy: LatePolicy) -> DisorderState {
        DisorderState {
            policy,
            staging: BTreeMap::new(),
            seq: 0,
            frontier: Timestamp(i64::MIN),
            watermarks: FxHashMap::default(),
            seen: FxHashSet::default(),
            seen_index: BTreeMap::new(),
            stats: DisorderStats::default(),
        }
    }

    /// Record a tuple in the dedup set (no-op if already present).
    fn remember(&mut self, t: &Tuple) {
        let key = (t.stream.clone(), t.timestamp, t.values().to_vec());
        if self.seen.insert(key.clone()) {
            self.seen_index.entry(t.timestamp).or_default().push(key);
        }
    }

    fn is_duplicate(&self, t: &Tuple) -> bool {
        self.seen
            .contains(&(t.stream.clone(), t.timestamp, t.values().to_vec()))
    }

    /// Drop dedup entries that can no longer match a processable
    /// arrival (strictly below `frontier − grace`).
    fn evict_seen(&mut self) {
        let horizon = self.frontier - self.policy.grace();
        while let Some((&ts, _)) = self.seen_index.first_key_value() {
            if ts >= horizon {
                break;
            }
            let (_, keys) = self.seen_index.pop_first().expect("checked first");
            for key in keys {
                self.seen.remove(&key);
            }
        }
    }
}

/// Planted bugs for the CI canary: prove the convergence oracle has
/// teeth by disabling the machinery it guards.
///
/// Production code never sets these; see `cosmos_query::merge::faultinject`
/// for the pattern.
pub mod faultinject {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SKIP_WATERMARK_GATING: AtomicBool = AtomicBool::new(false);

    /// Enable or disable the planted bug that bypasses watermark gating:
    /// out-of-order arrivals are processed immediately in arrival order
    /// instead of being staged until the frontier passes them.
    pub fn set_skip_watermark_gating(on: bool) {
        SKIP_WATERMARK_GATING.store(on, Ordering::SeqCst);
    }

    /// Whether the planted bug is currently enabled.
    pub fn skip_watermark_gating() -> bool {
        SKIP_WATERMARK_GATING.load(Ordering::SeqCst)
    }
}

/// A running continuous query.
///
/// `Executor` is `Send` by construction (compile-time assertion below):
/// the parallel routing driver keeps executors on the main thread
/// today, but the intake path must never grow thread-bound state
/// (`Rc`, raw pointers, thread locals) that would wall off moving SPE
/// sites onto shard workers later.
#[derive(Debug, Clone)]
pub struct Executor {
    query: AnalyzedQuery,
    result_stream: StreamName,
    /// Tuples that passed their stream's selection, per stream index.
    buffers: Vec<VecDeque<Tuple>>,
    /// Precomputed positional sources of plain output columns.
    attr_sources: Vec<Option<ColSource>>,
    /// Precomputed `(left source, right source)` of each join predicate.
    join_sources: Vec<(ColSource, ColSource)>,
    /// Per-stream-binding window sizes (parallel to `query.streams`).
    windows: Vec<TimeDelta>,
    distinct_seen: FxHashSet<Vec<Value>>,
    agg: Option<AggregateState>,
    last_ts: Timestamp,
    consumed: u64,
    emitted: u64,
    /// Out-of-order ingestion state; `None` = strict in-order mode.
    disorder: Option<DisorderState>,
    /// Under `Revise`, window state down to this timestamp (minus the
    /// window size) is retained past normal eviction so late tuples can
    /// be folded in. Tracks `frontier − grace`.
    retain_floor: Option<Timestamp>,
}

impl Executor {
    /// Build an executor for an analyzed query; result tuples are tagged
    /// with `result_stream`.
    pub fn new(query: AnalyzedQuery, result_stream: impl Into<StreamName>) -> Result<Executor> {
        let locate = |qa: &QAttr| -> Result<ColSource> {
            let si = query
                .stream_index(&qa.binding)
                .ok_or_else(|| CosmosError::Engine(format!("unbound binding '{}'", qa.binding)))?;
            let ai = query.streams[si]
                .schema
                .index_of(&qa.name)
                .ok_or_else(|| CosmosError::Engine(format!("unknown attribute {qa}")))?;
            Ok((si, ai))
        };
        let mut attr_sources = Vec::with_capacity(query.output.len());
        for col in &query.output {
            attr_sources.push(match col {
                OutputColumn::Attr(a) => Some(locate(a)?),
                OutputColumn::Agg { .. } => None,
            });
        }
        let mut join_sources = Vec::with_capacity(query.joins.len());
        for j in &query.joins {
            join_sources.push((locate(&j.left)?, locate(&j.right)?));
        }
        let agg = if query.is_aggregate() {
            Some(AggregateState::new(&query)?)
        } else {
            None
        };
        Ok(Executor {
            buffers: vec![VecDeque::new(); query.streams.len()],
            windows: query.streams.iter().map(|b| b.window).collect(),
            query,
            result_stream: result_stream.into(),
            attr_sources,
            join_sources,
            distinct_seen: FxHashSet::default(),
            agg,
            last_ts: Timestamp(i64::MIN),
            consumed: 0,
            emitted: 0,
            disorder: None,
            retain_floor: None,
        })
    }

    /// The analyzed query this executor runs.
    pub fn query(&self) -> &AnalyzedQuery {
        &self.query
    }

    /// The schema of emitted result tuples.
    pub fn result_schema(&self) -> &Schema {
        &self.query.output_schema
    }

    /// The name of the result stream.
    pub fn result_stream(&self) -> &StreamName {
        &self.result_stream
    }

    /// Source tuples consumed so far (arrivals relevant to this query).
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Result tuples emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Current retained-state occupancy, per component — the measured
    /// side of `cosmos-bound`'s bound-soundness oracle.
    pub fn state_size(&self) -> StateSize {
        StateSize {
            buffer_rows: self.buffers.iter().map(VecDeque::len).sum(),
            agg_window_rows: self
                .agg
                .as_ref()
                .map_or(0, |a| a.window.len() + a.history.len()),
            group_rows: self.agg.as_ref().map_or(0, |a| a.groups.len()),
            distinct_rows: self.distinct_seen.len(),
            staging_rows: self.disorder.as_ref().map_or(0, |d| d.staging.len()),
        }
    }

    /// Switch the executor into out-of-order ingestion mode: arrivals
    /// are staged until a watermark releases them; tuples behind the
    /// frontier are handled per `policy`. Must be called before the
    /// first arrival.
    pub fn enable_disorder(&mut self, policy: LatePolicy) {
        self.retain_floor = match policy {
            LatePolicy::Drop => None,
            LatePolicy::Revise { .. } => Some(Timestamp(i64::MIN)),
        };
        self.disorder = Some(DisorderState::new(policy));
    }

    /// Disorder bookkeeping counters (`None` in strict in-order mode).
    pub fn disorder_stats(&self) -> Option<DisorderStats> {
        self.disorder.as_ref().map(|d| DisorderStats {
            staged: d.staging.len() as u64,
            ..d.stats
        })
    }

    /// The watermark frontier (`None` in strict in-order mode): all
    /// arrivals at or below it have been drained, shed, or deduplicated.
    pub fn frontier(&self) -> Option<Timestamp> {
        self.disorder.as_ref().map(|d| d.frontier)
    }

    /// Process an arrival that may have been *early-projected* by the
    /// CBN: `schema` describes the tuple's actual layout. The tuple is
    /// re-aligned to the stream's full schema (missing attributes become
    /// `Null`; the source profile guarantees every attribute the query
    /// touches is present) and then processed normally.
    pub fn push_projected(&mut self, tuple: &Tuple, schema: &Schema) -> Vec<Tuple> {
        self.push_projected_batch(std::slice::from_ref(tuple), schema)
    }

    /// [`Executor::push_projected`] for a *stream-homogeneous* batch
    /// (every tuple on the same stream, laid out by `schema`): the
    /// re-alignment column map is computed once for the whole batch.
    /// Result tuples are returned in emission order.
    pub fn push_projected_batch(&mut self, tuples: &[Tuple], schema: &Schema) -> Vec<Tuple> {
        let Some(first) = tuples.first() else {
            return Vec::new();
        };
        debug_assert!(
            tuples.iter().all(|t| t.stream == first.stream),
            "push_projected_batch requires a stream-homogeneous batch"
        );
        let Some(bound) = self.query.streams.iter().find(|b| b.stream == first.stream) else {
            return Vec::new();
        };
        if *schema == bound.schema {
            let mut out = Vec::new();
            for t in tuples {
                out.extend(self.ingest(t));
            }
            return out;
        }
        // Source column in the projected layout (or Null) per full-schema
        // attribute, resolved once per batch instead of once per tuple.
        let align: Vec<Option<usize>> = bound
            .schema
            .fields()
            .iter()
            .map(|f| schema.index_of(&f.name))
            .collect();
        let mut out = Vec::new();
        for t in tuples {
            let full: Vec<Value> = align
                .iter()
                .map(|src| src.and_then(|i| t.get(i).cloned()).unwrap_or(Value::Null))
                .collect();
            let aligned = Tuple::new(t.stream.clone(), t.timestamp, full);
            out.extend(self.ingest(&aligned));
        }
        out
    }

    /// Route one full-schema arrival through the mode-appropriate path.
    fn ingest(&mut self, tuple: &Tuple) -> Vec<Tuple> {
        if self.disorder.is_some() {
            self.push_out_of_order(tuple)
        } else {
            self.push(tuple)
        }
    }

    /// Process one source arrival, returning the result tuples it
    /// completes. Tuples must arrive in non-decreasing timestamp order.
    pub fn push(&mut self, tuple: &Tuple) -> Vec<Tuple> {
        debug_assert!(
            tuple.timestamp >= self.last_ts,
            "tuples must arrive in timestamp order ({} after {})",
            tuple.timestamp,
            self.last_ts
        );
        self.push_unchecked(tuple)
    }

    /// [`Executor::push`] without the monotonicity contract — used by
    /// the canary fault injection, which deliberately processes
    /// out-of-order arrivals immediately to prove the convergence
    /// oracle catches the resulting garbage.
    fn push_unchecked(&mut self, tuple: &Tuple) -> Vec<Tuple> {
        self.last_ts = self.last_ts.max(tuple.timestamp);
        let mut out = Vec::new();
        // A stream may be bound several times (self joins); process each.
        for si in 0..self.query.streams.len() {
            if self.query.streams[si].stream != tuple.stream {
                continue;
            }
            self.consumed += 1;
            if !self.query.selections[si].satisfies(tuple, &self.query.streams[si].schema) {
                continue;
            }
            if self.agg.is_some() {
                self.push_aggregate(si, tuple, &mut out);
            } else if self.query.streams.len() == 1 {
                self.emit_single(tuple, &mut out);
            } else {
                self.push_join(si, tuple, &mut out);
            }
        }
        self.emitted += out.len() as u64;
        out
    }

    /// Process one arrival in out-of-order mode. Exact duplicates of
    /// anything remembered are discarded; arrivals ahead of the
    /// watermark frontier are staged; arrivals behind it are handled
    /// per the late policy (revision within grace, shed otherwise).
    pub fn push_out_of_order(&mut self, tuple: &Tuple) -> Vec<Tuple> {
        let Some(mut d) = self.disorder.take() else {
            return self.push(tuple);
        };
        d.stats.arrived += 1;
        let mut out = Vec::new();
        if d.is_duplicate(tuple) {
            d.stats.duplicates += 1;
        } else if faultinject::skip_watermark_gating() {
            // Planted bug: no staging, process in arrival order. The
            // convergence oracle must flag the resulting outputs.
            d.remember(tuple);
            out = self.push_unchecked(tuple);
            d.stats.drained += 1;
        } else if tuple.timestamp > d.frontier {
            d.remember(tuple);
            d.seq += 1;
            d.staging.insert((tuple.timestamp, d.seq), tuple.clone());
        } else {
            match d.policy {
                LatePolicy::Drop => d.stats.shed += 1,
                LatePolicy::Revise { grace } => {
                    if tuple.timestamp >= d.frontier - grace {
                        d.remember(tuple);
                        let mut revisions = 0;
                        out = self.revise(tuple, &mut revisions);
                        d.stats.late += 1;
                        d.stats.drained += 1;
                        d.stats.revisions += revisions;
                    } else {
                        d.stats.shed += 1;
                    }
                }
            }
        }
        self.disorder = Some(d);
        out
    }

    /// Fold in a watermark for `stream`: the effective frontier is the
    /// minimum over all input streams' watermarks, and every staged
    /// tuple at or below it is drained through the engine in
    /// `(timestamp, arrival)` order. Returns the drained results.
    pub fn advance_watermark(&mut self, stream: &StreamName, watermark: Timestamp) -> Vec<Tuple> {
        let Some(mut d) = self.disorder.take() else {
            return Vec::new();
        };
        d.watermarks
            .entry(stream.clone())
            .and_modify(|w| *w = (*w).max(watermark))
            .or_insert(watermark);
        let eff = self
            .query
            .streams
            .iter()
            .map(|b| {
                d.watermarks
                    .get(&b.stream)
                    .copied()
                    .unwrap_or(Timestamp(i64::MIN))
            })
            .min()
            .unwrap_or(watermark);
        let mut out = Vec::new();
        if eff > d.frontier {
            d.frontier = eff;
            if matches!(d.policy, LatePolicy::Revise { .. }) {
                self.retain_floor = Some(d.frontier - d.policy.grace());
            }
            while let Some((&(ts, _), _)) = d.staging.first_key_value() {
                if ts > d.frontier {
                    break;
                }
                let (_, t) = d.staging.pop_first().expect("checked first");
                out.extend(self.push(&t));
                d.stats.drained += 1;
            }
            d.evict_seen();
        }
        self.disorder = Some(d);
        out
    }

    /// Drain everything still staged, in `(timestamp, arrival)` order,
    /// *without* moving the frontier — used when an executor is about
    /// to be retired so its staged tuples are not silently lost.
    pub fn flush_staged(&mut self) -> Vec<Tuple> {
        let Some(mut d) = self.disorder.take() else {
            return Vec::new();
        };
        let staged = std::mem::take(&mut d.staging);
        let mut out = Vec::new();
        for t in staged.into_values() {
            out.extend(self.push(&t));
            d.stats.drained += 1;
        }
        self.disorder = Some(d);
        out
    }

    /// Fold a late (behind-frontier, within-grace) tuple into the
    /// query state as if it had arrived in order: emit its result
    /// as-of its own timestamp, plus revision tuples for already-emitted
    /// results it retroactively changes.
    fn revise(&mut self, tuple: &Tuple, revisions: &mut u64) -> Vec<Tuple> {
        let mut out = Vec::new();
        for si in 0..self.query.streams.len() {
            if self.query.streams[si].stream != tuple.stream {
                continue;
            }
            self.consumed += 1;
            if !self.query.selections[si].satisfies(tuple, &self.query.streams[si].schema) {
                continue;
            }
            if self.agg.is_some() {
                self.revise_aggregate(tuple, &mut out, revisions);
            } else if self.query.streams.len() == 1 {
                // Stateless: the row is independent of arrival order.
                self.emit_single(tuple, &mut out);
            } else {
                self.revise_join(si, tuple, &mut out);
            }
        }
        self.emitted += out.len() as u64;
        out
    }

    fn revise_aggregate(&mut self, tuple: &Tuple, out: &mut Vec<Tuple>, revisions: &mut u64) {
        let agg = self.agg.as_mut().expect("aggregate state");
        let rows = agg.revise(&self.query, tuple);
        for (ts, values) in rows {
            if ts > tuple.timestamp {
                *revisions += 1;
            }
            self.finish(values, ts, out);
        }
    }

    /// Enumerate the join combinations the late tuple completes. Each
    /// combination is stamped with the *latest* member's timestamp τ
    /// (Lemma 1's completing arrival) and checked against every
    /// member's window. No combination containing the late tuple can
    /// have been emitted before, so no dedup is needed.
    fn revise_join(&mut self, arrival_idx: usize, tuple: &Tuple, out: &mut Vec<Tuple>) {
        let n = self.query.streams.len();
        let mut combo: Vec<Option<&Tuple>> = vec![None; n];
        combo[arrival_idx] = Some(tuple);
        let ctx = JoinCtx {
            join_sources: &self.join_sources,
            attr_sources: &self.attr_sources,
            windows: &self.windows,
        };
        let mut results: Vec<(Timestamp, Vec<Value>)> = Vec::new();
        enumerate(
            &self.buffers,
            arrival_idx,
            0,
            &mut combo,
            &ctx,
            None,
            &mut results,
        );
        results.sort_by_key(|r| r.0);
        for (tau, values) in results {
            self.finish(values, tau, out);
        }
        let buf = &mut self.buffers[arrival_idx];
        let pos = buf
            .iter()
            .position(|u| u.timestamp > tuple.timestamp)
            .unwrap_or(buf.len());
        buf.insert(pos, tuple.clone());
    }

    /// Finish a candidate result-value vector: distinct check and wrap.
    fn finish(&mut self, values: Vec<Value>, ts: Timestamp, out: &mut Vec<Tuple>) {
        if self.query.distinct && !self.distinct_seen.insert(values.clone()) {
            return;
        }
        out.push(Tuple::new(self.result_stream.clone(), ts, values));
    }

    fn emit_single(&mut self, tuple: &Tuple, out: &mut Vec<Tuple>) {
        let values: Vec<Value> = self
            .attr_sources
            .iter()
            .map(|src| {
                let (_, ai) = src.expect("non-aggregate column");
                tuple.get(ai).cloned().unwrap_or(Value::Null)
            })
            .collect();
        self.finish(values, tuple.timestamp, out);
    }

    fn push_join(&mut self, arrival_idx: usize, tuple: &Tuple, out: &mut Vec<Tuple>) {
        let tau = tuple.timestamp;
        // Evict tuples that can no longer join any future arrival:
        // tᵢ.ts < τ − Tᵢ (infinite windows never evict). Under a
        // `Revise` late policy, tuples back to `frontier − grace − Tᵢ`
        // are retained: a late arrival within grace may still complete
        // a combination with them.
        for (si, buf) in self.buffers.iter_mut().enumerate() {
            let w = self.query.streams[si].window;
            if w.is_infinite() {
                continue;
            }
            let mut horizon = tau - w;
            if let Some(floor) = self.retain_floor {
                horizon = horizon.min(floor - w);
            }
            while buf.front().is_some_and(|t| t.timestamp < horizon) {
                buf.pop_front();
            }
        }
        // Enumerate combinations from the other buffers.
        let n = self.query.streams.len();
        let mut combo: Vec<Option<&Tuple>> = vec![None; n];
        combo[arrival_idx] = Some(tuple);
        let ctx = JoinCtx {
            join_sources: &self.join_sources,
            attr_sources: &self.attr_sources,
            windows: &self.windows,
        };
        let mut results: Vec<(Timestamp, Vec<Value>)> = Vec::new();
        enumerate(
            &self.buffers,
            arrival_idx,
            0,
            &mut combo,
            &ctx,
            Some(tau),
            &mut results,
        );
        for (_, values) in results {
            self.finish(values, tau, out);
        }
        self.buffers[arrival_idx].push_back(tuple.clone());
    }

    fn push_aggregate(&mut self, si: usize, tuple: &Tuple, out: &mut Vec<Tuple>) {
        debug_assert_eq!(si, 0, "aggregates run over a single stream");
        let retain_floor = self.retain_floor;
        let agg = self.agg.as_mut().expect("aggregate state");
        let row = agg.push(&self.query, tuple, retain_floor);
        self.finish(row, tuple.timestamp, out);
    }
}

/// Shared immutable context for join enumeration.
struct JoinCtx<'a> {
    join_sources: &'a [(ColSource, ColSource)],
    attr_sources: &'a [Option<ColSource>],
    windows: &'a [TimeDelta],
}

/// Depth-first enumeration of join combinations. With `tau = Some(τ)`
/// every emission is stamped τ (the in-order completing arrival); with
/// `None` each combination's τ is its latest member's timestamp (the
/// late-revision case). Either way, every member must satisfy Lemma 1:
/// `tᵢ.ts ≥ τ − Tᵢ` — redundant with buffer eviction in strict
/// in-order mode, load-bearing when buffers retain revision history.
fn enumerate<'a>(
    buffers: &'a [VecDeque<Tuple>],
    arrival_idx: usize,
    si: usize,
    combo: &mut Vec<Option<&'a Tuple>>,
    ctx: &JoinCtx<'_>,
    tau: Option<Timestamp>,
    results: &mut Vec<(Timestamp, Vec<Value>)>,
) {
    if si == buffers.len() {
        // All join predicates whose sides are both bound must hold;
        // at this depth every side is bound.
        let get = |src: ColSource| -> &Value {
            combo[src.0]
                .expect("combo complete")
                .get(src.1)
                .expect("attr index valid")
        };
        let tau = tau.unwrap_or_else(|| {
            combo
                .iter()
                .map(|t| t.expect("combo complete").timestamp)
                .max()
                .expect("non-empty combo")
        });
        for (i, w) in ctx.windows.iter().enumerate() {
            if w.is_infinite() {
                continue;
            }
            if combo[i].expect("combo complete").timestamp < tau - *w {
                return;
            }
        }
        for (l, r) in ctx.join_sources {
            if !get(*l).eq_coerce(get(*r)) {
                return;
            }
        }
        let values = ctx
            .attr_sources
            .iter()
            .map(|src| {
                let (s, a) = src.expect("non-aggregate column");
                combo[s]
                    .expect("combo complete")
                    .get(a)
                    .cloned()
                    .unwrap_or(Value::Null)
            })
            .collect();
        results.push((tau, values));
        return;
    }
    if si == arrival_idx {
        enumerate(buffers, arrival_idx, si + 1, combo, ctx, tau, results);
        return;
    }
    // Early join-predicate pruning would help at scale; buffers in this
    // system are small (windowed), so plain enumeration is fine.
    for t in &buffers[si] {
        combo[si] = Some(t);
        enumerate(buffers, arrival_idx, si + 1, combo, ctx, tau, results);
    }
    combo[si] = None;
}

/// One buffered aggregate contribution: `(timestamp, group key, agg
/// arg values)`.
type AggEntry = (Timestamp, Vec<Value>, Vec<Value>);

/// Grouped sliding-window aggregate state.
#[derive(Debug, Clone)]
struct AggregateState {
    /// Buffered contributions inside the live window, sorted by time.
    window: VecDeque<AggEntry>,
    /// Contributions evicted from the live window (and from the
    /// accumulators) but retained for late-tuple revision, sorted by
    /// time and strictly older than everything in `window`. Only
    /// populated under a `Revise` late policy.
    history: VecDeque<AggEntry>,
    /// Low edge of the live window: the greatest `τ − T` applied. The
    /// accumulators reflect exactly the entries in `window`, i.e. those
    /// with `ts ≥ horizon`.
    horizon: Timestamp,
    /// Per-group accumulators, one per aggregate column.
    groups: FxHashMap<Vec<Value>, Vec<Accumulator>>,
    /// Positional sources of the group-by attributes.
    group_sources: Vec<usize>,
    /// Positional sources of each aggregate argument (`None` = COUNT(*)).
    agg_args: Vec<Option<usize>>,
    /// The aggregate functions, parallel to `agg_args`.
    funcs: Vec<AggFunc>,
    /// Output types of SUM columns (Int sums stay Int).
    sum_is_int: Vec<bool>,
}

/// One incremental accumulator supporting insert and remove.
///
/// The running SUM/AVG uses Kahan–Neumaier compensated summation
/// ([`NeumaierSum`]): window evictions subtract, so a plain f64
/// accumulator drifts from a from-scratch recomputation by growing
/// rounding residue (the testkit sweep caught this as seeds whose AVG
/// disagreed in the last ulps). Carrying the compensation term keeps
/// every readout within an ulp or two of the exact sum of the window's
/// current contents.
#[derive(Debug, Clone, Default)]
struct Accumulator {
    count: i64,
    sum: NeumaierSum,
    /// Multiset of values for MIN/MAX under sliding windows.
    values: BTreeMap<Value, usize>,
}

impl Accumulator {
    /// The compensated running sum.
    fn total(&self) -> f64 {
        self.sum.total()
    }

    fn insert(&mut self, v: Option<&Value>) {
        self.count += 1;
        if let Some(v) = v {
            if let Some(x) = v.as_f64() {
                self.sum.add(x);
            }
            *self.values.entry(v.clone()).or_insert(0) += 1;
        }
    }

    fn remove(&mut self, v: Option<&Value>) {
        self.count -= 1;
        if let Some(v) = v {
            if let Some(x) = v.as_f64() {
                self.sum.add(-x);
            }
            if let Some(c) = self.values.get_mut(v) {
                *c -= 1;
                if *c == 0 {
                    self.values.remove(v);
                }
            }
        }
    }

    fn value(&self, func: AggFunc, sum_is_int: bool) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => {
                if sum_is_int {
                    Value::Int(self.total().round() as i64)
                } else {
                    Value::Float(self.total())
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.total() / self.count as f64)
                }
            }
            AggFunc::Min => self.values.keys().next().cloned().unwrap_or(Value::Null),
            AggFunc::Max => self
                .values
                .keys()
                .next_back()
                .cloned()
                .unwrap_or(Value::Null),
        }
    }
}

impl AggregateState {
    fn new(query: &AnalyzedQuery) -> Result<AggregateState> {
        let schema = &query.streams[0].schema;
        let mut group_sources = Vec::with_capacity(query.group_by.len());
        for g in &query.group_by {
            group_sources.push(
                schema.index_of(&g.name).ok_or_else(|| {
                    CosmosError::Engine(format!("unknown grouping attribute {g}"))
                })?,
            );
        }
        let mut agg_args = Vec::new();
        let mut funcs = Vec::new();
        let mut sum_is_int = Vec::new();
        for col in &query.output {
            if let OutputColumn::Agg { func, arg } = col {
                funcs.push(*func);
                match arg {
                    Some(a) => {
                        let ai = schema.index_of(&a.name).ok_or_else(|| {
                            CosmosError::Engine(format!("unknown aggregate argument {a}"))
                        })?;
                        agg_args.push(Some(ai));
                        sum_is_int.push(schema.fields()[ai].ty == AttrType::Int);
                    }
                    None => {
                        agg_args.push(None);
                        sum_is_int.push(false);
                    }
                }
            }
        }
        Ok(AggregateState {
            window: VecDeque::new(),
            history: VecDeque::new(),
            horizon: Timestamp(i64::MIN),
            groups: FxHashMap::default(),
            group_sources,
            agg_args,
            funcs,
            sum_is_int,
        })
    }

    /// The tuple's group key and aggregate-argument values.
    fn key_and_args(&self, tuple: &Tuple) -> (Vec<Value>, Vec<Value>) {
        let key = self
            .group_sources
            .iter()
            .map(|&i| tuple.get(i).cloned().unwrap_or(Value::Null))
            .collect();
        let args = self
            .agg_args
            .iter()
            .map(|src| match src {
                Some(i) => tuple.get(*i).cloned().unwrap_or(Value::Null),
                None => Value::Null,
            })
            .collect();
        (key, args)
    }

    /// Fold one entry's arguments into a set of accumulators.
    fn accumulate(agg_args: &[Option<usize>], accs: &mut [Accumulator], args: &[Value]) {
        for (ai, acc) in accs.iter_mut().enumerate() {
            acc.insert(if agg_args[ai].is_some() {
                Some(&args[ai])
            } else {
                None
            });
        }
    }

    /// Assemble the output row for `key` from `accs`, in SELECT order.
    fn output_row(&self, query: &AnalyzedQuery, key: &[Value], accs: &[Accumulator]) -> Vec<Value> {
        let mut agg_i = 0usize;
        query
            .output
            .iter()
            .map(|col| match col {
                OutputColumn::Attr(a) => {
                    let gi = query
                        .group_by
                        .iter()
                        .position(|g| g == a)
                        .expect("validated: attr in GROUP BY");
                    key[gi].clone()
                }
                OutputColumn::Agg { .. } => {
                    let v = accs[agg_i].value(self.funcs[agg_i], self.sum_is_int[agg_i]);
                    agg_i += 1;
                    v
                }
            })
            .collect()
    }

    /// Advance the window to `tuple.timestamp`, fold the tuple in, and
    /// return the output row for its group. With `retain_floor` set
    /// (disorder mode, `Revise` policy), entries leaving the live
    /// window move to `history` — still outside the accumulators —
    /// until even a maximally-late tuple could not reach them.
    fn push(
        &mut self,
        query: &AnalyzedQuery,
        tuple: &Tuple,
        retain_floor: Option<Timestamp>,
    ) -> Vec<Value> {
        let tau = tuple.timestamp;
        let w = query.streams[0].window;
        if !w.is_infinite() {
            let horizon = tau - w;
            self.horizon = self.horizon.max(horizon);
            while self.window.front().is_some_and(|(ts, _, _)| *ts < horizon) {
                let (ts, key, args) = self.window.pop_front().expect("checked front");
                let accs = self.groups.get_mut(&key).expect("group exists");
                for (ai, acc) in accs.iter_mut().enumerate() {
                    acc.remove(if self.agg_args[ai].is_some() {
                        Some(&args[ai])
                    } else {
                        None
                    });
                }
                if accs[0].count == 0 {
                    self.groups.remove(&key);
                }
                if retain_floor.is_some() {
                    self.history.push_back((ts, key, args));
                }
            }
            if let Some(floor) = retain_floor {
                let keep = floor - w;
                while self.history.front().is_some_and(|(ts, _, _)| *ts < keep) {
                    self.history.pop_front();
                }
            }
        }
        let (key, args) = self.key_and_args(tuple);
        let accs = self
            .groups
            .entry(key.clone())
            .or_insert_with(|| vec![Accumulator::default(); self.funcs.len()]);
        Self::accumulate(&self.agg_args, accs, &args);
        self.window.push_back((tau, key.clone(), args));
        let accs = &self.groups[&key];
        self.output_row(query, &key, accs)
    }

    /// Recompute the row for `key` as of time `at` from scratch, by
    /// scanning every retained contribution in `(at − w, at]`.
    fn recompute_row(
        &self,
        query: &AnalyzedQuery,
        key: &[Value],
        at: Timestamp,
        w: TimeDelta,
    ) -> Vec<Value> {
        let mut accs = vec![Accumulator::default(); self.funcs.len()];
        for (ts, k, args) in self.history.iter().chain(self.window.iter()) {
            if *ts > at || k != key {
                continue;
            }
            if !w.is_infinite() && *ts < at - w {
                continue;
            }
            Self::accumulate(&self.agg_args, &mut accs, args);
        }
        self.output_row(query, key, &accs)
    }

    /// Fold a late tuple in as if it had arrived in order and return
    /// the rows to emit: first the late tuple's own row as of its
    /// timestamp, then one revision row for every already-processed
    /// same-group contribution whose window contained it.
    fn revise(&mut self, query: &AnalyzedQuery, tuple: &Tuple) -> Vec<(Timestamp, Vec<Value>)> {
        let ts = tuple.timestamp;
        let w = query.streams[0].window;
        let (key, args) = self.key_and_args(tuple);
        if ts >= self.horizon {
            // Still inside the live window: future in-order rows must
            // see it, so it joins the accumulators too.
            let accs = self
                .groups
                .entry(key.clone())
                .or_insert_with(|| vec![Accumulator::default(); self.funcs.len()]);
            Self::accumulate(&self.agg_args, accs, &args);
            let pos = self
                .window
                .iter()
                .position(|(t, _, _)| *t > ts)
                .unwrap_or(self.window.len());
            self.window.insert(pos, (ts, key.clone(), args));
        } else {
            let pos = self
                .history
                .iter()
                .position(|(t, _, _)| *t > ts)
                .unwrap_or(self.history.len());
            self.history.insert(pos, (ts, key.clone(), args));
        }
        let mut rows = vec![(ts, self.recompute_row(query, &key, ts, w))];
        // Revise same-group contributions at (ts, ts + w]: their rows
        // were emitted before this tuple was known.
        for (uts, k, _) in self.history.iter().chain(self.window.iter()) {
            if *uts <= ts || k != &key {
                continue;
            }
            if !w.is_infinite() && *uts > ts + w {
                continue;
            }
            rows.push((*uts, self.recompute_row(query, &key, *uts, w)));
        }
        rows
    }
}

/// Compile-time guarantee that executor intake can cross threads: the
/// shard-per-core driver relies on every type reachable from a routed
/// batch's delivery being `Send`.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Executor>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::AnalyzedQuery;
    use cosmos_cql::parse_query;

    fn open_schema() -> Schema {
        Schema::of(&[
            ("itemID", AttrType::Int),
            ("start_price", AttrType::Float),
            ("timestamp", AttrType::Int),
        ])
    }

    fn closed_schema() -> Schema {
        Schema::of(&[
            ("itemID", AttrType::Int),
            ("buyerID", AttrType::Int),
            ("timestamp", AttrType::Int),
        ])
    }

    fn catalog(name: &str) -> Option<Schema> {
        match name {
            "Open" => Some(open_schema()),
            "Closed" => Some(closed_schema()),
            "S" => Some(Schema::of(&[("k", AttrType::Int), ("v", AttrType::Float)])),
            _ => None,
        }
    }

    fn executor(text: &str) -> Executor {
        let q = AnalyzedQuery::analyze(&parse_query(text).unwrap(), catalog).unwrap();
        Executor::new(q, "result").unwrap()
    }

    fn open_tuple(ts: i64, item: i64, price: f64) -> Tuple {
        Tuple::new(
            "Open",
            Timestamp(ts),
            vec![Value::Int(item), Value::Float(price), Value::Int(ts)],
        )
    }

    fn closed_tuple(ts: i64, item: i64, buyer: i64) -> Tuple {
        Tuple::new(
            "Closed",
            Timestamp(ts),
            vec![Value::Int(item), Value::Int(buyer), Value::Int(ts)],
        )
    }

    #[test]
    fn single_stream_select_project() {
        let mut ex = executor("SELECT k FROM S [Now] WHERE v > 1.0");
        let pass = Tuple::new("S", Timestamp(1), vec![Value::Int(7), Value::Float(2.0)]);
        let fail = Tuple::new("S", Timestamp(2), vec![Value::Int(8), Value::Float(0.5)]);
        let out = ex.push(&pass);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values(), &[Value::Int(7)]);
        assert_eq!(out[0].stream.as_str(), "result");
        assert_eq!(out[0].timestamp, Timestamp(1));
        assert!(ex.push(&fail).is_empty());
        assert_eq!(ex.consumed(), 2);
        assert_eq!(ex.emitted(), 1);
        assert_eq!(ex.result_schema().names().collect::<Vec<_>>(), vec!["k"]);
        assert_eq!(ex.result_stream().as_str(), "result");
    }

    #[test]
    fn window_join_follows_lemma1() {
        // Open [Range 3 Hour], Closed [Now]: a closing auction joins
        // openings within the last 3 hours (and nothing newer).
        let mut ex = executor(
            "SELECT O.itemID, C.buyerID FROM Open [Range 3 Hour] O, Closed [Now] C \
             WHERE O.itemID = C.itemID",
        );
        let h = 3_600_000i64;
        assert!(ex.push(&open_tuple(0, 1, 10.0)).is_empty());
        assert!(ex.push(&open_tuple(h, 2, 20.0)).is_empty());
        // close item 1 at 2h: the opening at t=0 is within 3h → join
        let out = ex.push(&closed_tuple(2 * h, 1, 99));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values(), &[Value::Int(1), Value::Int(99)]);
        assert_eq!(out[0].timestamp, Timestamp(2 * h));
        // close item 1 again at 4h: the opening at t=0 has expired (> 3h)
        assert!(ex.push(&closed_tuple(4 * h, 1, 100)).is_empty());
        // close item 2 at 4h: opening at t=1h is exactly 3h old → joins
        let out = ex.push(&closed_tuple(4 * h, 2, 101)).len();
        assert_eq!(out, 1);
    }

    #[test]
    fn now_window_requires_equal_timestamps() {
        // Closed [Now]: an opening arriving after a closing with a
        // smaller timestamp must not join it.
        let mut ex = executor(
            "SELECT O.itemID FROM Open [Range 1 Hour] O, Closed [Now] C \
             WHERE O.itemID = C.itemID",
        );
        assert!(ex.push(&closed_tuple(1000, 5, 1)).is_empty());
        // opening at the same timestamp joins the buffered closing
        assert_eq!(ex.push(&open_tuple(1000, 5, 1.0)).len(), 1);
        // opening later does not (closing's Now window has passed)
        assert!(ex.push(&open_tuple(2000, 5, 1.0)).is_empty());
    }

    #[test]
    fn join_predicates_filter_combinations() {
        let mut ex = executor(
            "SELECT O.itemID FROM Open [Range 1 Hour] O, Closed [Range 1 Hour] C \
             WHERE O.itemID = C.itemID",
        );
        ex.push(&open_tuple(0, 1, 1.0));
        ex.push(&open_tuple(0, 2, 1.0));
        let out = ex.push(&closed_tuple(10, 2, 50));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values(), &[Value::Int(2)]);
    }

    #[test]
    fn selections_prune_before_buffering() {
        let mut ex = executor(
            "SELECT O.itemID FROM Open [Range 1 Hour] O, Closed [Range 1 Hour] C \
             WHERE O.itemID = C.itemID AND O.start_price > 15.0",
        );
        ex.push(&open_tuple(0, 1, 10.0)); // filtered out
        ex.push(&open_tuple(0, 2, 20.0)); // kept
        let out = ex.push(&closed_tuple(10, 1, 50));
        assert!(out.is_empty());
        let out = ex.push(&closed_tuple(10, 2, 51));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn unbounded_windows_never_evict() {
        let mut ex = executor(
            "SELECT O.itemID FROM Open [Unbounded] O, Closed [Now] C \
             WHERE O.itemID = C.itemID",
        );
        ex.push(&open_tuple(0, 1, 1.0));
        let far = 1_000_000_000i64;
        assert_eq!(ex.push(&closed_tuple(far, 1, 9)).len(), 1);
    }

    #[test]
    fn distinct_deduplicates_result_values() {
        let mut ex = executor("SELECT DISTINCT k FROM S [Now]");
        let t1 = Tuple::new("S", Timestamp(1), vec![Value::Int(7), Value::Float(0.0)]);
        let t2 = Tuple::new("S", Timestamp(2), vec![Value::Int(7), Value::Float(1.0)]);
        let t3 = Tuple::new("S", Timestamp(3), vec![Value::Int(8), Value::Float(1.0)]);
        assert_eq!(ex.push(&t1).len(), 1);
        assert_eq!(ex.push(&t2).len(), 0);
        assert_eq!(ex.push(&t3).len(), 1);
    }

    #[test]
    fn irrelevant_streams_are_ignored() {
        let mut ex = executor("SELECT k FROM S [Now]");
        let other = Tuple::new("Unrelated", Timestamp(1), vec![Value::Int(1)]);
        assert!(ex.push(&other).is_empty());
        assert_eq!(ex.consumed(), 0);
    }

    #[test]
    fn self_join_binds_both_sides() {
        let mut ex = executor(
            "SELECT A.itemID FROM Open [Range 1 Hour] A, Open [Range 1 Hour] B \
             WHERE A.itemID = B.itemID",
        );
        // first arrival: both windows contain the tuple at its own
        // timestamp, so it joins itself once (CQL self-join semantics)
        let out = ex.push(&open_tuple(0, 1, 1.0));
        assert_eq!(out.len(), 1);
        // second arrival t2: pairs (t2, t1), (t1, t2) and (t2, t2)
        let out = ex.push(&open_tuple(10, 1, 2.0));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn grouped_sliding_aggregates() {
        let mut ex = executor(
            "SELECT k, COUNT(*), AVG(v), MIN(v), MAX(v), SUM(v) \
             FROM S [Range 10 Second] GROUP BY k",
        );
        let t = |ts: i64, k: i64, v: f64| {
            Tuple::new("S", Timestamp(ts), vec![Value::Int(k), Value::Float(v)])
        };
        let r1 = ex.push(&t(0, 1, 10.0));
        assert_eq!(
            r1[0].values(),
            &[
                Value::Int(1),
                Value::Int(1),
                Value::Float(10.0),
                Value::Float(10.0),
                Value::Float(10.0),
                Value::Float(10.0)
            ]
        );
        let r2 = ex.push(&t(5_000, 1, 20.0));
        assert_eq!(
            r2[0].values(),
            &[
                Value::Int(1),
                Value::Int(2),
                Value::Float(15.0),
                Value::Float(10.0),
                Value::Float(20.0),
                Value::Float(30.0)
            ]
        );
        // other group independent
        let r3 = ex.push(&t(6_000, 2, 100.0));
        assert_eq!(r3[0].values()[1], Value::Int(1));
        // at t=12s the t=0 tuple has left the 10s window
        let r4 = ex.push(&t(12_000, 1, 30.0));
        assert_eq!(
            r4[0].values(),
            &[
                Value::Int(1),
                Value::Int(2),
                Value::Float(25.0),
                Value::Float(20.0),
                Value::Float(30.0),
                Value::Float(50.0)
            ]
        );
    }

    #[test]
    fn count_star_without_group_by() {
        let mut ex = executor("SELECT COUNT(*) FROM S [Range 5 Second]");
        let t = |ts: i64| Tuple::new("S", Timestamp(ts), vec![Value::Int(1), Value::Float(0.0)]);
        assert_eq!(ex.push(&t(0))[0].values(), &[Value::Int(1)]);
        assert_eq!(ex.push(&t(1_000))[0].values(), &[Value::Int(2)]);
        assert_eq!(ex.push(&t(4_000))[0].values(), &[Value::Int(3)]);
        // at t=7s the 5s window keeps only t=4s and t=7s
        assert_eq!(ex.push(&t(7_000))[0].values(), &[Value::Int(2)]);
    }

    #[test]
    fn push_projected_realigns_narrow_tuples() {
        // The CBN delivers only {k, v} (early projection); the executor
        // must realign them to the full stream schema.
        let mut ex = executor("SELECT k FROM S [Now] WHERE v > 1.0");
        let narrow_schema = Schema::of(&[("v", AttrType::Float), ("k", AttrType::Int)]);
        // note: reversed column order relative to the registered schema
        let t = Tuple::new("S", Timestamp(1), vec![Value::Float(2.0), Value::Int(7)]);
        let out = ex.push_projected(&t, &narrow_schema);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values(), &[Value::Int(7)]);
        // a tuple missing the filtered attribute cannot satisfy it
        let missing = Schema::of(&[("k", AttrType::Int)]);
        let t2 = Tuple::new("S", Timestamp(2), vec![Value::Int(8)]);
        assert!(ex.push_projected(&t2, &missing).is_empty());
        // full-schema tuples take the fast path
        let full = Tuple::new("S", Timestamp(3), vec![Value::Int(9), Value::Float(5.0)]);
        let full_schema = Schema::of(&[("k", AttrType::Int), ("v", AttrType::Float)]);
        assert_eq!(ex.push_projected(&full, &full_schema).len(), 1);
        // tuples from unknown streams are ignored
        let other = Tuple::new("Other", Timestamp(4), vec![Value::Int(1)]);
        assert!(ex.push_projected(&other, &missing).is_empty());
    }

    #[test]
    fn integer_sums_stay_integers() {
        let cat =
            |n: &str| (n == "T").then(|| Schema::of(&[("g", AttrType::Int), ("x", AttrType::Int)]));
        let q = AnalyzedQuery::analyze(
            &parse_query("SELECT g, SUM(x) FROM T [Unbounded] GROUP BY g").unwrap(),
            cat,
        )
        .unwrap();
        let mut ex = Executor::new(q, "r").unwrap();
        let t = |ts: i64, g: i64, x: i64| {
            Tuple::new("T", Timestamp(ts), vec![Value::Int(g), Value::Int(x)])
        };
        ex.push(&t(0, 1, 5));
        let out = ex.push(&t(1, 1, 7));
        assert_eq!(out[0].values(), &[Value::Int(1), Value::Int(12)]);
        assert!(matches!(out[0].values()[1], Value::Int(_)));
    }
}
