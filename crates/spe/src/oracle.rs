//! A brute-force reference evaluator.
//!
//! [`evaluate`] recomputes a query's result stream from the complete
//! input history with no incremental state, no eviction and no indexes —
//! a direct transcription of the semantics (Lemma 1 for joins, sliding
//! windows re-scanned from scratch for aggregates). It exists solely as
//! ground truth: the executor's incremental machinery is property-tested
//! against it here, and the query layer's merge-and-split pipeline is
//! checked against it end-to-end.

use crate::analyze::{AnalyzedQuery, OutputColumn};
use cosmos_types::{FxHashSet, StreamName, Timestamp, Tuple, Value};

/// Evaluate `query` over `inputs` (which must be in non-decreasing
/// timestamp order), returning the full result stream.
pub fn evaluate(
    query: &AnalyzedQuery,
    result_stream: impl Into<StreamName>,
    inputs: &[Tuple],
) -> Vec<Tuple> {
    let result_stream = result_stream.into();
    let n = query.streams.len();
    // Per-binding history of selection-passing tuples.
    let mut history: Vec<Vec<Tuple>> = vec![Vec::new(); n];
    let mut out = Vec::new();
    let mut distinct_seen: FxHashSet<Vec<Value>> = FxHashSet::default();
    let mut emit = |values: Vec<Value>, ts: Timestamp, out: &mut Vec<Tuple>| {
        if query.distinct && !distinct_seen.insert(values.clone()) {
            return;
        }
        out.push(Tuple::new(result_stream.clone(), ts, values));
    };

    for t in inputs {
        for si in 0..n {
            if query.streams[si].stream != t.stream {
                continue;
            }
            let passes = query.selections[si].satisfies(t, &query.streams[si].schema);
            if passes {
                if query.is_aggregate() {
                    let row = aggregate_row(query, &history[0], t);
                    emit(row, t.timestamp, &mut out);
                } else if n == 1 {
                    let row = project(query, &[t]);
                    emit(row, t.timestamp, &mut out);
                } else {
                    join_arrival(query, &history, si, t, |values| {
                        emit(values, t.timestamp, &mut out)
                    });
                }
                history[si].push(t.clone());
            }
        }
    }
    out
}

/// Project a complete combination onto the output columns.
fn project(query: &AnalyzedQuery, combo: &[&Tuple]) -> Vec<Value> {
    query
        .output
        .iter()
        .map(|col| match col {
            OutputColumn::Attr(a) => {
                let si = query.stream_index(&a.binding).expect("bound");
                combo[si]
                    .get_by_name(&query.streams[si].schema, &a.name)
                    .cloned()
                    .unwrap_or(Value::Null)
            }
            OutputColumn::Agg { .. } => unreachable!("join oracle has no aggregates"),
        })
        .collect()
}

/// Enumerate the new combinations an arrival completes, per Lemma 1.
fn join_arrival<F: FnMut(Vec<Value>)>(
    query: &AnalyzedQuery,
    history: &[Vec<Tuple>],
    arrival_idx: usize,
    t: &Tuple,
    mut emit: F,
) {
    let tau = t.timestamp;
    let n = query.streams.len();
    let mut combo: Vec<Option<&Tuple>> = vec![None; n];
    combo[arrival_idx] = Some(t);
    fn rec<'a, F: FnMut(Vec<Value>)>(
        query: &AnalyzedQuery,
        history: &'a [Vec<Tuple>],
        arrival_idx: usize,
        tau: Timestamp,
        si: usize,
        combo: &mut Vec<Option<&'a Tuple>>,
        emit: &mut F,
    ) {
        let n = history.len();
        if si == n {
            for j in &query.joins {
                let get = |binding: &str, name: &str| -> Option<&Value> {
                    let i = query.stream_index(binding)?;
                    combo[i]?.get_by_name(&query.streams[i].schema, name)
                };
                match (
                    get(&j.left.binding, &j.left.name),
                    get(&j.right.binding, &j.right.name),
                ) {
                    (Some(a), Some(b)) if a.eq_coerce(b) => {}
                    _ => return,
                }
            }
            let full: Vec<&Tuple> = combo.iter().map(|c| c.expect("complete")).collect();
            emit(project(query, &full));
            return;
        }
        if si == arrival_idx {
            rec(query, history, arrival_idx, tau, si + 1, combo, emit);
            return;
        }
        for u in &history[si] {
            // Window check (Lemma 1): partner must be within its own
            // window relative to the completing arrival.
            let w = query.streams[si].window;
            if !w.is_infinite() && u.timestamp < tau - w {
                continue;
            }
            combo[si] = Some(u);
            rec(query, history, arrival_idx, tau, si + 1, combo, emit);
        }
        combo[si] = None;
    }
    rec(query, history, arrival_idx, tau, 0, &mut combo, &mut emit);
}

/// Recompute the aggregate row for an arrival's group from scratch.
fn aggregate_row(query: &AnalyzedQuery, history: &[Tuple], t: &Tuple) -> Vec<Value> {
    use cosmos_cql::AggFunc;
    let schema = &query.streams[0].schema;
    let tau = t.timestamp;
    let w = query.streams[0].window;
    let key_of = |u: &Tuple| -> Vec<Value> {
        query
            .group_by
            .iter()
            .map(|g| {
                u.get_by_name(schema, &g.name)
                    .cloned()
                    .unwrap_or(Value::Null)
            })
            .collect()
    };
    let key = key_of(t);
    let members: Vec<&Tuple> = history
        .iter()
        .chain(std::iter::once(t))
        .filter(|u| (w.is_infinite() || u.timestamp >= tau - w) && key_of(u) == key)
        .collect();
    query
        .output
        .iter()
        .map(|col| match col {
            OutputColumn::Attr(a) => {
                let gi = query.group_by.iter().position(|g| g == a).expect("grouped");
                key[gi].clone()
            }
            OutputColumn::Agg { func, arg } => {
                let vals: Vec<&Value> = match arg {
                    Some(a) => members
                        .iter()
                        .filter_map(|u| u.get_by_name(schema, &a.name))
                        .collect(),
                    None => Vec::new(),
                };
                match func {
                    AggFunc::Count => Value::Int(members.len() as i64),
                    AggFunc::Sum => {
                        let s: f64 = vals.iter().filter_map(|v| v.as_f64()).sum();
                        let is_int = arg
                            .as_ref()
                            .and_then(|a| schema.field(&a.name))
                            .map(|f| f.ty == cosmos_types::AttrType::Int)
                            .unwrap_or(false);
                        if is_int {
                            Value::Int(s.round() as i64)
                        } else {
                            Value::Float(s)
                        }
                    }
                    AggFunc::Avg => {
                        if members.is_empty() {
                            Value::Null
                        } else {
                            let s: f64 = vals.iter().filter_map(|v| v.as_f64()).sum();
                            Value::Float(s / members.len() as f64)
                        }
                    }
                    AggFunc::Min => vals
                        .iter()
                        .min()
                        .map(|v| (*v).clone())
                        .unwrap_or(Value::Null),
                    AggFunc::Max => vals
                        .iter()
                        .max()
                        .map(|v| (*v).clone())
                        .unwrap_or(Value::Null),
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::AnalyzedQuery;
    use crate::executor::Executor;
    use cosmos_cql::parse_query;
    use cosmos_types::{AttrType, Schema};
    use proptest::prelude::*;

    fn catalog(name: &str) -> Option<Schema> {
        match name {
            "A" => Some(Schema::of(&[("k", AttrType::Int), ("x", AttrType::Int)])),
            "B" => Some(Schema::of(&[("k", AttrType::Int), ("y", AttrType::Int)])),
            _ => None,
        }
    }

    fn analyzed(text: &str) -> AnalyzedQuery {
        AnalyzedQuery::analyze(&parse_query(text).unwrap(), catalog).unwrap()
    }

    /// Run both implementations and compare.
    fn check(query_text: &str, inputs: &[Tuple]) {
        let q = analyzed(query_text);
        let expected = evaluate(&q, "r", inputs);
        let mut ex = Executor::new(q, "r").unwrap();
        let mut actual = Vec::new();
        for t in inputs {
            actual.extend(ex.push(t));
        }
        assert_eq!(
            expected, actual,
            "oracle/executor divergence for {query_text}"
        );
    }

    fn arb_inputs(len: usize) -> impl Strategy<Value = Vec<Tuple>> {
        proptest::collection::vec(
            (
                0i64..30,
                prop_oneof![Just("A"), Just("B")],
                0i64..5,
                0i64..50,
            ),
            1..len,
        )
        .prop_map(|mut raw| {
            raw.sort_by_key(|(ts, _, _, _)| *ts);
            raw.into_iter()
                .map(|(ts, stream, k, v)| {
                    Tuple::new(
                        stream,
                        Timestamp(ts * 1000),
                        vec![Value::Int(k), Value::Int(v)],
                    )
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Incremental window join ≡ brute-force Lemma 1 evaluation.
        #[test]
        fn join_matches_oracle(inputs in arb_inputs(40)) {
            check(
                "SELECT A.x, B.y FROM A [Range 8 Second] A, B [Range 4 Second] B \
                 WHERE A.k = B.k",
                &inputs,
            );
        }

        /// Now-window joins agree too (timestamp-equality edge cases).
        #[test]
        fn now_join_matches_oracle(inputs in arb_inputs(40)) {
            check(
                "SELECT A.x FROM A [Range 10 Second] A, B [Now] B WHERE A.k = B.k",
                &inputs,
            );
        }

        /// Selections + distinct agree.
        #[test]
        fn distinct_select_matches_oracle(inputs in arb_inputs(40)) {
            check("SELECT DISTINCT x FROM A [Now] WHERE x >= 10", &inputs);
        }

        /// Sliding grouped aggregates agree with full recomputation.
        #[test]
        fn aggregates_match_oracle(inputs in arb_inputs(40)) {
            check(
                "SELECT k, COUNT(*), SUM(x), MIN(x), MAX(x), AVG(x) \
                 FROM A [Range 6 Second] GROUP BY k",
                &inputs,
            );
        }

        /// Unbounded-window aggregates agree.
        #[test]
        fn unbounded_aggregates_match_oracle(inputs in arb_inputs(30)) {
            check("SELECT COUNT(*), SUM(x) FROM A [Unbounded]", &inputs);
        }
    }

    #[test]
    fn oracle_smoke_join() {
        let q = analyzed("SELECT A.x, B.y FROM A [Range 5 Second] A, B [Now] B WHERE A.k = B.k");
        let inputs = vec![
            Tuple::new("A", Timestamp(0), vec![Value::Int(1), Value::Int(10)]),
            Tuple::new("B", Timestamp(3_000), vec![Value::Int(1), Value::Int(20)]),
        ];
        let out = evaluate(&q, "r", &inputs);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values(), &[Value::Int(10), Value::Int(20)]);
        assert_eq!(out[0].timestamp, Timestamp(3_000));
    }
}
