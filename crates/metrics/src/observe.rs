//! Per-attribute observation: running min/max and a KMV distinct sketch.
//!
//! Routers sample every Nth tuple (see `MetricsConfig::sample_every`)
//! and feed the sampled attribute values here. The observer keeps what
//! the query optimizer's cost model needs — value range and distinct
//! count — in a fixed-size footprint, so it can be converted straight
//! back into an [`AttrStats`] by the measured-stats adapter.

use cosmos_query::AttrStats;
use cosmos_types::Value;
use rustc_hash::FxHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

/// Sketch size: the KMV estimator keeps the `K` smallest value hashes.
pub const KMV_K: usize = 64;

/// Streaming statistics for one attribute of one stream.
#[derive(Debug, Clone, Default)]
pub struct AttrObserver {
    samples: u64,
    numeric: bool,
    min: f64,
    max: f64,
    /// The `KMV_K` smallest 64-bit hashes seen so far.
    kmv: BTreeSet<u64>,
    /// Largest hash in the sketch, cached so the steady-state rejection
    /// (hash not among the `KMV_K` smallest) is a single compare.
    kmv_max: u64,
}

impl AttrObserver {
    /// Feed one sampled value.
    pub fn observe(&mut self, v: &Value) {
        if matches!(v, Value::Null) {
            return;
        }
        self.samples += 1;
        let mut hasher = FxHasher::default();
        v.hash(&mut hasher);
        let h = hasher.finish();
        if self.kmv.len() < KMV_K {
            self.kmv.insert(h);
            self.kmv_max = self.kmv_max.max(h);
        } else if h < self.kmv_max && self.kmv.insert(h) {
            self.kmv.remove(&self.kmv_max);
            self.kmv_max = *self.kmv.iter().next_back().expect("sketch is full");
        }
        if let Some(x) = v.as_f64() {
            if x.is_finite() {
                if !self.numeric {
                    self.numeric = true;
                    self.min = x;
                    self.max = x;
                } else {
                    self.min = self.min.min(x);
                    self.max = self.max.max(x);
                }
            }
        }
    }

    /// Number of non-null samples observed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// KMV estimate of the number of distinct values.
    ///
    /// With fewer than `KMV_K` distinct hashes the sketch is exact; past
    /// that, the classic `(k-1) / kth-smallest-normalized-hash`
    /// estimator applies.
    pub fn distinct(&self) -> f64 {
        if self.kmv.len() < KMV_K {
            return self.kmv.len() as f64;
        }
        let kth = *self.kmv.iter().next_back().expect("sketch is full");
        let normalized = (kth as f64 + 1.0) / (u64::MAX as f64 + 1.0);
        ((KMV_K - 1) as f64 / normalized).max(KMV_K as f64)
    }

    /// Convert the observation into optimizer-facing [`AttrStats`].
    /// `None` until at least one non-null value was sampled.
    pub fn attr_stats(&self) -> Option<AttrStats> {
        if self.samples == 0 {
            return None;
        }
        Some(if self.numeric {
            AttrStats::numeric(self.min, self.max, self.distinct())
        } else {
            AttrStats::categorical(self.distinct())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cardinality_is_exact() {
        let mut o = AttrObserver::default();
        for i in 0..1000 {
            o.observe(&Value::Int(i % 7));
        }
        assert_eq!(o.distinct() as i64, 7);
        let s = o.attr_stats().expect("sampled");
        assert_eq!(s.min as i64, 0);
        assert_eq!(s.max as i64, 6);
    }

    #[test]
    fn large_cardinality_is_approximate() {
        let mut o = AttrObserver::default();
        let n = 10_000i64;
        for i in 0..n {
            o.observe(&Value::Int(i));
        }
        let est = o.distinct();
        let err = (est - n as f64).abs() / n as f64;
        assert!(err < 0.35, "estimate {est} off by {err}");
    }

    #[test]
    fn nulls_are_ignored_and_strings_are_categorical() {
        let mut o = AttrObserver::default();
        o.observe(&Value::Null);
        assert!(o.attr_stats().is_none());
        o.observe(&Value::Str("a".into()));
        o.observe(&Value::Str("b".into()));
        let s = o.attr_stats().expect("sampled");
        assert_eq!(s.distinct as i64, 2);
        assert_eq!(s.min, 0.0, "categorical attrs have no numeric range");
    }
}
