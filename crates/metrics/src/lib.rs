//! cosmos-metrics: runtime observability for COSMOS.
//!
//! COSMOS plans with *registration-time estimates*: stream rates and
//! attribute statistics declared when a stream is advertised. This crate
//! supplies the other half of the self-tuning loop the paper sketches —
//! *measurements* taken from the live dissemination network:
//!
//! * per-link and per-node tuple/byte rates ([`MetricsHub::on_link`]),
//! * per-stream observed rates plus sampled per-attribute ranges and
//!   KMV distinct counts ([`MetricsHub::on_publish`]),
//! * per-query delivered-tuple rates and virtual-time delivery latency
//!   ([`MetricsHub::on_delivery`]),
//! * per-node consumed demand ([`MetricsHub::on_spe_intake`]).
//!
//! Everything is windowed over *virtual time* (tuple timestamps), so a
//! replayed scenario reproduces its metrics byte-for-byte — the testkit
//! conservation oracle depends on that. The [`MeasuredStats`] adapter
//! converts window aggregates back into the optimizer's
//! `StreamStats`/`StatsCatalog` vocabulary, which is what lets
//! `Cosmos::autotune` feed measurements into the existing re-grouping
//! and tree-optimization entry points when [`relative_drift`] between
//! estimate and observation exceeds a threshold.

mod hub;
mod observe;
mod snapshot;
mod window;

pub use hub::{relative_drift, MeasuredStats, MetricsConfig, MetricsHub};
pub use observe::{AttrObserver, KMV_K};
pub use snapshot::{
    AttrMetrics, LinkMetrics, MetricsSnapshot, NodeMetrics, QueryMetrics, RouterTotals,
    StreamMetrics, METRICS_VERSION,
};
pub use window::{RateWindow, WINDOW_BUCKETS};
