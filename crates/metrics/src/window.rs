//! Bucketed sliding-window rate estimation over virtual time.
//!
//! A [`RateWindow`] covers the trailing `window` of virtual time with a
//! fixed number of coarse buckets, so recording a sample is O(1) and the
//! whole window costs a few dozen bytes regardless of traffic volume.
//! Lifetime totals are kept exactly alongside the windowed counts: the
//! conservation oracle in cosmos-testkit checks the totals, while rate
//! queries use the window.
//!
//! All bucketing is keyed by tuple timestamps (virtual time), never the
//! wall clock, so metrics are deterministic and replayable.

use cosmos_types::TimeDelta;
use std::collections::VecDeque;

/// Number of buckets a window is divided into.
pub const WINDOW_BUCKETS: i64 = 8;

/// Sliding tuple/byte counters over the trailing window of virtual time.
#[derive(Debug, Clone)]
pub struct RateWindow {
    bucket_ms: i64,
    /// Live buckets in ascending bucket-index order (at most
    /// [`WINDOW_BUCKETS`] entries).
    buckets: VecDeque<Bucket>,
    total_tuples: u64,
    total_bytes: u64,
    /// Virtual time of the first recorded sample, for ramp-up rates
    /// before a full window has elapsed.
    first_ms: Option<i64>,
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    index: i64,
    tuples: u64,
    bytes: u64,
}

impl RateWindow {
    /// A window spanning `window` of virtual time.
    pub fn new(window: TimeDelta) -> RateWindow {
        let span_ms = window.millis().max(WINDOW_BUCKETS);
        RateWindow {
            bucket_ms: (span_ms / WINDOW_BUCKETS).max(1),
            buckets: VecDeque::new(),
            total_tuples: 0,
            total_bytes: 0,
            first_ms: None,
        }
    }

    /// Record `tuples` tuples totalling `bytes` bytes at virtual time
    /// `at_ms`. Out-of-order samples whose bucket is still live inside
    /// the window land in that bucket; only samples older than the whole
    /// window fold into the oldest live bucket, so memory stays bounded.
    pub fn record(&mut self, at_ms: i64, tuples: u64, bytes: u64) {
        self.total_tuples += tuples;
        self.total_bytes += bytes;
        if self.first_ms.is_none() || at_ms < self.first_ms.unwrap_or(i64::MAX) {
            self.first_ms = Some(at_ms);
        }
        let index = at_ms.div_euclid(self.bucket_ms);
        if let Some(back) = self.buckets.back() {
            if index <= back.index {
                let oldest_live = back.index - (WINDOW_BUCKETS - 1);
                if index < oldest_live {
                    // Below the whole window: the only place left that
                    // keeps the mass countable is the oldest live bucket.
                    let front = self.buckets.front_mut().expect("non-empty deque");
                    front.tuples += tuples;
                    front.bytes += bytes;
                    return;
                }
                match self.buckets.binary_search_by_key(&index, |b| b.index) {
                    Ok(pos) => {
                        let b = &mut self.buckets[pos];
                        b.tuples += tuples;
                        b.bytes += bytes;
                    }
                    Err(pos) => {
                        self.buckets.insert(
                            pos,
                            Bucket {
                                index,
                                tuples,
                                bytes,
                            },
                        );
                        // Inserting into a gap can overflow the bucket
                        // budget; anything trimmed is below `oldest_live`.
                        while self.buckets.len() as i64 > WINDOW_BUCKETS {
                            self.buckets.pop_front();
                        }
                    }
                }
                return;
            }
        }
        self.buckets.push_back(Bucket {
            index,
            tuples,
            bytes,
        });
        while self.buckets.len() as i64 > WINDOW_BUCKETS {
            self.buckets.pop_front();
        }
    }

    /// Exact lifetime tuple count.
    pub fn total_tuples(&self) -> u64 {
        self.total_tuples
    }

    /// Exact lifetime byte count.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Tuples and bytes recorded in the live window as of `now_ms`.
    pub(crate) fn windowed(&self, now_ms: i64) -> (u64, u64) {
        let oldest_live = now_ms.div_euclid(self.bucket_ms) - (WINDOW_BUCKETS - 1);
        let mut tuples = 0;
        let mut bytes = 0;
        for b in &self.buckets {
            if b.index >= oldest_live && b.index <= now_ms.div_euclid(self.bucket_ms) {
                tuples += b.tuples;
                bytes += b.bytes;
            }
        }
        (tuples, bytes)
    }

    /// Effective window span at `now_ms`, in seconds: the configured
    /// window, shortened during ramp-up to the time actually observed.
    fn span_secs(&self, now_ms: i64) -> f64 {
        let window_ms = self.bucket_ms * WINDOW_BUCKETS;
        let observed_ms = match self.first_ms {
            Some(f) => (now_ms - f + 1).max(1),
            None => 1,
        };
        window_ms.min(observed_ms) as f64 / 1000.0
    }

    /// Windowed arrival rate in tuples per second as of `now_ms`.
    pub fn tuple_rate(&self, now_ms: i64) -> f64 {
        self.windowed(now_ms).0 as f64 / self.span_secs(now_ms)
    }

    /// Windowed throughput in bytes per second as of `now_ms`.
    pub fn byte_rate(&self, now_ms: i64) -> f64 {
        self.windowed(now_ms).1 as f64 / self.span_secs(now_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_exact_and_window_slides() {
        let mut w = RateWindow::new(TimeDelta::from_secs(8));
        for t in 0..16 {
            w.record(t * 1000, 2, 20);
        }
        assert_eq!(w.total_tuples(), 32);
        assert_eq!(w.total_bytes(), 320);
        // At t=15s only the last 8 seconds (16 tuples) are live.
        let rate = w.tuple_rate(15_999);
        assert!((rate - 2.0).abs() < 0.2, "rate {rate}");
        // Far in the future the window is empty.
        assert_eq!(w.tuple_rate(1_000_000) as i64, 0);
        assert_eq!(w.total_tuples(), 32, "totals never decay");
    }

    #[test]
    fn ramp_up_uses_observed_span() {
        let mut w = RateWindow::new(TimeDelta::from_secs(60));
        // 10 tuples over 2 seconds: a 60s denominator would report 0.17
        // tuples/s; the ramp-up span reports ~5/s.
        for t in 0..10 {
            w.record(t * 200, 1, 10);
        }
        let rate = w.tuple_rate(1_999);
        assert!((rate - 5.0).abs() < 0.5, "rate {rate}");
    }

    #[test]
    fn out_of_order_samples_land_in_their_own_live_bucket() {
        let mut w = RateWindow::new(TimeDelta::from_secs(8));
        w.record(7_000, 1, 10);
        w.record(1_000, 1, 10);
        assert_eq!(w.total_tuples(), 2);
        let (tuples, _) = w.windowed(7_000);
        assert_eq!(tuples, 2);
        // At t=9s the 1s bucket has slid out of the window; only the 7s
        // sample remains live. Folding into the newest bucket would
        // misreport 2 here.
        let (tuples, bytes) = w.windowed(9_000);
        assert_eq!(tuples, 1);
        assert_eq!(bytes, 10);
    }

    #[test]
    fn below_window_samples_fold_into_oldest_live_bucket() {
        let mut w = RateWindow::new(TimeDelta::from_secs(8));
        w.record(20_000, 1, 10);
        w.record(15_000, 1, 10);
        // index 1 is below the live range [13, 20]: folds into the
        // oldest live bucket (15s) rather than growing the deque.
        w.record(1_000, 1, 10);
        assert_eq!(w.total_tuples(), 3);
        let (tuples, _) = w.windowed(20_000);
        assert_eq!(tuples, 3);
        // Once the 15s bucket slides out it takes the folded mass along.
        let (tuples, _) = w.windowed(23_000);
        assert_eq!(tuples, 1);
    }

    #[test]
    fn disordered_feed_matches_in_order_rates() {
        // The same 16 samples, in order and bit-reversed (a deterministic
        // shuffle with plenty of backward jumps): every windowed rate
        // query must agree, since each sample lands in its own bucket.
        let times: Vec<i64> = (0..16).map(|t| t * 500).collect();
        let mut ordered = RateWindow::new(TimeDelta::from_secs(8));
        for &t in &times {
            ordered.record(t, 1, 10);
        }
        let mut disordered = RateWindow::new(TimeDelta::from_secs(8));
        for i in 0..16usize {
            let rev = i.reverse_bits() >> (usize::BITS - 4);
            disordered.record(times[rev], 1, 10);
        }
        assert_eq!(disordered.total_tuples(), ordered.total_tuples());
        for now in [3_999, 7_500, 9_999, 15_000] {
            assert_eq!(
                disordered.windowed(now),
                ordered.windowed(now),
                "windowed counts diverge at {now}"
            );
            let (a, b) = (disordered.tuple_rate(now), ordered.tuple_rate(now));
            assert!((a - b).abs() < 1e-9, "rate diverges at {now}: {a} vs {b}");
        }
    }

    #[test]
    fn zero_width_windows_are_clamped() {
        let mut w = RateWindow::new(TimeDelta::ZERO);
        w.record(0, 1, 10);
        assert!(w.tuple_rate(0).is_finite());
    }
}
