//! The metrics hub: every observation point in the running system
//! funnels into one [`MetricsHub`] owned by the system driver.
//!
//! The hub is clocked by *virtual time* — the max tuple timestamp seen
//! so far — never the wall clock, so two runs of the same scenario
//! produce byte-identical metrics. Observation is O(1) per call (plus
//! O(arity) for the sampled tuples that feed attribute observers), and
//! every hook early-returns when metrics are disabled, which is what the
//! bench overhead gate measures.

use crate::observe::AttrObserver;
use crate::snapshot::{
    AttrMetrics, LinkMetrics, MetricsSnapshot, NodeMetrics, QueryMetrics, RouterTotals,
    StreamMetrics, METRICS_VERSION,
};
use crate::window::RateWindow;
use cosmos_query::{StatsCatalog, StreamStats};
use cosmos_types::{NodeId, QueryId, Schema, StreamName, TimeDelta, Timestamp, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// Knobs for the metrics layer.
#[derive(Debug, Clone)]
pub struct MetricsConfig {
    /// Record observations at all. Off turns every hook into a cheap
    /// early return (the ≤5% overhead budget is measured against this).
    pub enabled: bool,
    /// Sliding-window span, in virtual time.
    pub window: TimeDelta,
    /// Sample every Nth published tuple into the per-attribute
    /// observers. 1 samples everything; higher trades accuracy for
    /// less hot-path work.
    pub sample_every: u64,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            enabled: true,
            window: TimeDelta::from_secs(60),
            sample_every: 32,
        }
    }
}

#[derive(Debug, Clone)]
struct StreamObservation {
    window: RateWindow,
    /// Modular clock driving every-Nth-tuple sampling.
    sample_clock: u64,
    /// Schema the observers are positionally aligned with. Interned
    /// schemas compare in O(1), so re-checking per batch is free.
    schema: Option<Schema>,
    /// One observer per schema field, in field order — indexed sampling,
    /// no per-sample name lookups.
    observers: Vec<AttrObserver>,
}

impl StreamObservation {
    /// The (field name, observer) pairs that saw at least one sample.
    fn observed_attrs(&self) -> impl Iterator<Item = (&str, &AttrObserver)> {
        self.schema
            .iter()
            .flat_map(|s| s.fields().iter().zip(&self.observers))
            .map(|(f, o)| (f.name.as_str(), o))
    }
}

#[derive(Debug, Clone)]
struct QueryObservation {
    window: RateWindow,
    latency_sum_ms: i64,
    latency_max_ms: i64,
}

/// Sliding-window metrics for links, nodes, streams and queries.
#[derive(Debug, Clone)]
pub struct MetricsHub {
    cfg: MetricsConfig,
    now_ms: i64,
    // Every map below is iterated while assembling `MetricsSnapshot`,
    // so they are BTreeMaps (D0101): key order is the emission order,
    // making the snapshot deterministic with no sort-before-emit step.
    links: BTreeMap<(NodeId, NodeId), RateWindow>,
    node_tx: BTreeMap<NodeId, RateWindow>,
    node_rx: BTreeMap<NodeId, RateWindow>,
    /// Bytes consumed *at* a node: user deliveries plus SPE intake.
    /// This is the measured analogue of the optimizer's per-node demand.
    consumed: BTreeMap<NodeId, RateWindow>,
    streams: BTreeMap<StreamName, StreamObservation>,
    queries: BTreeMap<QueryId, QueryObservation>,
    /// Watermark punctuation datagrams disseminated (disorder mode).
    punctuations: u64,
    /// Link bytes spent on punctuations (also counted by `on_link`).
    punctuation_bytes: u64,
    /// Result tuples dropped by the overload controller's `Shed` policy.
    shed_tuples: u64,
    /// Result bytes dropped by the `Shed` policy.
    shed_bytes: u64,
    /// Pending batches merged by the `Coalesce` policy before delivery.
    coalesced_batches: u64,
    /// Upstream rate-limit datagrams disseminated by `Throttle`.
    throttles: u64,
    /// Link bytes spent on rate-limits (also counted by `on_link`).
    throttle_bytes: u64,
}

impl MetricsHub {
    /// A hub with the given configuration.
    pub fn new(cfg: MetricsConfig) -> MetricsHub {
        MetricsHub {
            cfg,
            now_ms: 0,
            links: BTreeMap::new(),
            node_tx: BTreeMap::new(),
            node_rx: BTreeMap::new(),
            consumed: BTreeMap::new(),
            streams: BTreeMap::new(),
            queries: BTreeMap::new(),
            punctuations: 0,
            punctuation_bytes: 0,
            shed_tuples: 0,
            shed_bytes: 0,
            coalesced_batches: 0,
            throttles: 0,
            throttle_bytes: 0,
        }
    }

    /// Whether observations are being recorded.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Turn recording on or off. Already-recorded history is kept.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.cfg.enabled = enabled;
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> i64 {
        self.now_ms
    }

    /// Configured sliding-window span in milliseconds (never zero) —
    /// the budget period of the overload controller and the scheduling
    /// quantum of autotune policies.
    pub fn window_ms(&self) -> i64 {
        self.cfg.window.millis().max(1)
    }

    /// Advance virtual time to at least `ts` (time never goes backward).
    pub fn advance(&mut self, ts: Timestamp) {
        self.now_ms = self.now_ms.max(ts.millis());
    }

    fn fresh_window(&self) -> RateWindow {
        RateWindow::new(self.cfg.window)
    }

    /// A batch of `stream` tuples entered the system (source publish or
    /// an in-network operator emitting its result stream). Advances
    /// virtual time, records the stream's rate window, and samples every
    /// Nth tuple into the attribute observers.
    pub fn on_publish(&mut self, stream: &StreamName, schema: &Schema, tuples: &[Tuple]) {
        if !self.cfg.enabled || tuples.is_empty() {
            return;
        }
        let mut at = self.now_ms;
        let mut bytes = 0u64;
        for t in tuples {
            at = at.max(t.timestamp.millis());
            bytes += t.size_bytes() as u64;
        }
        self.now_ms = at;
        let window = self.fresh_window();
        let obs = self
            .streams
            .entry(stream.clone())
            .or_insert_with(|| StreamObservation {
                window,
                sample_clock: 0,
                schema: None,
                observers: Vec::new(),
            });
        obs.window.record(at, tuples.len() as u64, bytes);
        // Jump straight to the sampled indices: with `clock` tuples seen
        // before this batch, the next sample is the tuple that brings the
        // cumulative count to a multiple of `every`.
        let every = self.cfg.sample_every.max(1);
        let mut idx = (every - obs.sample_clock % every) as usize;
        obs.sample_clock += tuples.len() as u64;
        if idx > tuples.len() {
            return;
        }
        if obs.schema.as_ref() != Some(schema) {
            // First sample (or a schema change, which streams don't do):
            // align one observer per field.
            obs.schema = Some(schema.clone());
            obs.observers = vec![AttrObserver::default(); schema.fields().len()];
        }
        while idx <= tuples.len() {
            let t = &tuples[idx - 1];
            for (o, value) in obs.observers.iter_mut().zip(t.values()) {
                o.observe(value);
            }
            idx += every as usize;
        }
    }

    /// `tuples` tuples totalling `bytes` bytes crossed the overlay link
    /// `from`→`to`.
    pub fn on_link(&mut self, from: NodeId, to: NodeId, tuples: usize, bytes: usize) {
        if !self.cfg.enabled {
            return;
        }
        let key = (from.min(to), from.max(to));
        let (now, w) = (self.now_ms, self.fresh_window());
        self.links
            .entry(key)
            .or_insert(w)
            .record(now, tuples as u64, bytes as u64);
        let w = self.fresh_window();
        self.node_tx
            .entry(from)
            .or_insert(w)
            .record(now, tuples as u64, bytes as u64);
        let w = self.fresh_window();
        self.node_rx
            .entry(to)
            .or_insert(w)
            .record(now, tuples as u64, bytes as u64);
    }

    fn on_consume(&mut self, node: NodeId, tuples: u64, bytes: u64) {
        let (now, w) = (self.now_ms, self.fresh_window());
        self.consumed
            .entry(node)
            .or_insert(w)
            .record(now, tuples, bytes);
    }

    /// A batch of result tuples reached the user of `qid` at `node`.
    /// Delivery latency is `now − tuple timestamp` in virtual time.
    pub fn on_delivery(&mut self, qid: QueryId, node: NodeId, tuples: &[Tuple]) {
        if !self.cfg.enabled || tuples.is_empty() {
            return;
        }
        let now = self.now_ms;
        let mut bytes = 0u64;
        let mut lat_sum = 0i64;
        let mut lat_max = 0i64;
        for t in tuples {
            bytes += t.size_bytes() as u64;
            let lat = (now - t.timestamp.millis()).max(0);
            lat_sum += lat;
            lat_max = lat_max.max(lat);
        }
        self.on_consume(node, tuples.len() as u64, bytes);
        let w = self.fresh_window();
        let obs = self.queries.entry(qid).or_insert_with(|| QueryObservation {
            window: w,
            latency_sum_ms: 0,
            latency_max_ms: 0,
        });
        obs.window.record(now, tuples.len() as u64, bytes);
        obs.latency_sum_ms += lat_sum;
        obs.latency_max_ms = obs.latency_max_ms.max(lat_max);
    }

    /// A watermark punctuation datagram crossed one overlay link.
    /// Its link bytes are accounted by the accompanying [`MetricsHub::on_link`]
    /// call; this hook keeps the dedicated counters. Punctuations carry
    /// no tuple timestamp, so virtual time does not advance.
    pub fn on_punctuation(&mut self, bytes: usize) {
        if !self.cfg.enabled {
            return;
        }
        self.punctuations += 1;
        self.punctuation_bytes += bytes as u64;
    }

    /// Lifetime punctuation datagrams and bytes disseminated.
    pub fn punctuation_totals(&self) -> (u64, u64) {
        (self.punctuations, self.punctuation_bytes)
    }

    /// The overload controller's `Shed` policy dropped a batch at the
    /// delivery point. Shedding is never silent: the dropped mass lands
    /// in these ledger counters and the conservation oracle checks
    /// published = delivered + shed + staged against them.
    pub fn on_shed(&mut self, tuples: u64, bytes: u64) {
        if !self.cfg.enabled {
            return;
        }
        self.shed_tuples += tuples;
        self.shed_bytes += bytes;
    }

    /// The `Coalesce` policy merged one pending batch into a staged
    /// buffer instead of delivering it immediately.
    pub fn on_coalesce(&mut self) {
        if !self.cfg.enabled {
            return;
        }
        self.coalesced_batches += 1;
    }

    /// A rate-limit datagram crossed one overlay link. Its link bytes
    /// are accounted by the accompanying [`MetricsHub::on_link`] call;
    /// this hook keeps the dedicated counters. Like punctuations,
    /// rate-limits carry no tuple timestamp, so virtual time does not
    /// advance.
    pub fn on_throttle(&mut self, bytes: usize) {
        if !self.cfg.enabled {
            return;
        }
        self.throttles += 1;
        self.throttle_bytes += bytes as u64;
    }

    /// Lifetime tuples and bytes dropped by the `Shed` policy.
    pub fn shed_totals(&self) -> (u64, u64) {
        (self.shed_tuples, self.shed_bytes)
    }

    /// Lifetime pending batches merged by the `Coalesce` policy.
    pub fn coalesced_total(&self) -> u64 {
        self.coalesced_batches
    }

    /// Lifetime rate-limit datagrams and bytes disseminated.
    pub fn throttle_totals(&self) -> (u64, u64) {
        (self.throttles, self.throttle_bytes)
    }

    /// Tuples and bytes consumed at `node` inside the current live
    /// window (deliveries + SPE intake) — the measured side of the
    /// overload controller's per-node budget check.
    pub fn consumed_in_window(&self, node: NodeId) -> (u64, u64) {
        self.consumed
            .get(&node)
            .map(|w| w.windowed(self.now_ms))
            .unwrap_or((0, 0))
    }

    /// A batch of tuples was handed to a stream-processing executor at
    /// `node` (in-network operator intake). Counts toward the node's
    /// consumed demand but not toward any query's deliveries.
    pub fn on_spe_intake(&mut self, node: NodeId, tuples: &[Tuple]) {
        if !self.cfg.enabled || tuples.is_empty() {
            return;
        }
        let bytes: u64 = tuples.iter().map(|t| t.size_bytes() as u64).sum();
        self.on_consume(node, tuples.len() as u64, bytes);
    }

    /// Windowed byte rate consumed at `node` (deliveries + SPE intake):
    /// the measured per-node demand for tree optimization.
    pub fn consumed_byte_rate(&self, node: NodeId) -> f64 {
        self.consumed
            .get(&node)
            .map(|w| w.byte_rate(self.now_ms))
            .unwrap_or(0.0)
    }

    /// Lifetime bytes consumed at `node` (deliveries + SPE intake) —
    /// the measured side of `cosmos-bound`'s per-node load bound.
    pub fn consumed_bytes_total(&self, node: NodeId) -> u64 {
        self.consumed
            .get(&node)
            .map(RateWindow::total_bytes)
            .unwrap_or(0)
    }

    /// Lifetime number of tuples delivered to `qid`.
    pub fn delivered_count(&self, qid: QueryId) -> u64 {
        self.queries
            .get(&qid)
            .map(|q| q.window.total_tuples())
            .unwrap_or(0)
    }

    /// Lifetime sum of bytes over all links — must equal the driver's
    /// own `total_bytes()` accounting (the conservation oracle).
    pub fn link_bytes_total(&self) -> u64 {
        self.links.values().map(RateWindow::total_bytes).sum()
    }

    /// View the hub through the measured-stats adapter.
    pub fn measured(&self) -> MeasuredStats<'_> {
        MeasuredStats { hub: self }
    }

    /// Assemble a deterministic, serializable snapshot. Router totals
    /// are aggregated by the caller (the driver owns the routers).
    pub fn snapshot(&self, router: RouterTotals) -> MetricsSnapshot {
        let now = self.now_ms;
        let links: Vec<LinkMetrics> = self
            .links
            .iter()
            .map(|(&(a, b), w)| LinkMetrics {
                a,
                b,
                tuples: w.total_tuples(),
                bytes: w.total_bytes(),
                tuple_rate: w.tuple_rate(now),
                byte_rate: w.byte_rate(now),
            })
            .collect();

        let mut node_ids: BTreeSet<NodeId> = BTreeSet::new();
        node_ids.extend(self.node_tx.keys());
        node_ids.extend(self.node_rx.keys());
        node_ids.extend(self.consumed.keys());
        let zero = RateWindow::new(self.cfg.window);
        let nodes: Vec<NodeMetrics> = node_ids
            .into_iter()
            .map(|n| {
                let tx = self.node_tx.get(&n).unwrap_or(&zero);
                let rx = self.node_rx.get(&n).unwrap_or(&zero);
                let co = self.consumed.get(&n).unwrap_or(&zero);
                NodeMetrics {
                    node: n,
                    tx_tuples: tx.total_tuples(),
                    tx_bytes: tx.total_bytes(),
                    tx_byte_rate: tx.byte_rate(now),
                    rx_tuples: rx.total_tuples(),
                    rx_bytes: rx.total_bytes(),
                    rx_byte_rate: rx.byte_rate(now),
                    consumed_tuples: co.total_tuples(),
                    consumed_bytes: co.total_bytes(),
                    consumed_byte_rate: co.byte_rate(now),
                }
            })
            .collect();

        let streams: Vec<StreamMetrics> = self
            .streams
            .iter()
            .map(|(name, obs)| {
                let mut attrs: Vec<AttrMetrics> = obs
                    .observed_attrs()
                    .filter_map(|(attr, o)| {
                        o.attr_stats().map(|s| AttrMetrics {
                            name: attr.to_string(),
                            samples: o.samples(),
                            min: s.min,
                            max: s.max,
                            distinct: s.distinct,
                        })
                    })
                    .collect();
                attrs.sort_by(|x, y| x.name.cmp(&y.name));
                StreamMetrics {
                    stream: name.as_str().to_string(),
                    tuples: obs.window.total_tuples(),
                    bytes: obs.window.total_bytes(),
                    tuple_rate: obs.window.tuple_rate(now),
                    byte_rate: obs.window.byte_rate(now),
                    attrs,
                }
            })
            .collect();

        let queries: Vec<QueryMetrics> = self
            .queries
            .iter()
            .map(|(&qid, obs)| {
                let n = obs.window.total_tuples();
                QueryMetrics {
                    query: qid,
                    delivered_tuples: n,
                    delivered_bytes: obs.window.total_bytes(),
                    delivery_rate: obs.window.tuple_rate(now),
                    latency_avg_ms: if n == 0 {
                        0.0
                    } else {
                        obs.latency_sum_ms as f64 / n as f64
                    },
                    latency_max_ms: obs.latency_max_ms,
                }
            })
            .collect();

        MetricsSnapshot {
            version: METRICS_VERSION,
            now_ms: now,
            links,
            nodes,
            streams,
            queries,
            router,
            punctuations: self.punctuations,
            punctuation_bytes: self.punctuation_bytes,
            shed_tuples: self.shed_tuples,
            shed_bytes: self.shed_bytes,
            coalesced_batches: self.coalesced_batches,
            throttles: self.throttles,
            throttle_bytes: self.throttle_bytes,
        }
    }
}

/// Adapter turning window aggregates back into the optimizer's
/// [`StreamStats`]/[`StatsCatalog`] vocabulary — the "measured" side of
/// the registration-time-estimate vs runtime-observation comparison.
pub struct MeasuredStats<'a> {
    hub: &'a MetricsHub,
}

impl MeasuredStats<'_> {
    /// Observed arrival rate of `stream`, if any tuples were seen.
    pub fn stream_rate(&self, stream: &StreamName) -> Option<f64> {
        let obs = self.hub.streams.get(stream)?;
        if obs.window.total_tuples() == 0 {
            return None;
        }
        Some(obs.window.tuple_rate(self.hub.now_ms))
    }

    /// Observed [`StreamStats`] for `stream`, overlaid on `base`: the
    /// measured rate always wins; attribute stats are replaced where the
    /// samplers saw values and inherited from `base` otherwise.
    /// `None` until the stream has been observed at all.
    pub fn stream_stats(
        &self,
        stream: &StreamName,
        base: Option<&StreamStats>,
    ) -> Option<StreamStats> {
        let rate = self.stream_rate(stream)?;
        let obs = self.hub.streams.get(stream)?;
        let mut out = base.cloned().unwrap_or_default();
        out.rate = rate;
        for (name, o) in obs.observed_attrs() {
            if let Some(s) = o.attr_stats() {
                out.attrs.insert(name.to_string(), s);
            }
        }
        Some(out)
    }

    /// A full catalog: `base` with every observed stream's stats
    /// replaced by measurements. Streams never observed keep their
    /// registered estimates.
    pub fn catalog(&self, base: &StatsCatalog) -> StatsCatalog {
        let mut out = StatsCatalog::new();
        for s in base.streams() {
            let Some(schema) = base.schema(s) else {
                continue;
            };
            let stats = self
                .stream_stats(s, base.stats(s))
                .or_else(|| base.stats(s).cloned())
                .unwrap_or_default();
            out.register(s.clone(), schema.clone(), stats);
        }
        out
    }
}

/// Relative drift between a measured and an estimated quantity.
pub fn relative_drift(measured: f64, estimated: f64) -> f64 {
    (measured - estimated).abs() / estimated.abs().max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_types::{AttrType, Field, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", AttrType::Int),
            Field::new("temp", AttrType::Float),
        ])
        .expect("valid schema")
    }

    fn tuple(ms: i64, id: i64, temp: f64) -> Tuple {
        Tuple::new("s", Timestamp(ms), vec![Value::Int(id), Value::Float(temp)])
    }

    #[test]
    fn publish_observation_feeds_measured_stats() {
        let mut hub = MetricsHub::new(MetricsConfig {
            sample_every: 1,
            ..MetricsConfig::default()
        });
        let s = StreamName::new("s");
        let sch = schema();
        // 4 tuples/sec for 10 seconds.
        for i in 0..40i64 {
            hub.on_publish(&s, &sch, &[tuple(i * 250, i % 5, i as f64)]);
        }
        let measured = hub.measured();
        let rate = measured.stream_rate(&s).expect("observed");
        assert!((rate - 4.0).abs() < 0.5, "rate {rate}");
        let stats = measured.stream_stats(&s, None).expect("observed");
        let id = &stats.attrs["id"];
        assert_eq!(id.distinct as i64, 5);
        let temp = &stats.attrs["temp"];
        assert_eq!(temp.min, 0.0);
        assert_eq!(temp.max, 39.0);
    }

    #[test]
    fn measured_catalog_overlays_base_and_keeps_unobserved() {
        let mut hub = MetricsHub::new(MetricsConfig::default());
        let mut base = StatsCatalog::new();
        base.register("s", schema(), StreamStats::with_rate(0.1));
        base.register("quiet", schema(), StreamStats::with_rate(7.0));
        let s = StreamName::new("s");
        let sch = schema();
        for i in 0..40i64 {
            hub.on_publish(&s, &sch, &[tuple(i * 250, i, 0.0)]);
        }
        let cat = hub.measured().catalog(&base);
        assert!(cat.stats(&s).unwrap().rate > 3.0, "measured rate adopted");
        let quiet = StreamName::new("quiet");
        assert_eq!(cat.stats(&quiet).unwrap().rate, 7.0, "estimate kept");
    }

    #[test]
    fn disabled_hub_records_nothing() {
        let mut hub = MetricsHub::new(MetricsConfig {
            enabled: false,
            ..MetricsConfig::default()
        });
        let s = StreamName::new("s");
        hub.on_publish(&s, &schema(), &[tuple(0, 1, 1.0)]);
        hub.on_link(NodeId(0), NodeId(1), 1, 100);
        hub.on_delivery(QueryId(0), NodeId(1), &[tuple(0, 1, 1.0)]);
        assert!(hub.measured().stream_rate(&s).is_none());
        assert_eq!(hub.link_bytes_total(), 0);
        assert_eq!(hub.delivered_count(QueryId(0)), 0);
    }

    #[test]
    fn delivery_latency_and_conservation_counters() {
        let mut hub = MetricsHub::new(MetricsConfig::default());
        hub.advance(Timestamp(1_000));
        let batch = [tuple(400, 1, 1.0), tuple(900, 2, 2.0)];
        hub.on_link(NodeId(0), NodeId(1), 2, 56);
        hub.on_delivery(QueryId(7), NodeId(1), &batch);
        assert_eq!(hub.delivered_count(QueryId(7)), 2);
        assert_eq!(hub.link_bytes_total(), 56);
        let snap = hub.snapshot(RouterTotals::default());
        let q = &snap.queries[0];
        assert_eq!(q.query, QueryId(7));
        assert_eq!(q.latency_max_ms, 600);
        assert!((q.latency_avg_ms - 350.0).abs() < 1e-9);
        assert!(hub.consumed_byte_rate(NodeId(1)) > 0.0);
        assert_eq!(hub.consumed_byte_rate(NodeId(0)), 0.0);
        let batch_bytes: u64 = batch.iter().map(|t| t.size_bytes() as u64).sum();
        assert_eq!(hub.consumed_bytes_total(NodeId(1)), batch_bytes);
        assert_eq!(hub.consumed_bytes_total(NodeId(0)), 0);
        hub.on_spe_intake(NodeId(1), &batch);
        assert_eq!(hub.consumed_bytes_total(NodeId(1)), 2 * batch_bytes);
    }

    #[test]
    fn snapshot_is_sorted_and_roundtrips() {
        let mut hub = MetricsHub::new(MetricsConfig::default());
        let sch = schema();
        hub.on_publish(&StreamName::new("zeta"), &sch, &[tuple(0, 1, 1.0)]);
        hub.on_publish(&StreamName::new("alpha"), &sch, &[tuple(10, 2, 2.0)]);
        hub.on_link(NodeId(3), NodeId(1), 1, 10);
        hub.on_link(NodeId(0), NodeId(2), 1, 10);
        let snap = hub.snapshot(RouterTotals::default());
        assert_eq!(snap.streams[0].stream, "alpha");
        assert_eq!(snap.links[0].a, NodeId(0));
        let json = snap.to_json().expect("serialize");
        let back = MetricsSnapshot::from_json(&json).expect("parse");
        assert_eq!(back.streams.len(), 2);
        assert_eq!(back.links.len(), 2);
    }
}
