//! Serializable metrics snapshots.
//!
//! [`MetricsSnapshot`] is the external face of the metrics layer: a
//! versioned, deterministic (all vectors sorted) JSON document, shaped
//! like `NetworkSnapshot` so the same tooling conventions apply. The
//! `cosmos-sim metrics` subcommand dumps one per scenario, and the
//! testkit conservation oracle compares two of them for byte equality
//! across a replay.

use cosmos_types::{CosmosError, NodeId, QueryId, Result};
use serde::{Deserialize, Serialize};

/// Version stamp carried by every [`MetricsSnapshot`].
pub const METRICS_VERSION: u32 = 1;

/// Traffic over one undirected overlay link (`a < b`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkMetrics {
    /// Smaller endpoint.
    pub a: NodeId,
    /// Larger endpoint.
    pub b: NodeId,
    /// Lifetime tuples carried.
    pub tuples: u64,
    /// Lifetime bytes carried.
    pub bytes: u64,
    /// Windowed tuples per second.
    pub tuple_rate: f64,
    /// Windowed bytes per second.
    pub byte_rate: f64,
}

/// Traffic through one overlay node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeMetrics {
    /// The node.
    pub node: NodeId,
    /// Lifetime tuples sent onward.
    pub tx_tuples: u64,
    /// Lifetime bytes sent onward.
    pub tx_bytes: u64,
    /// Windowed outbound bytes per second.
    pub tx_byte_rate: f64,
    /// Lifetime tuples received.
    pub rx_tuples: u64,
    /// Lifetime bytes received.
    pub rx_bytes: u64,
    /// Windowed inbound bytes per second.
    pub rx_byte_rate: f64,
    /// Lifetime tuples consumed locally (deliveries + SPE intake).
    pub consumed_tuples: u64,
    /// Lifetime bytes consumed locally.
    pub consumed_bytes: u64,
    /// Windowed locally-consumed bytes per second — the measured
    /// per-node demand used by `Cosmos::autotune`.
    pub consumed_byte_rate: f64,
}

/// Observed statistics for one attribute of a stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrMetrics {
    /// Attribute name.
    pub name: String,
    /// Non-null values sampled.
    pub samples: u64,
    /// Smallest sampled value (0 for categorical attributes).
    pub min: f64,
    /// Largest sampled value (0 for categorical attributes).
    pub max: f64,
    /// KMV estimate of distinct values.
    pub distinct: f64,
}

/// Observed behavior of one stream (source or operator result).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamMetrics {
    /// Stream name.
    pub stream: String,
    /// Lifetime tuples published.
    pub tuples: u64,
    /// Lifetime bytes published.
    pub bytes: u64,
    /// Windowed tuples per second.
    pub tuple_rate: f64,
    /// Windowed bytes per second.
    pub byte_rate: f64,
    /// Sampled per-attribute statistics.
    pub attrs: Vec<AttrMetrics>,
}

/// Delivery behavior of one continuous query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryMetrics {
    /// The query.
    pub query: QueryId,
    /// Lifetime result tuples delivered to the user.
    pub delivered_tuples: u64,
    /// Lifetime result bytes delivered.
    pub delivered_bytes: u64,
    /// Windowed delivered tuples per second.
    pub delivery_rate: f64,
    /// Mean virtual-time delivery latency over the query's lifetime.
    pub latency_avg_ms: f64,
    /// Worst virtual-time delivery latency seen.
    pub latency_max_ms: i64,
}

/// Aggregated content-based-network router counters (summed over all
/// node routers by the driver).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RouterTotals {
    /// Tuples routed onward by profile matching.
    pub tuples_routed: u64,
    /// Tuples dropped for lack of any matching interest.
    pub tuples_dropped: u64,
    /// Projection-plan cache hits.
    pub plan_hits: u64,
    /// Projection-plan cache misses.
    pub plan_misses: u64,
    /// Projections materialized (cache misses that built a plan).
    pub projections_built: u64,
    /// Plans currently cached across routers.
    pub cached_plans: u64,
}

impl RouterTotals {
    /// Fold one router's counter block (plus its current plan-store
    /// occupancy) into the deployment totals. Works the same whether
    /// the block came from a router's own serial state or from a
    /// per-shard worker delta already absorbed into it — totals are
    /// sums of [`cosmos_cbn::RouterCounters::merge`]-compatible blocks,
    /// never reconstructed field by field.
    pub fn fold_counters(&mut self, c: &cosmos_cbn::RouterCounters, cached_plans: u64) {
        self.tuples_routed += c.tuples_routed;
        self.tuples_dropped += c.tuples_dropped;
        self.plan_hits += c.plan_hits;
        self.plan_misses += c.plan_misses;
        self.projections_built += c.projections_built;
        self.cached_plans += cached_plans;
    }
}

/// A deterministic point-in-time view of every metric the system keeps.
///
/// `Serialize`/`Deserialize` are written by hand (the vendored derive
/// supports no field attributes): the punctuation counters are omitted
/// from JSON when zero and default to zero when absent, so in-order
/// runs produce byte-identical snapshots to the pre-disorder format and
/// old documents still parse.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Format version ([`METRICS_VERSION`]).
    pub version: u32,
    /// Virtual time the snapshot was taken at.
    pub now_ms: i64,
    /// Per-link traffic, sorted by `(a, b)`.
    pub links: Vec<LinkMetrics>,
    /// Per-node traffic, sorted by node.
    pub nodes: Vec<NodeMetrics>,
    /// Per-stream observations, sorted by name.
    pub streams: Vec<StreamMetrics>,
    /// Per-query delivery metrics, sorted by query id.
    pub queries: Vec<QueryMetrics>,
    /// Aggregated CBN router counters.
    pub router: RouterTotals,
    /// Watermark punctuation datagrams disseminated (disorder mode).
    pub punctuations: u64,
    /// Link bytes spent on punctuation datagrams (included in the
    /// per-link totals above; broken out for the disorder sweep).
    pub punctuation_bytes: u64,
    /// Result tuples dropped by the overload controller's `Shed` policy.
    /// Never silent: the conservation oracle checks
    /// published = delivered + shed + staged against these ledgers.
    pub shed_tuples: u64,
    /// Result bytes dropped by the `Shed` policy.
    pub shed_bytes: u64,
    /// Pending batches merged by the `Coalesce` policy before delivery.
    pub coalesced_batches: u64,
    /// Upstream rate-limit datagrams disseminated by `Throttle`.
    pub throttles: u64,
    /// Link bytes spent on rate-limit datagrams (included in the
    /// per-link totals above; broken out for the overload sweep).
    pub throttle_bytes: u64,
}

impl serde::Serialize for MetricsSnapshot {
    fn to_content(&self) -> serde::Content {
        let mut entries = vec![
            ("version", self.version.to_content()),
            ("now_ms", self.now_ms.to_content()),
            ("links", self.links.to_content()),
            ("nodes", self.nodes.to_content()),
            ("streams", self.streams.to_content()),
            ("queries", self.queries.to_content()),
            ("router", self.router.to_content()),
        ];
        if self.punctuations != 0 {
            entries.push(("punctuations", self.punctuations.to_content()));
        }
        if self.punctuation_bytes != 0 {
            entries.push(("punctuation_bytes", self.punctuation_bytes.to_content()));
        }
        if self.shed_tuples != 0 {
            entries.push(("shed_tuples", self.shed_tuples.to_content()));
        }
        if self.shed_bytes != 0 {
            entries.push(("shed_bytes", self.shed_bytes.to_content()));
        }
        if self.coalesced_batches != 0 {
            entries.push(("coalesced_batches", self.coalesced_batches.to_content()));
        }
        if self.throttles != 0 {
            entries.push(("throttles", self.throttles.to_content()));
        }
        if self.throttle_bytes != 0 {
            entries.push(("throttle_bytes", self.throttle_bytes.to_content()));
        }
        serde::Content::Map(
            entries
                .into_iter()
                .map(|(k, v)| (serde::Content::Str(k.to_string()), v))
                .collect(),
        )
    }
}

impl serde::Deserialize for MetricsSnapshot {
    fn from_content(c: &serde::Content) -> std::result::Result<Self, serde::DeError> {
        let opt_u64 = |key: &str| -> std::result::Result<u64, serde::DeError> {
            match serde::map_get(c, key) {
                Ok(v) => serde::Deserialize::from_content(v),
                Err(_) => Ok(0),
            }
        };
        Ok(MetricsSnapshot {
            version: serde::Deserialize::from_content(serde::map_get(c, "version")?)?,
            now_ms: serde::Deserialize::from_content(serde::map_get(c, "now_ms")?)?,
            links: serde::Deserialize::from_content(serde::map_get(c, "links")?)?,
            nodes: serde::Deserialize::from_content(serde::map_get(c, "nodes")?)?,
            streams: serde::Deserialize::from_content(serde::map_get(c, "streams")?)?,
            queries: serde::Deserialize::from_content(serde::map_get(c, "queries")?)?,
            router: serde::Deserialize::from_content(serde::map_get(c, "router")?)?,
            punctuations: opt_u64("punctuations")?,
            punctuation_bytes: opt_u64("punctuation_bytes")?,
            shed_tuples: opt_u64("shed_tuples")?,
            shed_bytes: opt_u64("shed_bytes")?,
            coalesced_batches: opt_u64("coalesced_batches")?,
            throttles: opt_u64("throttles")?,
            throttle_bytes: opt_u64("throttle_bytes")?,
        })
    }
}

impl MetricsSnapshot {
    /// Serialize to JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| CosmosError::System(format!("metrics serialize: {e}")))
    }

    /// Parse a snapshot back from JSON, rejecting unknown versions.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot> {
        let snap: MetricsSnapshot = serde_json::from_str(text)
            .map_err(|e| CosmosError::System(format!("metrics parse: {e}")))?;
        if snap.version != METRICS_VERSION {
            return Err(CosmosError::System(format!(
                "metrics version {} unsupported (expected {METRICS_VERSION})",
                snap.version
            )));
        }
        Ok(snap)
    }

    /// Lifetime bytes summed over every link — the left-hand side of
    /// the conservation check against the driver's `total_bytes()`.
    pub fn link_bytes_total(&self) -> u64 {
        self.links.iter().map(|l| l.bytes).sum()
    }

    /// Delivered-tuple count for `query`, zero if never delivered to.
    pub fn delivered_tuples(&self, query: QueryId) -> u64 {
        self.queries
            .iter()
            .find(|q| q.query == query)
            .map(|q| q.delivered_tuples)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_is_checked_on_parse() {
        let snap = MetricsSnapshot {
            version: METRICS_VERSION,
            now_ms: 0,
            links: Vec::new(),
            nodes: Vec::new(),
            streams: Vec::new(),
            queries: Vec::new(),
            router: RouterTotals::default(),
            punctuations: 0,
            punctuation_bytes: 0,
            shed_tuples: 0,
            shed_bytes: 0,
            coalesced_batches: 0,
            throttles: 0,
            throttle_bytes: 0,
        };
        let mut json = snap.to_json().expect("serialize");
        assert!(MetricsSnapshot::from_json(&json).is_ok());
        assert!(
            !json.contains("punctuation"),
            "zero punctuation counters must not appear in JSON: {json}"
        );
        for key in ["shed", "coalesced", "throttle"] {
            assert!(
                !json.contains(key),
                "zero overload counters must not appear in JSON: {json}"
            );
        }
        json = json.replace("\"version\":1", "\"version\":999");
        let err = MetricsSnapshot::from_json(&json).expect_err("bad version");
        assert!(err.to_string().contains("999"), "{err}");
    }
}
