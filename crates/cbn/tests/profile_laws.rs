//! Algebraic laws of profiles and conjunctions, checked by sampling:
//! union is an upper bound under covering, covering is transitive and
//! sound against tuple matching, and normalization never loses data.

use cosmos_cbn::{Conjunction, DiffRange, Profile, ProfileEntry, Projection};
use cosmos_types::{AttrType, Schema, Timestamp, Tuple, Value};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::of(&[
        ("a", AttrType::Int),
        ("b", AttrType::Int),
        ("c", AttrType::Int),
    ])
}

#[derive(Debug, Clone)]
enum Atom {
    Between(&'static str, i64, i64),
    Eq(&'static str, i64),
    Ne(&'static str, i64),
    Diff(&'static str, &'static str, i64, i64),
}

fn arb_conj() -> impl Strategy<Value = Conjunction> {
    let attr = prop_oneof![Just("a"), Just("b"), Just("c")];
    let atom = prop_oneof![
        (attr.clone(), -8i64..8, -8i64..8).prop_map(|(x, l, h)| Atom::Between(
            x,
            l.min(h),
            l.max(h)
        )),
        (attr.clone(), -8i64..8).prop_map(|(x, v)| Atom::Eq(x, v)),
        (attr.clone(), -8i64..8).prop_map(|(x, v)| Atom::Ne(x, v)),
        (-6i64..6, -6i64..6).prop_map(|(l, h)| Atom::Diff("a", "b", l.min(h), l.max(h))),
    ];
    proptest::collection::vec(atom, 0..4).prop_map(|atoms| {
        let mut c = Conjunction::always();
        for a in atoms {
            match a {
                Atom::Between(x, l, h) => {
                    c.between(x, l, h);
                }
                Atom::Eq(x, v) => {
                    c.equals(x, v);
                }
                Atom::Ne(x, v) => {
                    c.excludes(x, v);
                }
                Atom::Diff(x, y, l, h) => {
                    c.diff(x, y, DiffRange::new(l as f64, h as f64));
                }
            }
        }
        c
    })
}

fn arb_entry() -> impl Strategy<Value = ProfileEntry> {
    (
        proptest::collection::vec(arb_conj(), 0..3),
        proptest::sample::subsequence(vec!["a", "b", "c"], 0..=3),
        any::<bool>(),
    )
        .prop_map(|(filters, attrs, all)| ProfileEntry {
            projection: if all {
                Projection::All
            } else {
                Projection::of(attrs)
            },
            filters,
        })
}

fn arb_profile() -> impl Strategy<Value = Profile> {
    proptest::collection::vec(arb_entry(), 1..3).prop_map(|entries| {
        let mut p = Profile::new();
        for (i, e) in entries.into_iter().enumerate() {
            p.add_entry(if i == 0 { "S" } else { "T" }, e);
        }
        p
    })
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (
        prop_oneof![Just("S"), Just("T")],
        -10i64..10,
        -10i64..10,
        -10i64..10,
    )
        .prop_map(|(s, a, b, c)| {
            Tuple::new(
                s,
                Timestamp(0),
                vec![Value::Int(a), Value::Int(b), Value::Int(c)],
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The union of two profiles covers every tuple either covers.
    #[test]
    fn union_is_an_upper_bound(p1 in arb_profile(), p2 in arb_profile(), t in arb_tuple()) {
        let u = p1.union(&p2);
        let s = schema();
        if p1.covers_tuple(&t, &s) || p2.covers_tuple(&t, &s) {
            prop_assert!(u.covers_tuple(&t, &s));
        }
        // and the union structurally covers both operands
        prop_assert!(u.covers(&p1));
        prop_assert!(u.covers(&p2));
    }

    /// Structural covering is sound for tuple matching: if `p` covers
    /// `q` and `q` accepts a tuple, `p` accepts it too.
    #[test]
    fn covering_is_sound(p in arb_profile(), q in arb_profile(), t in arb_tuple()) {
        let s = schema();
        if p.covers(&q) && q.covers_tuple(&t, &s) {
            prop_assert!(p.covers_tuple(&t, &s));
        }
    }

    /// Structural covering is transitive.
    #[test]
    fn covering_is_transitive(
        p in arb_profile(),
        q in arb_profile(),
        r in arb_profile(),
    ) {
        if p.covers(&q) && q.covers(&r) {
            prop_assert!(p.covers(&r), "transitivity broken");
        }
    }

    /// Normalization never narrows acceptance, and its projection
    /// retains every filter attribute.
    #[test]
    fn normalization_is_lossless(p in arb_profile(), t in arb_tuple()) {
        let s = schema();
        let n = p.normalized();
        prop_assert_eq!(p.covers_tuple(&t, &s), n.covers_tuple(&t, &s));
        for (_, entry) in n.iter() {
            for f in &entry.filters {
                for a in f.referenced_attrs() {
                    prop_assert!(
                        entry.projection.contains(&a),
                        "normalized projection misses filter attr {}", a
                    );
                }
            }
        }
    }

    /// Union is idempotent and commutative w.r.t. acceptance.
    #[test]
    fn union_laws(p in arb_profile(), q in arb_profile(), t in arb_tuple()) {
        let s = schema();
        let pq = p.union(&q);
        let qp = q.union(&p);
        prop_assert_eq!(pq.covers_tuple(&t, &s), qp.covers_tuple(&t, &s));
        let pp = p.union(&p);
        prop_assert_eq!(pp.covers_tuple(&t, &s), p.covers_tuple(&t, &s));
    }

    /// Projection through a profile keeps exactly the projected columns'
    /// values (sampled against by-name lookup).
    #[test]
    fn projection_preserves_values(p in arb_profile(), t in arb_tuple()) {
        let s = schema();
        if let Some((pt, ps)) = p.project_tuple(&t, &s) {
            for (i, name) in ps.names().enumerate() {
                prop_assert_eq!(
                    pt.get(i),
                    t.get_by_name(&s, name),
                    "column {} corrupted", name
                );
            }
        }
    }
}

/// Deterministic replay of the seed in `profile_laws.proptest-regressions`.
///
/// The shrunk case is a profile whose only filter has the empty interval
/// `a ∈ [0, −4]` (an unsatisfiable conjunction) paired with an
/// accept-all profile (empty filter list). It historically caught the
/// covering/union laws treating an unsatisfiable disjunct as if it
/// could match. The workspace's vendored proptest stand-in does not
/// replay `*.proptest-regressions` seeds, so this ordinary test keeps
/// the case pinned.
#[test]
fn regression_unsat_filter_interval_in_covering_and_union() {
    let s = schema();
    let mut dead = Conjunction::always();
    dead.between("a", Value::Int(0), Value::Int(-4));
    let mut p = Profile::new();
    p.add_entry(
        "S",
        ProfileEntry {
            projection: Projection::Attrs(Default::default()),
            filters: vec![dead],
        },
    );
    let mut q = Profile::new();
    q.add_entry(
        "S",
        ProfileEntry {
            projection: Projection::Attrs(Default::default()),
            filters: Vec::new(), // empty filter list = accept-all
        },
    );
    let t = Tuple::new(
        "S",
        Timestamp(0),
        vec![Value::Int(0), Value::Int(0), Value::Int(0)],
    );

    // The dead disjunct matches nothing; the accept-all profile matches t.
    assert!(!p.covers_tuple(&t, &s));
    assert!(q.covers_tuple(&t, &s));

    // union_is_an_upper_bound: the union accepts what either accepts and
    // structurally covers both operands.
    let u = p.union(&q);
    assert!(u.covers_tuple(&t, &s));
    assert!(u.covers(&p));
    assert!(u.covers(&q));

    // covering_is_sound: q accepts t, so anything covering q must too.
    if p.covers(&q) {
        assert!(p.covers_tuple(&t, &s));
    }

    // union_laws: commutative and idempotent w.r.t. acceptance.
    assert_eq!(
        p.union(&q).covers_tuple(&t, &s),
        q.union(&p).covers_tuple(&t, &s)
    );
    assert_eq!(p.union(&p).covers_tuple(&t, &s), p.covers_tuple(&t, &s));
}
