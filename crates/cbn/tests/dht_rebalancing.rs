//! Consistent-hashing behaviour under churn: joining nodes steal only
//! their own arcs, leaving nodes shed only their own keys, and replica
//! sets degrade gracefully.

use cosmos_cbn::dht::HashRing;
use cosmos_types::NodeId;
use proptest::prelude::*;

fn keys(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("stream-{i}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Adding a node only moves keys *to* the new node.
    #[test]
    fn join_steals_only_for_itself(n in 2u32..20, newcomer in 100u32..200) {
        let before = HashRing::of((0..n).map(NodeId));
        let mut after = before.clone();
        after.add_node(NodeId(newcomer));
        for k in keys(500) {
            let (b, a) = (before.lookup(&k).unwrap(), after.lookup(&k).unwrap());
            if b != a {
                prop_assert_eq!(a, NodeId(newcomer), "key {} moved to the wrong node", k);
            }
        }
    }

    /// Removing a node only moves that node's keys.
    #[test]
    fn leave_sheds_only_own_keys(n in 3u32..20, victim_idx in 0u32..3) {
        let victim = NodeId(victim_idx % n);
        let before = HashRing::of((0..n).map(NodeId));
        let mut after = before.clone();
        after.remove_node(victim);
        for k in keys(500) {
            let (b, a) = (before.lookup(&k).unwrap(), after.lookup(&k).unwrap());
            if b != a {
                prop_assert_eq!(b, victim, "key {} moved although its owner survived", k);
            }
            prop_assert_ne!(a, victim);
        }
    }

    /// Replica sets always contain the primary, have the requested size
    /// (capped by membership), and stay distinct.
    #[test]
    fn replica_sets_are_well_formed(n in 1u32..12, r in 1usize..6) {
        let ring = HashRing::of((0..n).map(NodeId));
        for k in keys(64) {
            let reps = ring.lookup_replicas(&k, r);
            prop_assert_eq!(reps.len(), r.min(n as usize));
            prop_assert_eq!(reps[0], ring.lookup(&k).unwrap());
            let uniq: std::collections::BTreeSet<_> = reps.iter().collect();
            prop_assert_eq!(uniq.len(), reps.len());
        }
    }

    /// Join-then-leave of the same node restores the original placement.
    #[test]
    fn churn_roundtrip(n in 2u32..16) {
        let before = HashRing::of((0..n).map(NodeId));
        let mut churned = before.clone();
        churned.add_node(NodeId(999));
        churned.remove_node(NodeId(999));
        for k in keys(300) {
            prop_assert_eq!(before.lookup(&k), churned.lookup(&k));
        }
    }
}

#[test]
fn replicas_survive_primary_failure() {
    let mut ring = HashRing::of((0..10).map(NodeId));
    let key = "important-stream";
    let reps = ring.lookup_replicas(key, 3);
    let primary = reps[0];
    ring.remove_node(primary);
    let new_reps = ring.lookup_replicas(key, 3);
    // the old secondary takes over as primary
    assert_eq!(new_reps[0], reps[1], "secondary must be promoted");
    assert!(!new_reps.contains(&primary));
}
