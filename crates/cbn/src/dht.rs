//! A consistent-hashing ring used to place stream schemas on nodes.
//!
//! Section 3 of the paper: "if the number of streams is small, the schema
//! information of the streams will be flooded to every node upon its
//! arrival. Otherwise, we use a DHT architecture to store the schema
//! information while using the unique stream name as the hashing key."
//! This is that DHT: a Chord-flavoured consistent-hash ring with virtual
//! nodes, mapping stream names to responsible overlay nodes.

use cosmos_types::NodeId;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// Number of virtual points each node contributes to the ring; higher
/// values smooth the load distribution at the cost of ring size.
const VNODES_PER_NODE: u32 = 16;

/// Stable 64-bit FNV-1a hash (kept deliberately independent of the
/// standard library's unspecified default hasher so ring placement is
/// reproducible across runs and Rust versions).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A consistent-hash ring of overlay nodes.
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    ring: BTreeMap<u64, NodeId>,
    members: BTreeMap<NodeId, ()>,
}

impl HashRing {
    /// An empty ring.
    pub fn new() -> HashRing {
        HashRing::default()
    }

    /// A ring over the given nodes.
    pub fn of(nodes: impl IntoIterator<Item = NodeId>) -> HashRing {
        let mut r = HashRing::new();
        for n in nodes {
            r.add_node(n);
        }
        r
    }

    /// Add a node (with its virtual points) to the ring.
    pub fn add_node(&mut self, node: NodeId) {
        if self.members.insert(node, ()).is_some() {
            return;
        }
        for v in 0..VNODES_PER_NODE {
            let key = fnv1a(format!("{}#{v}", node.raw()).as_bytes());
            self.ring.insert(key, node);
        }
    }

    /// Remove a node and all its virtual points.
    pub fn remove_node(&mut self, node: NodeId) {
        if self.members.remove(&node).is_none() {
            return;
        }
        self.ring.retain(|_, n| *n != node);
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The node responsible for a key (clockwise successor of its hash).
    pub fn lookup(&self, key: &str) -> Option<NodeId> {
        if self.ring.is_empty() {
            return None;
        }
        let h = fnv1a(key.as_bytes());
        self.ring
            .range(h..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(_, n)| *n)
    }

    /// The `k` distinct nodes responsible for a key (primary plus
    /// replica successors), in ring order.
    pub fn lookup_replicas(&self, key: &str, k: usize) -> Vec<NodeId> {
        if self.ring.is_empty() || k == 0 {
            return Vec::new();
        }
        let h = fnv1a(key.as_bytes());
        let mut out = Vec::with_capacity(k);
        for (_, n) in self.ring.range(h..).chain(self.ring.iter()) {
            if !out.contains(n) {
                out.push(*n);
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }
}

impl Hash for HashRing {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for k in self.members.keys() {
            k.hash(state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32) -> HashRing {
        HashRing::of((0..n).map(NodeId))
    }

    #[test]
    fn lookup_is_deterministic_and_total() {
        let r = ring(10);
        for i in 0..100 {
            let key = format!("stream{i}");
            let a = r.lookup(&key).unwrap();
            let b = r.lookup(&key).unwrap();
            assert_eq!(a, b);
            assert!(a.raw() < 10);
        }
        assert_eq!(r.len(), 10);
        assert!(!r.is_empty());
    }

    #[test]
    fn empty_ring_returns_none() {
        let r = HashRing::new();
        assert_eq!(r.lookup("x"), None);
        assert!(r.lookup_replicas("x", 3).is_empty());
        assert!(r.is_empty());
    }

    #[test]
    fn removal_only_moves_affected_keys() {
        let r = ring(10);
        let mut r2 = r.clone();
        r2.remove_node(NodeId(3));
        let mut moved = 0;
        for i in 0..1000 {
            let key = format!("k{i}");
            let before = r.lookup(&key).unwrap();
            let after = r2.lookup(&key).unwrap();
            if before != after {
                // only keys previously owned by the removed node move
                assert_eq!(before, NodeId(3), "key {key} moved unnecessarily");
                moved += 1;
            }
            assert_ne!(after, NodeId(3));
        }
        assert!(moved > 0, "node 3 owned no keys at all?");
    }

    #[test]
    fn load_is_roughly_balanced() {
        let r = ring(8);
        let mut counts = [0usize; 8];
        for i in 0..8000 {
            let n = r.lookup(&format!("key-{i}")).unwrap();
            counts[n.index()] += 1;
        }
        // With 16 vnodes/node expect each node to hold 1000 ± a wide
        // margin; assert no node is starved or owns the majority.
        for (i, c) in counts.iter().enumerate() {
            assert!(*c > 200, "node {i} starved: {c}");
            assert!(*c < 3000, "node {i} overloaded: {c}");
        }
    }

    #[test]
    fn replicas_are_distinct_and_start_with_primary() {
        let r = ring(5);
        let reps = r.lookup_replicas("mystream", 3);
        assert_eq!(reps.len(), 3);
        assert_eq!(reps[0], r.lookup("mystream").unwrap());
        let set: std::collections::BTreeSet<_> = reps.iter().collect();
        assert_eq!(set.len(), 3);
        // asking for more replicas than nodes yields all nodes
        assert_eq!(r.lookup_replicas("mystream", 99).len(), 5);
    }

    #[test]
    fn duplicate_add_is_idempotent() {
        let mut r = ring(3);
        let before = r.lookup("k").unwrap();
        r.add_node(NodeId(1));
        assert_eq!(r.len(), 3);
        assert_eq!(r.lookup("k").unwrap(), before);
        r.remove_node(NodeId(99)); // unknown removal is a no-op
        assert_eq!(r.len(), 3);
    }
}
