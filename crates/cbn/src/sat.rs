//! Satisfiability of [`Conjunction`]s beyond the shallow per-constraint
//! check.
//!
//! [`Conjunction::is_unsat`] only sees contradictions *inside* a single
//! constraint (an empty interval, an empty difference range). A
//! conjunction can still be empty through *interaction* of its
//! constraints, e.g. `a − b ≥ 0 AND b ≥ 5 AND a < 5`: every individual
//! constraint is non-empty, yet no assignment satisfies all three.
//!
//! Numeric bounds and difference ranges together form a system of
//! *difference constraints* — exactly the fragment solved by shortest
//! paths. [`conjunction_unsat`] builds the standard constraint graph
//! (constraint `x − y ≤ w` ⇒ edge `y → x` of weight `w`, plus a virtual
//! origin pinned at 0 for absolute bounds) and runs Bellman–Ford: the
//! system is infeasible iff the graph has a negative cycle. Strict
//! bounds (`<`, `>`) are tracked as an infinitesimal on each edge, so a
//! zero-weight cycle containing a strict edge is also infeasible.
//!
//! The check is **sound, not complete**: `true` means provably empty
//! (over the reals; exclusions from `!=` and non-numeric bounds are
//! ignored, which only widens the admitted set), while `false` merely
//! means no contradiction was found. Callers use it to prune filters
//! and reject queries, so only the `true` direction must be trusted.

use crate::predicate::{AttrConstraint, Conjunction, Interval};
use cosmos_types::Value;
use std::collections::BTreeMap;

/// One additional difference bound `to − from ≤ w` (`None` = the virtual
/// origin pinned at 0), conjoined onto a [`Conjunction`]'s constraint
/// graph by [`unsat_with`]. The entailment entry points use these to
/// encode the *negation* of a consequent atom.
#[derive(Debug, Clone)]
struct ExtraEdge<'a> {
    from: Option<&'a str>,
    to: Option<&'a str>,
    w: f64,
    strict: bool,
}

/// The difference-constraint graph of a conjunction: one node per
/// attribute appearing in a difference constraint (plus the virtual
/// origin, node 0, pinned at value 0), one edge per derivable bound
/// `to − from ≤ w`. Shared by the infeasibility check ([`unsat_with`])
/// and the per-attribute interval extraction ([`conjunction_range`]).
struct ConstraintGraph<'a> {
    idx: BTreeMap<&'a str, usize>,
    /// `(from, to, weight, strict)`: constraint `to − from ≤ weight`,
    /// strict when the bound excludes equality.
    edges: Vec<(usize, usize, f64, bool)>,
    /// Tolerance scaled to the weights in play so float rounding cannot
    /// manufacture a spurious negative cycle or an over-tight bound.
    eps: f64,
}

impl<'a> ConstraintGraph<'a> {
    fn build(c: &'a Conjunction, extra: &[ExtraEdge<'a>]) -> ConstraintGraph<'a> {
        // Nodes: one per attribute that appears in a difference
        // constraint (of `c` or of an extra edge). Attributes outside
        // every difference constraint cannot interact with anything;
        // their interval emptiness is covered by the shallow `is_unsat`
        // check upstream, and their ranges are read off directly.
        let mut idx: BTreeMap<&str, usize> = BTreeMap::new();
        for (a, b, _) in c.diff_constraints() {
            let next = idx.len() + 1;
            idx.entry(a).or_insert(next);
            let next = idx.len() + 1;
            idx.entry(b).or_insert(next);
        }
        for e in extra {
            for name in [e.from, e.to].into_iter().flatten() {
                let next = idx.len() + 1;
                idx.entry(name).or_insert(next);
            }
        }

        let mut edges: Vec<(usize, usize, f64, bool)> = Vec::new();
        for (a, b, r) in c.diff_constraints() {
            let (ia, ib) = (idx[a], idx[b]);
            // lo ≤ a − b ≤ hi: `a − b ≤ hi` and `b − a ≤ −lo`.
            if r.hi.is_finite() {
                edges.push((ib, ia, r.hi, false));
            }
            if r.lo.is_finite() {
                edges.push((ia, ib, -r.lo, false));
            }
        }
        for (name, ac) in c.attr_constraints() {
            let Some(&i) = idx.get(name) else { continue };
            // `a ≤ v` ⇒ a − origin ≤ v; `a ≥ v` ⇒ origin − a ≤ −v.
            // Non-numeric bounds are skipped (sound: skipping only
            // loosens).
            if let Some((v, incl)) = &ac.interval.hi {
                if let Some(x) = v.as_f64() {
                    edges.push((0, i, x, !incl));
                }
            }
            if let Some((v, incl)) = &ac.interval.lo {
                if let Some(x) = v.as_f64() {
                    edges.push((i, 0, -x, !incl));
                }
            }
        }
        for e in extra {
            let from = e.from.map_or(0, |a| idx[a]);
            let to = e.to.map_or(0, |a| idx[a]);
            edges.push((from, to, e.w, e.strict));
        }

        let max_w = edges.iter().map(|e| e.2.abs()).fold(0.0f64, f64::max);
        let eps = 1e-9 * (1.0 + max_w) * edges.len().max(1) as f64;
        ConstraintGraph { idx, edges, eps }
    }

    fn node_count(&self) -> usize {
        self.idx.len() + 1 // node 0 is the virtual origin
    }

    /// Lexicographic path weight (sum, strict-edge count): a path is
    /// strictly shorter when its sum is smaller beyond tolerance, or the
    /// sums tie and it crosses more strict bounds (each strict edge is
    /// an infinitesimal −ε).
    fn less(&self, a: (f64, usize), b: (f64, usize)) -> bool {
        a.0 < b.0 - self.eps || (a.0 <= b.0 + self.eps && a.1 > b.1)
    }

    /// Whether the difference-constraint system is infeasible: Bellman–
    /// Ford from an implicit super-source (all distances 0); after n
    /// relaxation rounds, any still-relaxable edge lies on a negative
    /// (or zero-but-strict) cycle.
    fn infeasible(&self) -> bool {
        if self.idx.is_empty() || self.edges.is_empty() {
            return false;
        }
        let mut dist = vec![(0.0f64, 0usize); self.node_count()];
        for _ in 0..self.node_count() {
            let mut changed = false;
            for &(u, v, w, strict) in &self.edges {
                let cand = (dist[u].0 + w, dist[u].1 + strict as usize);
                if self.less(cand, dist[v]) {
                    dist[v] = cand;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
        }
        self.edges.iter().any(|&(u, v, w, strict)| {
            let cand = (dist[u].0 + w, dist[u].1 + strict as usize);
            self.less(cand, dist[v])
        })
    }

    /// Single-source shortest paths from the origin (node 0), optionally
    /// over the reversed edge set. `dists[i] = Some((d, strict))` means
    /// the tightest derivable path bound is `d`, crossing a strict edge
    /// iff `strict`; `None` means node `i` is unreachable (no bound).
    /// Only meaningful on a feasible graph (no negative cycles).
    fn origin_distances(&self, reversed: bool) -> Vec<Option<(f64, bool)>> {
        let n = self.node_count();
        let mut dist: Vec<Option<(f64, usize)>> = vec![None; n];
        dist[0] = Some((0.0, 0));
        for _ in 1..n.max(2) {
            let mut changed = false;
            for &(u, v, w, strict) in &self.edges {
                let (u, v) = if reversed { (v, u) } else { (u, v) };
                let Some(du) = dist[u] else { continue };
                let cand = (du.0 + w, du.1 + strict as usize);
                if dist[v].is_none_or(|dv| self.less(cand, dv)) {
                    dist[v] = Some(cand);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        dist.into_iter()
            .map(|d| d.map(|(sum, strict)| (sum, strict > 0)))
            .collect()
    }
}

/// Whether `c`, conjoined with the extra difference bounds, provably
/// admits no assignment. The core of every entry point in this module.
fn unsat_with(c: &Conjunction, extra: &[ExtraEdge<'_>]) -> bool {
    ConstraintGraph::build(c, extra).infeasible()
}

/// Whether the conjunction provably admits no assignment.
///
/// Exact over the reals for the interval + difference-range fragment
/// (ignoring `!=` exclusions and non-numeric bounds, both of which are
/// skipped conservatively). Runs in `O(nodes × edges)`.
pub fn conjunction_unsat(c: &Conjunction) -> bool {
    if c.is_unsat() {
        return true;
    }
    unsat_with(c, &[])
}

/// The tightest per-attribute intervals implied by a conjunction,
/// extracted from its difference-constraint graph.
///
/// Returns `None` when the conjunction is provably unsatisfiable — its
/// abstraction is the empty set. Otherwise every referenced attribute
/// maps to a **sound over-approximation** of its admissible values:
/// the attribute's own declared interval (covering non-numeric bounds
/// the graph cannot express), tightened by shortest paths through the
/// difference constraints — `dist(origin → x)` is the tightest
/// derivable upper bound on `x`, `−dist(x → origin)` the tightest
/// lower bound, with a bound strict iff its tightest path crosses a
/// strict edge. So `a − b ≤ 2 AND b < 3` yields `a < 5` even though
/// `a` carries no interval constraint of its own. Exclusions (`!=`)
/// are ignored and graph bounds are widened by the float tolerance,
/// both of which only loosen the result — every satisfying assignment
/// lies inside every returned interval.
pub fn conjunction_range(c: &Conjunction) -> Option<BTreeMap<String, Interval>> {
    if conjunction_unsat(c) {
        return None;
    }
    // Base abstraction: each referenced attribute's declared interval.
    let mut out: BTreeMap<String, Interval> = c
        .referenced_attrs()
        .into_iter()
        .map(|attr| {
            let interval = c.constraint_for(&attr).interval;
            (attr, interval)
        })
        .collect();
    // Tighten attributes that participate in difference constraints.
    let g = ConstraintGraph::build(c, &[]);
    if g.idx.is_empty() {
        return Some(out);
    }
    let upper = g.origin_distances(false);
    let lower = g.origin_distances(true);
    for (name, &i) in &g.idx {
        let mut derived = Interval::full();
        // Widen by the graph tolerance: `x ≤ d` proven with float sums
        // must not round into a bound tighter than the real one.
        if let Some((d, strict)) = upper[i] {
            derived.hi = Some((Value::Float(d + g.eps), !strict));
        }
        if let Some((d, strict)) = lower[i] {
            derived.lo = Some((Value::Float(-d - g.eps), !strict));
        }
        let entry = out
            .entry((*name).to_string())
            .or_insert_with(Interval::full);
        *entry = entry.intersect(&derived);
        if entry.is_empty() {
            // Both operands over-approximate the admissible values, so
            // an empty meet proves the conjunction itself is empty.
            return None;
        }
    }
    Some(out)
}

/// Whether every assignment satisfying `a` satisfies `b` (`a ⇒ b`).
///
/// Strictly stronger than the syntactic [`Conjunction::implies`]: each
/// atom of `b` not already implied key-by-key is checked *semantically*
/// by refuting `a ∧ ¬atom` with the difference-constraint kernel, which
/// sees interactions across attributes (e.g. `x ≥ 5 ∧ x − y ≤ 2` implies
/// `y ≥ 3`). **Sound, not complete**: `true` is always correct; `false`
/// means the implication could not be proved (non-numeric atoms only get
/// the syntactic check).
pub fn conjunction_implies(a: &Conjunction, b: &Conjunction) -> bool {
    if conjunction_unsat(a) {
        return true; // vacuous: `a` admits nothing
    }
    if a.implies(b) {
        return true; // syntactic fast path (exact per shared key)
    }
    // Per-atom: `a ⇒ p ∧ q` iff `a ⇒ p` and `a ⇒ q`.
    for (attr, c2) in b.attr_constraints() {
        let c1 = a.constraint_for(attr);
        if c1.implies(c2) {
            continue;
        }
        // Bounds: refute `a ∧ ¬bound`. The negation of a lower bound
        // `x ≥ v` is `x < v` (an upper edge, strict flipped), and dually.
        if let Some((v, incl)) = &c2.interval.lo {
            let syntactic = c1.implies(&AttrConstraint::from_interval(Interval {
                lo: Some((v.clone(), *incl)),
                hi: None,
            }));
            let semantic = v.as_f64().is_some_and(|x| {
                unsat_with(
                    a,
                    &[ExtraEdge {
                        from: None,
                        to: Some(attr),
                        w: x,
                        strict: *incl,
                    }],
                )
            });
            if !syntactic && !semantic {
                return false;
            }
        }
        if let Some((v, incl)) = &c2.interval.hi {
            let syntactic = c1.implies(&AttrConstraint::from_interval(Interval {
                lo: None,
                hi: Some((v.clone(), *incl)),
            }));
            let semantic = v.as_f64().is_some_and(|x| {
                unsat_with(
                    a,
                    &[ExtraEdge {
                        from: Some(attr),
                        to: None,
                        w: -x,
                        strict: *incl,
                    }],
                )
            });
            if !syntactic && !semantic {
                return false;
            }
        }
        // Exclusions: `a ⇒ x ≠ v` iff `a ∧ x = v` is empty.
        for e in &c2.excluded {
            let syntactic = c1.excluded.contains(e) || !c1.interval.contains(e);
            let semantic = e.as_f64().is_some_and(|x| {
                unsat_with(
                    a,
                    &[
                        ExtraEdge {
                            from: None,
                            to: Some(attr),
                            w: x,
                            strict: false,
                        },
                        ExtraEdge {
                            from: Some(attr),
                            to: None,
                            w: -x,
                            strict: false,
                        },
                    ],
                )
            });
            if !syntactic && !semantic {
                return false;
            }
        }
    }
    for (x, y, r2) in b.diff_constraints() {
        // `a`'s range for the same (canonically ordered) pair, if any.
        let r1 = a
            .diff_constraints()
            .find(|(ax, ay, _)| *ax == x && *ay == y)
            .map(|(_, _, r)| *r);
        if r1.is_some_and(|r1| r1.implies(r2)) {
            continue;
        }
        // Negation of `x − y ≥ lo` is `x − y < lo`; of `x − y ≤ hi` is
        // `y − x < −hi`.
        if r2.lo.is_finite()
            && !unsat_with(
                a,
                &[ExtraEdge {
                    from: Some(y),
                    to: Some(x),
                    w: r2.lo,
                    strict: true,
                }],
            )
        {
            return false;
        }
        if r2.hi.is_finite()
            && !unsat_with(
                a,
                &[ExtraEdge {
                    from: Some(x),
                    to: Some(y),
                    w: -r2.hi,
                    strict: true,
                }],
            )
        {
            return false;
        }
    }
    true
}

/// Whether the disjunction `antecedent` implies the disjunction
/// `consequent`, under the [`crate::ProfileEntry`] convention that an
/// **empty filter list means accept-all**.
///
/// Conservative and sound: each satisfiable disjunct of the antecedent
/// must imply *some single* disjunct of the consequent (case splits
/// across consequent disjuncts are not attempted), so `true` is always
/// correct.
pub fn filters_imply(antecedent: &[Conjunction], consequent: &[Conjunction]) -> bool {
    if consequent.is_empty() {
        return true; // accept-all is implied by anything
    }
    if antecedent.is_empty() {
        // Accept-all implies the consequent only if a disjunct of the
        // consequent is itself accept-all.
        return consequent.iter().any(|c| c.is_always());
    }
    antecedent
        .iter()
        .all(|a| conjunction_unsat(a) || consequent.iter().any(|c| conjunction_implies(a, c)))
}

/// Whether the two disjunctive filters (empty = accept-all) can admit a
/// common tuple description. **`false` is the proven direction**: the
/// filters are certainly disjoint; `true` merely means no disjointness
/// proof was found.
pub fn filters_intersect(a: &[Conjunction], b: &[Conjunction]) -> bool {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => true,
        (true, false) => b.iter().any(|c| !conjunction_unsat(c)),
        (false, true) => a.iter().any(|c| !conjunction_unsat(c)),
        (false, false) => a
            .iter()
            .any(|x| b.iter().any(|y| !conjunction_unsat(&x.and(y)))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::DiffRange;
    use cosmos_types::Value;

    fn ge(lo: f64) -> DiffRange {
        DiffRange::new(lo, f64::INFINITY)
    }

    #[test]
    fn shallow_unsat_is_still_unsat() {
        let mut c = Conjunction::always();
        c.between("a", 5, 2);
        assert!(c.is_unsat());
        assert!(conjunction_unsat(&c));
    }

    #[test]
    fn always_true_is_sat() {
        assert!(!conjunction_unsat(&Conjunction::always()));
    }

    #[test]
    fn deep_unsat_through_a_difference_constraint() {
        // a ≥ b AND b ≥ 5 AND a < 5: each constraint alone is non-empty.
        let mut c = Conjunction::always();
        c.diff("a", "b", ge(0.0))
            .lower("b", 5, true)
            .upper("a", 5, false);
        assert!(!c.is_unsat(), "shallow check must not see this");
        assert!(conjunction_unsat(&c));
        // Relaxing the strict bound to ≤ makes a = b = 5 a model.
        let mut s = Conjunction::always();
        s.diff("a", "b", ge(0.0))
            .lower("b", 5, true)
            .upper("a", 5, true);
        assert!(!conjunction_unsat(&s));
    }

    #[test]
    fn deep_unsat_through_a_chain_of_differences() {
        // a − b ≥ 1, b − c ≥ 1, a − c ≤ 1: the chain forces a − c ≥ 2.
        let mut c = Conjunction::always();
        c.diff("a", "b", ge(1.0)).diff("b", "c", ge(1.0)).diff(
            "a",
            "c",
            DiffRange::new(f64::NEG_INFINITY, 1.0),
        );
        assert!(!c.is_unsat());
        assert!(conjunction_unsat(&c));
        // Widening the cap to 2 admits a = c + 2, b = c + 1.
        let mut s = Conjunction::always();
        s.diff("a", "b", ge(1.0)).diff("b", "c", ge(1.0)).diff(
            "a",
            "c",
            DiffRange::new(f64::NEG_INFINITY, 2.0),
        );
        assert!(!conjunction_unsat(&s));
    }

    #[test]
    fn zero_cycle_with_strict_bound_is_unsat() {
        // a = b (difference pinned to 0), b ≥ 5, a < 5.
        let mut c = Conjunction::always();
        c.diff("a", "b", DiffRange::new(0.0, 0.0))
            .lower("b", 5, true)
            .upper("a", 5, false);
        assert!(conjunction_unsat(&c));
    }

    #[test]
    fn bounds_on_attrs_outside_diffs_do_not_interact() {
        let mut c = Conjunction::always();
        c.lower("x", 100, true)
            .upper("y", -100, true)
            .diff("a", "b", ge(0.0));
        assert!(!conjunction_unsat(&c));
    }

    #[test]
    fn non_numeric_bounds_are_skipped_soundly() {
        let mut c = Conjunction::always();
        c.equals("name", Value::str("abc"))
            .diff("a", "b", ge(0.0))
            .lower("b", 1, true);
        assert!(!conjunction_unsat(&c));
    }

    #[test]
    fn unbounded_difference_ranges_add_no_edges() {
        let mut c = Conjunction::always();
        c.diff("a", "b", DiffRange::any());
        assert!(!conjunction_unsat(&c));
    }

    #[test]
    fn contradictory_antecedent_implies_anything() {
        // a ≥ 5 ∧ a < 5 is empty, so it vacuously implies b = 42.
        let mut a = Conjunction::always();
        a.lower("a", 5, true).upper("a", 5, false);
        let mut b = Conjunction::always();
        b.equals("b", 42);
        assert!(conjunction_unsat(&a));
        assert!(conjunction_implies(&a, &b));
    }

    #[test]
    fn difference_chains_imply_their_transitive_closure() {
        // a − b ≤ −1 ∧ b − c ≤ −1 ⇒ a − c ≤ −2 — invisible to the
        // syntactic per-key check, provable by refutation.
        let neg = |hi: f64| DiffRange::new(f64::NEG_INFINITY, hi);
        let mut a = Conjunction::always();
        a.diff("a", "b", neg(-1.0)).diff("b", "c", neg(-1.0));
        let mut b = Conjunction::always();
        b.diff("a", "c", neg(-2.0));
        assert!(!a.implies(&b), "the syntactic check must not see this");
        assert!(conjunction_implies(&a, &b));
        // …and the closure is tight: a − c ≤ −3 does not follow.
        let mut tighter = Conjunction::always();
        tighter.diff("a", "c", neg(-3.0));
        assert!(!conjunction_implies(&a, &tighter));
    }

    #[test]
    fn interval_bound_follows_through_a_difference() {
        // x ≥ 5 ∧ x − y ≤ 2 ⇒ y ≥ 3.
        let mut a = Conjunction::always();
        a.lower("x", 5, true)
            .diff("x", "y", DiffRange::new(f64::NEG_INFINITY, 2.0));
        let mut b = Conjunction::always();
        b.lower("y", 3, true);
        assert!(!a.implies(&b));
        assert!(conjunction_implies(&a, &b));
        let mut too_much = Conjunction::always();
        too_much.lower("y", 4, true);
        assert!(!conjunction_implies(&a, &too_much));
    }

    #[test]
    fn exclusion_follows_through_a_difference() {
        // x = y ∧ y ≥ 5 ⇒ x ≠ 4: x is unconstrained per-key, but
        // pinning x = 4 forces y = 4 < 5.
        let mut a = Conjunction::always();
        a.diff("x", "y", DiffRange::new(0.0, 0.0))
            .lower("y", 5, true);
        let mut b = Conjunction::always();
        b.excludes("x", 4);
        assert!(!a.implies(&b));
        assert!(conjunction_implies(&a, &b));
        // x = 7 is a model (y = 7 ≥ 5), so x ≠ 7 must not be claimed.
        let mut open = Conjunction::always();
        open.excludes("x", 7);
        assert!(!conjunction_implies(&a, &open));
    }

    #[test]
    fn filter_implication_conventions_for_empty_disjunctions() {
        let restrictive = {
            let mut c = Conjunction::always();
            c.lower("a", 5, true);
            c
        };
        // Empty filter list = accept-all (profile convention): it is
        // implied by anything, and implies only accept-all consequents.
        assert!(filters_imply(std::slice::from_ref(&restrictive), &[]));
        assert!(filters_imply(&[], &[]));
        assert!(!filters_imply(&[], std::slice::from_ref(&restrictive)));
        assert!(filters_imply(&[], &[Conjunction::always()]));
        // Each antecedent disjunct needs *some* covering consequent.
        let low = {
            let mut c = Conjunction::always();
            c.upper("a", 0, true);
            c
        };
        assert!(filters_imply(
            &[restrictive.clone(), low.clone()],
            &[low.clone(), restrictive.clone()]
        ));
        assert!(!filters_imply(&[restrictive, low.clone()], &[low]));
    }

    #[test]
    fn filter_intersection_is_refuted_only_when_provably_disjoint() {
        let lo = {
            let mut c = Conjunction::always();
            c.upper("a", 0, false);
            c
        };
        let hi = {
            let mut c = Conjunction::always();
            c.lower("a", 0, true);
            c
        };
        assert!(!filters_intersect(
            std::slice::from_ref(&lo),
            std::slice::from_ref(&hi)
        ));
        assert!(filters_intersect(
            &[lo.clone(), hi.clone()],
            std::slice::from_ref(&hi)
        ));
        // Accept-all intersects anything satisfiable…
        assert!(filters_intersect(&[], &[hi]));
        assert!(filters_intersect(&[], &[]));
        // …but not a filter whose every disjunct is empty.
        let dead = {
            let mut c = Conjunction::always();
            c.lower("a", 5, true).upper("a", 5, false);
            c
        };
        assert!(!filters_intersect(&[], &[dead]));
    }

    #[test]
    fn empty_conjunction_degenerate_cases() {
        let always = Conjunction::always();
        assert!(!conjunction_unsat(&always));
        assert!(conjunction_implies(&always, &always));
        let mut restrictive = Conjunction::always();
        restrictive.lower("a", 5, true);
        assert!(!conjunction_implies(&always, &restrictive));
        assert!(conjunction_implies(&restrictive, &always));
        // An always-true disjunct behaves as accept-all inside a list.
        assert!(filters_imply(
            &[restrictive.clone()],
            &[Conjunction::always()]
        ));
        assert!(!filters_imply(&[Conjunction::always()], &[restrictive]));
    }

    #[test]
    fn tautological_bounds_are_implied() {
        // x ≤ 5 ⇒ x < 6 and x ≤ 5 over the reals — the semantic check
        // must see both even though neither is syntactically keyed.
        let mut a = Conjunction::always();
        a.upper("x", 5, true);
        let mut b = Conjunction::always();
        b.upper("x", 6, false);
        assert!(conjunction_implies(&a, &b));
        let mut same = Conjunction::always();
        same.upper("x", 5, true);
        assert!(conjunction_implies(&a, &same));
        // …but not the converse.
        assert!(!conjunction_implies(&b, &a));
    }

    #[test]
    fn equality_chain_at_interval_endpoints() {
        // a = b, b ∈ [3, 7], a ≥ 7: the chain pins both to exactly 7 —
        // satisfiable at the closed endpoint, empty once it is open.
        let mut c = Conjunction::always();
        c.diff("a", "b", DiffRange::new(0.0, 0.0))
            .between("b", 3, 7)
            .lower("a", 7, true);
        assert!(!conjunction_unsat(&c));
        let mut open = Conjunction::always();
        open.diff("a", "b", DiffRange::new(0.0, 0.0))
            .between("b", 3, 7)
            .lower("a", 7, false);
        assert!(conjunction_unsat(&open));
    }

    #[test]
    fn filter_lists_of_only_unsat_disjuncts() {
        let dead = {
            let mut c = Conjunction::always();
            c.lower("a", 5, true).upper("a", 5, false);
            c
        };
        // Every-disjunct-dead antecedent implies anything (vacuous) and
        // intersects nothing — including accept-all.
        let mut restrictive = Conjunction::always();
        restrictive.lower("b", 0, true);
        assert!(filters_imply(
            &[dead.clone(), dead.clone()],
            std::slice::from_ref(&restrictive)
        ));
        assert!(!filters_intersect(
            std::slice::from_ref(&dead),
            &[restrictive]
        ));
        assert!(!filters_intersect(std::slice::from_ref(&dead), &[]));
        assert!(!filters_intersect(&[], &[dead]));
    }

    #[test]
    fn range_of_empty_conjunction_is_empty_map() {
        let r = conjunction_range(&Conjunction::always()).expect("always is satisfiable");
        assert!(r.is_empty());
    }

    #[test]
    fn range_of_unsat_conjunction_is_none() {
        let mut c = Conjunction::always();
        c.diff("a", "b", ge(0.0)).lower("b", 5, true).upper(
            "a", 5, false, // a ≥ b ≥ 5 and a < 5
        );
        assert_eq!(conjunction_range(&c), None);
    }

    #[test]
    fn range_reads_declared_intervals_for_diff_free_attrs() {
        let mut c = Conjunction::always();
        c.between("x", 2, 9).equals("name", Value::str("abc"));
        let r = conjunction_range(&c).unwrap();
        assert_eq!(r["x"], Interval::closed(Value::Int(2), Value::Int(9)));
        assert_eq!(r["name"], Interval::point(Value::str("abc")));
    }

    #[test]
    fn range_tightens_through_differences() {
        // a − b ≤ 2 AND 0 ≤ b ≤ 3: a ≤ 5 though a has no own bound.
        let mut c = Conjunction::always();
        c.diff("a", "b", DiffRange::new(f64::NEG_INFINITY, 2.0))
            .between("b", 0, 3);
        let r = conjunction_range(&c).unwrap();
        let (hi, incl) = r["a"].hi.clone().expect("derived upper bound");
        assert!(incl);
        let hi = hi.as_f64().unwrap();
        assert!((hi - 5.0).abs() < 1e-6, "a ≤ {hi}, expected ≈5");
        assert!(r["a"].lo.is_none(), "no lower bound is derivable");
        // b keeps its declared closed interval.
        assert_eq!(r["b"], Interval::closed(Value::Int(0), Value::Int(3)));
    }

    #[test]
    fn range_strictness_follows_the_tightest_path() {
        // a ≥ b AND b > 2: the derived lower bound on a is strict.
        let mut c = Conjunction::always();
        c.diff("a", "b", ge(0.0)).lower("b", 2, false);
        let r = conjunction_range(&c).unwrap();
        let (lo, incl) = r["a"].lo.clone().expect("derived lower bound");
        assert!(!incl, "bound through a strict edge must stay strict");
        let lo = lo.as_f64().unwrap();
        assert!((lo - 2.0).abs() < 1e-6, "a > {lo}, expected ≈2");
    }

    #[test]
    fn range_pins_equality_chains_at_endpoints() {
        // a = b, b ∈ [3, 7], a ≥ 7 ⇒ both collapse to ≈[7, 7].
        let mut c = Conjunction::always();
        c.diff("a", "b", DiffRange::new(0.0, 0.0))
            .between("b", 3, 7)
            .lower("a", 7, true);
        let r = conjunction_range(&c).unwrap();
        for attr in ["a", "b"] {
            let (lo, _) = r[attr].lo.clone().expect("lower");
            let (hi, _) = r[attr].hi.clone().expect("upper");
            assert!((lo.as_f64().unwrap() - 7.0).abs() < 1e-6, "{attr} lo");
            assert!((hi.as_f64().unwrap() - 7.0).abs() < 1e-6, "{attr} hi");
        }
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        /// One randomly generated primitive constraint.
        #[derive(Debug, Clone)]
        enum Atom {
            Lower(usize, i64, bool),
            Upper(usize, i64, bool),
            Diff(usize, usize, i64, i64),
        }

        const ATTRS: [&str; 3] = ["a", "b", "c"];

        fn arb_atom() -> impl Strategy<Value = Atom> {
            let small = -4i64..=4;
            prop_oneof![
                (0usize..3, small.clone(), any::<bool>())
                    .prop_map(|(i, v, inc)| Atom::Lower(i, v, inc)),
                (0usize..3, small.clone(), any::<bool>())
                    .prop_map(|(i, v, inc)| Atom::Upper(i, v, inc)),
                (0usize..3, 1usize..3, small.clone(), small).prop_map(
                    // `j` is an offset so the pair is never a self-difference.
                    |(i, off, x, y)| Atom::Diff(i, (i + off) % 3, x.min(y), x.max(y))
                ),
            ]
        }

        fn build(atoms: &[Atom]) -> Conjunction {
            let mut c = Conjunction::always();
            for atom in atoms {
                match *atom {
                    Atom::Lower(i, v, inc) => {
                        c.lower(ATTRS[i], v, inc);
                    }
                    Atom::Upper(i, v, inc) => {
                        c.upper(ATTRS[i], v, inc);
                    }
                    Atom::Diff(i, j, lo, hi) => {
                        c.diff(ATTRS[i], ATTRS[j], DiffRange::new(lo as f64, hi as f64));
                    }
                }
            }
            c
        }

        fn satisfied_at(c: &Conjunction, p: [i64; 3]) -> bool {
            let vals: Vec<Value> = p.iter().map(|&v| Value::Int(v)).collect();
            c.satisfies_with(|name| ATTRS.iter().position(|a| *a == name).map(|i| &vals[i]))
        }

        proptest! {
            /// Soundness: if any sampled integer point satisfies the
            /// conjunction, the kernel must not call it unsatisfiable.
            #[test]
            fn never_unsat_when_a_witness_exists(atoms in proptest::collection::vec(arb_atom(), 0..8)) {
                let c = build(&atoms);
                let mut witness = false;
                for x in -5i64..=5 {
                    for y in -5i64..=5 {
                        for z in -5i64..=5 {
                            if satisfied_at(&c, [x, y, z]) {
                                witness = true;
                            }
                        }
                    }
                }
                if witness {
                    prop_assert!(!conjunction_unsat(&c), "unsat despite witness: {c}");
                }
            }

            /// Constraints generated *around* a known point are satisfiable,
            /// so the kernel must agree.
            #[test]
            fn constraints_built_around_a_point_are_sat(
                p in (-4i64..=4, -4i64..=4, -4i64..=4).prop_map(|(x, y, z)| [x, y, z]),
                picks in proptest::collection::vec((0usize..3, 0usize..3, any::<bool>(), 0i64..=3), 0..8),
            ) {
                let mut c = Conjunction::always();
                for (i, j, is_diff, slack) in picks {
                    if is_diff && i != j {
                        let d = p[i] - p[j];
                        c.diff(
                            ATTRS[i],
                            ATTRS[j],
                            DiffRange::new((d - slack) as f64, (d + slack) as f64),
                        );
                    } else {
                        c.between(ATTRS[i], p[i] - slack, p[i] + slack);
                    }
                }
                prop_assert!(satisfied_at(&c, p));
                prop_assert!(!conjunction_unsat(&c), "unsat but {p:?} satisfies: {c}");
            }

            /// Implication soundness: when the kernel claims `a ⇒ b`,
            /// no sampled integer point may satisfy `a` but not `b`.
            #[test]
            fn implication_claims_hold_at_every_sampled_point(
                aa in proptest::collection::vec(arb_atom(), 0..6),
                bb in proptest::collection::vec(arb_atom(), 0..4),
            ) {
                let a = build(&aa);
                let b = build(&bb);
                if conjunction_implies(&a, &b) {
                    for x in -5i64..=5 {
                        for y in -5i64..=5 {
                            for z in -5i64..=5 {
                                if satisfied_at(&a, [x, y, z]) {
                                    prop_assert!(
                                        satisfied_at(&b, [x, y, z]),
                                        "claimed {a} ⇒ {b} but ({x},{y},{z}) refutes it"
                                    );
                                }
                            }
                        }
                    }
                }
            }

            /// Range-extraction soundness: every sampled satisfying
            /// point must lie inside every interval the extraction
            /// claims — and a conjunction with a witness must not map
            /// to `None` (the empty abstraction).
            #[test]
            fn extracted_ranges_contain_every_sampled_point(
                atoms in proptest::collection::vec(arb_atom(), 0..8),
            ) {
                let c = build(&atoms);
                let ranges = conjunction_range(&c);
                for x in -5i64..=5 {
                    for y in -5i64..=5 {
                        for z in -5i64..=5 {
                            if !satisfied_at(&c, [x, y, z]) {
                                continue;
                            }
                            let Some(ranges) = &ranges else {
                                prop_assert!(
                                    false,
                                    "empty abstraction despite witness ({x},{y},{z}): {c}"
                                );
                                unreachable!()
                            };
                            for (i, v) in [x, y, z].into_iter().enumerate() {
                                if let Some(iv) = ranges.get(ATTRS[i]) {
                                    prop_assert!(
                                        iv.contains(&Value::Int(v)),
                                        "{} = {v} escapes claimed {iv} of {c}",
                                        ATTRS[i]
                                    );
                                }
                            }
                        }
                    }
                }
            }

            /// Disjointness soundness: when `filters_intersect` returns
            /// false, no sampled point may satisfy a disjunct of each.
            #[test]
            fn refuted_intersections_share_no_sampled_point(
                aa in proptest::collection::vec(arb_atom(), 1..5),
                bb in proptest::collection::vec(arb_atom(), 1..5),
            ) {
                // Two-disjunct filters: each half of the atoms.
                let fa = [build(&aa[..aa.len() / 2]), build(&aa[aa.len() / 2..])];
                let fb = [build(&bb[..bb.len() / 2]), build(&bb[bb.len() / 2..])];
                if !filters_intersect(&fa, &fb) {
                    for x in -5i64..=5 {
                        for y in -5i64..=5 {
                            for z in -5i64..=5 {
                                let p = [x, y, z];
                                let in_a = fa.iter().any(|c| satisfied_at(c, p));
                                let in_b = fb.iter().any(|c| satisfied_at(c, p));
                                prop_assert!(
                                    !(in_a && in_b),
                                    "claimed disjoint but ({x},{y},{z}) is in both"
                                );
                            }
                        }
                    }
                }
            }

            /// Filter-implication soundness over disjunctions: a claimed
            /// `F₁ ⇒ F₂` may leave no sampled point covered by `F₁` but
            /// not by `F₂` (empty filter = accept-all).
            #[test]
            fn filter_implication_claims_hold_at_every_sampled_point(
                aa in proptest::collection::vec(arb_atom(), 1..5),
                bb in proptest::collection::vec(arb_atom(), 1..5),
            ) {
                let fa = [build(&aa[..aa.len() / 2]), build(&aa[aa.len() / 2..])];
                let fb = [build(&bb[..bb.len() / 2]), build(&bb[bb.len() / 2..])];
                if filters_imply(&fa, &fb) {
                    for x in -5i64..=5 {
                        for y in -5i64..=5 {
                            for z in -5i64..=5 {
                                let p = [x, y, z];
                                if fa.iter().any(|c| satisfied_at(c, p)) {
                                    prop_assert!(
                                        fb.iter().any(|c| satisfied_at(c, p)),
                                        "claimed implied but ({x},{y},{z}) escapes"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}
