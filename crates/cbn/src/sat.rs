//! Satisfiability of [`Conjunction`]s beyond the shallow per-constraint
//! check.
//!
//! [`Conjunction::is_unsat`] only sees contradictions *inside* a single
//! constraint (an empty interval, an empty difference range). A
//! conjunction can still be empty through *interaction* of its
//! constraints, e.g. `a − b ≥ 0 AND b ≥ 5 AND a < 5`: every individual
//! constraint is non-empty, yet no assignment satisfies all three.
//!
//! Numeric bounds and difference ranges together form a system of
//! *difference constraints* — exactly the fragment solved by shortest
//! paths. [`conjunction_unsat`] builds the standard constraint graph
//! (constraint `x − y ≤ w` ⇒ edge `y → x` of weight `w`, plus a virtual
//! origin pinned at 0 for absolute bounds) and runs Bellman–Ford: the
//! system is infeasible iff the graph has a negative cycle. Strict
//! bounds (`<`, `>`) are tracked as an infinitesimal on each edge, so a
//! zero-weight cycle containing a strict edge is also infeasible.
//!
//! The check is **sound, not complete**: `true` means provably empty
//! (over the reals; exclusions from `!=` and non-numeric bounds are
//! ignored, which only widens the admitted set), while `false` merely
//! means no contradiction was found. Callers use it to prune filters
//! and reject queries, so only the `true` direction must be trusted.

use crate::predicate::Conjunction;
use std::collections::BTreeMap;

/// Whether the conjunction provably admits no assignment.
///
/// Exact over the reals for the interval + difference-range fragment
/// (ignoring `!=` exclusions and non-numeric bounds, both of which are
/// skipped conservatively). Runs in `O(nodes × edges)`.
pub fn conjunction_unsat(c: &Conjunction) -> bool {
    if c.is_unsat() {
        return true;
    }
    // Nodes: one per attribute that appears in a difference constraint.
    // Attributes outside every difference constraint cannot interact, and
    // their interval emptiness was already covered by `is_unsat` above.
    let mut idx: BTreeMap<&str, usize> = BTreeMap::new();
    for (a, b, _) in c.diff_constraints() {
        let next = idx.len() + 1;
        idx.entry(a).or_insert(next);
        let next = idx.len() + 1;
        idx.entry(b).or_insert(next);
    }
    if idx.is_empty() {
        return false;
    }
    let n = idx.len() + 1; // node 0 is the virtual origin (value 0)

    // Edges (from, to, weight, strict): constraint `to − from ≤ weight`,
    // strict when the bound excludes equality.
    let mut edges: Vec<(usize, usize, f64, bool)> = Vec::new();
    for (a, b, r) in c.diff_constraints() {
        let (ia, ib) = (idx[a], idx[b]);
        // lo ≤ a − b ≤ hi: `a − b ≤ hi` and `b − a ≤ −lo`.
        if r.hi.is_finite() {
            edges.push((ib, ia, r.hi, false));
        }
        if r.lo.is_finite() {
            edges.push((ia, ib, -r.lo, false));
        }
    }
    for (name, ac) in c.attr_constraints() {
        let Some(&i) = idx.get(name) else { continue };
        // `a ≤ v` ⇒ a − origin ≤ v; `a ≥ v` ⇒ origin − a ≤ −v.
        // Non-numeric bounds are skipped (sound: skipping only loosens).
        if let Some((v, incl)) = &ac.interval.hi {
            if let Some(x) = v.as_f64() {
                edges.push((0, i, x, !incl));
            }
        }
        if let Some((v, incl)) = &ac.interval.lo {
            if let Some(x) = v.as_f64() {
                edges.push((i, 0, -x, !incl));
            }
        }
    }
    if edges.is_empty() {
        return false;
    }

    // Tolerance scaled to the weights in play so float rounding cannot
    // manufacture a spurious negative cycle (a false "unsat" would drop a
    // live filter; missing a borderline cycle merely skips a lint).
    let max_w = edges.iter().map(|e| e.2.abs()).fold(0.0f64, f64::max);
    let eps = 1e-9 * (1.0 + max_w) * edges.len() as f64;

    // Lexicographic path weight (sum, strict-edge count): a path is
    // strictly shorter when its sum is smaller beyond tolerance, or the
    // sums tie and it crosses more strict bounds (each strict edge is an
    // infinitesimal −ε).
    let less = |a: (f64, usize), b: (f64, usize)| -> bool {
        a.0 < b.0 - eps || (a.0 <= b.0 + eps && a.1 > b.1)
    };

    // Bellman–Ford from an implicit super-source (all distances 0). After
    // n relaxation rounds, any still-relaxable edge lies on a negative
    // (or zero-but-strict) cycle — i.e. the system is infeasible.
    let mut dist = vec![(0.0f64, 0usize); n];
    for _ in 0..n {
        let mut changed = false;
        for &(u, v, w, strict) in &edges {
            let cand = (dist[u].0 + w, dist[u].1 + strict as usize);
            if less(cand, dist[v]) {
                dist[v] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
    }
    edges.iter().any(|&(u, v, w, strict)| {
        let cand = (dist[u].0 + w, dist[u].1 + strict as usize);
        less(cand, dist[v])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::DiffRange;
    use cosmos_types::Value;

    fn ge(lo: f64) -> DiffRange {
        DiffRange::new(lo, f64::INFINITY)
    }

    #[test]
    fn shallow_unsat_is_still_unsat() {
        let mut c = Conjunction::always();
        c.between("a", 5, 2);
        assert!(c.is_unsat());
        assert!(conjunction_unsat(&c));
    }

    #[test]
    fn always_true_is_sat() {
        assert!(!conjunction_unsat(&Conjunction::always()));
    }

    #[test]
    fn deep_unsat_through_a_difference_constraint() {
        // a ≥ b AND b ≥ 5 AND a < 5: each constraint alone is non-empty.
        let mut c = Conjunction::always();
        c.diff("a", "b", ge(0.0))
            .lower("b", 5, true)
            .upper("a", 5, false);
        assert!(!c.is_unsat(), "shallow check must not see this");
        assert!(conjunction_unsat(&c));
        // Relaxing the strict bound to ≤ makes a = b = 5 a model.
        let mut s = Conjunction::always();
        s.diff("a", "b", ge(0.0))
            .lower("b", 5, true)
            .upper("a", 5, true);
        assert!(!conjunction_unsat(&s));
    }

    #[test]
    fn deep_unsat_through_a_chain_of_differences() {
        // a − b ≥ 1, b − c ≥ 1, a − c ≤ 1: the chain forces a − c ≥ 2.
        let mut c = Conjunction::always();
        c.diff("a", "b", ge(1.0)).diff("b", "c", ge(1.0)).diff(
            "a",
            "c",
            DiffRange::new(f64::NEG_INFINITY, 1.0),
        );
        assert!(!c.is_unsat());
        assert!(conjunction_unsat(&c));
        // Widening the cap to 2 admits a = c + 2, b = c + 1.
        let mut s = Conjunction::always();
        s.diff("a", "b", ge(1.0)).diff("b", "c", ge(1.0)).diff(
            "a",
            "c",
            DiffRange::new(f64::NEG_INFINITY, 2.0),
        );
        assert!(!conjunction_unsat(&s));
    }

    #[test]
    fn zero_cycle_with_strict_bound_is_unsat() {
        // a = b (difference pinned to 0), b ≥ 5, a < 5.
        let mut c = Conjunction::always();
        c.diff("a", "b", DiffRange::new(0.0, 0.0))
            .lower("b", 5, true)
            .upper("a", 5, false);
        assert!(conjunction_unsat(&c));
    }

    #[test]
    fn bounds_on_attrs_outside_diffs_do_not_interact() {
        let mut c = Conjunction::always();
        c.lower("x", 100, true)
            .upper("y", -100, true)
            .diff("a", "b", ge(0.0));
        assert!(!conjunction_unsat(&c));
    }

    #[test]
    fn non_numeric_bounds_are_skipped_soundly() {
        let mut c = Conjunction::always();
        c.equals("name", Value::str("abc"))
            .diff("a", "b", ge(0.0))
            .lower("b", 1, true);
        assert!(!conjunction_unsat(&c));
    }

    #[test]
    fn unbounded_difference_ranges_add_no_edges() {
        let mut c = Conjunction::always();
        c.diff("a", "b", DiffRange::any());
        assert!(!conjunction_unsat(&c));
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        /// One randomly generated primitive constraint.
        #[derive(Debug, Clone)]
        enum Atom {
            Lower(usize, i64, bool),
            Upper(usize, i64, bool),
            Diff(usize, usize, i64, i64),
        }

        const ATTRS: [&str; 3] = ["a", "b", "c"];

        fn arb_atom() -> impl Strategy<Value = Atom> {
            let small = -4i64..=4;
            prop_oneof![
                (0usize..3, small.clone(), any::<bool>())
                    .prop_map(|(i, v, inc)| Atom::Lower(i, v, inc)),
                (0usize..3, small.clone(), any::<bool>())
                    .prop_map(|(i, v, inc)| Atom::Upper(i, v, inc)),
                (0usize..3, 1usize..3, small.clone(), small).prop_map(
                    // `j` is an offset so the pair is never a self-difference.
                    |(i, off, x, y)| Atom::Diff(i, (i + off) % 3, x.min(y), x.max(y))
                ),
            ]
        }

        fn build(atoms: &[Atom]) -> Conjunction {
            let mut c = Conjunction::always();
            for atom in atoms {
                match *atom {
                    Atom::Lower(i, v, inc) => {
                        c.lower(ATTRS[i], v, inc);
                    }
                    Atom::Upper(i, v, inc) => {
                        c.upper(ATTRS[i], v, inc);
                    }
                    Atom::Diff(i, j, lo, hi) => {
                        c.diff(ATTRS[i], ATTRS[j], DiffRange::new(lo as f64, hi as f64));
                    }
                }
            }
            c
        }

        fn satisfied_at(c: &Conjunction, p: [i64; 3]) -> bool {
            let vals: Vec<Value> = p.iter().map(|&v| Value::Int(v)).collect();
            c.satisfies_with(|name| ATTRS.iter().position(|a| *a == name).map(|i| &vals[i]))
        }

        proptest! {
            /// Soundness: if any sampled integer point satisfies the
            /// conjunction, the kernel must not call it unsatisfiable.
            #[test]
            fn never_unsat_when_a_witness_exists(atoms in proptest::collection::vec(arb_atom(), 0..8)) {
                let c = build(&atoms);
                let mut witness = false;
                for x in -5i64..=5 {
                    for y in -5i64..=5 {
                        for z in -5i64..=5 {
                            if satisfied_at(&c, [x, y, z]) {
                                witness = true;
                            }
                        }
                    }
                }
                if witness {
                    prop_assert!(!conjunction_unsat(&c), "unsat despite witness: {c}");
                }
            }

            /// Constraints generated *around* a known point are satisfiable,
            /// so the kernel must agree.
            #[test]
            fn constraints_built_around_a_point_are_sat(
                p in (-4i64..=4, -4i64..=4, -4i64..=4).prop_map(|(x, y, z)| [x, y, z]),
                picks in proptest::collection::vec((0usize..3, 0usize..3, any::<bool>(), 0i64..=3), 0..8),
            ) {
                let mut c = Conjunction::always();
                for (i, j, is_diff, slack) in picks {
                    if is_diff && i != j {
                        let d = p[i] - p[j];
                        c.diff(
                            ATTRS[i],
                            ATTRS[j],
                            DiffRange::new((d - slack) as f64, (d + slack) as f64),
                        );
                    } else {
                        c.between(ATTRS[i], p[i] - slack, p[i] + slack);
                    }
                }
                prop_assert!(satisfied_at(&c, p));
                prop_assert!(!conjunction_unsat(&c), "unsat but {p:?} satisfies: {c}");
            }
        }
    }
}
