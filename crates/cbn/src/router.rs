//! Per-node CBN routing state.
//!
//! Each overlay node (broker or processor) runs a [`Router`]. The router
//! knows, for every overlay neighbor, the merged data interest of the
//! subtree reachable through that neighbor, plus the interests of locally
//! attached subscribers (users, processors' SPE inputs). Incoming
//! datagrams are matched against these interests and forwarded — after
//! *early projection* onto each destination's attribute set — to every
//! interested next hop except the link they arrived on (reverse-path
//! forwarding on the dissemination tree).
//!
//! Subscription propagation itself (walking the dissemination tree from a
//! subscriber towards a stream's origin, merging profiles at every hop)
//! is orchestrated by the `cosmos` system crate; the router exposes
//! [`Router::aggregated_interest`] to compute the profile a node must
//! forward upstream.

use crate::matcher::{CountingMatcher, MatchEngine};
use crate::profile::Profile;
use cosmos_types::{NodeId, Schema, SubscriberId, Tuple};
use std::collections::BTreeMap;

/// Where a routed datagram goes next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Destination {
    /// Forward over the overlay link to a neighbor node.
    Neighbor(NodeId),
    /// Deliver to a locally attached subscriber.
    Local(SubscriberId),
}

/// One forwarding decision for an incoming datagram: the (possibly
/// projected) tuple to send and the schema describing its layout.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardDecision {
    /// The next hop.
    pub dest: Destination,
    /// The tuple to deliver (projected onto the destination's interest).
    pub tuple: Tuple,
    /// The layout of `tuple` (projection of the arriving schema).
    pub schema: Schema,
}

/// The routing state of one CBN node.
#[derive(Debug, Clone)]
pub struct Router {
    node: NodeId,
    neighbor_interest: BTreeMap<NodeId, Profile>,
    local_interest: BTreeMap<SubscriberId, Profile>,
    engine: CountingMatcher<Destination>,
    tuples_routed: u64,
    tuples_dropped: u64,
}

impl Router {
    /// A router for the given node with no interests installed.
    pub fn new(node: NodeId) -> Router {
        Router {
            node,
            neighbor_interest: BTreeMap::new(),
            local_interest: BTreeMap::new(),
            engine: CountingMatcher::new(),
            tuples_routed: 0,
            tuples_dropped: 0,
        }
    }

    /// The node this router belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Replace the merged interest of the subtree behind `neighbor`.
    pub fn set_neighbor_interest(&mut self, neighbor: NodeId, profile: Profile) {
        if profile.is_empty() {
            self.neighbor_interest.remove(&neighbor);
            self.engine.remove(&Destination::Neighbor(neighbor));
        } else {
            self.engine
                .insert(Destination::Neighbor(neighbor), profile.clone());
            self.neighbor_interest.insert(neighbor, profile);
        }
    }

    /// Union a new profile into the interest of `neighbor` (what happens
    /// when one more subscription propagates up through that link).
    pub fn merge_neighbor_interest(&mut self, neighbor: NodeId, profile: &Profile) {
        let merged = match self.neighbor_interest.get(&neighbor) {
            Some(existing) => existing.union(profile),
            None => profile.clone(),
        };
        self.set_neighbor_interest(neighbor, merged);
    }

    /// Drop every neighbor interest (local subscribers stay). Used when
    /// the dissemination tree is reorganized and subscriptions are
    /// re-propagated along the new paths.
    pub fn clear_neighbor_interests(&mut self) {
        let neighbors: Vec<NodeId> = self.neighbor_interest.keys().copied().collect();
        for n in neighbors {
            self.engine.remove(&Destination::Neighbor(n));
        }
        self.neighbor_interest.clear();
    }

    /// Interest of the subtree behind `neighbor`, if any.
    pub fn neighbor_interest(&self, neighbor: NodeId) -> Option<&Profile> {
        self.neighbor_interest.get(&neighbor)
    }

    /// Install the profile of a locally attached subscriber.
    pub fn add_local_subscriber(&mut self, sub: SubscriberId, profile: Profile) {
        self.engine.insert(Destination::Local(sub), profile.clone());
        self.local_interest.insert(sub, profile);
    }

    /// Remove a locally attached subscriber.
    pub fn remove_local_subscriber(&mut self, sub: SubscriberId) {
        self.local_interest.remove(&sub);
        self.engine.remove(&Destination::Local(sub));
    }

    /// The profile of a local subscriber, if installed.
    pub fn local_interest(&self, sub: SubscriberId) -> Option<&Profile> {
        self.local_interest.get(&sub)
    }

    /// Iterate over the locally attached subscribers and their profiles.
    pub fn local_subscribers(&self) -> impl Iterator<Item = (SubscriberId, &Profile)> {
        self.local_interest.iter().map(|(s, p)| (*s, p))
    }

    /// Number of installed interests (neighbors plus locals).
    pub fn interest_count(&self) -> usize {
        self.neighbor_interest.len() + self.local_interest.len()
    }

    /// The union of every interest at this node except the one behind
    /// `exclude` — the profile this node must propagate towards a stream
    /// origin reachable through `exclude` (reverse-path subscription).
    ///
    /// The result is [normalized](Profile::normalized): projections are
    /// widened to the filters' attributes so this node still receives
    /// everything its local filtering needs.
    pub fn aggregated_interest(&self, exclude: Option<NodeId>) -> Profile {
        let mut out = Profile::new();
        for (n, p) in &self.neighbor_interest {
            if Some(*n) != exclude {
                out = out.union(p);
            }
        }
        for p in self.local_interest.values() {
            out = out.union(p);
        }
        out.normalized()
    }

    /// Route an incoming datagram.
    ///
    /// `from` is the neighbor the datagram arrived from (`None` when it
    /// was published locally); it is excluded from the forwarding set.
    /// Each decision carries the tuple projected onto that destination's
    /// attribute set and the projected schema.
    pub fn route(
        &mut self,
        tuple: &Tuple,
        schema: &Schema,
        from: Option<NodeId>,
    ) -> Vec<ForwardDecision> {
        let matched = self.engine.matches(tuple, schema);
        let mut out = Vec::with_capacity(matched.len());
        for dest in matched {
            if let Destination::Neighbor(n) = dest {
                if Some(n) == from {
                    continue;
                }
            }
            let profile = match dest {
                Destination::Neighbor(n) => &self.neighbor_interest[&n],
                Destination::Local(s) => &self.local_interest[&s],
            };
            if let Some((t, s)) = profile.project_tuple(tuple, schema) {
                out.push(ForwardDecision {
                    dest,
                    tuple: t,
                    schema: s,
                });
            }
        }
        if out.is_empty() {
            self.tuples_dropped += 1;
        } else {
            self.tuples_routed += 1;
        }
        out
    }

    /// Datagrams that produced at least one forwarding decision.
    pub fn tuples_routed(&self) -> u64 {
        self.tuples_routed
    }

    /// Datagrams that matched no interest and were dropped here.
    pub fn tuples_dropped(&self) -> u64 {
        self.tuples_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Conjunction;
    use crate::profile::Projection;
    use cosmos_types::{AttrType, Timestamp, Value};

    fn schema() -> Schema {
        Schema::of(&[
            ("id", AttrType::Int),
            ("price", AttrType::Float),
            ("note", AttrType::Str),
        ])
    }

    fn tup(id: i64, price: f64) -> Tuple {
        Tuple::new(
            "S",
            Timestamp(1),
            vec![Value::Int(id), Value::Float(price), Value::str("n")],
        )
    }

    fn interest(lo: i64, hi: i64, attrs: &[&str]) -> Profile {
        let mut f = Conjunction::always();
        f.between("id", lo, hi);
        let mut p = Profile::new();
        let proj = if attrs.is_empty() {
            Projection::All
        } else {
            Projection::of(attrs.iter().copied())
        };
        p.add_interest("S", proj, f);
        p
    }

    #[test]
    fn routes_to_matching_neighbors_and_locals() {
        let mut r = Router::new(NodeId(0));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &[]));
        r.set_neighbor_interest(NodeId(2), interest(20, 30, &[]));
        r.add_local_subscriber(SubscriberId(7), interest(5, 25, &[]));
        let s = schema();

        let d = r.route(&tup(7, 1.0), &s, None);
        let dests: Vec<_> = d.iter().map(|x| x.dest).collect();
        assert_eq!(
            dests,
            vec![
                Destination::Neighbor(NodeId(1)),
                Destination::Local(SubscriberId(7))
            ]
        );

        let d2 = r.route(&tup(25, 1.0), &s, None);
        assert_eq!(d2.len(), 2); // neighbor 2 and local 7
        assert_eq!(r.tuples_routed(), 2);
    }

    #[test]
    fn excludes_arrival_link() {
        let mut r = Router::new(NodeId(0));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &[]));
        r.set_neighbor_interest(NodeId(2), interest(0, 10, &[]));
        let d = r.route(&tup(5, 1.0), &schema(), Some(NodeId(1)));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].dest, Destination::Neighbor(NodeId(2)));
    }

    #[test]
    fn early_projection_narrows_tuples_per_destination() {
        let mut r = Router::new(NodeId(0));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &["id"]));
        r.set_neighbor_interest(NodeId(2), interest(0, 10, &["id", "price"]));
        let s = schema();
        let d = r.route(&tup(5, 2.5), &s, None);
        assert_eq!(d.len(), 2);
        let d1 = d
            .iter()
            .find(|x| x.dest == Destination::Neighbor(NodeId(1)))
            .unwrap();
        assert_eq!(d1.schema.names().collect::<Vec<_>>(), vec!["id"]);
        assert_eq!(d1.tuple.values(), &[Value::Int(5)]);
        let d2 = d
            .iter()
            .find(|x| x.dest == Destination::Neighbor(NodeId(2)))
            .unwrap();
        assert_eq!(d2.schema.names().collect::<Vec<_>>(), vec!["id", "price"]);
        // the original tuple is untouched
        assert!(d2.tuple.size_bytes() < tup(5, 2.5).size_bytes());
    }

    #[test]
    fn non_matching_tuple_is_dropped() {
        let mut r = Router::new(NodeId(0));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &[]));
        let d = r.route(&tup(99, 1.0), &schema(), None);
        assert!(d.is_empty());
        assert_eq!(r.tuples_dropped(), 1);
    }

    #[test]
    fn merge_neighbor_interest_unions() {
        let mut r = Router::new(NodeId(0));
        r.merge_neighbor_interest(NodeId(1), &interest(0, 10, &[]));
        r.merge_neighbor_interest(NodeId(1), &interest(20, 30, &[]));
        let s = schema();
        assert_eq!(r.route(&tup(5, 1.0), &s, None).len(), 1);
        assert_eq!(r.route(&tup(25, 1.0), &s, None).len(), 1);
        assert_eq!(r.route(&tup(15, 1.0), &s, None).len(), 0);
        assert_eq!(r.interest_count(), 1);
    }

    #[test]
    fn aggregated_interest_excludes_upstream() {
        let mut r = Router::new(NodeId(0));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &[]));
        r.set_neighbor_interest(NodeId(2), interest(20, 30, &[]));
        r.add_local_subscriber(SubscriberId(9), interest(50, 60, &[]));
        let up = r.aggregated_interest(Some(NodeId(1)));
        // the subtree behind node 1 is upstream; its interest must not
        // be echoed back to it
        let s = schema();
        assert!(!up.covers_tuple(&tup(5, 0.0), &s));
        assert!(up.covers_tuple(&tup(25, 0.0), &s));
        assert!(up.covers_tuple(&tup(55, 0.0), &s));
        let all = r.aggregated_interest(None);
        assert!(all.covers_tuple(&tup(5, 0.0), &s));
    }

    #[test]
    fn subscriber_removal_stops_delivery() {
        let mut r = Router::new(NodeId(0));
        r.add_local_subscriber(SubscriberId(1), interest(0, 10, &[]));
        assert_eq!(r.route(&tup(5, 0.0), &schema(), None).len(), 1);
        r.remove_local_subscriber(SubscriberId(1));
        assert_eq!(r.route(&tup(5, 0.0), &schema(), None).len(), 0);
        assert!(r.local_interest(SubscriberId(1)).is_none());
    }

    #[test]
    fn setting_empty_profile_clears_neighbor() {
        let mut r = Router::new(NodeId(3));
        assert_eq!(r.node(), NodeId(3));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &[]));
        assert!(r.neighbor_interest(NodeId(1)).is_some());
        r.set_neighbor_interest(NodeId(1), Profile::new());
        assert!(r.neighbor_interest(NodeId(1)).is_none());
        assert_eq!(r.route(&tup(5, 0.0), &schema(), None).len(), 0);
    }
}
