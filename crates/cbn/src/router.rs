//! Per-node CBN routing state.
//!
//! Each overlay node (broker or processor) runs a [`Router`]. The router
//! knows, for every overlay neighbor, the merged data interest of the
//! subtree reachable through that neighbor, plus the interests of locally
//! attached subscribers (users, processors' SPE inputs). Incoming
//! datagrams are matched against these interests and forwarded — after
//! *early projection* onto each destination's attribute set — to every
//! interested next hop except the link they arrived on (reverse-path
//! forwarding on the dissemination tree).
//!
//! Subscription propagation itself (walking the dissemination tree from a
//! subscriber towards a stream's origin, merging profiles at every hop)
//! is orchestrated by the `cosmos` system crate; the router exposes
//! [`Router::aggregated_interest`] to compute the profile a node must
//! forward upstream.
//!
//! # Shard-per-core routing
//!
//! The immutable half of a router — interests and the match engine — is
//! an [`Arc`]'d core shared copy-on-write between the router and any
//! number of worker threads ([`Router::shared`]). The mutable half — the
//! projection-plan cache ([`PlanStore`]) and the counters
//! ([`RouterCounters`]) — is *owned by the caller* on the threaded path:
//! each routing shard keeps its own store and counter block, so the hot
//! path takes no lock whatsoever, and shard state is folded back into
//! the router ([`Router::absorb_counters`]) on the driver thread.
//! Interest mutations go through [`Arc::make_mut`] (cheap when no
//! snapshot is outstanding) and bump [`Router::interest_generation`];
//! shards watch the sum of generations and drop their plan stores when
//! it moves — the same blunt "any mutation clears everything"
//! invalidation contract the serial cache always had.

use crate::matcher::{CountingMatcher, MatchEngine};
use crate::profile::{Profile, ProfileEntry};
use cosmos_types::{NodeId, Schema, SchemaId, StreamName, SubscriberId, Tuple};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Where a routed datagram goes next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Destination {
    /// Forward over the overlay link to a neighbor node.
    Neighbor(NodeId),
    /// Deliver to a locally attached subscriber.
    Local(SubscriberId),
}

/// One forwarding decision for an incoming datagram: the (possibly
/// projected) tuple to send and the schema describing its layout.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardDecision {
    /// The next hop.
    pub dest: Destination,
    /// The tuple to deliver (projected onto the destination's interest).
    pub tuple: Tuple,
    /// The layout of `tuple` (projection of the arriving schema).
    pub schema: Schema,
}

/// All tuples of one routed batch bound for one destination: the
/// projected tuples in arrival order and their shared layout.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchForward {
    /// The next hop.
    pub dest: Destination,
    /// The projected tuples, in batch order.
    pub tuples: Vec<Tuple>,
    /// The layout shared by every tuple in `tuples`.
    pub schema: Schema,
}

/// A compiled projection for one (incoming schema, destination) pair:
/// the per-tuple work is reduced to a bounds-checked column gather (or
/// a refcount bump when the projection is the identity).
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectionPlan {
    /// Gather indices into the incoming tuple; `None` = identity.
    indices: Option<Box<[usize]>>,
    /// The (interned) layout of the projected tuples.
    out_schema: Schema,
}

impl ProjectionPlan {
    /// Compile the projection of one profile entry against a schema.
    fn compile(entry: &ProfileEntry, schema: &Schema) -> ProjectionPlan {
        if !entry.projection.narrows(schema) {
            let out_schema = schema.clone();
            let _ = out_schema.id(); // pre-intern for cheap fan-out keys
            return ProjectionPlan {
                indices: None,
                out_schema,
            };
        }
        let idx = entry.projection.indices(schema);
        let names: Vec<&str> = idx
            .iter()
            .map(|&i| schema.fields()[i].name.as_str())
            .collect();
        let out_schema = schema
            .project(&names)
            .expect("projection indices come from the schema itself");
        let _ = out_schema.id();
        ProjectionPlan {
            indices: Some(idx.into_boxed_slice()),
            out_schema,
        }
    }

    /// The layout this plan produces.
    pub fn out_schema(&self) -> &Schema {
        &self.out_schema
    }

    /// Whether the plan forwards tuples unchanged.
    pub fn is_identity(&self) -> bool {
        self.indices.is_none()
    }
}

/// The router's throughput and plan-cache counters, one block instead of
/// five loose cells so per-shard counters fold into snapshots with a
/// single [`RouterCounters::merge`] and cannot drift field-by-field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterCounters {
    /// Datagrams that produced at least one forwarding decision.
    pub tuples_routed: u64,
    /// Datagrams that matched no interest and were dropped.
    pub tuples_dropped: u64,
    /// Projection-plan cache hits.
    pub plan_hits: u64,
    /// Projection-plan cache misses (each one compiled a plan).
    pub plan_misses: u64,
    /// Narrowing projections actually materialized.
    pub projections_built: u64,
}

impl RouterCounters {
    /// Fold another counter block into this one (shard → router, or
    /// router → deployment totals).
    pub fn merge(&mut self, other: &RouterCounters) {
        self.tuples_routed += other.tuples_routed;
        self.tuples_dropped += other.tuples_dropped;
        self.plan_hits += other.plan_hits;
        self.plan_misses += other.plan_misses;
        self.projections_built += other.projections_built;
    }
}

/// Per-destination compiled plans for one (schema, stream) pair. A
/// linear-scan small-map: a node forwards to a handful of destinations,
/// and `Destination` compares as two integers — cheaper per tuple than
/// hashing into a `HashMap` ever was.
type PlanMap = Vec<(Destination, Option<Arc<ProjectionPlan>>)>;

/// Compiled projection plans of one routing shard, keyed by (incoming
/// schema, stream) and then destination.
///
/// Also a linear-scan structure: the first key component is an interned
/// [`SchemaId`] (an integer compare) and the second an `Arc<str>` whose
/// pointer identity short-circuits the string compare on the hot path.
/// A shard only ever sees the few (schema, stream) pairs routed through
/// it, so the scan beats hashing the stream name per tuple — switching
/// the serial single-tuple path to this store is what put it back ahead
/// of the seed path (see `BENCH_routing.json`).
#[derive(Debug, Clone, Default)]
pub struct PlanStore {
    entries: Vec<PlanEntry>,
}

#[derive(Debug, Clone)]
struct PlanEntry {
    schema: SchemaId,
    stream: StreamName,
    plans: PlanMap,
}

impl PlanStore {
    /// An empty store.
    pub fn new() -> PlanStore {
        PlanStore::default()
    }

    /// Drop every compiled plan (the shard-side half of the invalidation
    /// contract: called whenever the interest generation moves).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of compiled plans currently cached.
    pub fn plan_count(&self) -> usize {
        self.entries.iter().map(|e| e.plans.len()).sum()
    }

    /// The plan map for one (schema, stream) pair, created empty on
    /// first use.
    fn map_mut(&mut self, schema: SchemaId, stream: &StreamName) -> &mut PlanMap {
        let pos = self
            .entries
            .iter()
            .position(|e| e.schema == schema && e.stream == *stream);
        let pos = match pos {
            Some(p) => p,
            None => {
                self.entries.push(PlanEntry {
                    schema,
                    stream: stream.clone(),
                    plans: Vec::new(),
                });
                self.entries.len() - 1
            }
        };
        &mut self.entries[pos].plans
    }
}

/// The immutable half of a router: the installed interests and the match
/// engine built from them. Shared copy-on-write between the owning
/// [`Router`] and worker-thread snapshots ([`SharedRouter`]).
#[derive(Debug, Clone)]
struct RouterCore {
    node: NodeId,
    neighbor_interest: BTreeMap<NodeId, Profile>,
    local_interest: BTreeMap<SubscriberId, Profile>,
    engine: CountingMatcher<Destination>,
}

impl RouterCore {
    /// The profile installed for a destination, if any.
    fn profile_of(&self, dest: Destination) -> Option<&Profile> {
        match dest {
            Destination::Neighbor(n) => self.neighbor_interest.get(&n),
            Destination::Local(s) => self.local_interest.get(&s),
        }
    }

    /// Fetch (compiling on first use) the plan for one destination from
    /// the per-(schema, stream) plan map. `None` means the destination
    /// has no entry for this stream and must be skipped.
    fn lookup_plan(
        &self,
        map: &mut PlanMap,
        counters: &mut RouterCounters,
        dest: Destination,
        stream: &StreamName,
        schema: &Schema,
    ) -> Option<Arc<ProjectionPlan>> {
        if let Some((_, cached)) = map.iter().find(|(d, _)| *d == dest) {
            counters.plan_hits += 1;
            return cached.clone();
        }
        counters.plan_misses += 1;
        let plan = self
            .profile_of(dest)
            .and_then(|p| p.entry(stream))
            .map(|entry| Arc::new(ProjectionPlan::compile(entry, schema)));
        map.push((dest, plan.clone()));
        plan
    }

    /// Project `tuple` through `plan`, sharing one projected tuple among
    /// every destination of this fan-out whose plan produces the same
    /// layout (`memo` lives for one incoming tuple).
    fn apply_plan(
        plan: &ProjectionPlan,
        tuple: &Tuple,
        memo: &mut Vec<(SchemaId, Tuple)>,
        counters: &mut RouterCounters,
    ) -> Tuple {
        if plan.is_identity() {
            return tuple.clone();
        }
        let out_id = plan.out_schema.id();
        if let Some((_, shared)) = memo.iter().find(|(id, _)| *id == out_id) {
            return shared.clone();
        }
        let projected = tuple
            .project_indices(
                plan.indices
                    .as_ref()
                    .expect("non-identity plan has indices"),
            )
            .expect("plan indices are in bounds for the compiled schema");
        counters.projections_built += 1;
        memo.push((out_id, projected.clone()));
        projected
    }

    /// Route one datagram against caller-owned shard state.
    fn route_with(
        &self,
        store: &mut PlanStore,
        counters: &mut RouterCounters,
        plan_caching: bool,
        tuple: &Tuple,
        schema: &Schema,
        from: Option<NodeId>,
    ) -> Vec<ForwardDecision> {
        let matched = self.engine.matches(tuple, schema);
        let mut out = Vec::with_capacity(matched.len());
        if plan_caching {
            let map = store.map_mut(schema.id(), &tuple.stream);
            let mut memo: Vec<(SchemaId, Tuple)> = Vec::new();
            for dest in matched {
                if let Destination::Neighbor(n) = dest {
                    if Some(n) == from {
                        continue;
                    }
                }
                let Some(plan) = self.lookup_plan(map, counters, dest, &tuple.stream, schema)
                else {
                    continue;
                };
                let t = Self::apply_plan(&plan, tuple, &mut memo, counters);
                out.push(ForwardDecision {
                    dest,
                    tuple: t,
                    schema: plan.out_schema.clone(),
                });
            }
        } else {
            // Seed-era path: re-resolve the projection per destination
            // and clone per destination. Kept as the benchmark baseline.
            for dest in matched {
                if let Destination::Neighbor(n) = dest {
                    if Some(n) == from {
                        continue;
                    }
                }
                let profile = self.profile_of(dest).expect("matched dest has a profile");
                if let Some((t, s)) = profile.project_tuple(tuple, schema) {
                    out.push(ForwardDecision {
                        dest,
                        tuple: t,
                        schema: s,
                    });
                }
            }
        }
        if out.is_empty() {
            counters.tuples_dropped += 1;
        } else {
            counters.tuples_routed += 1;
        }
        out
    }

    /// Route a stream-homogeneous batch against caller-owned shard
    /// state, honoring the plan-caching switch: the off position routes
    /// tuple-by-tuple through the seed path and groups by destination,
    /// so A/B runs compare the same shaped work.
    fn route_batch_any(
        &self,
        store: &mut PlanStore,
        counters: &mut RouterCounters,
        plan_caching: bool,
        tuples: &[Tuple],
        schema: &Schema,
        from: Option<NodeId>,
    ) -> Vec<BatchForward> {
        if plan_caching {
            return self.route_batch_with(store, counters, tuples, schema, from);
        }
        let mut by_dest: BTreeMap<Destination, BatchForward> = BTreeMap::new();
        for t in tuples {
            for d in self.route_with(store, counters, false, t, schema, from) {
                by_dest
                    .entry(d.dest)
                    .or_insert_with(|| BatchForward {
                        dest: d.dest,
                        tuples: Vec::new(),
                        schema: d.schema.clone(),
                    })
                    .tuples
                    .push(d.tuple);
            }
        }
        by_dest.into_values().collect()
    }

    /// Route a stream-homogeneous batch against caller-owned shard state.
    fn route_batch_with(
        &self,
        store: &mut PlanStore,
        counters: &mut RouterCounters,
        tuples: &[Tuple],
        schema: &Schema,
        from: Option<NodeId>,
    ) -> Vec<BatchForward> {
        let Some(first) = tuples.first() else {
            return Vec::new();
        };
        debug_assert!(
            tuples.iter().all(|t| t.stream == first.stream),
            "route_batch requires a stream-homogeneous batch"
        );
        let matched = self.engine.matches_batch(tuples, schema);
        let map = store.map_mut(schema.id(), &first.stream);
        let mut by_dest: BTreeMap<Destination, BatchForward> = BTreeMap::new();
        let mut memo: Vec<(SchemaId, Tuple)> = Vec::new();
        for (tuple, dests) in tuples.iter().zip(&matched) {
            memo.clear();
            let mut forwarded = false;
            for &dest in dests {
                if let Destination::Neighbor(n) = dest {
                    if Some(n) == from {
                        continue;
                    }
                }
                let Some(plan) = self.lookup_plan(map, counters, dest, &first.stream, schema)
                else {
                    continue;
                };
                let t = Self::apply_plan(&plan, tuple, &mut memo, counters);
                by_dest
                    .entry(dest)
                    .or_insert_with(|| BatchForward {
                        dest,
                        tuples: Vec::new(),
                        schema: plan.out_schema.clone(),
                    })
                    .tuples
                    .push(t);
                forwarded = true;
            }
            if forwarded {
                counters.tuples_routed += 1;
            } else {
                counters.tuples_dropped += 1;
            }
        }
        by_dest.into_values().collect()
    }
}

/// A thread-shareable snapshot of one router's interest state, taken
/// with [`Router::shared`]. Routing through a snapshot uses shard-owned
/// [`PlanStore`] and [`RouterCounters`] state — no lock, no interior
/// mutability — and is observably identical to routing through the
/// router itself at the same interest generation.
#[derive(Debug, Clone)]
pub struct SharedRouter {
    core: Arc<RouterCore>,
    generation: u64,
    plan_caching: bool,
}

impl SharedRouter {
    /// The node the snapshot was taken from.
    pub fn node(&self) -> NodeId {
        self.core.node
    }

    /// The interest generation the snapshot was taken at. A shard whose
    /// store was filled at a different generation must
    /// [clear](PlanStore::clear) it before routing through this
    /// snapshot.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Route a stream-homogeneous batch against shard-owned state.
    /// Identical decisions, counter movements, and plan-store churn as
    /// [`Router::route_batch`] on the snapshotted router.
    pub fn route_batch_with(
        &self,
        store: &mut PlanStore,
        counters: &mut RouterCounters,
        tuples: &[Tuple],
        schema: &Schema,
        from: Option<NodeId>,
    ) -> Vec<BatchForward> {
        self.core
            .route_batch_any(store, counters, self.plan_caching, tuples, schema, from)
    }
}

/// The routing state of one CBN node.
#[derive(Debug, Clone)]
pub struct Router {
    /// Interests + match engine, shared copy-on-write with worker
    /// snapshots; mutated through [`Arc::make_mut`].
    core: Arc<RouterCore>,
    /// Compiled projection plans of the router's own (serial) shard.
    /// Cleared whenever the installed interests change (see
    /// [`Router::interest_generation`]).
    plans: RefCell<PlanStore>,
    /// Bumped on every interest mutation; plan caches keyed off a stale
    /// generation are unreachable because the cache is cleared in the
    /// same call (and threaded shards clear theirs when the generation
    /// sum they watch moves).
    interest_gen: u64,
    plan_caching: bool,
    counters: Cell<RouterCounters>,
}

impl Router {
    /// A router for the given node with no interests installed.
    pub fn new(node: NodeId) -> Router {
        Router {
            core: Arc::new(RouterCore {
                node,
                neighbor_interest: BTreeMap::new(),
                local_interest: BTreeMap::new(),
                engine: CountingMatcher::new(),
            }),
            plans: RefCell::new(PlanStore::new()),
            interest_gen: 0,
            plan_caching: true,
            counters: Cell::new(RouterCounters::default()),
        }
    }

    /// The mutable core (copy-on-write: clones only while a
    /// [`SharedRouter`] snapshot is outstanding).
    fn core_mut(&mut self) -> &mut RouterCore {
        Arc::make_mut(&mut self.core)
    }

    /// Drop every compiled plan and stamp a new interest generation.
    /// Called by every interest mutator — the invalidation contract is
    /// "any change to any installed profile clears the whole cache".
    ///
    /// `cosmos-det check` model-checks this contract as the `Mutate`
    /// action (`cosmos_det::model`): eliding the generation bump is the
    /// `--inject-skip-bump` canary, caught by the `stale-core` property;
    /// eliding the clear is `--inject-skip-invalidate`.
    fn invalidate_plans(&mut self) {
        self.interest_gen += 1;
        self.plans.get_mut().clear();
    }

    /// A copy-on-write snapshot of this router's interest state for a
    /// worker thread. Cheap (two refcount bumps) unless an interest
    /// mutation follows while the snapshot is alive.
    pub fn shared(&self) -> SharedRouter {
        SharedRouter {
            core: Arc::clone(&self.core),
            generation: self.interest_gen,
            plan_caching: self.plan_caching,
        }
    }

    /// The node this router belongs to.
    pub fn node(&self) -> NodeId {
        self.core.node
    }

    /// Replace the merged interest of the subtree behind `neighbor`.
    pub fn set_neighbor_interest(&mut self, neighbor: NodeId, profile: Profile) {
        self.invalidate_plans();
        let core = self.core_mut();
        if profile.is_empty() {
            core.neighbor_interest.remove(&neighbor);
            core.engine.remove(&Destination::Neighbor(neighbor));
        } else {
            core.engine
                .insert(Destination::Neighbor(neighbor), profile.clone());
            core.neighbor_interest.insert(neighbor, profile);
        }
    }

    /// Union a new profile into the interest of `neighbor` (what happens
    /// when one more subscription propagates up through that link).
    pub fn merge_neighbor_interest(&mut self, neighbor: NodeId, profile: &Profile) {
        let merged = match self.core.neighbor_interest.get(&neighbor) {
            Some(existing) => existing.union(profile),
            None => profile.clone(),
        };
        self.set_neighbor_interest(neighbor, merged);
    }

    /// Drop every neighbor interest (local subscribers stay). Used when
    /// the dissemination tree is reorganized and subscriptions are
    /// re-propagated along the new paths.
    pub fn clear_neighbor_interests(&mut self) {
        self.invalidate_plans();
        let core = self.core_mut();
        let neighbors: Vec<NodeId> = core.neighbor_interest.keys().copied().collect();
        for n in neighbors {
            core.engine.remove(&Destination::Neighbor(n));
        }
        core.neighbor_interest.clear();
    }

    /// Interest of the subtree behind `neighbor`, if any.
    pub fn neighbor_interest(&self, neighbor: NodeId) -> Option<&Profile> {
        self.core.neighbor_interest.get(&neighbor)
    }

    /// All neighbor interests, in neighbor order (introspection for
    /// whole-network snapshots — see `cosmos-verify`).
    pub fn neighbor_interests(&self) -> impl Iterator<Item = (NodeId, &Profile)> {
        self.core.neighbor_interest.iter().map(|(n, p)| (*n, p))
    }

    /// Install the profile of a locally attached subscriber.
    pub fn add_local_subscriber(&mut self, sub: SubscriberId, profile: Profile) {
        self.invalidate_plans();
        let core = self.core_mut();
        core.engine.insert(Destination::Local(sub), profile.clone());
        core.local_interest.insert(sub, profile);
    }

    /// Remove a locally attached subscriber.
    pub fn remove_local_subscriber(&mut self, sub: SubscriberId) {
        self.invalidate_plans();
        let core = self.core_mut();
        core.local_interest.remove(&sub);
        core.engine.remove(&Destination::Local(sub));
    }

    /// The profile of a local subscriber, if installed.
    pub fn local_interest(&self, sub: SubscriberId) -> Option<&Profile> {
        self.core.local_interest.get(&sub)
    }

    /// Iterate over the locally attached subscribers and their profiles.
    pub fn local_subscribers(&self) -> impl Iterator<Item = (SubscriberId, &Profile)> {
        self.core.local_interest.iter().map(|(s, p)| (*s, p))
    }

    /// Number of installed interests (neighbors plus locals).
    pub fn interest_count(&self) -> usize {
        self.core.neighbor_interest.len() + self.core.local_interest.len()
    }

    /// The union of every interest at this node except the one behind
    /// `exclude` — the profile this node must propagate towards a stream
    /// origin reachable through `exclude` (reverse-path subscription).
    ///
    /// The result is [normalized](Profile::normalized): projections are
    /// widened to the filters' attributes so this node still receives
    /// everything its local filtering needs.
    pub fn aggregated_interest(&self, exclude: Option<NodeId>) -> Profile {
        let mut out = Profile::new();
        for (n, p) in &self.core.neighbor_interest {
            if Some(*n) != exclude {
                out = out.union(p);
            }
        }
        for p in self.core.local_interest.values() {
            out = out.union(p);
        }
        out.normalized()
    }

    /// Route an incoming datagram.
    ///
    /// `from` is the neighbor the datagram arrived from (`None` when it
    /// was published locally); it is excluded from the forwarding set.
    /// Each decision carries the tuple projected onto that destination's
    /// attribute set and the projected schema.
    pub fn route(
        &self,
        tuple: &Tuple,
        schema: &Schema,
        from: Option<NodeId>,
    ) -> Vec<ForwardDecision> {
        let mut counters = self.counters.get();
        let out = self.core.route_with(
            &mut self.plans.borrow_mut(),
            &mut counters,
            self.plan_caching,
            tuple,
            schema,
            from,
        );
        self.counters.set(counters);
        out
    }

    /// Route a *stream-homogeneous* batch (every tuple on the same
    /// stream, laid out by `schema`) through this node together.
    ///
    /// Equivalent to calling [`Router::route`] per tuple and grouping
    /// the decisions by destination — per-destination tuple order is
    /// batch order — but the match-index partition is looked up once,
    /// each projection plan once, and the accounting amortized.
    pub fn route_batch(
        &self,
        tuples: &[Tuple],
        schema: &Schema,
        from: Option<NodeId>,
    ) -> Vec<BatchForward> {
        let mut counters = self.counters.get();
        let out = self.core.route_batch_any(
            &mut self.plans.borrow_mut(),
            &mut counters,
            self.plan_caching,
            tuples,
            schema,
            from,
        );
        self.counters.set(counters);
        out
    }

    /// Route a punctuation (watermark datagram) for `stream`.
    ///
    /// Punctuations follow the *interest set*, not the filters: every
    /// destination holding any entry for the stream receives the
    /// watermark, because a promise about future timestamps is
    /// independent of which attribute values a subscriber filters on.
    /// The arrival link is excluded (reverse-path forwarding, exactly
    /// like data). Destinations come out in deterministic
    /// neighbors-then-locals order.
    pub fn route_punctuation(&self, stream: &StreamName, from: Option<NodeId>) -> Vec<Destination> {
        let mut out = Vec::new();
        for (n, p) in &self.core.neighbor_interest {
            if Some(*n) != from && p.entry(stream).is_some() {
                out.push(Destination::Neighbor(*n));
            }
        }
        for (s, p) in &self.core.local_interest {
            if p.entry(stream).is_some() {
                out.push(Destination::Local(*s));
            }
        }
        out
    }

    /// Drop every interest entry for `stream` — neighbor and local —
    /// shrinking the match engine and clearing the plan cache. Called
    /// when a stream is closed by its final watermark: no datagram of it
    /// will ever arrive again, so the routing state is dead weight.
    /// Destinations whose whole profile becomes empty are removed.
    pub fn prune_stream(&mut self, stream: &StreamName) {
        let neighbors: Vec<NodeId> = self
            .core
            .neighbor_interest
            .iter()
            .filter(|(_, p)| p.entry(stream).is_some())
            .map(|(n, _)| *n)
            .collect();
        for n in neighbors {
            let mut p = self.core.neighbor_interest[&n].clone();
            p.remove_entry(stream);
            self.set_neighbor_interest(n, p);
        }
        let locals: Vec<SubscriberId> = self
            .core
            .local_interest
            .iter()
            .filter(|(_, p)| p.entry(stream).is_some())
            .map(|(s, _)| *s)
            .collect();
        for s in locals {
            let mut p = self.core.local_interest[&s].clone();
            p.remove_entry(stream);
            if p.is_empty() {
                self.remove_local_subscriber(s);
            } else {
                self.add_local_subscriber(s, p);
            }
        }
    }

    /// Enable or disable the projection-plan cache (and with it the
    /// fan-out sharing of projected tuples). Disabling restores the
    /// seed-era per-destination projection path; used for A/B
    /// benchmarking, on by default.
    pub fn set_plan_caching(&mut self, enabled: bool) {
        self.plan_caching = enabled;
        self.invalidate_plans();
    }

    /// Generation stamp of the installed interests; moves on every
    /// interest mutation, at which point the plan cache is empty.
    pub fn interest_generation(&self) -> u64 {
        self.interest_gen
    }

    /// Number of compiled plans currently cached in the router's own
    /// (serial) store. Threaded shards own their stores; the driver
    /// accounts them separately.
    pub fn cached_plan_count(&self) -> usize {
        self.plans.borrow().plan_count()
    }

    /// The counter block (throughput + plan-cache counters).
    pub fn counters(&self) -> RouterCounters {
        self.counters.get()
    }

    /// Fold a shard's counter delta into this router — how per-shard
    /// counters from worker threads re-enter the deployment totals
    /// without field-by-field drift.
    pub fn absorb_counters(&self, delta: &RouterCounters) {
        let mut c = self.counters.get();
        c.merge(delta);
        self.counters.set(c);
    }

    /// `(hits, misses)` of the projection-plan cache.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        let c = self.counters.get();
        (c.plan_hits, c.plan_misses)
    }

    /// Narrowing projections actually materialized (fan-out sharing and
    /// plan identity both avoid builds this counter would otherwise see).
    pub fn projections_built(&self) -> u64 {
        self.counters.get().projections_built
    }

    /// Datagrams that produced at least one forwarding decision.
    pub fn tuples_routed(&self) -> u64 {
        self.counters.get().tuples_routed
    }

    /// Datagrams that matched no interest and were dropped here.
    pub fn tuples_dropped(&self) -> u64 {
        self.counters.get().tuples_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Conjunction;
    use crate::profile::Projection;
    use cosmos_types::{AttrType, Timestamp, Value};

    fn schema() -> Schema {
        Schema::of(&[
            ("id", AttrType::Int),
            ("price", AttrType::Float),
            ("note", AttrType::Str),
        ])
    }

    fn tup(id: i64, price: f64) -> Tuple {
        Tuple::new(
            "S",
            Timestamp(1),
            vec![Value::Int(id), Value::Float(price), Value::str("n")],
        )
    }

    fn interest(lo: i64, hi: i64, attrs: &[&str]) -> Profile {
        let mut f = Conjunction::always();
        f.between("id", lo, hi);
        let mut p = Profile::new();
        let proj = if attrs.is_empty() {
            Projection::All
        } else {
            Projection::of(attrs.iter().copied())
        };
        p.add_interest("S", proj, f);
        p
    }

    #[test]
    fn routes_to_matching_neighbors_and_locals() {
        let mut r = Router::new(NodeId(0));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &[]));
        r.set_neighbor_interest(NodeId(2), interest(20, 30, &[]));
        r.add_local_subscriber(SubscriberId(7), interest(5, 25, &[]));
        let s = schema();

        let d = r.route(&tup(7, 1.0), &s, None);
        let dests: Vec<_> = d.iter().map(|x| x.dest).collect();
        assert_eq!(
            dests,
            vec![
                Destination::Neighbor(NodeId(1)),
                Destination::Local(SubscriberId(7))
            ]
        );

        let d2 = r.route(&tup(25, 1.0), &s, None);
        assert_eq!(d2.len(), 2); // neighbor 2 and local 7
        assert_eq!(r.tuples_routed(), 2);
    }

    #[test]
    fn excludes_arrival_link() {
        let mut r = Router::new(NodeId(0));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &[]));
        r.set_neighbor_interest(NodeId(2), interest(0, 10, &[]));
        let d = r.route(&tup(5, 1.0), &schema(), Some(NodeId(1)));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].dest, Destination::Neighbor(NodeId(2)));
    }

    #[test]
    fn early_projection_narrows_tuples_per_destination() {
        let mut r = Router::new(NodeId(0));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &["id"]));
        r.set_neighbor_interest(NodeId(2), interest(0, 10, &["id", "price"]));
        let s = schema();
        let d = r.route(&tup(5, 2.5), &s, None);
        assert_eq!(d.len(), 2);
        let d1 = d
            .iter()
            .find(|x| x.dest == Destination::Neighbor(NodeId(1)))
            .unwrap();
        assert_eq!(d1.schema.names().collect::<Vec<_>>(), vec!["id"]);
        assert_eq!(d1.tuple.values(), &[Value::Int(5)]);
        let d2 = d
            .iter()
            .find(|x| x.dest == Destination::Neighbor(NodeId(2)))
            .unwrap();
        assert_eq!(d2.schema.names().collect::<Vec<_>>(), vec!["id", "price"]);
        // the original tuple is untouched
        assert!(d2.tuple.size_bytes() < tup(5, 2.5).size_bytes());
    }

    #[test]
    fn non_matching_tuple_is_dropped() {
        let mut r = Router::new(NodeId(0));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &[]));
        let d = r.route(&tup(99, 1.0), &schema(), None);
        assert!(d.is_empty());
        assert_eq!(r.tuples_dropped(), 1);
    }

    #[test]
    fn merge_neighbor_interest_unions() {
        let mut r = Router::new(NodeId(0));
        r.merge_neighbor_interest(NodeId(1), &interest(0, 10, &[]));
        r.merge_neighbor_interest(NodeId(1), &interest(20, 30, &[]));
        let s = schema();
        assert_eq!(r.route(&tup(5, 1.0), &s, None).len(), 1);
        assert_eq!(r.route(&tup(25, 1.0), &s, None).len(), 1);
        assert_eq!(r.route(&tup(15, 1.0), &s, None).len(), 0);
        assert_eq!(r.interest_count(), 1);
    }

    #[test]
    fn aggregated_interest_excludes_upstream() {
        let mut r = Router::new(NodeId(0));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &[]));
        r.set_neighbor_interest(NodeId(2), interest(20, 30, &[]));
        r.add_local_subscriber(SubscriberId(9), interest(50, 60, &[]));
        let up = r.aggregated_interest(Some(NodeId(1)));
        // the subtree behind node 1 is upstream; its interest must not
        // be echoed back to it
        let s = schema();
        assert!(!up.covers_tuple(&tup(5, 0.0), &s));
        assert!(up.covers_tuple(&tup(25, 0.0), &s));
        assert!(up.covers_tuple(&tup(55, 0.0), &s));
        let all = r.aggregated_interest(None);
        assert!(all.covers_tuple(&tup(5, 0.0), &s));
    }

    #[test]
    fn subscriber_removal_stops_delivery() {
        let mut r = Router::new(NodeId(0));
        r.add_local_subscriber(SubscriberId(1), interest(0, 10, &[]));
        assert_eq!(r.route(&tup(5, 0.0), &schema(), None).len(), 1);
        r.remove_local_subscriber(SubscriberId(1));
        assert_eq!(r.route(&tup(5, 0.0), &schema(), None).len(), 0);
        assert!(r.local_interest(SubscriberId(1)).is_none());
    }

    #[test]
    fn plans_are_cached_and_invalidated_on_churn() {
        let mut r = Router::new(NodeId(0));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &["id"]));
        r.add_local_subscriber(SubscriberId(7), interest(0, 10, &[]));
        let g0 = r.interest_generation();
        let s = schema();
        assert_eq!(r.cached_plan_count(), 0);

        r.route(&tup(5, 1.0), &s, None);
        let (h1, m1) = r.plan_cache_stats();
        assert_eq!((h1, m1), (0, 2), "first tuple compiles both plans");
        assert_eq!(r.cached_plan_count(), 2);

        r.route(&tup(6, 1.0), &s, None);
        let (h2, m2) = r.plan_cache_stats();
        assert_eq!((h2, m2), (2, 2), "second tuple hits both plans");

        // Any interest mutation clears the cache and moves the stamp.
        r.add_local_subscriber(SubscriberId(8), interest(0, 10, &[]));
        assert!(r.interest_generation() > g0);
        assert_eq!(r.cached_plan_count(), 0);
        r.route(&tup(5, 1.0), &s, None);
        assert_eq!(r.cached_plan_count(), 3, "plans recompiled after churn");

        r.remove_local_subscriber(SubscriberId(8));
        assert_eq!(r.cached_plan_count(), 0);
        let g1 = r.interest_generation();
        r.clear_neighbor_interests();
        assert!(r.interest_generation() > g1);
    }

    #[test]
    fn identical_projections_share_one_projected_tuple() {
        let mut r = Router::new(NodeId(0));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &["id"]));
        r.set_neighbor_interest(NodeId(2), interest(0, 10, &["id"]));
        r.add_local_subscriber(SubscriberId(7), interest(0, 10, &["id"]));
        let s = schema();
        let d = r.route(&tup(5, 1.0), &s, None);
        assert_eq!(d.len(), 3);
        assert_eq!(
            r.projections_built(),
            1,
            "one gather serves all three destinations"
        );
        assert!(d.windows(2).all(|w| w[0].tuple == w[1].tuple));
    }

    #[test]
    fn route_batch_agrees_with_single_routing() {
        let mut r = Router::new(NodeId(0));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &["id"]));
        r.set_neighbor_interest(NodeId(2), interest(5, 25, &[]));
        r.add_local_subscriber(SubscriberId(7), interest(0, 30, &["id", "price"]));
        let s = schema();
        let batch: Vec<Tuple> = (0..40).map(|i| tup(i % 35, i as f64)).collect();

        // Reference: per-tuple routing on the seed path, grouped by dest.
        let mut reference = r.clone();
        reference.set_plan_caching(false);
        let mut grouped: std::collections::BTreeMap<Destination, (Vec<Tuple>, Schema)> =
            std::collections::BTreeMap::new();
        for t in &batch {
            for d in reference.route(t, &s, Some(NodeId(2))) {
                grouped
                    .entry(d.dest)
                    .or_insert_with(|| (Vec::new(), d.schema.clone()))
                    .0
                    .push(d.tuple);
            }
        }

        let batched = r.route_batch(&batch, &s, Some(NodeId(2)));
        assert_eq!(batched.len(), grouped.len());
        for bf in &batched {
            let (ref_tuples, ref_schema) = &grouped[&bf.dest];
            assert_eq!(&bf.tuples, ref_tuples, "dest {:?}", bf.dest);
            assert_eq!(&bf.schema, ref_schema);
        }
        assert_eq!(reference.tuples_routed(), r.tuples_routed());
        assert_eq!(reference.tuples_dropped(), r.tuples_dropped());
        assert!(r.route_batch(&[], &s, None).is_empty());
    }

    #[test]
    fn punctuations_follow_interest_not_filters() {
        let mut r = Router::new(NodeId(0));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &[]));
        r.add_local_subscriber(SubscriberId(7), interest(90, 99, &["id"]));
        let s: StreamName = "S".into();
        // Both destinations hold an entry for S; filters are irrelevant.
        assert_eq!(
            r.route_punctuation(&s, None),
            vec![
                Destination::Neighbor(NodeId(1)),
                Destination::Local(SubscriberId(7))
            ]
        );
        // The arrival link is excluded, and unknown streams go nowhere.
        assert_eq!(
            r.route_punctuation(&s, Some(NodeId(1))),
            vec![Destination::Local(SubscriberId(7))]
        );
        assert!(r.route_punctuation(&"T".into(), None).is_empty());
    }

    #[test]
    fn prune_stream_drops_interest_and_plans() {
        let mut r = Router::new(NodeId(0));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &[]));
        let mut multi = interest(0, 10, &[]);
        multi.add_interest("T", Projection::All, Conjunction::always());
        r.add_local_subscriber(SubscriberId(7), multi);
        let s = schema();
        r.route(&tup(5, 1.0), &s, None);
        assert!(r.cached_plan_count() > 0);

        r.prune_stream(&"S".into());
        // Neighbor 1's profile became empty and was removed entirely;
        // subscriber 7 keeps its interest in T.
        assert!(r.neighbor_interest(NodeId(1)).is_none());
        assert!(r.route(&tup(5, 1.0), &s, None).is_empty());
        assert!(r.route_punctuation(&"S".into(), None).is_empty());
        assert_eq!(r.cached_plan_count(), 0);
        let p7 = r.local_interest(SubscriberId(7)).unwrap();
        assert!(p7.entry(&"T".into()).is_some());
        assert!(p7.entry(&"S".into()).is_none());
    }

    #[test]
    fn setting_empty_profile_clears_neighbor() {
        let mut r = Router::new(NodeId(3));
        assert_eq!(r.node(), NodeId(3));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &[]));
        assert!(r.neighbor_interest(NodeId(1)).is_some());
        r.set_neighbor_interest(NodeId(1), Profile::new());
        assert!(r.neighbor_interest(NodeId(1)).is_none());
        assert_eq!(r.route(&tup(5, 0.0), &schema(), None).len(), 0);
    }

    #[test]
    fn router_counters_merge_folds_every_field() {
        let mut a = RouterCounters {
            tuples_routed: 1,
            tuples_dropped: 2,
            plan_hits: 3,
            plan_misses: 4,
            projections_built: 5,
        };
        let b = RouterCounters {
            tuples_routed: 10,
            tuples_dropped: 20,
            plan_hits: 30,
            plan_misses: 40,
            projections_built: 50,
        };
        a.merge(&b);
        assert_eq!(
            a,
            RouterCounters {
                tuples_routed: 11,
                tuples_dropped: 22,
                plan_hits: 33,
                plan_misses: 44,
                projections_built: 55,
            }
        );
        let mut r = Router::new(NodeId(0));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &[]));
        r.route(&tup(5, 1.0), &schema(), None);
        r.absorb_counters(&b);
        assert_eq!(r.tuples_routed(), 11);
        assert_eq!(r.plan_cache_stats(), (30, 41));
    }

    #[test]
    fn shared_snapshot_routes_identically_with_shard_state() {
        let mut r = Router::new(NodeId(0));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &["id"]));
        r.add_local_subscriber(SubscriberId(7), interest(0, 30, &[]));
        let s = schema();
        let batch: Vec<Tuple> = (0..20).map(|i| tup(i % 15, i as f64)).collect();

        let shared = r.shared();
        let mut store = PlanStore::new();
        let mut counters = RouterCounters::default();
        let via_shard = shared.route_batch_with(&mut store, &mut counters, &batch, &s, None);
        let via_router = r.route_batch(&batch, &s, None);
        assert_eq!(via_shard, via_router);
        assert_eq!(counters, r.counters());
        assert_eq!(store.plan_count(), r.cached_plan_count());
    }

    /// The cross-thread half of the invalidation contract: a shard that
    /// keeps routing through a stale plan store after an interest
    /// mutation on another shard serves stale plans; the generation
    /// stamp makes the staleness observable on the other thread, and
    /// clearing the store (what the driver's epoch watch does) restores
    /// agreement with the mutated router.
    #[test]
    fn interest_mutation_is_visible_across_threads_via_generation() {
        let mut r = Router::new(NodeId(0));
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &["id"]));
        let s = schema();

        // Shard thread A: route through a snapshot, fill its own store.
        let snap_a = r.shared();
        let schema_a = s.clone();
        let (store, counters, narrow) = std::thread::spawn(move || {
            let mut store = PlanStore::new();
            let mut counters = RouterCounters::default();
            let fwd =
                snap_a.route_batch_with(&mut store, &mut counters, &[tup(5, 1.0)], &schema_a, None);
            (store, counters, fwd[0].tuples[0].values().to_vec())
        })
        .join()
        .unwrap();
        assert_eq!(narrow, vec![Value::Int(5)], "plan projects onto [id]");
        assert_eq!(counters.plan_misses, 1);

        // Driver thread: mutate the interest (widen the projection).
        // The snapshot the shard held is copy-on-write — the mutation
        // lands in a fresh core and bumps the generation.
        let gen_before = r.interest_generation();
        r.set_neighbor_interest(NodeId(1), interest(0, 10, &["id", "price"]));
        assert!(r.interest_generation() > gen_before);

        // Shard thread B at the new generation. Routing with the STALE
        // store serves the stale narrow plan — exactly the bug the
        // generation watch exists to prevent...
        let snap_b = r.shared();
        assert!(snap_b.generation() > gen_before);
        let schema_b = s.clone();
        let (mut store, stale, fresh) = std::thread::spawn(move || {
            let mut stale_store = store;
            let mut c = RouterCounters::default();
            let stale =
                snap_b.route_batch_with(&mut stale_store, &mut c, &[tup(5, 2.5)], &schema_b, None);
            // ...so a shard observing the generation move must clear.
            stale_store.clear();
            let fresh =
                snap_b.route_batch_with(&mut stale_store, &mut c, &[tup(5, 2.5)], &schema_b, None);
            (stale_store, stale, fresh)
        })
        .join()
        .unwrap();
        assert_eq!(
            stale[0].tuples[0].values(),
            &[Value::Int(5)],
            "stale store still serves the pre-mutation plan"
        );
        assert_eq!(
            fresh[0].tuples[0].values(),
            &[Value::Int(5), Value::Float(2.5)],
            "cleared store recompiles against the mutated interest"
        );
        // And the shard's post-clear state agrees with the router's own.
        store.clear();
        let mut c = RouterCounters::default();
        let shard = r
            .shared()
            .route_batch_with(&mut store, &mut c, &[tup(5, 2.5)], &s, None);
        let own = r.route_batch(&[tup(5, 2.5)], &s, None);
        assert_eq!(shard, own);
    }

    /// `SharedRouter` and its shard state are Send + Sync by
    /// construction — the compile-time guarantee the worker pool needs.
    #[test]
    fn shared_router_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedRouter>();
        assert_send_sync::<PlanStore>();
        assert_send_sync::<RouterCounters>();
    }
}
