//! Data-interest profiles `π = ⟨S, P, F⟩` (Section 3.1 of the paper).

use crate::predicate::Conjunction;
use cosmos_types::{Schema, StreamName, Tuple};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The projection attribute set `P` for one stream of a profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Projection {
    /// Every attribute of the stream.
    All,
    /// Only the named attributes.
    Attrs(BTreeSet<String>),
}

impl Projection {
    /// Projection of the named attributes.
    pub fn of<I, S>(names: I) -> Projection
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Projection::Attrs(names.into_iter().map(Into::into).collect())
    }

    /// Whether the projection retains the named attribute.
    pub fn contains(&self, name: &str) -> bool {
        match self {
            Projection::All => true,
            Projection::Attrs(set) => set.contains(name),
        }
    }

    /// Union of two projections.
    pub fn union(&self, other: &Projection) -> Projection {
        match (self, other) {
            (Projection::All, _) | (_, Projection::All) => Projection::All,
            (Projection::Attrs(a), Projection::Attrs(b)) => {
                Projection::Attrs(a.union(b).cloned().collect())
            }
        }
    }

    /// Whether `self` retains at least the attributes `other` retains.
    pub fn covers(&self, other: &Projection) -> bool {
        match (self, other) {
            (Projection::All, _) => true,
            (Projection::Attrs(_), Projection::All) => false,
            (Projection::Attrs(a), Projection::Attrs(b)) => b.is_subset(a),
        }
    }

    /// Extend the projection with the given attribute names.
    pub fn extend<I, S>(&mut self, names: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        if let Projection::Attrs(set) = self {
            set.extend(names.into_iter().map(Into::into));
        }
    }

    /// The positional indices of the retained attributes under `schema`,
    /// in schema order. Attributes absent from the schema are skipped.
    pub fn indices(&self, schema: &Schema) -> Vec<usize> {
        match self {
            Projection::All => (0..schema.arity()).collect(),
            Projection::Attrs(set) => schema
                .fields()
                .iter()
                .enumerate()
                .filter(|(_, f)| set.contains(&f.name))
                .map(|(i, _)| i)
                .collect(),
        }
    }

    /// Whether applying this projection to `schema` would change it.
    pub fn narrows(&self, schema: &Schema) -> bool {
        match self {
            Projection::All => false,
            Projection::Attrs(set) => schema.fields().iter().any(|f| !set.contains(&f.name)),
        }
    }
}

impl fmt::Display for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Projection::All => f.write_str("*"),
            Projection::Attrs(set) => {
                write!(f, "{{")?;
                for (i, a) in set.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    f.write_str(a)?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Interest in a single stream: a projection and a disjunction of
/// conjunctive filters. **An empty filter list accepts every datagram**
/// of the stream (this is how the paper's "profile without filter
/// predicates" for result-stream retrieval is expressed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileEntry {
    /// The projection attribute set `P` for this stream.
    pub projection: Projection,
    /// Disjunction of filters `F` for this stream; empty = accept all.
    pub filters: Vec<Conjunction>,
}

impl ProfileEntry {
    /// Accept-everything entry.
    pub fn all() -> ProfileEntry {
        ProfileEntry {
            projection: Projection::All,
            filters: vec![],
        }
    }

    /// Whether a value lookup satisfies the entry (any filter passes,
    /// or there are no filters).
    pub fn accepts_with<'a, F>(&self, lookup: F) -> bool
    where
        F: Fn(&str) -> Option<&'a cosmos_types::Value> + Copy,
    {
        self.filters.is_empty() || self.filters.iter().any(|c| c.satisfies_with(lookup))
    }

    /// Whether the entry accepts the tuple under the schema.
    pub fn accepts(&self, tuple: &Tuple, schema: &Schema) -> bool {
        self.accepts_with(|name| tuple.get_by_name(schema, name))
    }

    /// Whether `self` accepts every tuple `other` accepts *and* retains
    /// every attribute `other` retains (conservative covering check:
    /// every filter of `other` must be implied by some filter of `self`).
    pub fn covers(&self, other: &ProfileEntry) -> bool {
        if !self.projection.covers(&other.projection) {
            return false;
        }
        if self.filters.is_empty() {
            return true; // accept-all covers anything
        }
        if other.filters.is_empty() {
            return false; // other accepts all but self filters
        }
        other
            .filters
            .iter()
            .all(|fo| self.filters.iter().any(|fs| fo.implies(fs)))
    }

    /// Union of interests: widen the projection and take the disjunction
    /// of filter sets, pruning filters implied by another filter.
    pub fn union(&self, other: &ProfileEntry) -> ProfileEntry {
        let projection = self.projection.union(&other.projection);
        if self.filters.is_empty() || other.filters.is_empty() {
            return ProfileEntry {
                projection,
                filters: vec![],
            };
        }
        let mut filters: Vec<Conjunction> = Vec::new();
        'outer: for cand in self.filters.iter().chain(&other.filters) {
            if cand.is_unsat() {
                continue;
            }
            // Drop `cand` if an existing filter already subsumes it;
            // drop existing filters subsumed by `cand`.
            for kept in &filters {
                if cand.implies(kept) {
                    continue 'outer;
                }
            }
            filters.retain(|kept| !kept.implies(cand));
            filters.push(cand.clone());
        }
        if filters.is_empty() {
            // Every filter of both operands was unsatisfiable. An empty
            // list means "accept all", which would *flip* the semantics;
            // keep one unsatisfiable filter to preserve "match nothing".
            let unsat = self
                .filters
                .first()
                .or_else(|| other.filters.first())
                .cloned()
                .expect("both operands non-empty here");
            filters.push(unsat);
        }
        ProfileEntry {
            projection,
            filters,
        }
    }

    /// Ensure the projection retains every attribute referenced by a
    /// filter, so that in-network filtering downstream of an early
    /// projection still sees the attributes it needs.
    pub fn normalize(&mut self) {
        if let Projection::Attrs(set) = &mut self.projection {
            for f in &self.filters {
                for a in f.referenced_attrs() {
                    set.insert(a);
                }
            }
        }
    }
}

/// A data-interest profile `π = ⟨S, P, F⟩` over several streams.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Profile {
    entries: BTreeMap<StreamName, ProfileEntry>,
}

impl Profile {
    /// The empty profile (interested in nothing).
    pub fn new() -> Profile {
        Profile::default()
    }

    /// A profile interested in one whole stream (no filter, no
    /// projection) — the shape users submit to retrieve a result stream
    /// in the non-shared baseline.
    pub fn whole_stream(stream: impl Into<StreamName>) -> Profile {
        let mut p = Profile::new();
        p.add_entry(stream, ProfileEntry::all());
        p
    }

    /// Add (or union into) the entry for one stream.
    ///
    /// Projections are *not* widened to cover filter attributes here: a
    /// node evaluates filters against the incoming (unprojected) tuple
    /// and projects only afterwards, exactly like the paper's `p1`
    /// profile filters on `C.timestamp` while projecting `O.*`. Use
    /// [`Profile::normalized`] when propagating interest upstream, where
    /// the filter attributes must keep flowing.
    pub fn add_entry(&mut self, stream: impl Into<StreamName>, entry: ProfileEntry) {
        let stream = stream.into();
        match self.entries.get_mut(&stream) {
            Some(existing) => *existing = existing.union(&entry),
            None => {
                self.entries.insert(stream, entry);
            }
        }
    }

    /// Convenience: add a single-filter interest in a stream.
    pub fn add_interest(
        &mut self,
        stream: impl Into<StreamName>,
        projection: Projection,
        filter: Conjunction,
    ) {
        let filters = if filter.is_always() {
            vec![]
        } else {
            vec![filter]
        };
        self.add_entry(
            stream,
            ProfileEntry {
                projection,
                filters,
            },
        );
    }

    /// Whether the profile mentions no stream.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stream set `S`.
    pub fn streams(&self) -> impl Iterator<Item = &StreamName> {
        self.entries.keys()
    }

    /// Number of streams in the profile.
    pub fn stream_count(&self) -> usize {
        self.entries.len()
    }

    /// The entry for one stream.
    pub fn entry(&self, stream: &StreamName) -> Option<&ProfileEntry> {
        self.entries.get(stream)
    }

    /// Remove (and return) the entry for one stream — interest pruning
    /// when a stream is closed by its final watermark.
    pub fn remove_entry(&mut self, stream: &StreamName) -> Option<ProfileEntry> {
        self.entries.remove(stream)
    }

    /// Iterate over `(stream, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&StreamName, &ProfileEntry)> {
        self.entries.iter()
    }

    /// Whether a datagram is covered by the profile (Section 3.1:
    /// covered by any filter of its stream).
    pub fn covers_tuple(&self, tuple: &Tuple, schema: &Schema) -> bool {
        match self.entries.get(&tuple.stream) {
            Some(e) => e.accepts(tuple, schema),
            None => false,
        }
    }

    /// Project a covered tuple onto the profile's attribute set for its
    /// stream, returning the projected tuple and its projected schema.
    /// Returns the inputs unchanged when the projection is `All`.
    pub fn project_tuple(&self, tuple: &Tuple, schema: &Schema) -> Option<(Tuple, Schema)> {
        let entry = self.entries.get(&tuple.stream)?;
        if !entry.projection.narrows(schema) {
            return Some((tuple.clone(), schema.clone()));
        }
        let idx = entry.projection.indices(schema);
        let names: Vec<&str> = idx
            .iter()
            .map(|&i| schema.fields()[i].name.as_str())
            .collect();
        let projected_schema = schema.project(&names).ok()?;
        let projected = tuple.project_indices(&idx).ok()?;
        Some((projected, projected_schema))
    }

    /// Union of two profiles (the merged interest of a subtree).
    pub fn union(&self, other: &Profile) -> Profile {
        let mut out = self.clone();
        for (s, e) in &other.entries {
            out.add_entry(s.clone(), e.clone());
        }
        out
    }

    /// The profile with every entry's projection widened to include its
    /// filters' attributes — the shape that must be requested from
    /// *upstream*, so that this node still receives the attributes its
    /// downstream filters evaluate.
    pub fn normalized(&self) -> Profile {
        let mut out = self.clone();
        for entry in out.entries.values_mut() {
            entry.normalize();
        }
        out
    }

    /// Conservative covering check: `self` covers `other` when, for every
    /// stream of `other`, `self`'s entry covers it.
    pub fn covers(&self, other: &Profile) -> bool {
        other
            .entries
            .iter()
            .all(|(s, eo)| self.entries.get(s).is_some_and(|es| es.covers(eo)))
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (s, e)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{s}: P={}", e.projection)?;
            if e.filters.is_empty() {
                write!(f, ", F=TRUE")?;
            } else {
                write!(f, ", F=")?;
                for (j, c) in e.filters.iter().enumerate() {
                    if j > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "({c})")?;
                }
            }
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_types::{AttrType, Timestamp, Value};

    fn schema() -> Schema {
        Schema::of(&[
            ("a", AttrType::Int),
            ("b", AttrType::Int),
            ("c", AttrType::Str),
        ])
    }

    fn tup(a: i64, b: i64, c: &str) -> Tuple {
        Tuple::new(
            "S",
            Timestamp(0),
            vec![Value::Int(a), Value::Int(b), Value::str(c)],
        )
    }

    #[test]
    fn projection_union_and_cover() {
        let p1 = Projection::of(["a", "b"]);
        let p2 = Projection::of(["b", "c"]);
        let u = p1.union(&p2);
        assert!(u.contains("a") && u.contains("c"));
        assert!(u.covers(&p1));
        assert!(!p1.covers(&u));
        assert!(Projection::All.covers(&u));
        assert!(!p1.covers(&Projection::All));
        assert_eq!(Projection::All.union(&p1), Projection::All);
    }

    #[test]
    fn projection_indices_follow_schema_order() {
        let s = schema();
        let p = Projection::of(["c", "a"]);
        assert_eq!(p.indices(&s), vec![0, 2]);
        assert_eq!(Projection::All.indices(&s), vec![0, 1, 2]);
        assert!(p.narrows(&s));
        assert!(!Projection::All.narrows(&s));
        assert!(!Projection::of(["a", "b", "c"]).narrows(&s));
    }

    #[test]
    fn empty_filter_list_accepts_all() {
        let e = ProfileEntry::all();
        assert!(e.accepts(&tup(1, 2, "x"), &schema()));
    }

    #[test]
    fn entry_filters_are_a_disjunction() {
        let mut f1 = Conjunction::always();
        f1.between("a", 0, 10);
        let mut f2 = Conjunction::always();
        f2.equals("c", "special");
        let e = ProfileEntry {
            projection: Projection::All,
            filters: vec![f1, f2],
        };
        assert!(e.accepts(&tup(5, 0, "zzz"), &schema())); // via f1
        assert!(e.accepts(&tup(99, 0, "special"), &schema())); // via f2
        assert!(!e.accepts(&tup(99, 0, "zzz"), &schema()));
    }

    #[test]
    fn entry_covering() {
        let mut narrow = Conjunction::always();
        narrow.between("a", 2, 4);
        let mut wide = Conjunction::always();
        wide.between("a", 0, 10);
        let e_narrow = ProfileEntry {
            projection: Projection::of(["a"]),
            filters: vec![narrow],
        };
        let e_wide = ProfileEntry {
            projection: Projection::of(["a", "b"]),
            filters: vec![wide],
        };
        assert!(e_wide.covers(&e_narrow));
        assert!(!e_narrow.covers(&e_wide));
        assert!(ProfileEntry::all().covers(&e_wide));
        assert!(!e_wide.covers(&ProfileEntry::all()));
    }

    #[test]
    fn entry_union_prunes_subsumed_filters() {
        let mut narrow = Conjunction::always();
        narrow.between("a", 2, 4);
        let mut wide = Conjunction::always();
        wide.between("a", 0, 10);
        let e1 = ProfileEntry {
            projection: Projection::of(["a"]),
            filters: vec![narrow],
        };
        let e2 = ProfileEntry {
            projection: Projection::of(["a"]),
            filters: vec![wide.clone()],
        };
        let u = e1.union(&e2);
        assert_eq!(u.filters, vec![wide]);
        // union with accept-all is accept-all
        let u2 = e1.union(&ProfileEntry::all());
        assert!(u2.filters.is_empty());
        assert_eq!(u2.projection, Projection::All);
    }

    #[test]
    fn normalize_pulls_filter_attrs_into_projection() {
        let mut f = Conjunction::always();
        f.equals("b", 1);
        let mut e = ProfileEntry {
            projection: Projection::of(["a"]),
            filters: vec![f],
        };
        e.normalize();
        assert!(e.projection.contains("b"));
    }

    #[test]
    fn profile_covers_tuple_and_projects() {
        let mut p = Profile::new();
        let mut f = Conjunction::always();
        f.lower("a", 0, false);
        p.add_interest("S", Projection::of(["a", "c"]), f);
        let s = schema();
        assert!(p.covers_tuple(&tup(3, 9, "x"), &s));
        assert!(!p.covers_tuple(&tup(-3, 9, "x"), &s));
        // unknown stream
        let other = Tuple::new("T", Timestamp(0), vec![Value::Int(1)]);
        assert!(!p.covers_tuple(&other, &s));
        let (pt, ps) = p.project_tuple(&tup(3, 9, "x"), &s).unwrap();
        assert_eq!(ps.names().collect::<Vec<_>>(), vec!["a", "c"]);
        assert_eq!(pt.values(), &[Value::Int(3), Value::str("x")]);
    }

    #[test]
    fn project_tuple_with_all_is_identity() {
        let p = Profile::whole_stream("S");
        let s = schema();
        let t = tup(1, 2, "x");
        let (pt, ps) = p.project_tuple(&t, &s).unwrap();
        assert_eq!(pt, t);
        assert_eq!(ps, s);
    }

    #[test]
    fn profile_union_merges_streams() {
        let mut p1 = Profile::new();
        p1.add_interest("S", Projection::of(["a"]), Conjunction::always());
        let mut p2 = Profile::new();
        p2.add_interest("T", Projection::All, Conjunction::always());
        let u = p1.union(&p2);
        assert_eq!(u.stream_count(), 2);
        assert!(u.covers(&p1));
        assert!(u.covers(&p2));
        assert!(!p1.covers(&u));
    }

    #[test]
    fn add_interest_with_always_filter_is_accept_all() {
        let mut p = Profile::new();
        p.add_interest("S", Projection::All, Conjunction::always());
        let e = p.entry(&StreamName::from("S")).unwrap();
        assert!(e.filters.is_empty());
    }

    #[test]
    fn display_is_informative() {
        let mut p = Profile::new();
        let mut f = Conjunction::always();
        f.between("a", 1, 2);
        p.add_interest("S", Projection::of(["a"]), f);
        let s = p.to_string();
        assert!(s.contains("S:"), "{s}");
        assert!(s.contains("a in [1, 2]"), "{s}");
        assert!(Profile::whole_stream("R").to_string().contains("F=TRUE"));
    }
}
