//! The constraint algebra underlying CBN filters and query containment.
//!
//! A CBN filter (Section 3.1 of the paper) is "a conjunction of
//! constraints on the values of a set of attributes". COSMOS additionally
//! needs constraints on the *difference* of two attributes, because the
//! window re-tightening profiles of Section 4 take the form
//! `−3h ≤ O.timestamp − C.timestamp ≤ 0` (profiles `p1`/`p2` in the
//! paper). This module implements:
//!
//! * [`Interval`] — a (possibly half-open) interval over [`Value`]s;
//! * [`AttrConstraint`] — an interval plus a set of excluded points
//!   (`!=` constraints);
//! * [`DiffRange`] — a closed interval constraint on `a − b` for two
//!   numeric attributes;
//! * [`Conjunction`] — a conjunction of per-attribute and difference
//!   constraints, with the four operations the rest of the system is
//!   built on: **satisfaction** (does a tuple pass?), **implication**
//!   (is one filter stronger than another? — used for routing-table
//!   subsumption and query containment), **intersection** (logical AND)
//!   and **hull** (the tightest representable *weakening* covering both
//!   operands — used to synthesize representative queries).
//!
//! Soundness contract: `hull` may over-approximate (its result can accept
//! tuples neither operand accepts — e.g. the gap between two disjoint
//! intervals) but never under-approximates. `implies` is exact for this
//! representation. These are exactly the directions the paper's
//! representative-query construction needs: the representative result
//! must be a *superset* of every member result.

use cosmos_types::{Schema, Tuple, Value};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An interval over [`Value`]s with independently open/closed endpoints.
///
/// `None` endpoints are unbounded. The `bool` in each endpoint is the
/// *inclusive* flag.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Lower endpoint, `None` = −∞.
    pub lo: Option<(Value, bool)>,
    /// Upper endpoint, `None` = +∞.
    pub hi: Option<(Value, bool)>,
}

/// Compare two lower endpoints: which admits fewer values (is greater)?
fn cmp_lo(a: &Option<(Value, bool)>, b: &Option<(Value, bool)>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some((va, ia)), Some((vb, ib))) => va.cmp(vb).then_with(|| {
            // At the same value, an exclusive lower bound is tighter.
            match (ia, ib) {
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
                _ => Ordering::Equal,
            }
        }),
    }
}

/// Compare two upper endpoints: an upper bound is "less" when it admits
/// fewer values.
fn cmp_hi(a: &Option<(Value, bool)>, b: &Option<(Value, bool)>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Greater,
        (Some(_), None) => Ordering::Less,
        (Some((va, ia)), Some((vb, ib))) => va.cmp(vb).then_with(|| match (ia, ib) {
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            _ => Ordering::Equal,
        }),
    }
}

impl Interval {
    /// The interval admitting every value.
    pub fn full() -> Interval {
        Interval { lo: None, hi: None }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: Value) -> Interval {
        Interval {
            lo: Some((v.clone(), true)),
            hi: Some((v, true)),
        }
    }

    /// `x ≥ v` (inclusive) or `x > v` (exclusive).
    pub fn at_least(v: Value, inclusive: bool) -> Interval {
        Interval {
            lo: Some((v, inclusive)),
            hi: None,
        }
    }

    /// `x ≤ v` (inclusive) or `x < v` (exclusive).
    pub fn at_most(v: Value, inclusive: bool) -> Interval {
        Interval {
            lo: None,
            hi: Some((v, inclusive)),
        }
    }

    /// `[lo, hi]`, both inclusive.
    pub fn closed(lo: Value, hi: Value) -> Interval {
        Interval {
            lo: Some((lo, true)),
            hi: Some((hi, true)),
        }
    }

    /// Whether the interval admits no value at all.
    pub fn is_empty(&self) -> bool {
        match (&self.lo, &self.hi) {
            (Some((lo, li)), Some((hi, hi_i))) => match lo.cmp(hi) {
                Ordering::Greater => true,
                Ordering::Equal => !(*li && *hi_i),
                Ordering::Less => false,
            },
            _ => false,
        }
    }

    /// Whether the interval admits every value.
    pub fn is_full(&self) -> bool {
        self.lo.is_none() && self.hi.is_none()
    }

    /// Whether `v` lies inside the interval.
    ///
    /// Uses coercing comparison: values incomparable with an endpoint
    /// (wrong type, `Null`, NaN) never satisfy.
    pub fn contains(&self, v: &Value) -> bool {
        if v.is_null() {
            return false;
        }
        if let Some((lo, incl)) = &self.lo {
            match v.partial_cmp_coerce(lo) {
                Some(Ordering::Greater) => {}
                Some(Ordering::Equal) if *incl => {}
                _ => return false,
            }
        }
        if let Some((hi, incl)) = &self.hi {
            match v.partial_cmp_coerce(hi) {
                Some(Ordering::Less) => {}
                Some(Ordering::Equal) if *incl => {}
                _ => return false,
            }
        }
        true
    }

    /// Whether every value of `self` is admitted by `other`.
    pub fn subset_of(&self, other: &Interval) -> bool {
        if self.is_empty() {
            return true;
        }
        cmp_lo(&self.lo, &other.lo) != Ordering::Less
            && cmp_hi(&self.hi, &other.hi) != Ordering::Greater
    }

    /// The tightest interval containing both operands.
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let lo = if cmp_lo(&self.lo, &other.lo) == Ordering::Greater {
            other.lo.clone()
        } else {
            self.lo.clone()
        };
        let hi = if cmp_hi(&self.hi, &other.hi) == Ordering::Less {
            other.hi.clone()
        } else {
            self.hi.clone()
        };
        Interval { lo, hi }
    }

    /// The intersection of the operands (possibly empty).
    pub fn intersect(&self, other: &Interval) -> Interval {
        let lo = if cmp_lo(&self.lo, &other.lo) == Ordering::Less {
            other.lo.clone()
        } else {
            self.lo.clone()
        };
        let hi = if cmp_hi(&self.hi, &other.hi) == Ordering::Greater {
            other.hi.clone()
        } else {
            self.hi.clone()
        };
        Interval { lo, hi }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.lo {
            Some((v, true)) => write!(f, "[{v}, ")?,
            Some((v, false)) => write!(f, "({v}, ")?,
            None => write!(f, "(-inf, ")?,
        }
        match &self.hi {
            Some((v, true)) => write!(f, "{v}]"),
            Some((v, false)) => write!(f, "{v})"),
            None => write!(f, "+inf)"),
        }
    }
}

/// A constraint on one attribute: an interval minus a set of excluded
/// points (the excluded points come from `!=` predicates).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrConstraint {
    /// The admitting interval.
    pub interval: Interval,
    /// Values explicitly excluded (`!=`).
    pub excluded: BTreeSet<Value>,
}

impl AttrConstraint {
    /// The unconstrained attribute.
    pub fn any() -> AttrConstraint {
        AttrConstraint {
            interval: Interval::full(),
            excluded: BTreeSet::new(),
        }
    }

    /// A constraint admitting exactly the interval.
    pub fn from_interval(interval: Interval) -> AttrConstraint {
        AttrConstraint {
            interval,
            excluded: BTreeSet::new(),
        }
    }

    /// Whether the constraint admits everything.
    pub fn is_any(&self) -> bool {
        self.interval.is_full() && self.excluded.is_empty()
    }

    /// Whether the constraint admits nothing.
    ///
    /// Exact for point intervals; for wider intervals a finite excluded
    /// set can never empty them (value domains are dense or large).
    pub fn is_unsat(&self) -> bool {
        if self.interval.is_empty() {
            return true;
        }
        if let (Some((lo, true)), Some((hi, true))) = (&self.interval.lo, &self.interval.hi) {
            if lo == hi {
                return self.excluded.contains(lo);
            }
        }
        false
    }

    /// Whether `v` satisfies the constraint.
    pub fn satisfies(&self, v: &Value) -> bool {
        self.interval.contains(v) && !self.excluded.iter().any(|e| e.eq_coerce(v))
    }

    /// Conjunction of two constraints on the same attribute.
    pub fn and(&self, other: &AttrConstraint) -> AttrConstraint {
        AttrConstraint {
            interval: self.interval.intersect(&other.interval),
            excluded: self.excluded.union(&other.excluded).cloned().collect(),
        }
    }

    /// Whether every value admitted by `self` is admitted by `other`.
    pub fn implies(&self, other: &AttrConstraint) -> bool {
        if self.is_unsat() {
            return true;
        }
        if !self.interval.subset_of(&other.interval) {
            return false;
        }
        // Every point `other` excludes must be unsatisfiable under `self`.
        other
            .excluded
            .iter()
            .all(|e| !self.interval.contains(e) || self.excluded.contains(e))
    }

    /// The tightest representable constraint admitting everything either
    /// operand admits (may over-approximate across interval gaps).
    pub fn hull(&self, other: &AttrConstraint) -> AttrConstraint {
        if self.is_unsat() {
            return other.clone();
        }
        if other.is_unsat() {
            return self.clone();
        }
        AttrConstraint {
            interval: self.interval.hull(&other.interval),
            // Only points excluded by BOTH operands stay excluded.
            excluded: self
                .excluded
                .intersection(&other.excluded)
                .cloned()
                .collect(),
        }
    }
}

impl fmt::Display for AttrConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.interval)?;
        for e in &self.excluded {
            write!(f, " \\ {e}")?;
        }
        Ok(())
    }
}

/// A closed interval constraint on the difference of two numeric
/// attributes: `lo ≤ a − b ≤ hi` (in the attributes' own units; for
/// timestamps this is milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiffRange {
    /// Inclusive lower bound on `a − b` (use `f64::NEG_INFINITY` for none).
    pub lo: f64,
    /// Inclusive upper bound on `a − b` (use `f64::INFINITY` for none).
    pub hi: f64,
}

impl DiffRange {
    /// Constraint `lo ≤ a − b ≤ hi`. Negative zero is normalized so
    /// flipped ranges print and compare cleanly.
    pub fn new(lo: f64, hi: f64) -> DiffRange {
        let norm = |x: f64| if x == 0.0 { 0.0 } else { x };
        DiffRange {
            lo: norm(lo),
            hi: norm(hi),
        }
    }

    /// The unconstrained difference.
    pub fn any() -> DiffRange {
        DiffRange {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// Whether `a − b` satisfies the constraint.
    pub fn satisfies(&self, a: &Value, b: &Value) -> bool {
        match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => {
                let d = x - y;
                d >= self.lo && d <= self.hi
            }
            _ => false,
        }
    }

    /// The reversed constraint, describing `b − a`.
    pub fn flipped(&self) -> DiffRange {
        DiffRange::new(-self.hi, -self.lo)
    }

    /// Whether `self`'s admitted differences are a subset of `other`'s.
    pub fn implies(&self, other: &DiffRange) -> bool {
        self.is_empty() || (self.lo >= other.lo && self.hi <= other.hi)
    }

    /// Hull of two difference ranges.
    pub fn hull(&self, other: &DiffRange) -> DiffRange {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        DiffRange {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection of two difference ranges.
    pub fn intersect(&self, other: &DiffRange) -> DiffRange {
        DiffRange {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Whether the range admits no difference.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Whether the range admits every difference.
    pub fn is_any(&self) -> bool {
        self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY
    }
}

impl fmt::Display for DiffRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// A conjunction of per-attribute constraints and attribute-difference
/// constraints — the filter language of the COSMOS CBN.
///
/// The empty conjunction is `true` (accepts everything).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Conjunction {
    attrs: BTreeMap<String, AttrConstraint>,
    /// Keyed by the attribute pair `(a, b)` with `a < b` lexicographically;
    /// the stored range constrains `a − b`.
    diffs: BTreeMap<(String, String), DiffRange>,
}

impl Conjunction {
    /// The always-true conjunction.
    pub fn always() -> Conjunction {
        Conjunction::default()
    }

    /// Whether this is the always-true conjunction.
    pub fn is_always(&self) -> bool {
        self.attrs.values().all(AttrConstraint::is_any)
            && self.diffs.values().all(DiffRange::is_any)
    }

    /// Whether the conjunction is unsatisfiable (exact for the
    /// representable fragment: any empty attribute or difference range).
    pub fn is_unsat(&self) -> bool {
        self.attrs.values().any(AttrConstraint::is_unsat)
            || self.diffs.values().any(DiffRange::is_empty)
    }

    /// The per-attribute constraints.
    pub fn attr_constraints(&self) -> impl Iterator<Item = (&str, &AttrConstraint)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The difference constraints, keyed `(a, b)` constraining `a − b`.
    pub fn diff_constraints(&self) -> impl Iterator<Item = (&str, &str, &DiffRange)> {
        self.diffs
            .iter()
            .map(|((a, b), r)| (a.as_str(), b.as_str(), r))
    }

    /// The constraint on one attribute (`any` if unconstrained).
    pub fn constraint_for(&self, attr: &str) -> AttrConstraint {
        self.attrs
            .get(attr)
            .cloned()
            .unwrap_or_else(AttrConstraint::any)
    }

    /// AND an [`AttrConstraint`] onto an attribute.
    pub fn constrain(&mut self, attr: impl Into<String>, c: AttrConstraint) -> &mut Self {
        let attr = attr.into();
        let merged = match self.attrs.get(&attr) {
            Some(prev) => prev.and(&c),
            None => c,
        };
        self.attrs.insert(attr, merged);
        self
    }

    /// AND an equality `attr = v`.
    pub fn equals(&mut self, attr: impl Into<String>, v: impl Into<Value>) -> &mut Self {
        self.constrain(
            attr,
            AttrConstraint::from_interval(Interval::point(v.into())),
        )
    }

    /// AND an exclusion `attr != v`.
    pub fn excludes(&mut self, attr: impl Into<String>, v: impl Into<Value>) -> &mut Self {
        let mut c = AttrConstraint::any();
        c.excluded.insert(v.into());
        self.constrain(attr, c)
    }

    /// AND a lower bound `attr > v` / `attr ≥ v`.
    pub fn lower(
        &mut self,
        attr: impl Into<String>,
        v: impl Into<Value>,
        inclusive: bool,
    ) -> &mut Self {
        self.constrain(
            attr,
            AttrConstraint::from_interval(Interval::at_least(v.into(), inclusive)),
        )
    }

    /// AND an upper bound `attr < v` / `attr ≤ v`.
    pub fn upper(
        &mut self,
        attr: impl Into<String>,
        v: impl Into<Value>,
        inclusive: bool,
    ) -> &mut Self {
        self.constrain(
            attr,
            AttrConstraint::from_interval(Interval::at_most(v.into(), inclusive)),
        )
    }

    /// AND a range `lo ≤ attr ≤ hi` (inclusive, `BETWEEN`).
    pub fn between(
        &mut self,
        attr: impl Into<String>,
        lo: impl Into<Value>,
        hi: impl Into<Value>,
    ) -> &mut Self {
        self.constrain(
            attr,
            AttrConstraint::from_interval(Interval::closed(lo.into(), hi.into())),
        )
    }

    /// AND a difference constraint `lo ≤ a − b ≤ hi`.
    pub fn diff(
        &mut self,
        a: impl Into<String>,
        b: impl Into<String>,
        range: DiffRange,
    ) -> &mut Self {
        let (a, b) = (a.into(), b.into());
        let (key, range) = if a <= b {
            ((a, b), range)
        } else {
            ((b, a), range.flipped())
        };
        let merged = match self.diffs.get(&key) {
            Some(prev) => prev.intersect(&range),
            None => range,
        };
        self.diffs.insert(key, merged);
        self
    }

    /// All attribute names referenced by the conjunction (including the
    /// operands of difference constraints).
    pub fn referenced_attrs(&self) -> BTreeSet<String> {
        let mut out: BTreeSet<String> = self.attrs.keys().cloned().collect();
        for (a, b) in self.diffs.keys() {
            out.insert(a.clone());
            out.insert(b.clone());
        }
        out
    }

    /// Evaluate the conjunction against a tuple under a schema.
    ///
    /// Constraints on attributes absent from the schema are unsatisfied
    /// (the tuple cannot be shown to pass), keeping filtering sound under
    /// projection.
    pub fn satisfies(&self, tuple: &Tuple, schema: &Schema) -> bool {
        self.satisfies_with(|name| tuple.get_by_name(schema, name))
    }

    /// Evaluate against an arbitrary attribute lookup.
    pub fn satisfies_with<'a, F>(&self, lookup: F) -> bool
    where
        F: Fn(&str) -> Option<&'a Value>,
    {
        for (attr, c) in &self.attrs {
            match lookup(attr) {
                Some(v) if c.satisfies(v) => {}
                _ => return false,
            }
        }
        for ((a, b), r) in &self.diffs {
            match (lookup(a), lookup(b)) {
                (Some(x), Some(y)) if r.satisfies(x, y) => {}
                _ => return false,
            }
        }
        true
    }

    /// Logical AND of two conjunctions.
    pub fn and(&self, other: &Conjunction) -> Conjunction {
        let mut out = self.clone();
        for (attr, c) in &other.attrs {
            out.constrain(attr.clone(), c.clone());
        }
        for ((a, b), r) in &other.diffs {
            out.diff(a.clone(), b.clone(), *r);
        }
        out
    }

    /// Whether every tuple satisfying `self` satisfies `other`.
    ///
    /// Exact for this representation: `other`'s constraints must each be
    /// implied by `self`'s constraint on the same attribute (an attribute
    /// unconstrained in `self` can only imply an `any` constraint).
    pub fn implies(&self, other: &Conjunction) -> bool {
        if self.is_unsat() {
            return true;
        }
        for (attr, c2) in &other.attrs {
            let ok = match self.attrs.get(attr) {
                Some(c1) => c1.implies(c2),
                None => c2.is_any(),
            };
            if !ok {
                return false;
            }
        }
        for (key, r2) in &other.diffs {
            let ok = match self.diffs.get(key) {
                Some(r1) => r1.implies(r2),
                None => r2.is_any(),
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// The tightest representable conjunction weaker than both operands.
    ///
    /// Attributes constrained in only one operand become unconstrained
    /// (their hull with `any` is `any`); shared attributes take the
    /// constraint hull. This is the "merging the query predicates" step
    /// of the paper's representative-query construction.
    pub fn hull(&self, other: &Conjunction) -> Conjunction {
        if self.is_unsat() {
            return other.clone();
        }
        if other.is_unsat() {
            return self.clone();
        }
        let mut out = Conjunction::default();
        for (attr, c1) in &self.attrs {
            if let Some(c2) = other.attrs.get(attr) {
                let h = c1.hull(c2);
                if !h.is_any() {
                    out.attrs.insert(attr.clone(), h);
                }
            }
        }
        for (key, r1) in &self.diffs {
            if let Some(r2) = other.diffs.get(key) {
                let h = r1.hull(r2);
                if !h.is_any() {
                    out.diffs.insert(key.clone(), h);
                }
            }
        }
        out
    }

    /// Drop constraints that admit everything (normal form used by
    /// equality comparisons and display).
    pub fn simplify(&mut self) {
        self.attrs.retain(|_, c| !c.is_any());
        self.diffs.retain(|_, r| !r.is_any());
    }
}

impl fmt::Display for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.attrs.is_empty() && self.diffs.is_empty() {
            return write!(f, "TRUE");
        }
        let mut first = true;
        for (attr, c) in &self.attrs {
            if !first {
                write!(f, " AND ")?;
            }
            first = false;
            write!(f, "{attr} in {c}")?;
        }
        for ((a, b), r) in &self.diffs {
            if !first {
                write!(f, " AND ")?;
            }
            first = false;
            write!(f, "({a} - {b}) in {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_types::AttrType;

    fn iv(lo: Option<(i64, bool)>, hi: Option<(i64, bool)>) -> Interval {
        Interval {
            lo: lo.map(|(v, i)| (Value::Int(v), i)),
            hi: hi.map(|(v, i)| (Value::Int(v), i)),
        }
    }

    #[test]
    fn interval_contains_respects_endpoints() {
        let i = iv(Some((1, true)), Some((5, false))); // [1, 5)
        assert!(i.contains(&Value::Int(1)));
        assert!(i.contains(&Value::Int(4)));
        assert!(!i.contains(&Value::Int(5)));
        assert!(!i.contains(&Value::Int(0)));
        assert!(i.contains(&Value::Float(4.9)));
        assert!(!i.contains(&Value::Null));
        assert!(!i.contains(&Value::str("a")));
    }

    #[test]
    fn interval_emptiness() {
        assert!(iv(Some((5, true)), Some((1, true))).is_empty());
        assert!(iv(Some((3, true)), Some((3, false))).is_empty());
        assert!(!iv(Some((3, true)), Some((3, true))).is_empty());
        assert!(!Interval::full().is_empty());
        assert!(Interval::full().is_full());
    }

    #[test]
    fn interval_subset() {
        let narrow = iv(Some((2, true)), Some((4, true)));
        let wide = iv(Some((1, true)), Some((5, true)));
        assert!(narrow.subset_of(&wide));
        assert!(!wide.subset_of(&narrow));
        assert!(narrow.subset_of(&Interval::full()));
        // open vs closed at same endpoint
        let open = iv(Some((1, false)), Some((5, true)));
        let closed = iv(Some((1, true)), Some((5, true)));
        assert!(open.subset_of(&closed));
        assert!(!closed.subset_of(&open));
        // empty is a subset of anything
        assert!(iv(Some((9, true)), Some((1, true))).subset_of(&narrow));
    }

    #[test]
    fn interval_hull_and_intersect() {
        let a = iv(Some((1, true)), Some((3, true)));
        let b = iv(Some((5, false)), Some((9, true)));
        let h = a.hull(&b);
        assert_eq!(h, iv(Some((1, true)), Some((9, true))));
        // hull over-approximates: 4 in hull but in neither operand
        assert!(h.contains(&Value::Int(4)));
        let x = a.intersect(&b);
        assert!(x.is_empty());
        let c = iv(Some((2, true)), Some((7, true)));
        assert_eq!(a.intersect(&c), iv(Some((2, true)), Some((3, true))));
        // hull with empty side returns other
        let empty = iv(Some((9, true)), Some((1, true)));
        assert_eq!(empty.hull(&a), a);
        assert_eq!(a.hull(&empty), a);
    }

    #[test]
    fn attr_constraint_excluded_points() {
        let mut c = AttrConstraint::from_interval(iv(Some((0, true)), Some((10, true))));
        c.excluded.insert(Value::Int(5));
        assert!(c.satisfies(&Value::Int(4)));
        assert!(!c.satisfies(&Value::Int(5)));
        assert!(!c.satisfies(&Value::Float(5.0))); // coerced exclusion
        assert!(!c.satisfies(&Value::Int(11)));
    }

    #[test]
    fn attr_constraint_unsat_detection() {
        let mut point = AttrConstraint::from_interval(Interval::point(Value::Int(3)));
        assert!(!point.is_unsat());
        point.excluded.insert(Value::Int(3));
        assert!(point.is_unsat());
        let empty = AttrConstraint::from_interval(iv(Some((5, true)), Some((1, true))));
        assert!(empty.is_unsat());
        assert!(!AttrConstraint::any().is_unsat());
        assert!(AttrConstraint::any().is_any());
    }

    #[test]
    fn attr_constraint_implication_with_exclusions() {
        let narrow = AttrConstraint::from_interval(iv(Some((2, true)), Some((4, true))));
        let mut wide_minus_3 = AttrConstraint::from_interval(iv(Some((0, true)), Some((10, true))));
        wide_minus_3.excluded.insert(Value::Int(3));
        // narrow admits 3, which the other excludes → no implication
        assert!(!narrow.implies(&wide_minus_3));
        // but if narrow also excludes 3, implication holds
        let mut narrow2 = narrow.clone();
        narrow2.excluded.insert(Value::Int(3));
        assert!(narrow2.implies(&wide_minus_3));
        // excluded point outside self's interval is harmless
        let mut wide_minus_20 =
            AttrConstraint::from_interval(iv(Some((0, true)), Some((10, true))));
        wide_minus_20.excluded.insert(Value::Int(20));
        assert!(narrow.implies(&wide_minus_20));
    }

    #[test]
    fn attr_constraint_hull_keeps_common_exclusions() {
        let mut a = AttrConstraint::from_interval(iv(Some((0, true)), Some((5, true))));
        a.excluded.insert(Value::Int(2));
        a.excluded.insert(Value::Int(3));
        let mut b = AttrConstraint::from_interval(iv(Some((3, true)), Some((9, true))));
        b.excluded.insert(Value::Int(3));
        let h = a.hull(&b);
        assert_eq!(h.interval, iv(Some((0, true)), Some((9, true))));
        assert_eq!(h.excluded, BTreeSet::from([Value::Int(3)]));
        // 2 must be admitted by the hull because b admits it
        assert!(h.satisfies(&Value::Int(2)));
    }

    #[test]
    fn diff_range_semantics() {
        // −3h ≤ a − b ≤ 0, in ms (the paper's p1 filter shape)
        let r = DiffRange::new(-10_800_000.0, 0.0);
        assert!(r.satisfies(&Value::Int(1_000), &Value::Int(2_000)));
        assert!(r.satisfies(&Value::Int(2_000), &Value::Int(2_000)));
        assert!(!r.satisfies(&Value::Int(3_000), &Value::Int(2_000)));
        assert!(!r.satisfies(&Value::Int(0), &Value::Int(20_000_000)));
        assert!(!r.satisfies(&Value::str("x"), &Value::Int(0)));
        assert_eq!(r.flipped(), DiffRange::new(0.0, 10_800_000.0));
        assert!(DiffRange::new(-1.0, 0.0).implies(&r));
        assert!(!r.implies(&DiffRange::new(-1.0, 0.0)));
        assert_eq!(
            r.hull(&DiffRange::new(-1.0, 5.0)),
            DiffRange::new(-10_800_000.0, 5.0)
        );
        assert!(DiffRange::new(1.0, -1.0).is_empty());
        assert!(DiffRange::any().is_any());
    }

    #[test]
    fn conjunction_satisfaction_on_tuples() {
        let schema = Schema::of(&[
            ("a", AttrType::Int),
            ("b", AttrType::Int),
            ("s", AttrType::Str),
        ]);
        let mut c = Conjunction::always();
        c.between("a", 1, 10)
            .equals("s", "x")
            .diff("a", "b", DiffRange::new(-5.0, 5.0));
        let t = Tuple::new(
            "S",
            cosmos_types::Timestamp(0),
            vec![Value::Int(5), Value::Int(3), Value::str("x")],
        );
        assert!(c.satisfies(&t, &schema));
        let t2 = Tuple::new(
            "S",
            cosmos_types::Timestamp(0),
            vec![Value::Int(5), Value::Int(30), Value::str("x")],
        );
        assert!(!c.satisfies(&t2, &schema)); // diff out of range
        let t3 = Tuple::new(
            "S",
            cosmos_types::Timestamp(0),
            vec![Value::Int(5), Value::Int(3), Value::str("y")],
        );
        assert!(!c.satisfies(&t3, &schema)); // eq fails
    }

    #[test]
    fn conjunction_missing_attr_is_unsatisfied() {
        let schema = Schema::of(&[("a", AttrType::Int)]);
        let mut c = Conjunction::always();
        c.equals("missing", 1);
        let t = Tuple::new("S", cosmos_types::Timestamp(0), vec![Value::Int(1)]);
        assert!(!c.satisfies(&t, &schema));
    }

    #[test]
    fn conjunction_implication() {
        let mut strong = Conjunction::always();
        strong.between("a", 2, 4).equals("s", "x");
        let mut weak = Conjunction::always();
        weak.between("a", 0, 10);
        assert!(strong.implies(&weak));
        assert!(!weak.implies(&strong));
        assert!(strong.implies(&Conjunction::always()));
        assert!(Conjunction::always().implies(&Conjunction::always()));
        // diff constraints participate
        let mut d1 = Conjunction::always();
        d1.diff("x", "y", DiffRange::new(-1.0, 1.0));
        let mut d2 = Conjunction::always();
        d2.diff("x", "y", DiffRange::new(-5.0, 5.0));
        assert!(d1.implies(&d2));
        assert!(!d2.implies(&d1));
        // flipped orientation normalizes to the same key
        let mut d3 = Conjunction::always();
        d3.diff("y", "x", DiffRange::new(-5.0, 5.0));
        assert!(d1.implies(&d3));
    }

    #[test]
    fn unsat_conjunction_implies_everything() {
        let mut bad = Conjunction::always();
        bad.between("a", 10, 0);
        assert!(bad.is_unsat());
        let mut any_strong = Conjunction::always();
        any_strong.equals("z", 1);
        assert!(bad.implies(&any_strong));
    }

    #[test]
    fn conjunction_hull_drops_one_sided_constraints() {
        let mut c1 = Conjunction::always();
        c1.between("a", 0, 5).equals("only1", 7);
        let mut c2 = Conjunction::always();
        c2.between("a", 3, 9);
        let h = c1.hull(&c2);
        // shared attr hulled
        assert_eq!(
            h.constraint_for("a").interval,
            Interval::closed(Value::Int(0), Value::Int(9))
        );
        // one-sided constraint must be dropped (c2 admits any `only1`)
        assert!(h.constraint_for("only1").is_any());
        // hull is weaker than both
        assert!(c1.implies(&h));
        assert!(c2.implies(&h));
    }

    #[test]
    fn conjunction_and_composes() {
        let mut c1 = Conjunction::always();
        c1.lower("a", 0, true);
        let mut c2 = Conjunction::always();
        c2.upper("a", 10, false).excludes("a", 5);
        let both = c1.and(&c2);
        assert!(both.satisfies_with(|n| (n == "a").then_some(&Value::Int(3))));
        assert!(!both.satisfies_with(|n| (n == "a").then_some(&Value::Int(5))));
        assert!(!both.satisfies_with(|n| (n == "a").then_some(&Value::Int(10))));
    }

    #[test]
    fn referenced_attrs_includes_diff_operands() {
        let mut c = Conjunction::always();
        c.equals("a", 1).diff("x", "y", DiffRange::new(0.0, 1.0));
        let attrs = c.referenced_attrs();
        assert_eq!(
            attrs,
            BTreeSet::from(["a".to_string(), "x".to_string(), "y".to_string()])
        );
    }

    #[test]
    fn simplify_removes_trivial_constraints() {
        let mut c = Conjunction::always();
        c.constrain("a", AttrConstraint::any());
        c.diff("x", "y", DiffRange::any());
        assert!(c.is_always());
        c.simplify();
        assert_eq!(c, Conjunction::always());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Conjunction::always().to_string(), "TRUE");
        let mut c = Conjunction::always();
        c.between("a", 1, 2);
        assert_eq!(c.to_string(), "a in [1, 2]");
        let mut d = Conjunction::always();
        d.diff("x", "y", DiffRange::new(0.0, 1.0));
        assert_eq!(d.to_string(), "(x - y) in [0, 1]");
        assert_eq!(Interval::full().to_string(), "(-inf, +inf)");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_interval() -> impl Strategy<Value = Interval> {
        (
            proptest::option::of((-50i64..50, any::<bool>())),
            proptest::option::of((-50i64..50, any::<bool>())),
        )
            .prop_map(|(lo, hi)| Interval {
                lo: lo.map(|(v, i)| (Value::Int(v), i)),
                hi: hi.map(|(v, i)| (Value::Int(v), i)),
            })
    }

    fn arb_constraint() -> impl Strategy<Value = AttrConstraint> {
        (
            arb_interval(),
            proptest::collection::btree_set((-50i64..50).prop_map(Value::Int), 0..4),
        )
            .prop_map(|(interval, excluded)| AttrConstraint { interval, excluded })
    }

    proptest! {
        /// If `a.implies(b)` then every point satisfying `a` satisfies `b`.
        #[test]
        fn implication_is_sound(a in arb_constraint(), b in arb_constraint(), x in -60i64..60) {
            let v = Value::Int(x);
            if a.implies(&b) && a.satisfies(&v) {
                prop_assert!(b.satisfies(&v));
            }
        }

        /// The hull admits every point either operand admits.
        #[test]
        fn hull_is_superset(a in arb_constraint(), b in arb_constraint(), x in -60i64..60) {
            let v = Value::Int(x);
            let h = a.hull(&b);
            if a.satisfies(&v) || b.satisfies(&v) {
                prop_assert!(h.satisfies(&v));
            }
        }

        /// AND admits exactly the points both operands admit.
        #[test]
        fn and_is_intersection(a in arb_constraint(), b in arb_constraint(), x in -60i64..60) {
            let v = Value::Int(x);
            prop_assert_eq!(a.and(&b).satisfies(&v), a.satisfies(&v) && b.satisfies(&v));
        }

        /// Subset check agrees with pointwise containment on samples.
        #[test]
        fn subset_is_pointwise(a in arb_interval(), b in arb_interval(), x in -60i64..60) {
            let v = Value::Int(x);
            if a.subset_of(&b) && a.contains(&v) {
                prop_assert!(b.contains(&v));
            }
        }

        /// `is_unsat` means no sampled point satisfies.
        #[test]
        fn unsat_admits_nothing(c in arb_constraint(), x in -60i64..60) {
            if c.is_unsat() {
                prop_assert!(!c.satisfies(&Value::Int(x)));
            }
        }
    }
}
